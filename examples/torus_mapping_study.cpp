/// \file torus_mapping_study.cpp
/// Why the paper uses a folding-based topology-aware mapping on
/// Blue Gene/L (§V-C): the same nest redistribution costs dramatically
/// different hop-bytes depending on how the 2D process grid is embedded in
/// the 3D torus. This example compares folding, row-major and random
/// placements, and also contrasts the torus with the switched fist network
/// where placement barely matters.

#include <iostream>
#include <memory>

#include "redist/redistributor.hpp"
#include "topo/mapping.hpp"
#include "util/table.hpp"

using namespace stormtrack;

namespace {

struct Case {
  const char* name;
  NestShape nest;
  Rect old_rect;
  Rect new_rect;
};

constexpr Case kCases[] = {
    {"small shift", NestShape{202, 349}, Rect{0, 0, 13, 16},
     Rect{2, 1, 13, 16}},
    {"grow", NestShape{300, 300}, Rect{4, 4, 10, 10}, Rect{2, 2, 14, 14}},
    {"jump", NestShape{349, 349}, Rect{0, 0, 16, 12}, Rect{16, 18, 16, 12}},
};

}  // namespace

int main() {
  const Torus3D torus(8, 8, 16);  // BG/L midplane, 1024 nodes
  const FoldingMapping folding(32, 32, torus);
  const RowMajorMapping row_major(1024);
  const RandomMapping random(1024, 2013);

  std::cout << "Average dilation of process-grid neighbours on "
            << torus.name() << ":\n";
  Table dil({"Mapping", "Avg hops between grid neighbours"});
  for (const Mapping* m :
       {static_cast<const Mapping*>(&folding),
        static_cast<const Mapping*>(&row_major),
        static_cast<const Mapping*>(&random)})
    dil.add_row({m->name(),
                 Table::num(average_neighbor_dilation(torus, *m, 32, 32), 2)});
  dil.print(std::cout);

  Table t({"Case", "Mapping", "Redist time (ms)", "Avg hops/byte",
           "Max hops"});
  for (const Case& c : kCases) {
    for (const Mapping* m :
         {static_cast<const Mapping*>(&folding),
          static_cast<const Mapping*>(&row_major),
          static_cast<const Mapping*>(&random)}) {
      SimComm comm(torus, *m);
      Redistributor redist(comm);
      const RedistMetrics metrics =
          redist.redistribute(c.nest, c.old_rect, c.new_rect, 32);
      t.add_row({c.name, m->name(),
                 Table::num(metrics.traffic.modeled_time * 1e3, 3),
                 Table::num(metrics.traffic.avg_hops_per_byte(), 2),
                 Table::num(static_cast<std::int64_t>(
                     metrics.traffic.max_hops))});
    }
  }
  t.set_title("Redistribution cost by mapping (1024-node 3D torus)");
  t.print(std::cout);

  // On the switched network, every pair is 2 or 4 hops: placement is
  // nearly irrelevant, matching the paper's smaller fist-cluster gains.
  const SwitchedNetwork fist(1024, 16);
  Table t2({"Case", "Mapping", "Redist time (ms)", "Avg hops/byte"});
  for (const Case& c : kCases) {
    for (const Mapping* m : {static_cast<const Mapping*>(&row_major),
                             static_cast<const Mapping*>(&random)}) {
      SimComm comm(fist, *m);
      Redistributor redist(comm);
      const RedistMetrics metrics =
          redist.redistribute(c.nest, c.old_rect, c.new_rect, 32);
      t2.add_row({c.name, m->name(),
                  Table::num(metrics.traffic.modeled_time * 1e3, 3),
                  Table::num(metrics.traffic.avg_hops_per_byte(), 2)});
    }
  }
  t2.set_title("Same cases on the switched (fist-like) network");
  t2.print(std::cout);
  return 0;
}
