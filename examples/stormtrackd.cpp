/// \file stormtrackd.cpp
/// The stormtrack session daemon: accepts tracking sessions over a
/// Unix-domain socket, runs them under admission control, deadlines, and
/// supervised retries, and survives crashes — a killed daemon restarted on
/// the same state directory requeues unfinished sessions and resumes them
/// from their checkpoints (see docs/ARCHITECTURE.md "Service layer").
///
/// Usage:
///   stormtrackd --socket /tmp/stormtrack.sock --state-dir state
///   stormtrackctl --socket /tmp/stormtrack.sock submit --intervals 40
///
/// Exit codes: 0 clean shutdown (client `shutdown` request or
/// SIGTERM/SIGINT), 2 bad arguments, 4 runtime failure.

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <iostream>
#include <optional>
#include <string>

#include "serve/server.hpp"
#include "serve/supervisor.hpp"
#include "util/check.hpp"
#include "util/fs_fault.hpp"

using namespace stormtrack;

namespace {

constexpr int kExitOk = 0;
constexpr int kExitBadArgs = 2;
constexpr int kExitRuntime = 4;

struct Options {
  std::string socket = "stormtrack.sock";
  std::string state_dir = "stormtrack-state";
  ServeLimits limits;
  ServerConfig server;
  std::string fs_fault;  ///< --inject-fs-fault spec, empty = none.
};

[[noreturn]] void usage(int code) {
  std::cout <<
      "stormtrackd — supervised multi-session tracking daemon\n"
      "  --socket PATH          Unix-domain socket to listen on\n"
      "                         (default stormtrack.sock)\n"
      "  --state-dir DIR        journal + per-session checkpoints\n"
      "                         (default stormtrack-state); restarting on\n"
      "                         a used state dir recovers its sessions\n"
      "  --max-active N         concurrent running sessions (default 2)\n"
      "  --max-queued N         queued sessions before REJECTED_BUSY\n"
      "                         (default 8)\n"
      "  --deadline S           default per-session wall-clock budget in\n"
      "                         seconds, 0 = unlimited (default 0)\n"
      "  --retries N            attempts per session before quarantine\n"
      "                         (default 3)\n"
      "  --backoff S            first retry backoff seconds (default 0.05)\n"
      "  --checkpoint-every N   checkpoint cadence in intervals (default 1)\n"
      "  --threads N            executor threads per running session,\n"
      "                         0 = serial (default 0); lane mode only —\n"
      "                         cannot be combined with --pool-threads\n"
      "  --pool-threads N       shared-pool scheduling: N worker threads\n"
      "                         cooperatively slice ALL running sessions\n"
      "                         (max-active becomes an admission bound, not\n"
      "                         a thread count); 0 = lane-per-session\n"
      "                         (default 0)\n"
      "  --aging S              queue-wait seconds per +1 effective\n"
      "                         priority in the fair queue; 0 disables\n"
      "                         aging (default 0.5)\n"
      "  --read-deadline S      a client that starts a frame must finish\n"
      "                         it within S seconds, 0 = unbounded\n"
      "                         (default 10)\n"
      "  --write-deadline S     a reply must be drained by the peer\n"
      "                         within S seconds, 0 = unbounded\n"
      "                         (default 10)\n"
      "  --inject-fs-fault SPEC chaos testing: fail matching service\n"
      "                         writes/fsyncs. SPEC is\n"
      "                         OP:PATH_SUBSTR[:skip=N][:count=M]\n"
      "                         [:errno=ENOSPC|EIO|NUM][:short=K], e.g.\n"
      "                         write:sessions.stjl:skip=4:count=2:errno=ENOSPC\n"
      "  --help\n";
  std::exit(code);
}

std::optional<Options> parse(int argc, char** argv) {
  Options opt;
  auto need_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << flag << " needs a value\n";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if (std::strcmp(arg, "--help") == 0) usage(kExitOk);
    if (std::strcmp(arg, "--socket") == 0) {
      if ((value = need_value(i, arg)) == nullptr) return std::nullopt;
      opt.socket = value;
    } else if (std::strcmp(arg, "--state-dir") == 0) {
      if ((value = need_value(i, arg)) == nullptr) return std::nullopt;
      opt.state_dir = value;
    } else if (std::strcmp(arg, "--max-active") == 0) {
      if ((value = need_value(i, arg)) == nullptr) return std::nullopt;
      opt.limits.max_active = std::atoi(value);
    } else if (std::strcmp(arg, "--max-queued") == 0) {
      if ((value = need_value(i, arg)) == nullptr) return std::nullopt;
      opt.limits.max_queued = std::atoi(value);
    } else if (std::strcmp(arg, "--deadline") == 0) {
      if ((value = need_value(i, arg)) == nullptr) return std::nullopt;
      opt.limits.session_deadline_seconds = std::atof(value);
    } else if (std::strcmp(arg, "--retries") == 0) {
      if ((value = need_value(i, arg)) == nullptr) return std::nullopt;
      opt.limits.max_attempts = std::atoi(value);
    } else if (std::strcmp(arg, "--backoff") == 0) {
      if ((value = need_value(i, arg)) == nullptr) return std::nullopt;
      opt.limits.backoff_seconds = std::atof(value);
    } else if (std::strcmp(arg, "--checkpoint-every") == 0) {
      if ((value = need_value(i, arg)) == nullptr) return std::nullopt;
      opt.limits.checkpoint_every = std::atoi(value);
    } else if (std::strcmp(arg, "--threads") == 0) {
      if ((value = need_value(i, arg)) == nullptr) return std::nullopt;
      opt.limits.executor_threads = std::atoi(value);
    } else if (std::strcmp(arg, "--pool-threads") == 0) {
      if ((value = need_value(i, arg)) == nullptr) return std::nullopt;
      opt.limits.pool_threads = std::atoi(value);
    } else if (std::strcmp(arg, "--aging") == 0) {
      if ((value = need_value(i, arg)) == nullptr) return std::nullopt;
      opt.limits.aging_seconds = std::atof(value);
    } else if (std::strcmp(arg, "--read-deadline") == 0) {
      if ((value = need_value(i, arg)) == nullptr) return std::nullopt;
      opt.server.read_deadline_seconds = std::atof(value);
    } else if (std::strcmp(arg, "--write-deadline") == 0) {
      if ((value = need_value(i, arg)) == nullptr) return std::nullopt;
      opt.server.write_deadline_seconds = std::atof(value);
    } else if (std::strcmp(arg, "--inject-fs-fault") == 0) {
      if ((value = need_value(i, arg)) == nullptr) return std::nullopt;
      opt.fs_fault = value;
    } else {
      std::cerr << "unknown flag " << arg << " (try --help)\n";
      return std::nullopt;
    }
  }
  if (opt.limits.max_active <= 0 || opt.limits.max_queued < 0 ||
      opt.limits.max_attempts <= 0 || opt.limits.checkpoint_every <= 0 ||
      opt.limits.pool_threads < 0) {
    std::cerr << "limits must be positive (--max-queued may be 0)\n";
    return std::nullopt;
  }
  if (opt.limits.pool_threads > 0 && opt.limits.executor_threads > 0) {
    std::cerr << "--pool-threads and --threads are mutually exclusive: under "
                 "a shared pool, sessions submit into the pool instead of "
                 "owning private executors\n";
    return std::nullopt;
  }
  return opt;
}

/// SIGTERM/SIGINT request a graceful stop. The handler only flips a flag
/// (async-signal-safe); the main thread polls it.
volatile std::sig_atomic_t g_signalled = 0;

extern "C" void on_signal(int) { g_signalled = 1; }

}  // namespace

int main(int argc, char** argv) {
  const std::optional<Options> opt = parse(argc, argv);
  if (!opt.has_value()) return kExitBadArgs;

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  try {
    if (!opt->fs_fault.empty()) {
      fs_fault_install(parse_fs_fault_spec(opt->fs_fault));
      std::cout << "stormtrackd: fs fault injection armed (" << opt->fs_fault
                << ")" << std::endl;
    }
    SessionSupervisor supervisor(opt->state_dir, opt->limits);
    const SessionSupervisor::RecoveryReport recovery = supervisor.recover();
    supervisor.start();

    ServerConfig server_config = opt->server;
    server_config.socket_path = opt->socket;
    SessionServer server(supervisor, server_config);
    server.start();
    std::cout << "stormtrackd listening on " << opt->socket << " (state "
              << opt->state_dir << ", " << recovery.requeued
              << " session(s) requeued, " << recovery.terminal
              << " finished recovered)" << std::endl;

    // Serve until a client asks for shutdown or a signal arrives. The
    // signal path must not touch locks from the handler, hence the poll.
    while (!server.shutdown_requested() && g_signalled == 0) {
      struct timespec delay = {0, 50 * 1000 * 1000};  // 50 ms
      nanosleep(&delay, nullptr);
    }
    std::cout << "stormtrackd stopping ("
              << (g_signalled != 0 ? "signal" : "shutdown request") << ")"
              << std::endl;
    server.stop();
    supervisor.stop();
    return kExitOk;
  } catch (const std::exception& e) {
    std::cerr << "stormtrackd: " << e.what() << "\n";
    return kExitRuntime;
  }
}
