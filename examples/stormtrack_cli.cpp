/// \file stormtrack_cli.cpp
/// Command-line experiment driver: generate or load a nest-configuration
/// trace, run it under any reallocation strategy on any simulated machine,
/// and emit per-event metrics (text or CSV), optional trace files and
/// optional PPM renderings of the final allocation and weather field.
///
/// Usage examples:
///   stormtrack_cli --machine bgl --cores 1024 --strategy diffusion
///   stormtrack_cli --trace-out run.trace --events 30 --seed 7
///   stormtrack_cli --trace-in run.trace --strategy dynamic --csv
///   stormtrack_cli --real --intervals 50 --images out/
///   stormtrack_cli --workload particles --intervals 40 --checkpoint-dir ck

#include <csignal>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "ckpt/checkpoint.hpp"
#include "ckpt/trace_run.hpp"
#include "core/coupled.hpp"
#include "core/experiment.hpp"
#include "core/trace_io.hpp"
#include "exec/cancel.hpp"
#include "exec/executor.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "util/check.hpp"
#include "util/image.hpp"
#include "util/stats.hpp"

using namespace stormtrack;

namespace {

// Exit codes (also asserted by the CTest CLI suite): 0 success, 2 bad
// arguments, 3 unreadable/corrupt trace or fault-plan file, 4 runtime
// failure (fault recovery exhausted, checkpoint resume failed, ...),
// 5 interrupted by SIGTERM/SIGINT after writing a final checkpoint.
constexpr int kExitOk = 0;
constexpr int kExitBadArgs = 2;
constexpr int kExitParse = 3;
constexpr int kExitRuntime = 4;
constexpr int kExitInterrupted = 5;

// SIGTERM/SIGINT trip this token from the handler (cancel_from_signal is
// async-signal-safe); the pipeline polls it at every adaptation point, so
// the run stops between transactions, writes one final checkpoint and
// exits with kExitInterrupted instead of dying mid-state.
CancelToken g_cancel;

extern "C" void on_interrupt(int) { g_cancel.cancel_from_signal(); }

void install_interrupt_handlers() {
  std::signal(SIGTERM, on_interrupt);
  std::signal(SIGINT, on_interrupt);
}

struct Options {
  std::string machine = "bgl";        // bgl | fist | dragonfly | fattree
  int cores = 1024;
  std::string strategy = "diffusion";  // any StrategyRegistry name
  bool real = false;                   // real-mode pipeline trace
  int events = 70;                     // synthetic events / real intervals
  std::uint64_t seed = 2013;
  std::optional<std::string> trace_in;
  std::optional<std::string> trace_out;
  std::optional<std::string> images;   // directory for PPM output
  bool csv = false;
  bool compare = false;                // run every registered strategy
  int threads = 0;                     // 0 = hardware concurrency
  std::optional<std::string> fault_plan;  // fault schedule file
  std::optional<std::string> checkpoint_dir;
  int checkpoint_every = 1;            // adaptation points per checkpoint
  int checkpoint_keep = 3;             // newest checkpoints retained
  bool resume = false;                 // resume from newest valid checkpoint
  std::optional<std::string> workload; // coupled-run mode when set
};

std::string join_names(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += "|";
    out += n;
  }
  return out;
}

[[noreturn]] void usage(int code) {
  std::cout <<
      "stormtrack_cli — run a reallocation experiment\n"
      "  --machine M            simulated machine: "
      << join_names(Machine::names()) << "\n"
      "                         (default bgl)\n"
      "  --cores N              core count (default 1024; bgl and\n"
      "                         dragonfly need a multiple of 64)\n"
      "  --strategy S           a registered strategy name (default\n"
      "                         diffusion; scratch|diffusion|dynamic|\n"
      "                         hysteresis ship built in)\n"
      "  --events N             synthetic reconfigurations (default 70)\n"
      "  --workload W           run the full coupled simulation with nest\n"
      "                         payload W: "
      << join_names(WorkloadRegistry::global().names()) << "\n"
      "                         ('field' integrates advection-diffusion\n"
      "                         grids, 'particles' advects trajectories\n"
      "                         with rank handoffs; reports workload.*\n"
      "                         counters and the run state fingerprint)\n"
      "  --real                 drive the weather+PDA pipeline instead\n"
      "  --intervals N          real-mode adaptation points (alias of "
      "--events)\n"
      "  --seed N               RNG seed (default 2013)\n"
      "  --trace-in FILE        load a saved trace instead of generating\n"
      "  --trace-out FILE       save the trace that was run\n"
      "  --images DIR           write final allocation / field PPMs\n"
      "  --csv                  emit per-event metrics as CSV\n"
      "  --compare              run every registered strategy, summarize\n"
      "  --threads N            executor worker threads for the pipeline's\n"
      "                         candidate evaluation (default 0 = hardware\n"
      "                         concurrency; 1 = serial, exactly the\n"
      "                         single-threaded behavior)\n"
      "  --fault-plan FILE      run under the fault schedule in FILE (see\n"
      "                         docs/ARCHITECTURE.md, 'Fault tolerance');\n"
      "                         the run recovers or degrades per the\n"
      "                         ladder and reports fault./recovery.\n"
      "                         metrics after the run\n"
      "  --checkpoint-dir DIR   write durable run checkpoints into DIR\n"
      "                         (atomic, CRC-guarded; survives SIGKILL)\n"
      "  --checkpoint-every N   checkpoint every N adaptation points\n"
      "                         (default 1)\n"
      "  --checkpoint-keep N    retain the N newest checkpoints (default 3)\n"
      "  --resume               resume from the newest valid checkpoint in\n"
      "                         --checkpoint-dir; the resumed run is\n"
      "                         byte-identical to an uninterrupted one\n"
      "  --help                 this text\n"
      "exit codes: 0 ok, 2 bad arguments, 3 unreadable trace/fault-plan,\n"
      "            4 runtime failure (recovery exhausted, resume failed),\n"
      "            5 interrupted by SIGTERM/SIGINT (a final checkpoint is\n"
      "            written first when --checkpoint-dir is set)\n";
  std::exit(code);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        usage(kExitBadArgs);
      }
      return argv[++i];
    };
    if (a == "--machine") o.machine = next("--machine");
    else if (a == "--cores") o.cores = std::stoi(next("--cores"));
    else if (a == "--strategy") o.strategy = next("--strategy");
    else if (a == "--events" || a == "--intervals")
      o.events = std::stoi(next("--events"));
    else if (a == "--real") o.real = true;
    else if (a == "--seed") o.seed = std::stoull(next("--seed"));
    else if (a == "--trace-in") o.trace_in = next("--trace-in");
    else if (a == "--trace-out") o.trace_out = next("--trace-out");
    else if (a == "--images") o.images = next("--images");
    else if (a == "--csv") o.csv = true;
    else if (a == "--compare") o.compare = true;
    else if (a == "--threads") {
      try {
        o.threads = parse_thread_count(next("--threads"), "--threads");
      } catch (const CheckError& e) {
        std::cerr << e.what() << "\n";
        usage(kExitBadArgs);
      }
    }
    else if (a == "--workload") o.workload = next("--workload");
    else if (a == "--fault-plan") o.fault_plan = next("--fault-plan");
    else if (a == "--checkpoint-dir") o.checkpoint_dir = next("--checkpoint-dir");
    else if (a == "--checkpoint-every")
      o.checkpoint_every = std::stoi(next("--checkpoint-every"));
    else if (a == "--checkpoint-keep")
      o.checkpoint_keep = std::stoi(next("--checkpoint-keep"));
    else if (a == "--resume") o.resume = true;
    else if (a == "--help" || a == "-h") usage(0);
    else {
      std::cerr << "unknown flag: " << a << "\n";
      usage(kExitBadArgs);
    }
  }
  if (o.workload && !WorkloadRegistry::global().contains(*o.workload)) {
    std::cerr << "--workload: unknown workload '" << *o.workload
              << "' (registered: "
              << join_names(WorkloadRegistry::global().names()) << ")\n";
    usage(kExitBadArgs);
  }
  if (o.workload && (o.trace_in || o.trace_out || o.compare || o.real)) {
    std::cerr << "--workload runs the coupled simulation; it cannot be "
                 "combined with --trace-in/--trace-out/--compare/--real\n";
    usage(kExitBadArgs);
  }
  if (o.resume && !o.checkpoint_dir) {
    std::cerr << "--resume requires --checkpoint-dir\n";
    usage(kExitBadArgs);
  }
  if (o.checkpoint_dir && o.compare) {
    std::cerr << "--checkpoint-dir checkpoints a single run; it cannot be "
                 "combined with --compare\n";
    usage(kExitBadArgs);
  }
  if (o.checkpoint_dir && o.checkpoint_every < 1) {
    std::cerr << "--checkpoint-every must be >= 1, got " << o.checkpoint_every
              << "\n";
    usage(kExitBadArgs);
  }
  if (o.checkpoint_dir && o.checkpoint_keep < 1) {
    std::cerr << "--checkpoint-keep must be >= 1, got " << o.checkpoint_keep
              << "\n";
    usage(kExitBadArgs);
  }
  return o;
}

/// --workload mode: drive the full CoupledSimulation (weather + PDA +
/// reallocation + nest payloads) instead of a bare pipeline trace. The
/// totals and fingerprint printed at the end come from checkpoint-covered
/// state, so a resumed run's closing lines are byte-identical to an
/// uninterrupted one (the CI kill-and-resume job diffs them).
int run_coupled(Machine& machine, const Options& opt) {
  const ModelStack models;
  CoupledConfig cfg;
  cfg.scenario.num_intervals = opt.events;
  cfg.scenario.seed = opt.seed;
  cfg.manager.strategy = opt.strategy;
  cfg.manager.cancel = &g_cancel;
  cfg.workload = *opt.workload;

  std::unique_ptr<ThreadPoolExecutor> pool;
  if (opt.threads != 1) {
    pool = std::make_unique<ThreadPoolExecutor>(opt.threads);
    cfg.manager.executor = pool.get();
    cfg.executor = pool.get();
  }

  std::optional<FaultPlan> plan;
  if (opt.fault_plan) {
    try {
      plan = FaultPlan::load(std::filesystem::path(*opt.fault_plan));
    } catch (const std::exception& e) {
      std::cerr << "--fault-plan: " << e.what() << "\n";
      return kExitParse;
    }
  }
  std::optional<FaultInjector> injector;
  if (plan) cfg.manager.injector = &injector.emplace(*plan);

  const std::uint64_t config_fp = coupled_config_fingerprint(machine, cfg);
  std::optional<CoupledCheckpointer> checkpointer;
  if (opt.checkpoint_dir) {
    const std::filesystem::path dir(*opt.checkpoint_dir);
    if (!opt.resume && latest_valid_checkpoint(dir).has_value()) {
      std::cerr << "checkpoint dir " << dir
                << " already holds checkpoints; pass --resume to continue "
                   "that run or point --checkpoint-dir elsewhere\n";
      return kExitBadArgs;
    }
    CheckpointPolicy policy;
    policy.dir = dir;
    policy.every = opt.checkpoint_every;
    policy.keep = opt.checkpoint_keep;
    checkpointer.emplace(policy, config_fp);
    cfg.hook = &*checkpointer;
  }

  try {
    CoupledSimulation sim(machine, models.model, models.truth, cfg);
    ResumeReport resume_report;
    if (opt.resume)
      resume_report = resume_coupled(
          sim, std::filesystem::path(*opt.checkpoint_dir), config_fp);
    if (resume_report.resumed)
      std::cout << (opt.csv ? "# " : "") << "resumed from "
                << resume_report.path.filename().string() << " at interval "
                << resume_report.step
                << (resume_report.invalid_skipped > 0
                        ? " (" +
                              std::to_string(resume_report.invalid_skipped) +
                              " invalid checkpoint(s) skipped)"
                        : "")
                << "\n";

    Table t({"Interval", "ROIs", "+ins/-del/=ret", "Chosen", "Exec (s)",
             "Redist (ms)", "Moved B", "Neighbour B"});
    t.set_title("Coupled run: " + machine.label() + ", strategy " +
                opt.strategy + ", workload " + *opt.workload + ", " +
                std::to_string(opt.events) + " intervals");
    try {
    for (int i = sim.interval(); i < opt.events; ++i) {
      const IntervalReport r = sim.advance();
      t.add_row({std::to_string(r.interval),
                 std::to_string(r.rois_detected),
                 "+" + std::to_string(r.diff.inserted.size()) + "/-" +
                     std::to_string(r.diff.deleted.size()) + "/=" +
                     std::to_string(r.diff.retained.size()),
                 r.realloc.chosen,
                 Table::num(r.realloc.committed.actual_exec, 2),
                 Table::num(r.realloc.committed.actual_redist * 1e3, 2),
                 std::to_string(r.workload_traffic.total_bytes),
                 std::to_string(r.halo_traffic.total_bytes)});
    }
    } catch (const CancelledError&) {
      // Cancellation is polled between adaptation transactions, so the
      // simulation state is consistent: capture it, tell the operator how
      // to pick the run back up, and exit with the interrupted code.
      if (checkpointer) checkpointer->checkpoint_now(sim);
      std::cerr << "interrupted at interval " << sim.interval()
                << (checkpointer
                        ? "; final checkpoint written — rerun with --resume "
                          "to continue"
                        : "")
                << "\n";
      return kExitInterrupted;
    }
    if (checkpointer) checkpointer->checkpoint_now(sim);
    if (opt.csv)
      std::cout << t.to_csv();
    else
      t.print(std::cout);

    // Totals come from the pipeline's metrics registry (checkpointed), so
    // resumed and uninterrupted runs print identical lines.
    std::cout << (opt.csv ? "# " : "") << "totals:";
    bool any = false;
    for (const auto& [name, entry] : sim.metrics().entries()) {
      if (!name.starts_with("workload.")) continue;
      if (entry.count == 0) continue;
      std::cout << " " << name << "=" << entry.count;
      any = true;
    }
    if (!any) std::cout << " (no workload counters)";
    std::cout << "\n";
    std::cout << (opt.csv ? "# " : "") << "state fingerprint: " << std::hex
              << std::setfill('0') << std::setw(16) << sim.state_fingerprint()
              << std::dec << std::setfill(' ') << "\n";
    if (plan) {
      std::cout << (opt.csv ? "# " : "") << "fault injection:";
      bool fired = false;
      for (const auto& [name, entry] : sim.metrics().entries()) {
        if (!name.starts_with("fault.") && !name.starts_with("recovery."))
          continue;
        if (entry.count == 0) continue;
        std::cout << " " << name << "=" << entry.count;
        fired = true;
      }
      if (!fired) std::cout << " (no events fired)";
      std::cout << "\n";
    }

    if (opt.images) {
      const std::filesystem::path dir(*opt.images);
      write_ppm(labels_to_rgb(sim.allocation().to_label_grid()),
                dir / "allocation.ppm");
      write_pgm(field_to_grey(sim.weather().qcloud(), /*invert=*/true),
                dir / "qcloud.pgm");
      write_pgm(field_to_grey(sim.weather().olr()), dir / "olr.pgm");
      std::cout << "images written to " << dir << "\n";
    }
    return kExitOk;
  } catch (const std::exception& e) {
    std::cerr << "run failed: " << e.what() << "\n";
    return kExitRuntime;
  }
}

}  // namespace

int main(int argc, char** argv) {
  install_interrupt_handlers();
  const Options opt = parse(argc, argv);
  if (!StrategyRegistry::global().contains(opt.strategy)) {
    std::cerr << "unknown strategy: " << opt.strategy << " (registered:";
    for (const std::string& n : StrategyRegistry::global().names())
      std::cerr << " " << n;
    std::cerr << ")\n";
    usage(kExitBadArgs);
  }

  // ---- machine (strict: unknown names are usage errors, like
  // parse_thread_count)
  std::optional<Machine> machine_opt;
  try {
    machine_opt.emplace(Machine::by_name(opt.machine, opt.cores));
  } catch (const CheckError& e) {
    std::cerr << "--machine: " << e.what() << "\n";
    usage(kExitBadArgs);
  }
  Machine& machine = *machine_opt;

  // ---- coupled-run mode (--workload): full simulation, no trace
  if (opt.workload) return run_coupled(machine, opt);

  // ---- trace
  Trace trace;
  std::optional<RealScenarioDriver> real_driver;
  if (opt.trace_in) {
    try {
      trace = load_trace(std::filesystem::path(*opt.trace_in));
    } catch (const std::exception& e) {
      std::cerr << "--trace-in: " << e.what() << "\n";
      return kExitParse;
    }
  } else if (opt.real) {
    RealScenarioConfig rc;
    rc.num_intervals = opt.events;
    rc.seed = opt.seed;
    real_driver.emplace(rc);
    for (int i = 0; i < rc.num_intervals; ++i)
      trace.push_back(real_driver->next().active);
  } else {
    SyntheticTraceConfig sc;
    sc.num_events = opt.events;
    sc.seed = opt.seed;
    trace = generate_synthetic_trace(sc);
  }
  if (opt.trace_out) save_trace(trace, std::filesystem::path(*opt.trace_out));

  // ---- run
  const ModelStack models;

  // Candidate evaluation runs on a shared pool; --threads 1 keeps the
  // pipeline serial (byte-identical results either way, see src/exec).
  std::unique_ptr<ThreadPoolExecutor> pool;
  ManagerConfig config;
  config.cancel = &g_cancel;
  if (opt.threads != 1) {
    pool = std::make_unique<ThreadPoolExecutor>(opt.threads);
    config.executor = pool.get();
  }

  // Fault schedule: every run (and every compared strategy) gets a FRESH
  // injector from the same plan, so each replays the identical schedule.
  std::optional<FaultPlan> plan;
  if (opt.fault_plan) {
    try {
      plan = FaultPlan::load(std::filesystem::path(*opt.fault_plan));
    } catch (const std::exception& e) {
      std::cerr << "--fault-plan: " << e.what() << "\n";
      return kExitParse;
    }
  }

  auto print_recovery = [&](const MetricsRegistry& metrics) {
    if (!plan) return;
    std::cout << (opt.csv ? "# " : "") << "fault injection:";
    bool any = false;
    for (const auto& [name, entry] : metrics.entries()) {
      if (!name.starts_with("fault.") && !name.starts_with("recovery."))
        continue;
      if (entry.count == 0) continue;
      std::cout << " " << name << "=" << entry.count;
      any = true;
    }
    if (!any) std::cout << " (no events fired)";
    std::cout << "\n";
  };

  if (opt.compare) {
    Table cmp({"Strategy", "Exec (s)", "Redist (s)", "Total (s)",
               "Mean overlap %", "Mean avg hop-bytes"});
    cmp.set_title("Strategy comparison: " + machine.label() + ", " +
                  std::to_string(trace.size()) + " events");
    MetricsRegistry compare_metrics;
    for (const std::string& s : StrategyRegistry::global().names()) {
      std::optional<FaultInjector> injector;
      ManagerConfig case_config = config;
      if (plan) case_config.injector = &injector.emplace(*plan);
      TraceRunResult res;
      try {
        res = run_trace(machine, models.model, models.truth, s, trace,
                        case_config);
      } catch (const std::exception& e) {
        std::cerr << "strategy " << s << " failed: " << e.what() << "\n";
        return kExitRuntime;
      }
      compare_metrics.merge(res.metrics);
      cmp.add_row({s, Table::num(res.total_exec(), 2),
                   Table::num(res.total_redist(), 3),
                   Table::num(res.total(), 2),
                   Table::num(100.0 * res.mean_overlap_fraction(), 1),
                   Table::num(res.mean_avg_hop_bytes(), 2)});
    }
    if (opt.csv)
      std::cout << cmp.to_csv();
    else
      cmp.print(std::cout);
    print_recovery(compare_metrics);
    return kExitOk;
  }

  std::optional<FaultInjector> injector;
  if (plan) config.injector = &injector.emplace(*plan);
  TraceRunResult r;
  ResumeReport resume_report;
  try {
    if (opt.checkpoint_dir) {
      const std::filesystem::path dir(*opt.checkpoint_dir);
      // Without --resume an already-populated checkpoint directory is
      // refused rather than silently resumed (or clobbered).
      if (!opt.resume && latest_valid_checkpoint(dir).has_value()) {
        std::cerr << "checkpoint dir " << dir
                  << " already holds checkpoints; pass --resume to continue "
                     "that run or point --checkpoint-dir elsewhere\n";
        return kExitBadArgs;
      }
      CheckpointPolicy policy;
      policy.dir = dir;
      policy.every = opt.checkpoint_every;
      policy.keep = opt.checkpoint_keep;
      r = run_trace_checkpointed(machine, models.model, models.truth,
                                 opt.strategy, trace, config, policy,
                                 &resume_report);
    } else {
      r = run_trace(machine, models.model, models.truth, opt.strategy, trace,
                    config);
    }
  } catch (const CancelledError&) {
    // run_trace_checkpointed already captured the progress durably.
    std::cerr << "interrupted"
              << (opt.checkpoint_dir
                      ? "; final checkpoint written — rerun with --resume "
                        "to continue"
                      : "")
              << "\n";
    return kExitInterrupted;
  } catch (const std::exception& e) {
    std::cerr << "run failed: " << e.what() << "\n";
    return kExitRuntime;
  }
  if (resume_report.resumed)
    std::cout << (opt.csv ? "# " : "") << "resumed from "
              << resume_report.path.filename().string() << " at point "
              << resume_report.step
              << (resume_report.invalid_skipped > 0
                      ? " (" + std::to_string(resume_report.invalid_skipped) +
                            " invalid checkpoint(s) skipped)"
                      : "")
              << "\n";

  Table t({"Event", "Nests", "+ins/-del/=ret", "Chosen", "Exec (s)",
           "Redist (ms)", "Hop-bytes avg", "Overlap %"});
  t.set_title("Run: " + machine.label() + ", strategy " + opt.strategy +
              ", " + std::to_string(trace.size()) + " events");
  for (std::size_t e = 0; e < r.outcomes.size(); ++e) {
    const StepOutcome& o = r.outcomes[e];
    t.add_row({std::to_string(e), std::to_string(trace[e].size()),
               "+" + std::to_string(o.num_inserted) + "/-" +
                   std::to_string(o.num_deleted) + "/=" +
                   std::to_string(o.num_retained),
               o.chosen, Table::num(o.committed.actual_exec, 2),
               Table::num(o.committed.actual_redist * 1e3, 2),
               Table::num(o.traffic.avg_hops_per_byte(), 2),
               Table::num(100.0 * o.overlap_fraction, 1)});
  }
  if (opt.csv)
    std::cout << t.to_csv();
  else
    t.print(std::cout);

  std::cout << (opt.csv ? "# " : "") << "totals: exec "
            << Table::num(r.total_exec(), 2) << " s, redist "
            << Table::num(r.total_redist(), 3) << " s, mean overlap "
            << Table::num(100.0 * r.mean_overlap_fraction(), 1) << " %\n";
  std::cout << (opt.csv ? "# " : "") << "state fingerprint: " << std::hex
            << std::setfill('0') << std::setw(16) << r.final_state_fingerprint
            << std::dec << std::setfill(' ') << "\n";
  print_recovery(r.metrics);

  // ---- images
  if (opt.images && !r.outcomes.empty()) {
    const std::filesystem::path dir(*opt.images);
    const Allocation& final_alloc = r.outcomes.back().allocation;
    write_ppm(labels_to_rgb(final_alloc.to_label_grid()),
              dir / "allocation.ppm");
    if (real_driver) {
      write_pgm(field_to_grey(real_driver->weather().qcloud(),
                              /*invert=*/true),
                dir / "qcloud.pgm");
      write_pgm(field_to_grey(real_driver->weather().olr()),
                dir / "olr.pgm");
    }
    std::cout << "images written to " << dir << "\n";
  }
  return kExitOk;
}
