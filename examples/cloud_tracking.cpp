/// \file cloud_tracking.cpp
/// The paper's full system, live: a synthetic monsoon over the Indian
/// region is simulated (the WRF stand-in), split files are written every
/// coupled interval, the parallel data analysis (§III) detects organized
/// cloud clusters, nests spawn over them (initial state interpolated from
/// the parent at 3× resolution), integrate with the distributed
/// advection–diffusion stepper on their processor rectangles, have their
/// data genuinely moved when the tree-based hierarchical diffusion
/// strategy reallocates processors, and disappear with their clouds.
///
/// Output: one line per adaptation interval with the lifecycle events and
/// costs, a closing summary, and (in ./cloud_tracking_out/) PGM/PPM
/// renderings of the final QCLOUD field and processor allocation.

#include <iostream>

#include "core/coupled.hpp"
#include "core/experiment.hpp"
#include "util/image.hpp"

using namespace stormtrack;

int main() {
  CoupledConfig cfg;
  cfg.scenario.num_intervals = 40;
  cfg.scenario.sim_px = 32;
  cfg.scenario.sim_py = 32;
  cfg.scenario.pda.analysis_procs = 64;
  cfg.manager.strategy = "diffusion";

  const ModelStack models;
  const Machine bgl = Machine::bluegene(1024);
  CoupledSimulation sim(bgl, models.model, models.truth, cfg);

  std::cout << "Tracking organized cloud clusters over the Indian region ("
            << sim.weather().qcloud().width() << "x"
            << sim.weather().qcloud().height() << " parent grid at "
            << cfg.scenario.weather.domain.resolution_km << " km) on "
            << bgl.label() << "\n\n";

  double total_redist = 0.0, total_exec = 0.0;
  std::int64_t total_halo = 0;
  for (int i = 0; i < cfg.scenario.num_intervals; ++i) {
    const IntervalReport r = sim.advance();
    total_redist += r.realloc.committed.actual_redist;
    total_exec += r.integration_time;
    total_halo += r.halo_traffic.total_bytes;

    std::cout << "t=" << r.interval << "  rois=" << r.rois_detected
              << "  nests=" << sim.nests().size() << " (+"
              << r.diff.inserted.size() << "/-" << r.diff.deleted.size()
              << "/=" << r.diff.retained.size() << ")  redist="
              << Table::num(r.realloc.committed.actual_redist * 1e3, 1)
              << "ms  overlap="
              << Table::num(100.0 * r.realloc.overlap_fraction, 0)
              << "%  halo="
              << Table::num(
                     static_cast<double>(r.halo_traffic.total_bytes) / 1e6, 1)
              << "MB\n";
  }

  std::cout << "\nSummary:\n"
            << "  total nest execution time (modeled):     "
            << Table::num(total_exec, 1) << " s\n"
            << "  total redistribution time (modeled):     "
            << Table::num(total_redist, 2) << " s\n"
            << "  total nest halo traffic:                 "
            << Table::num(static_cast<double>(total_halo) / 1e9, 2)
            << " GB\n\nFinal allocation:\n";
  sim.allocation().to_table().print(std::cout);

  // Fig.-1-style renders: dark = high cloud water.
  const std::filesystem::path out = "cloud_tracking_out";
  write_pgm(field_to_grey(sim.weather().qcloud(), /*invert=*/true),
            out / "qcloud.pgm");
  write_ppm(labels_to_rgb(sim.allocation().to_label_grid()),
            out / "allocation.ppm");
  std::cout << "renders written to " << out << "/\n";
  return 0;
}
