/// \file quickstart.cpp
/// Five-minute tour of the stormtrack public API, reproducing the paper's
/// worked example (§IV, Tables I/II, Figs. 2/4/8):
///   1. allocate processors for 5 nests with a Huffman tree;
///   2. reconfigure (delete 3 nests, retain 2, insert 1) with both the
///      partition-from-scratch and the tree-based hierarchical diffusion
///      strategies;
///   3. compare the redistribution cost of the two on a simulated
///      Blue Gene/L torus.

#include <fstream>
#include <iostream>

#include "alloc/partitioner.hpp"
#include "core/machine.hpp"
#include "redist/redistributor.hpp"

using namespace stormtrack;

int main() {
  // --- 1. Initial allocation (paper Fig. 2 / Table I) -------------------
  const std::vector<NestWeight> initial{
      {1, 0.10}, {2, 0.10}, {3, 0.20}, {4, 0.25}, {5, 0.35}};
  const AllocTree tree = AllocTree::huffman(initial);
  const Allocation before = allocate(tree, 32, 32);
  before.to_table("Initial allocation on 1024 cores (paper Table I)")
      .print(std::cout);
  std::cout << before.to_ascii(32) << '\n';

  // --- 2. Reconfiguration: delete {1,2,4}, retain {3,5}, insert 6 -------
  ReconfigRequest req;
  req.deleted = {1, 2, 4};
  req.retained = {{3, 0.27}, {5, 0.42}};
  req.inserted = {{6, 0.31}};

  const ScratchPartitioner scratch;
  const DiffusionPartitioner diffusion;
  const Allocation scratch_alloc = allocate(scratch.propose(tree, req), 32, 32);
  const Allocation diffusion_alloc =
      allocate(diffusion.propose(tree, req), 32, 32);

  scratch_alloc.to_table("Partition from scratch (paper Table II)")
      .print(std::cout);
  diffusion_alloc.to_table("Tree-based hierarchical diffusion (paper Fig. 8)")
      .print(std::cout);
  std::cout << "diffusion layout:\n" << diffusion_alloc.to_ascii(32) << '\n';

  // --- 3. Redistribution cost on a simulated Blue Gene/L ---------------
  const Machine bgl = Machine::bluegene(1024);
  const Redistributor redist(bgl.comm());

  Table cmp({"Strategy", "Redist time (ms)", "Hop-bytes (MB·hop)",
             "Avg hops/byte", "Overlap %"});
  for (const auto& [name, alloc] :
       {std::pair{"scratch", &scratch_alloc},
        std::pair{"diffusion", &diffusion_alloc}}) {
    TrafficReport traffic;
    double overlap_points = 0, total_points = 0;
    for (const NestId nest : {3, 5}) {
      const NestShape shape =
          nest == 3 ? NestShape{202, 349} : NestShape{349, 349};
      const RedistMetrics m =
          redist.redistribute(shape, *before.find(nest),
                              *alloc->find(nest), bgl.grid_px());
      traffic += m.traffic;
      overlap_points += m.overlap_fraction * m.total_points;
      total_points += static_cast<double>(m.total_points);
    }
    cmp.add_row({name, Table::num(traffic.modeled_time * 1e3, 3),
                 Table::num(static_cast<double>(traffic.hop_bytes) / 1e6, 1),
                 Table::num(traffic.avg_hops_per_byte(), 2),
                 Table::num(100.0 * overlap_points / total_points, 1)});
  }
  cmp.set_title("Redistribution of retained nests 3 and 5 on " +
                bgl.label());
  cmp.print(std::cout);

  std::cout << "Diffusion keeps retained nests in place, so senders and\n"
               "receivers overlap and hop-bytes drop (paper §IV-B, §V-E).\n";

  // Graphviz renderings of the three trees (paper Figs. 2a / 4a / 8c):
  // render with `dot -Tpng huffman_initial.dot -o huffman_initial.png`.
  const auto write_dot = [](const char* name, const AllocTree& t) {
    std::ofstream os(name);
    os << t.to_dot();
  };
  write_dot("huffman_initial.dot", tree);
  write_dot("scratch_repartition.dot", scratch.propose(tree, req));
  write_dot("diffusion_repartition.dot", diffusion.propose(tree, req));
  std::cout << "tree diagrams written: huffman_initial.dot, "
               "scratch_repartition.dot, diffusion_repartition.dot\n";
  return 0;
}
