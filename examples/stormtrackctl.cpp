/// \file stormtrackctl.cpp
/// Client for stormtrackd: submit tracking sessions, stream their events,
/// reattach after a disconnect or daemon restart, and administer the
/// daemon — the operator's half of the service layer.
///
/// Usage:
///   stormtrackctl --socket PATH ping
///   stormtrackctl --socket PATH submit [spec flags] [--follow]
///   stormtrackctl --socket PATH attach ID [--from-seq N]
///   stormtrackctl --socket PATH list
///   stormtrackctl --socket PATH status ID
///   stormtrackctl --socket PATH stats
///   stormtrackctl --socket PATH cancel ID
///   stormtrackctl --socket PATH shutdown
///
/// `--connect-retries N --connect-backoff-ms M` retry a refused or
/// missing socket with exponential backoff before giving up, so scripts
/// can launch the daemon and the first ctl call concurrently.
///
/// Exit codes: 0 success (for attach/--follow: the session finished
/// `done`), 2 bad arguments, 4 connection or protocol failure, 5 the
/// attached session ended in a non-done terminal state, 6 the submit was
/// rejected busy.

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include "serve/protocol.hpp"
#include "util/check.hpp"

using namespace stormtrack;

namespace {

constexpr int kExitOk = 0;
constexpr int kExitBadArgs = 2;
constexpr int kExitRuntime = 4;
constexpr int kExitSessionFailed = 5;
constexpr int kExitRejectedBusy = 6;

[[noreturn]] void usage(int code) {
  std::cout <<
      "stormtrackctl — control a running stormtrackd\n"
      "  --socket PATH          daemon socket (default stormtrack.sock)\n"
      "  --connect-retries N    retry a refused/missing socket N times\n"
      "                         before giving up (default 0: fail fast)\n"
      "  --connect-backoff-ms M first retry sleeps M ms, doubling after\n"
      "                         (default 100)\n"
      "commands:\n"
      "  ping                   handshake, print daemon load\n"
      "  submit                 submit a session; prints its id\n"
      "    --machine M --cores N --strategy S --workload W\n"
      "    --intervals N --seed N --priority P --deadline S\n"
      "    --tenant T           accounting label (see stats)\n"
      "    --follow             attach to the session after submitting\n"
      "  attach ID [--from-seq N]\n"
      "                         stream events until the session ends;\n"
      "                         reattaching after a daemon restart works\n"
      "                         (ids are stable across restarts)\n"
      "  list                   all sessions\n"
      "  status ID              one session\n"
      "  stats                  daemon health + per-tenant accounting\n"
      "  cancel ID              cancel a queued or running session\n"
      "  shutdown               ask the daemon to stop gracefully\n";
  std::exit(code);
}

std::string fingerprint_hex(std::uint64_t fingerprint) {
  std::ostringstream out;
  out << std::hex << std::setfill('0') << std::setw(16) << fingerprint;
  return out.str();
}

void print_status_line(const SessionStatus& s) {
  std::cout << "session " << s.id << " state=" << to_string(s.state)
            << " machine=" << s.spec.machine << " strategy="
            << s.spec.strategy << " workload=" << s.spec.workload
            << " intervals=" << s.intervals_done << "/" << s.spec.intervals
            << " attempts=" << s.attempts << " priority=" << s.spec.priority;
  if (s.resumed) std::cout << " resumed=yes";
  if (s.state == SessionState::kDone) {
    std::cout << " state fingerprint " << fingerprint_hex(s.fingerprint);
  }
  if (!s.error.empty()) std::cout << " error=\"" << s.error << "\"";
  std::cout << "\n";
}

void print_event(const SessionEvent& e) {
  std::cout << "  event " << e.seq << ": interval " << e.interval
            << " chosen=" << e.chosen << " exec="
            << std::fixed << std::setprecision(3) << e.exec_seconds
            << "s redist=" << e.redist_seconds * 1e3 << "ms moved="
            << e.moved_bytes << "B +" << e.inserted << "/-" << e.deleted
            << "/=" << e.retained << "\n";
  std::cout.unsetf(std::ios::fixed);
}

/// Attach and stream; returns the command's exit code.
int attach_and_stream(ClientConnection& client, std::uint64_t id,
                      std::uint64_t from_seq) {
  const SessionStatus final_status =
      client.attach(id, from_seq, print_event);
  print_status_line(final_status);
  return final_status.state == SessionState::kDone ? kExitOk
                                                   : kExitSessionFailed;
}

std::optional<std::uint64_t> parse_id(const char* text) {
  char* end = nullptr;
  const unsigned long long id = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return std::nullopt;
  return id;
}

/// True for the connect-phase failures worth retrying: the daemon is not
/// up yet (ENOENT — no socket file) or not accepting yet (ECONNREFUSED —
/// stale socket file). Anything after a successful connect is not retried.
bool connect_failure(const std::exception& e) {
  return std::string(e.what()).find("cannot connect to stormtrackd") !=
         std::string::npos;
}

/// Connect with bounded retries and exponential backoff — lets scripts
/// start stormtrackd and stormtrackctl concurrently without a sleep-loop.
std::unique_ptr<ClientConnection> connect_with_retries(
    const std::string& socket, int retries, int backoff_ms) {
  int sleep_ms = backoff_ms;
  for (int attempt = 0;; ++attempt) {
    try {
      return std::make_unique<ClientConnection>(socket);
    } catch (const std::exception& e) {
      if (attempt >= retries || !connect_failure(e)) throw;
      std::cerr << "stormtrackctl: connect failed (attempt " << attempt + 1
                << " of " << retries + 1 << "), retrying in " << sleep_ms
                << " ms\n";
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
      sleep_ms *= 2;
    }
  }
}

void print_stats(const ServerStats& stats) {
  std::cout << "daemon " << (stats.healthy ? "healthy" : "DEGRADED")
            << ": " << stats.active << " active, " << stats.queued
            << " queued";
  if (stats.estimated_wait_seconds > 0.0) {
    std::cout << ", est. queue wait " << std::fixed << std::setprecision(2)
              << stats.estimated_wait_seconds << "s";
    std::cout.unsetf(std::ios::fixed);
  }
  std::cout << "\n";
  if (stats.pool_threads > 0) {
    std::cout << "pool: " << stats.pool_threads << " thread(s), "
              << stats.pool_executing << " executing, " << stats.pool_runnable
              << " runnable, " << stats.pool_delayed << " delayed, "
              << stats.pool_batches << " batch(es)\n";
  }
  if (stats.pricing_shared_hits + stats.pricing_shared_misses > 0) {
    std::cout << "shared pricing: " << stats.pricing_shared_hits << " hit(s), "
              << stats.pricing_shared_misses << " miss(es) ("
              << std::fixed << std::setprecision(1)
              << 100.0 * stats.pricing_shared_hit_rate() << "% hit rate)\n";
    std::cout.unsetf(std::ios::fixed);
  }
  if (!stats.healthy || stats.journal_write_failures > 0) {
    std::cout << "journal: " << stats.journal_pending << " record(s) buffered, "
              << stats.journal_write_failures << " write failure(s)\n";
  }
  for (const TenantStats& t : stats.tenants) {
    std::cout << "tenant " << (t.tenant.empty() ? "(default)" : t.tenant)
              << ": submitted=" << t.submitted << " admitted=" << t.admitted
              << " rejected=" << t.rejected << " shed=" << t.shed
              << " completed=" << t.completed << " cpu=" << std::fixed
              << std::setprecision(3) << t.cpu_seconds << "s\n";
    std::cout.unsetf(std::ios::fixed);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket = "stormtrack.sock";
  int connect_retries = 0;
  int connect_backoff_ms = 100;
  int i = 1;
  for (; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) usage(kExitOk);
    const auto flag_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--socket") == 0) {
      const char* value = flag_value("--socket");
      if (value == nullptr) return kExitBadArgs;
      socket = value;
    } else if (std::strcmp(argv[i], "--connect-retries") == 0) {
      const char* value = flag_value("--connect-retries");
      if (value == nullptr) return kExitBadArgs;
      connect_retries = std::atoi(value);
    } else if (std::strcmp(argv[i], "--connect-backoff-ms") == 0) {
      const char* value = flag_value("--connect-backoff-ms");
      if (value == nullptr) return kExitBadArgs;
      connect_backoff_ms = std::atoi(value);
    } else {
      break;
    }
  }
  if (connect_retries < 0 || connect_backoff_ms <= 0) {
    std::cerr << "--connect-retries must be >= 0 and "
                 "--connect-backoff-ms positive\n";
    return kExitBadArgs;
  }
  if (i >= argc) {
    std::cerr << "missing command (try --help)\n";
    return kExitBadArgs;
  }
  const std::string command = argv[i++];

  try {
    if (command == "ping") {
      // The constructor performs the hello handshake; reaching here means
      // the daemon answered with a compatible version.
      const auto client =
          connect_with_retries(socket, connect_retries, connect_backoff_ms);
      std::cout << "stormtrackd at " << socket << " is alive\n";
      return kExitOk;
    }
    if (command == "submit") {
      SessionSpec spec;
      bool follow = false;
      for (; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag == "--follow") {
          follow = true;
          continue;
        }
        if (i + 1 >= argc) {
          std::cerr << flag << " needs a value\n";
          return kExitBadArgs;
        }
        const char* value = argv[++i];
        if (flag == "--machine") spec.machine = value;
        else if (flag == "--cores") spec.cores = std::atoi(value);
        else if (flag == "--strategy") spec.strategy = value;
        else if (flag == "--workload") spec.workload = value;
        else if (flag == "--intervals") spec.intervals = std::atoi(value);
        else if (flag == "--seed") spec.seed = std::strtoull(value, nullptr, 10);
        else if (flag == "--priority") spec.priority = std::atoi(value);
        else if (flag == "--deadline") spec.deadline_seconds = std::atof(value);
        else if (flag == "--tenant") spec.tenant = value;
        else {
          std::cerr << "unknown submit flag " << flag << " (try --help)\n";
          return kExitBadArgs;
        }
      }
      const auto client =
          connect_with_retries(socket, connect_retries, connect_backoff_ms);
      const ClientConnection::SubmitReply reply = client->submit(spec);
      if (!reply.accepted) {
        std::cerr << "REJECTED_BUSY: " << reply.reason << " ("
                  << reply.active << " active, " << reply.queued
                  << " queued";
        if (reply.estimated_wait_seconds > 0.0) {
          std::cerr << ", retry in ~" << std::fixed << std::setprecision(1)
                    << reply.estimated_wait_seconds << "s";
          std::cerr.unsetf(std::ios::fixed);
        }
        std::cerr << ")\n";
        return kExitRejectedBusy;
      }
      std::cout << "session " << reply.id << " accepted\n";
      if (follow) return attach_and_stream(*client, reply.id, 0);
      return kExitOk;
    }
    if (command == "attach") {
      if (i >= argc) {
        std::cerr << "attach needs a session id\n";
        return kExitBadArgs;
      }
      const std::optional<std::uint64_t> id = parse_id(argv[i++]);
      if (!id.has_value()) {
        std::cerr << "attach: session id must be a number\n";
        return kExitBadArgs;
      }
      std::uint64_t from_seq = 0;
      if (i + 1 < argc && std::strcmp(argv[i], "--from-seq") == 0) {
        from_seq = std::strtoull(argv[i + 1], nullptr, 10);
        i += 2;
      }
      const auto client =
          connect_with_retries(socket, connect_retries, connect_backoff_ms);
      return attach_and_stream(*client, *id, from_seq);
    }
    if (command == "list") {
      const auto client =
          connect_with_retries(socket, connect_retries, connect_backoff_ms);
      for (const SessionStatus& status : client->list()) {
        print_status_line(status);
      }
      return kExitOk;
    }
    if (command == "status" || command == "cancel") {
      if (i >= argc) {
        std::cerr << command << " needs a session id\n";
        return kExitBadArgs;
      }
      const std::optional<std::uint64_t> id = parse_id(argv[i]);
      if (!id.has_value()) {
        std::cerr << command << ": session id must be a number\n";
        return kExitBadArgs;
      }
      const auto client =
          connect_with_retries(socket, connect_retries, connect_backoff_ms);
      print_status_line(command == "status" ? client->status(*id)
                                            : client->cancel(*id));
      return kExitOk;
    }
    if (command == "stats") {
      const auto client =
          connect_with_retries(socket, connect_retries, connect_backoff_ms);
      print_stats(client->stats());
      return kExitOk;
    }
    if (command == "shutdown") {
      const auto client =
          connect_with_retries(socket, connect_retries, connect_backoff_ms);
      client->shutdown_server();
      std::cout << "shutdown requested\n";
      return kExitOk;
    }
    std::cerr << "unknown command " << command << " (try --help)\n";
    return kExitBadArgs;
  } catch (const std::exception& e) {
    std::cerr << "stormtrackctl: " << e.what() << "\n";
    return kExitRuntime;
  }
}
