/// \file heatwave_tracking.cpp
/// The paper's conclusion claims the detection and reallocation algorithms
/// "are quite generic and applicable to other scenarios that involve
/// multiple dynamically varying nested simulations". This example takes
/// that claim at face value and tracks a *different* phenomenon with the
/// same library: heat-wave cells over a continental domain.
///
/// Nothing weather-specific is reused from wsim — the example builds its
/// own temperature-anomaly field (slowly drifting warm pools). The
/// Algorithm-1/2 machinery only needs an intensity field ("QCLOUD" →
/// anomaly magnitude) and a mask field ("OLR" → a value below threshold
/// where the anomaly is severe), packed into split files; everything
/// downstream — clustering, nest lifecycle, diffusion reallocation on a
/// switched cluster — is unchanged.

#include <cmath>
#include <iostream>
#include <vector>

#include "core/experiment.hpp"
#include "pda/pda.hpp"
#include "redist/block_decomp.hpp"
#include "util/rng.hpp"
#include "wsim/split_file.hpp"

using namespace stormtrack;

namespace {

/// A drifting warm pool.
struct WarmPool {
  double cx, cy, radius, peak, vx, vy;
  int remaining;
};

/// Minimal heat-anomaly generator, independent of wsim's cloud model.
class HeatField {
 public:
  HeatField(int nx, int ny, std::uint64_t seed)
      : nx_(nx), ny_(ny), rng_(seed) {
    for (int i = 0; i < 3; ++i) spawn();
  }

  void step() {
    for (WarmPool& p : pools_) {
      p.cx += p.vx;
      p.cy += p.vy;
      if (--p.remaining < 0) p.peak *= 0.82;  // heat wave breaking down
    }
    std::erase_if(pools_, [&](const WarmPool& p) {
      return p.peak < 1.0 || p.cx < -p.radius || p.cx > nx_ + p.radius;
    });
    while (pools_.size() < 2) spawn();
    if (pools_.size() < 6 && rng_.bernoulli(0.25)) spawn();
  }

  /// Anomaly in kelvin; severe above ~4 K.
  [[nodiscard]] Grid2D<double> anomaly() const {
    Grid2D<double> f(nx_, ny_, 0.0);
    for (const WarmPool& p : pools_) {
      const int x0 = std::max(0, static_cast<int>(p.cx - 3 * p.radius));
      const int x1 = std::min(nx_ - 1, static_cast<int>(p.cx + 3 * p.radius));
      const int y0 = std::max(0, static_cast<int>(p.cy - 3 * p.radius));
      const int y1 = std::min(ny_ - 1, static_cast<int>(p.cy + 3 * p.radius));
      for (int y = y0; y <= y1; ++y)
        for (int x = x0; x <= x1; ++x) {
          const double d2 = ((x - p.cx) * (x - p.cx) +
                             (y - p.cy) * (y - p.cy)) /
                            (p.radius * p.radius);
          f(x, y) += p.peak * std::exp(-0.5 * d2);
        }
    }
    return f;
  }

 private:
  void spawn() {
    WarmPool p;
    p.cx = rng_.uniform(0.1 * nx_, 0.9 * nx_);
    p.cy = rng_.uniform(0.1 * ny_, 0.9 * ny_);
    p.radius = rng_.uniform(8.0, 20.0);
    p.peak = rng_.uniform(4.0, 9.0);  // kelvin
    p.vx = rng_.uniform(-0.8, 0.8);
    p.vy = rng_.uniform(-0.5, 0.5);
    p.remaining = static_cast<int>(rng_.uniform_int(6, 25));
    pools_.push_back(p);
  }

  int nx_, ny_;
  Xoshiro256 rng_;
  std::vector<WarmPool> pools_;
};

/// Pack the anomaly into split files: intensity = anomaly, mask = a
/// pseudo-"OLR" that drops below the 200 threshold where the anomaly
/// exceeds 4 K (severe heat).
std::vector<SplitFile> to_split_files(const Grid2D<double>& anomaly, int px,
                                      int py) {
  Grid2D<double> mask(anomaly.width(), anomaly.height());
  for (int y = 0; y < anomaly.height(); ++y)
    for (int x = 0; x < anomaly.width(); ++x)
      mask(x, y) = anomaly(x, y) >= 4.0 ? 150.0 : 280.0;

  std::vector<SplitFile> files;
  for (int j = 0; j < py; ++j) {
    const Span1D rows = block_range(j, anomaly.height(), py);
    for (int i = 0; i < px; ++i) {
      const Span1D cols = block_range(i, anomaly.width(), px);
      SplitFile f;
      f.rank = j * px + i;
      f.grid_px = px;
      f.subdomain = Rect{cols.begin, rows.begin, cols.count, rows.count};
      f.qcloud = anomaly.extract(f.subdomain);
      f.olr = mask.extract(f.subdomain);
      files.push_back(std::move(f));
    }
  }
  return files;
}

}  // namespace

int main() {
  HeatField heat(400, 260, 0xbeef);
  NestTracker tracker;
  const ModelStack models;
  const Machine fist = Machine::fist_cluster(256);
  ManagerConfig mcfg;
  mcfg.strategy = "diffusion";
  ReallocationManager manager(fist, models.model, models.truth, mcfg);

  PdaConfig pda_cfg;
  pda_cfg.analysis_procs = 16;
  // Heat anomalies aggregate to far larger values than cloud mixing
  // ratios; raise the intensity threshold accordingly.
  pda_cfg.nnc.qcloud_threshold = 50.0;
  pda_cfg.nnc.olrfraction_threshold = 0.02;

  std::cout << "Tracking heat-wave cells on " << fist.label() << "\n\n";
  double total_redist = 0.0;
  for (int t = 0; t < 30; ++t) {
    heat.step();
    const auto files = to_split_files(heat.anomaly(), 16, 16);
    const PdaResult pda = parallel_data_analysis(files, pda_cfg);
    tracker.update(pda.rectangles);
    const StepOutcome out = manager.apply(tracker.active());
    total_redist += out.committed.actual_redist;
    std::cout << "t=" << t << "  cells=" << pda.rectangles.size()
              << "  nests=" << tracker.active().size() << " (+"
              << out.num_inserted << "/-" << out.num_deleted << "/="
              << out.num_retained << ")  redist="
              << Table::num(out.committed.actual_redist * 1e3, 1) << "ms\n";
  }
  std::cout << "\nTotal redistribution time: " << Table::num(total_redist, 3)
            << " s\nSame algorithms, different phenomenon — the paper's "
               "generality claim, exercised.\n";
  return 0;
}
