/// \file dynamic_strategy_demo.cpp
/// The dynamic strategy of §IV-C in action: at every adaptation point of a
/// synthetic trace, both candidate allocations are priced with the
/// performance models (execution: Delaunay+linear interpolation over
/// profiled samples; redistribution: direct-algorithm Alltoallv model) and
/// the cheaper candidate is committed. The demo prints the per-point
/// decision with both predictions and whether the decision was right under
/// the simulator's ground truth.

#include <iostream>

#include "core/experiment.hpp"
#include "util/stats.hpp"

using namespace stormtrack;

int main() {
  SyntheticTraceConfig tcfg;
  tcfg.num_events = 12;  // the paper's §V-F runs 12 reconfigurations
  tcfg.seed = 0xd1a0;
  const Trace trace = generate_synthetic_trace(tcfg);

  const ModelStack models;
  const Machine bgl = Machine::bluegene(1024);
  const TraceRunResult dyn = run_trace(bgl, models.model, models.truth,
                                       Strategy::kDynamic, trace);

  Table t({"Event", "Pred scratch (s)", "Pred diffusion (s)", "Chosen",
           "Actual best", "Correct?"});
  int correct = 0;
  std::vector<double> predicted, actual;
  for (std::size_t e = 0; e < dyn.outcomes.size(); ++e) {
    const StepOutcome& o = dyn.outcomes[e];
    const bool actual_diffusion_best =
        o.diffusion.actual_total() <= o.scratch.actual_total();
    const std::string actual_best =
        actual_diffusion_best ? "diffusion" : "scratch";
    const bool ok = o.chosen == actual_best;
    if (ok) ++correct;
    predicted.push_back(o.committed.predicted_exec);
    actual.push_back(o.committed.actual_exec);
    t.add_row({Table::num(static_cast<std::int64_t>(e)),
               Table::num(o.scratch.predicted_total(), 2),
               Table::num(o.diffusion.predicted_total(), 2), o.chosen,
               actual_best, ok ? "yes" : "no"});
  }
  t.set_title("Dynamic strategy decisions on " + bgl.label());
  t.print(std::cout);

  std::cout << "Correct decisions: " << correct << "/"
            << dyn.outcomes.size() << "\n"
            << "Pearson correlation (predicted vs actual execution time): "
            << Table::num(pearson(predicted, actual), 2) << "\n"
            << "(The paper reports ~10/12 correct with r = 0.9, §V-F.)\n";
  return 0;
}
