/// \file dynamic_strategy_demo.cpp
/// The dynamic strategy of §IV-C in action: at every adaptation point of a
/// synthetic trace, both candidate allocations are priced with the
/// performance models (execution: Delaunay+linear interpolation over
/// profiled samples; redistribution: direct-algorithm Alltoallv model) and
/// the cheaper candidate is committed. The demo prints the per-point
/// decision with both predictions and whether the decision was right under
/// the simulator's ground truth — and, since the run goes through the
/// SweepRunner, contrasts `dynamic` with the damped `hysteresis` variant
/// from the strategy registry.

#include <iostream>

#include "sweep/sweep_runner.hpp"
#include "util/stats.hpp"

using namespace stormtrack;

int main() {
  SyntheticTraceConfig tcfg;
  tcfg.num_events = 12;  // the paper's §V-F runs 12 reconfigurations
  tcfg.seed = 0xd1a0;

  SweepSpec spec;
  spec.traces.push_back({"demo", generate_synthetic_trace(tcfg)});
  spec.machines.push_back(sweep_bluegene(1024));
  spec.strategies = {"dynamic", "hysteresis"};

  const ModelStack models;
  const std::vector<SweepCaseResult> results =
      SweepRunner(models).run(spec);
  const SweepCaseResult& dyn_case =
      find_case(results, "demo", "bluegene-1024", "dynamic");
  const TraceRunResult& dyn = dyn_case.result;
  const TraceRunResult& hys =
      find_case(results, "demo", "bluegene-1024", "hysteresis").result;

  Table t({"Event", "Pred scratch (s)", "Pred diffusion (s)", "Chosen",
           "Actual best", "Correct?"});
  int correct = 0;
  std::vector<double> predicted, actual;
  for (std::size_t e = 0; e < dyn.outcomes.size(); ++e) {
    const StepOutcome& o = dyn.outcomes[e];
    const bool actual_diffusion_best =
        o.diffusion.actual_total() <= o.scratch.actual_total();
    const std::string actual_best =
        actual_diffusion_best ? "diffusion" : "scratch";
    const bool ok = o.chosen == actual_best;
    if (ok) ++correct;
    predicted.push_back(o.committed.predicted_exec);
    actual.push_back(o.committed.actual_exec);
    t.add_row({Table::num(static_cast<std::int64_t>(e)),
               Table::num(o.scratch.predicted_total(), 2),
               Table::num(o.diffusion.predicted_total(), 2), o.chosen,
               actual_best, ok ? "yes" : "no"});
  }
  t.set_title("Dynamic strategy decisions on " + dyn_case.machine_label);
  t.print(std::cout);

  std::cout << "Correct decisions: " << correct << "/"
            << dyn.outcomes.size() << "\n"
            << "Pearson correlation (predicted vs actual execution time): "
            << Table::num(pearson(predicted, actual), 2) << "\n"
            << "(The paper reports ~10/12 correct with r = 0.9, §V-F.)\n\n";

  // Hysteresis damps flip-flopping: count strategy switches in each run.
  auto switches = [](const TraceRunResult& r) {
    int n = 0;
    for (std::size_t e = 1; e < r.outcomes.size(); ++e)
      if (r.outcomes[e].chosen != r.outcomes[e - 1].chosen) ++n;
    return n;
  };
  Table h({"Strategy", "Total (s)", "Candidate switches"});
  h.set_title("Registry variant: dynamic vs hysteresis (10% threshold)");
  h.add_row({"dynamic", Table::num(dyn.total(), 2),
             std::to_string(switches(dyn))});
  h.add_row({"hysteresis", Table::num(hys.total(), 2),
             std::to_string(switches(hys))});
  h.print(std::cout);

  merged_metrics(results)
      .to_table("Adaptation pipeline stage costs (both runs)")
      .print(std::cout);
  return 0;
}
