#pragma once

/// \file shared_pool.hpp
/// A process-shared executor pool for many concurrent submitters.
///
/// ThreadPoolExecutor is already safe for concurrent parallel_for calls
/// from any thread and nesting-safe (submitters participate in their own
/// batches). What it lacks for serving hundreds of sessions from one pool
/// is *observability*: when the daemon multiplexes every session's
/// candidate pricing onto one pool, operators need to see how loaded the
/// pool is — how many batches are in flight, how many task bodies are on
/// CPU right now, and how many submitters are currently inside
/// parallel_for — to distinguish "throughput-bound" from "admission-bound".
///
/// SharedPoolExecutor is a thin facade adding exactly that: a live
/// occupancy snapshot on top of the lifetime ExecutorStats counters. It
/// changes no scheduling — batches run FIFO on the wrapped pool with the
/// same determinism contract (slot-per-index writes, lowest-failing-index
/// rethrow, submitter participation), so serial vs shared-pool results
/// stay byte-identical.
///
/// Oversubscription rule: components that are handed a SharedPoolExecutor
/// must submit into it instead of constructing private ThreadPoolExecutors
/// — N sessions each spawning their own pool multiplies threads by N and
/// thrashes the cores the shared pool was sized for. The service layer
/// enforces this (ServeLimits rejects pool_threads > 0 combined with
/// executor_threads > 0).

#include <cstdint>

#include "exec/executor.hpp"

namespace stormtrack {

/// Instantaneous + lifetime view of a shared pool's load. Gauges are
/// sampled racily (relaxed atomics) — fine for stats reporting, not for
/// synchronization.
struct PoolOccupancy {
  int threads = 1;                       ///< Worker threads in the pool.
  std::int64_t inflight_batches = 0;     ///< parallel_for calls in progress.
  std::int64_t running_tasks = 0;        ///< Task bodies executing right now.
  std::int64_t submitted_batches = 0;    ///< Lifetime batches submitted.
  std::int64_t completed_batches = 0;    ///< Lifetime batches completed.
};

/// See file comment. Thread-safe: any number of threads may call
/// parallel_for concurrently; occupancy() may be sampled from any thread.
class SharedPoolExecutor final : public Executor {
 public:
  /// \p threads worker threads; 0 = default_thread_count().
  explicit SharedPoolExecutor(int threads = 0);

  SharedPoolExecutor(const SharedPoolExecutor&) = delete;
  SharedPoolExecutor& operator=(const SharedPoolExecutor&) = delete;

  using Executor::parallel_for;

  [[nodiscard]] int concurrency() const override;
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body) override;
  [[nodiscard]] ExecutorStats stats() const override;

  /// Live load snapshot; see PoolOccupancy.
  [[nodiscard]] PoolOccupancy occupancy() const;

 private:
  ThreadPoolExecutor pool_;
  std::atomic<std::int64_t> inflight_{0};
  std::atomic<std::int64_t> running_{0};
  std::atomic<std::int64_t> submitted_{0};
  std::atomic<std::int64_t> completed_{0};
};

}  // namespace stormtrack
