#pragma once

/// \file cancel.hpp
/// Cooperative cancellation and deadlines for the execution layer.
///
/// A CancelToken is a thread-safe flag plus an optional wall-clock
/// deadline. Work that should be stoppable polls it at natural safe points
/// — the adaptation pipeline checks at the start of every adaptation
/// point, so a cancelled run stops *between* transactions and never leaves
/// half-committed state behind. check() throws CancelledError, which
/// deliberately does not derive from CheckError: supervision code (the
/// sweep watchdog) can tell "this case was cancelled / timed out" from
/// "this case hit a genuine invariant failure" and count them separately.
///
/// Tokens are passive: nothing is interrupted preemptively. That is the
/// right trade for this codebase — every unit of work between checks is a
/// bounded simulated computation, and preemption could tear the
/// transactional guarantees PR 3 established.

#include <atomic>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace stormtrack {

/// Thrown by CancelToken::check() (see file comment).
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(const std::string& what)
      : std::runtime_error(what) {}
};

/// See file comment. All methods are thread-safe; a token may be cancelled
/// from any thread while workers poll it.
class CancelToken {
 public:
  CancelToken() = default;

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Trip the token; every subsequent check() throws. Idempotent (the
  /// first reason wins).
  void cancel(std::string reason = "cancelled");

  /// Arm (or re-arm) a deadline \p seconds from now; non-positive values
  /// trip immediately at the next check.
  void set_deadline_after(double seconds);

  /// Disarm the deadline and clear the cancelled flag (watchdog retries
  /// reuse one token across attempts).
  void reset();

  /// True when cancel() was called or an armed deadline has passed.
  [[nodiscard]] bool cancelled() const;

  /// True when the token tripped via deadline (not an explicit cancel()).
  [[nodiscard]] bool deadline_exceeded() const;

  /// Throw CancelledError when cancelled; no-op otherwise.
  void check() const;

 private:
  static constexpr std::int64_t kNoDeadline =
      std::numeric_limits<std::int64_t>::max();

  [[nodiscard]] static std::int64_t now_ns();

  std::atomic<bool> flag_{false};
  std::atomic<std::int64_t> deadline_ns_{kNoDeadline};
  /// Written once before flag_ is released, read after it is observed.
  std::string reason_;
};

}  // namespace stormtrack
