#pragma once

/// \file cancel.hpp
/// Cooperative cancellation and deadlines for the execution layer.
///
/// A CancelToken is a thread-safe flag plus an optional wall-clock
/// deadline. Work that should be stoppable polls it at natural safe points
/// — the adaptation pipeline checks at the start of every adaptation
/// point, so a cancelled run stops *between* transactions and never leaves
/// half-committed state behind. check() throws CancelledError, which
/// deliberately does not derive from CheckError: supervision code (the
/// sweep watchdog) can tell "this case was cancelled / timed out" from
/// "this case hit a genuine invariant failure" and count them separately.
///
/// Tokens are passive: nothing is interrupted preemptively. That is the
/// right trade for this codebase — every unit of work between checks is a
/// bounded simulated computation, and preemption could tear the
/// transactional guarantees PR 3 established.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <string>

namespace stormtrack {

/// Thrown by CancelToken::check() (see file comment).
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(const std::string& what)
      : std::runtime_error(what) {}
};

/// See file comment. All methods are thread-safe; a token may be cancelled
/// from any thread while workers poll it.
class CancelToken {
 public:
  CancelToken() = default;

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Trip the token; every subsequent check() throws and any thread inside
  /// wait_for() wakes promptly. Idempotent (the first reason wins).
  void cancel(std::string reason = "cancelled");

  /// Async-signal-safe trip: sets only the lock-free cancelled flag (no
  /// reason string, no condition-variable notification), so a SIGTERM /
  /// SIGINT handler may call it directly. Pollers see check() throw at
  /// their next poll; wait_for() sleepers wake at their own timeout.
  void cancel_from_signal() noexcept {
    flag_.store(true, std::memory_order_release);
  }

  /// Arm (or re-arm) a deadline \p seconds from now; non-positive values
  /// trip immediately at the next check.
  void set_deadline_after(double seconds);

  /// Disarm the deadline and clear the cancelled flag (watchdog retries
  /// reuse one token across attempts).
  void reset();

  /// True when cancel() was called or an armed deadline has passed.
  [[nodiscard]] bool cancelled() const;

  /// True when the token tripped via deadline (not an explicit cancel()).
  [[nodiscard]] bool deadline_exceeded() const;

  /// Throw CancelledError when cancelled; no-op otherwise.
  void check() const;

  /// Sleep up to \p seconds, waking early when the token trips: an
  /// explicit cancel() (notified) or an armed deadline passing (the waiter
  /// sleeps no further than the deadline). Returns true when the full
  /// duration elapsed with the token untripped, false when cancelled —
  /// cancellable backoff for supervisors, so a deadline expiring during a
  /// retry sleep stops the case promptly instead of oversleeping it.
  [[nodiscard]] bool wait_for(double seconds) const;

 private:
  static constexpr std::int64_t kNoDeadline =
      std::numeric_limits<std::int64_t>::max();

  [[nodiscard]] static std::int64_t now_ns();

  std::atomic<bool> flag_{false};
  std::atomic<std::int64_t> deadline_ns_{kNoDeadline};
  /// Written once before flag_ is released, read after it is observed.
  std::string reason_;
  /// Guards nothing but the sleep in wait_for; cancel() notifies it.
  mutable std::mutex wait_mutex_;
  mutable std::condition_variable wait_cv_;
};

}  // namespace stormtrack
