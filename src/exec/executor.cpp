#include "exec/executor.hpp"

#include <charconv>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <limits>
#include <mutex>
#include <system_error>
#include <thread>

#include "util/check.hpp"

namespace stormtrack {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] std::int64_t ns_since(Clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              t0)
      .count();
}

}  // namespace

// ---------------------------------------------------------- SerialExecutor

void SerialExecutor::parallel_for(
    std::size_t n, const std::function<void(std::size_t)>& body) {
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < n; ++i) body(i);
  busy_ns_.fetch_add(ns_since(t0), std::memory_order_relaxed);
  tasks_.fetch_add(static_cast<std::int64_t>(n), std::memory_order_relaxed);
  batches_.fetch_add(1, std::memory_order_relaxed);
}

ExecutorStats SerialExecutor::stats() const {
  ExecutorStats s;
  s.threads = 1;
  s.tasks = tasks_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.busy_seconds =
      static_cast<double>(busy_ns_.load(std::memory_order_relaxed)) * 1e-9;
  return s;
}

Executor& serial_executor() {
  static SerialExecutor exec;
  return exec;
}

int parse_thread_count(std::string_view text, std::string_view source) {
  int value = 0;
  const char* const first = text.data();
  const char* const last = first + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  ST_CHECK_MSG(ec != std::errc::result_out_of_range,
               source << ": thread count '" << text << "' is out of range");
  ST_CHECK_MSG(ec == std::errc() && ptr == last && !text.empty(),
               source << ": thread count must be a non-negative integer, got '"
                      << text << "'");
  ST_CHECK_MSG(value >= 0,
               source << ": thread count must be >= 0, got " << value);
  return value;
}

int default_thread_count() {
  if (const char* env = std::getenv("STORMTRACK_THREADS")) {
    const int n = parse_thread_count(env, "STORMTRACK_THREADS");
    if (n > 0) return n;
  }
  return static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
}

// ------------------------------------------------------ ThreadPoolExecutor

namespace {

/// One parallel_for call in flight. Indices are claimed from `next` by the
/// submitting thread and any idle workers; `done` counts completions so the
/// submitter can wait for indices still running on other threads.
struct Batch {
  Batch(std::size_t n_, const std::function<void(std::size_t)>* body_)
      : n(n_), body(body_) {}

  const std::size_t n;
  const std::function<void(std::size_t)>* body;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};

  std::mutex mutex;                 // guards error* and pairs with cv
  std::condition_variable cv;       // signalled when done reaches n
  std::exception_ptr error;         // lowest failing index's exception
  std::size_t error_index = std::numeric_limits<std::size_t>::max();

  [[nodiscard]] bool exhausted() const {
    return next.load(std::memory_order_relaxed) >= n;
  }
};

}  // namespace

struct ThreadPoolExecutor::Impl {
  explicit Impl(int thread_count) {
    workers.reserve(static_cast<std::size_t>(thread_count));
    for (int t = 0; t < thread_count; ++t)
      workers.emplace_back([this] { worker_loop(); });
  }

  ~Impl() {
    {
      std::lock_guard lk(mutex);
      stop = true;
    }
    cv.notify_all();
    for (std::thread& t : workers) t.join();
  }

  /// Claim and run indices of \p b until none remain unclaimed. Safe to
  /// call from workers and submitters alike.
  void drain(Batch& b) {
    for (std::size_t i = b.next.fetch_add(1, std::memory_order_relaxed);
         i < b.n; i = b.next.fetch_add(1, std::memory_order_relaxed)) {
      const auto t0 = Clock::now();
      try {
        (*b.body)(i);
      } catch (...) {
        std::lock_guard lk(b.mutex);
        if (i < b.error_index) {
          b.error_index = i;
          b.error = std::current_exception();
        }
      }
      busy_ns.fetch_add(ns_since(t0), std::memory_order_relaxed);
      tasks.fetch_add(1, std::memory_order_relaxed);
      if (b.done.fetch_add(1, std::memory_order_acq_rel) + 1 == b.n) {
        // Lock pairs with the submitter's predicate check: without it the
        // notify could slip between its predicate evaluation and wait.
        std::lock_guard lk(b.mutex);
        b.cv.notify_all();
      }
    }
  }

  void worker_loop() {
    for (;;) {
      std::shared_ptr<Batch> b;
      {
        std::unique_lock lk(mutex);
        cv.wait(lk, [this] { return stop || !batches.empty(); });
        if (batches.empty()) {
          if (stop) return;
          continue;
        }
        b = batches.front();
      }
      drain(*b);
      std::lock_guard lk(mutex);
      std::erase(batches, b);  // exhausted; stop routing workers to it
    }
  }

  std::mutex mutex;                          // guards batches + stop
  std::condition_variable cv;
  std::deque<std::shared_ptr<Batch>> batches;
  bool stop = false;
  std::vector<std::thread> workers;

  std::atomic<std::int64_t> tasks{0};
  std::atomic<std::int64_t> batches_run{0};
  std::atomic<std::int64_t> busy_ns{0};
};

ThreadPoolExecutor::ThreadPoolExecutor(int threads) {
  ST_CHECK_MSG(threads >= 0, "thread count must be >= 0, got " << threads);
  if (threads == 0) threads = default_thread_count();
  impl_ = std::make_unique<Impl>(threads);
}

ThreadPoolExecutor::~ThreadPoolExecutor() = default;

int ThreadPoolExecutor::concurrency() const {
  return static_cast<int>(impl_->workers.size());
}

void ThreadPoolExecutor::parallel_for(
    std::size_t n, const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  auto b = std::make_shared<Batch>(n, &body);
  {
    std::lock_guard lk(impl_->mutex);
    impl_->batches.push_back(b);
  }
  impl_->cv.notify_all();
  // Participate: claim indices alongside the workers. Afterwards every
  // index is either done or running on some thread, so the wait below can
  // only be on actively executing tasks — nesting cannot deadlock.
  impl_->drain(*b);
  {
    std::unique_lock lk(b->mutex);
    b->cv.wait(lk, [&] {
      return b->done.load(std::memory_order_acquire) == n;
    });
  }
  {
    std::lock_guard lk(impl_->mutex);
    std::erase(impl_->batches, b);  // workers may have erased it already
  }
  impl_->batches_run.fetch_add(1, std::memory_order_relaxed);
  if (b->error) std::rethrow_exception(b->error);
}

ExecutorStats ThreadPoolExecutor::stats() const {
  ExecutorStats s;
  s.threads = concurrency();
  s.tasks = impl_->tasks.load(std::memory_order_relaxed);
  s.batches = impl_->batches_run.load(std::memory_order_relaxed);
  s.busy_seconds =
      static_cast<double>(impl_->busy_ns.load(std::memory_order_relaxed)) *
      1e-9;
  return s;
}

}  // namespace stormtrack
