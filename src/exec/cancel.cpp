#include "exec/cancel.hpp"

#include <chrono>

namespace stormtrack {

std::int64_t CancelToken::now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void CancelToken::cancel(std::string reason) {
  // Publish the reason before the flag so any thread that observes
  // flag_ == true (acquire) also sees the reason string.
  if (!flag_.load(std::memory_order_acquire)) {
    reason_ = std::move(reason);
    flag_.store(true, std::memory_order_release);
  }
  // Wake wait_for() sleepers. The lock orders the notify against a waiter
  // that checked the flag but has not yet blocked.
  { const std::lock_guard<std::mutex> lock(wait_mutex_); }
  wait_cv_.notify_all();
}

void CancelToken::set_deadline_after(double seconds) {
  const double ns = seconds * 1e9;
  const std::int64_t budget =
      ns >= static_cast<double>(kNoDeadline) ? kNoDeadline
      : ns <= 0.0                            ? 0
                  : static_cast<std::int64_t>(ns);
  deadline_ns_.store(budget == kNoDeadline ? kNoDeadline : now_ns() + budget,
                     std::memory_order_release);
}

void CancelToken::reset() {
  deadline_ns_.store(kNoDeadline, std::memory_order_release);
  flag_.store(false, std::memory_order_release);
}

bool CancelToken::cancelled() const {
  if (flag_.load(std::memory_order_acquire)) return true;
  return deadline_exceeded();
}

bool CancelToken::deadline_exceeded() const {
  const std::int64_t deadline = deadline_ns_.load(std::memory_order_acquire);
  return deadline != kNoDeadline && now_ns() >= deadline;
}

bool CancelToken::wait_for(double seconds) const {
  using Clock = std::chrono::steady_clock;
  const auto until =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(seconds < 0.0
                                                           ? 0.0
                                                           : seconds));
  std::unique_lock<std::mutex> lock(wait_mutex_);
  while (true) {
    if (cancelled()) return false;
    const auto now = Clock::now();
    if (now >= until) return true;
    // Never sleep past an armed deadline: wake there to report the trip
    // instead of oversleeping it.
    auto wake = until;
    const std::int64_t deadline =
        deadline_ns_.load(std::memory_order_acquire);
    if (deadline != kNoDeadline) {
      const auto to_deadline = std::chrono::nanoseconds(
          deadline - now_ns() > 0 ? deadline - now_ns() : 0);
      const auto deadline_tp = now + to_deadline;
      if (deadline_tp < wake) wake = deadline_tp;
    }
    wait_cv_.wait_until(lock, wake);
  }
}

void CancelToken::check() const {
  if (flag_.load(std::memory_order_acquire)) {
    throw CancelledError(reason_.empty() ? "cancelled" : reason_);
  }
  if (deadline_exceeded()) {
    throw CancelledError("deadline exceeded");
  }
}

}  // namespace stormtrack
