#pragma once

/// \file executor.hpp
/// Unified execution layer: the one place the codebase runs work in
/// parallel.
///
/// Everything above this layer is written in terms of an Executor: the SPMD
/// substrate (run_spmd), the adaptation pipeline's candidate evaluation,
/// and the sweep runner's experiment grids all submit index-addressed
/// batches instead of owning threads. Two implementations ship:
///
///  * SerialExecutor — runs every index inline on the calling thread, in
///    ascending order. The reference semantics.
///  * ThreadPoolExecutor — a persistent FIFO pool (no work stealing between
///    batches; within a batch workers claim indices from a shared atomic
///    ticket in ascending submission order). Results are byte-identical to
///    SerialExecutor because the contract forces determinism:
///
///      - every index writes only into its own preallocated slot;
///      - reductions over slots happen *after* parallel_for returns, on the
///        calling thread, in index order — reordered in code, never in
///        floating point;
///      - task bodies read only state that is immutable for the batch's
///        lifetime.
///
/// Exceptions thrown by task bodies are captured; after the batch drains,
/// the exception of the *lowest failing index* is rethrown on the caller
/// (deterministic regardless of scheduling) and the pool survives for the
/// next batch.
///
/// parallel_for is nesting-safe: the calling thread participates in its own
/// batch, claiming indices like a worker, and only ever blocks on indices
/// that are already running on some thread. A task body may therefore call
/// parallel_for on the same executor (the pipeline's candidate evaluation
/// nests inside a sweep case) without risking deadlock — in the worst case
/// the nested batch runs entirely on the calling thread.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

namespace stormtrack {

/// Monotonic counters an executor accumulates over its lifetime; cheap to
/// snapshot, deltas are safe to difference from a single thread.
struct ExecutorStats {
  int threads = 1;              ///< Worker threads (1 for serial).
  std::int64_t tasks = 0;       ///< Index invocations completed.
  std::int64_t batches = 0;     ///< parallel_for calls completed.
  double busy_seconds = 0.0;    ///< Summed wall time inside task bodies.

  /// Mean thread occupancy over \p wall_seconds of submitting work:
  /// busy-time spread over the pool, clamped to [0, 1] per thread.
  [[nodiscard]] double occupancy(double wall_seconds) const {
    if (wall_seconds <= 0.0 || threads <= 0) return 0.0;
    return busy_seconds / (wall_seconds * threads);
  }
};

/// See file comment.
class Executor {
 public:
  virtual ~Executor() = default;

  /// Worker parallelism (1 = serial).
  [[nodiscard]] virtual int concurrency() const = 0;

  /// Run body(i) exactly once for every i in [0, n); returns after all
  /// indices completed. Rethrows the lowest failing index's exception.
  virtual void parallel_for(std::size_t n,
                            const std::function<void(std::size_t)>& body) = 0;

  /// parallel_for with a fault hook: hook(i) runs inside task i, before
  /// body(i). Injection rides the same exception contract as a genuine task
  /// failure (lowest failing index rethrown, pool survives); an empty hook
  /// degrades to plain parallel_for.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                    const std::function<void(std::size_t)>& hook) {
    if (!hook) {
      parallel_for(n, body);
      return;
    }
    parallel_for(n, [&](std::size_t i) {
      hook(i);
      body(i);
    });
  }

  /// Lifetime counters (see ExecutorStats).
  [[nodiscard]] virtual ExecutorStats stats() const = 0;

  /// Map i -> f(i) into a preallocated result vector (slot per index).
  /// R must be default-constructible and move-assignable.
  template <typename R, typename F>
  [[nodiscard]] std::vector<R> map_indexed(std::size_t n, F&& f) {
    std::vector<R> out(n);
    parallel_for(n, [&](std::size_t i) { out[i] = f(i); });
    return out;
  }
};

/// Inline ascending-order execution on the calling thread.
class SerialExecutor final : public Executor {
 public:
  using Executor::parallel_for;

  [[nodiscard]] int concurrency() const override { return 1; }
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body) override;
  [[nodiscard]] ExecutorStats stats() const override;

 private:
  std::atomic<std::int64_t> tasks_{0};
  std::atomic<std::int64_t> batches_{0};
  std::atomic<std::int64_t> busy_ns_{0};
};

/// Persistent FIFO worker pool; see file comment for the determinism and
/// nesting contract. Thread-safe: batches may be submitted concurrently
/// from any thread, including from inside a running task.
class ThreadPoolExecutor final : public Executor {
 public:
  /// \p threads worker threads; 0 = default_thread_count().
  explicit ThreadPoolExecutor(int threads = 0);
  ~ThreadPoolExecutor() override;

  ThreadPoolExecutor(const ThreadPoolExecutor&) = delete;
  ThreadPoolExecutor& operator=(const ThreadPoolExecutor&) = delete;

  using Executor::parallel_for;

  [[nodiscard]] int concurrency() const override;
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body) override;
  [[nodiscard]] ExecutorStats stats() const override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Process-wide SerialExecutor used when a component is handed no executor
/// (null pointer): keeps call sites to a single code path.
[[nodiscard]] Executor& serial_executor();

/// \p executor when non-null, otherwise serial_executor().
[[nodiscard]] inline Executor& resolve_executor(Executor* executor) {
  return executor != nullptr ? *executor : serial_executor();
}

/// Parse a thread-count request from \p text (an env var or CLI flag value
/// named by \p source for error messages). Accepts a non-negative decimal
/// integer — 0 means "auto" — and throws CheckError on anything else
/// (empty, non-numeric, trailing garbage, negative, overflow) instead of
/// silently falling back: a typo in STORMTRACK_THREADS must not quietly
/// serialize a TSan job.
[[nodiscard]] int parse_thread_count(std::string_view text,
                                     std::string_view source);

/// Worker count for "auto" requests: the STORMTRACK_THREADS environment
/// variable when set (parsed strictly via parse_thread_count; "0" and unset
/// mean auto), otherwise std::thread::hardware_concurrency(), never less
/// than 1.
[[nodiscard]] int default_thread_count();

}  // namespace stormtrack
