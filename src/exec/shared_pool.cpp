#include "exec/shared_pool.hpp"

namespace stormtrack {

SharedPoolExecutor::SharedPoolExecutor(int threads) : pool_(threads) {}

int SharedPoolExecutor::concurrency() const { return pool_.concurrency(); }

void SharedPoolExecutor::parallel_for(
    std::size_t n, const std::function<void(std::size_t)>& body) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  inflight_.fetch_add(1, std::memory_order_relaxed);
  try {
    pool_.parallel_for(n, [&](std::size_t i) {
      running_.fetch_add(1, std::memory_order_relaxed);
      try {
        body(i);
      } catch (...) {
        running_.fetch_sub(1, std::memory_order_relaxed);
        throw;
      }
      running_.fetch_sub(1, std::memory_order_relaxed);
    });
  } catch (...) {
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    completed_.fetch_add(1, std::memory_order_relaxed);
    throw;
  }
  inflight_.fetch_sub(1, std::memory_order_relaxed);
  completed_.fetch_add(1, std::memory_order_relaxed);
}

ExecutorStats SharedPoolExecutor::stats() const { return pool_.stats(); }

PoolOccupancy SharedPoolExecutor::occupancy() const {
  PoolOccupancy occ;
  occ.threads = pool_.concurrency();
  occ.inflight_batches = inflight_.load(std::memory_order_relaxed);
  occ.running_tasks = running_.load(std::memory_order_relaxed);
  occ.submitted_batches = submitted_.load(std::memory_order_relaxed);
  occ.completed_batches = completed_.load(std::memory_order_relaxed);
  return occ;
}

}  // namespace stormtrack
