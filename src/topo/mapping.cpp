#include "topo/mapping.hpp"

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <sstream>

#include "util/rng.hpp"

namespace stormtrack {

// ---------------------------------------------------------- RandomMapping

RandomMapping::RandomMapping(int num_ranks, std::uint64_t seed) {
  ST_CHECK_MSG(num_ranks >= 1, "need at least one rank");
  perm_.resize(static_cast<std::size_t>(num_ranks));
  std::iota(perm_.begin(), perm_.end(), 0);
  Xoshiro256 rng(seed);
  // Fisher–Yates with our deterministic generator.
  for (int i = num_ranks - 1; i > 0; --i) {
    const auto j = static_cast<int>(rng.uniform_int(0, i));
    std::swap(perm_[i], perm_[j]);
  }
}

int RandomMapping::node_of_rank(int rank) const {
  ST_CHECK_MSG(rank >= 0 && rank < num_ranks(),
               "rank " << rank << " out of range");
  return perm_[static_cast<std::size_t>(rank)];
}

// --------------------------------------------------------- FoldingMapping

namespace {

/// Boustrophedon fold of coordinate c in [0, dim*folds) into (base, fold):
/// base in [0, dim), fold in [0, folds); consecutive c values move base by
/// one step (direction alternating per fold panel), crossing panels bumps
/// fold by one while base stays put — the accordion fold.
struct Folded {
  int base;
  int fold;
};

Folded fold_coordinate(int c, int dim) {
  const int panel = c / dim;
  const int within = c % dim;
  return Folded{(panel % 2 == 0) ? within : dim - 1 - within, panel};
}

/// Snake order of (ix, iy) on an fx×fy panel grid: consecutive iy (same ix)
/// are adjacent in the order; ix steps reverse the iy direction, so panel
/// transitions stay adjacent too.
int snake_index(int ix, int iy, int fy) {
  const int within = (ix % 2 == 0) ? iy : fy - 1 - iy;
  return ix * fy + within;
}

}  // namespace

bool FoldingMapping::compatible(int grid_px, int grid_py,
                                const Torus3D& torus) {
  if (grid_px <= 0 || grid_py <= 0) return false;
  if (grid_px % torus.dim_x() != 0 || grid_py % torus.dim_y() != 0)
    return false;
  const int fx = grid_px / torus.dim_x();
  const int fy = grid_py / torus.dim_y();
  return fx * fy == torus.dim_z();
}

FoldingMapping::FoldingMapping(int grid_px, int grid_py,
                               const Torus3D& torus) {
  ST_CHECK_MSG(compatible(grid_px, grid_py, torus),
               "process grid " << grid_px << "x" << grid_py
                               << " does not fold onto " << torus.name());
  const int fy = grid_py / torus.dim_y();
  nodes_.resize(static_cast<std::size_t>(grid_px) * grid_py);
  for (int py = 0; py < grid_py; ++py) {
    for (int px = 0; px < grid_px; ++px) {
      const Folded xf = fold_coordinate(px, torus.dim_x());
      const Folded yf = fold_coordinate(py, torus.dim_y());
      const int z = snake_index(xf.fold, yf.fold, fy);
      const int rank = py * grid_px + px;
      nodes_[static_cast<std::size_t>(rank)] =
          torus.node(Coord3{xf.base, yf.base, z});
    }
  }
  // The construction is bijective by design; verify to catch regressions.
  std::vector<char> seen(nodes_.size(), 0);
  for (int n : nodes_) {
    ST_CHECK_MSG(n >= 0 && n < static_cast<int>(nodes_.size()) && !seen[n],
                 "folding mapping is not a permutation");
    seen[static_cast<std::size_t>(n)] = 1;
  }
}

int FoldingMapping::node_of_rank(int rank) const {
  ST_CHECK_MSG(rank >= 0 && rank < num_ranks(),
               "rank " << rank << " out of range");
  return nodes_[static_cast<std::size_t>(rank)];
}

// ----------------------------------------------------------- TiledMapping

bool TiledMapping::compatible(int grid_px, int grid_py, int tile_w,
                              int tile_h) {
  if (grid_px <= 0 || grid_py <= 0 || tile_w <= 0 || tile_h <= 0)
    return false;
  return grid_px % tile_w == 0 && grid_py % tile_h == 0;
}

TiledMapping::TiledMapping(int grid_px, int grid_py, int tile_w, int tile_h)
    : px_(grid_px), py_(grid_py), tw_(tile_w), th_(tile_h) {
  ST_CHECK_MSG(compatible(grid_px, grid_py, tile_w, tile_h),
               "tile " << tile_w << "x" << tile_h
                       << " does not evenly cut process grid " << grid_px
                       << "x" << grid_py);
}

int TiledMapping::node_of_rank(int rank) const {
  ST_CHECK_MSG(rank >= 0 && rank < num_ranks(),
               "rank " << rank << " out of range");
  const int x = rank % px_;
  const int y = rank / px_;
  const int tile = (y / th_) * (px_ / tw_) + x / tw_;
  const int within = (y % th_) * tw_ + x % tw_;
  return tile * (tw_ * th_) + within;
}

std::string TiledMapping::name() const {
  std::ostringstream os;
  os << "tiled-" << tw_ << 'x' << th_;
  return os.str();
}

TiledMapping::TileShape TiledMapping::choose_tile(int grid_px, int grid_py,
                                                  int tile_area) {
  if (tile_area <= 0) return TileShape{};
  // Most-square valid factorisation (smallest |w - h| that cuts the grid
  // evenly); ties broken towards wide tiles to match row-major locality.
  TileShape best{};
  int best_gap = tile_area + 1;
  for (int w = 1; w <= tile_area; ++w) {
    if (tile_area % w != 0) continue;
    const int h = tile_area / w;
    if (!compatible(grid_px, grid_py, w, h)) continue;
    const int gap = std::abs(w - h);
    if (gap < best_gap) {
      best = TileShape{w, h};
      best_gap = gap;
    }
  }
  return best;
}

// ---------------------------------------------------------------- helpers

double average_neighbor_dilation(const Topology& topo, const Mapping& mapping,
                                 int grid_px, int grid_py) {
  ST_CHECK_MSG(grid_px * grid_py == mapping.num_ranks(),
               "grid shape does not match mapping rank count");
  std::int64_t pairs = 0;
  std::int64_t total_hops = 0;
  for (int y = 0; y < grid_py; ++y) {
    for (int x = 0; x < grid_px; ++x) {
      const int r = y * grid_px + x;
      if (x + 1 < grid_px) {
        total_hops += mapping.rank_hops(topo, r, r + 1);
        ++pairs;
      }
      if (y + 1 < grid_py) {
        total_hops += mapping.rank_hops(topo, r, r + grid_px);
        ++pairs;
      }
    }
  }
  if (pairs == 0) return 0.0;
  return static_cast<double>(total_hops) / static_cast<double>(pairs);
}

ProcessGridShape choose_process_grid(int p) {
  ST_CHECK_MSG(p >= 1, "need at least one process");
  ProcessGridShape best{1, p};
  for (int px = 1; px * px <= p; ++px) {
    if (p % px == 0) best = ProcessGridShape{px, p / px};
  }
  return best;
}

std::unique_ptr<Mapping> make_default_mapping(const Topology& topo,
                                              int grid_px, int grid_py) {
  if (const auto* torus = dynamic_cast<const Torus3D*>(&topo)) {
    if (FoldingMapping::compatible(grid_px, grid_py, *torus))
      return std::make_unique<FoldingMapping>(grid_px, grid_py, *torus);
  }
  int tile_area = 0;
  if (const auto* df = dynamic_cast<const Dragonfly*>(&topo))
    tile_area = df->group_size();
  else if (const auto* ft = dynamic_cast<const FatTree*>(&topo))
    tile_area = ft->pod_size();
  if (tile_area > 0) {
    const auto tile = TiledMapping::choose_tile(grid_px, grid_py, tile_area);
    if (tile.w > 0)
      return std::make_unique<TiledMapping>(grid_px, grid_py, tile.w, tile.h);
  }
  return std::make_unique<RowMajorMapping>(grid_px * grid_py);
}

}  // namespace stormtrack
