#pragma once

/// \file mapping.hpp
/// Placement of process-grid ranks onto physical network nodes.
///
/// The weather simulation decomposes its domain over a virtual 2D process
/// grid Px×Py; rank r sits at grid position (r % Px, r / Px) (row-major,
/// matching the paper's "start rank" convention). A Mapping decides which
/// physical node executes each rank. The paper (§V-C) uses a folding-based
/// topology-aware mapping [Yu et al., SC'06] on Blue Gene/L so that process-
/// grid neighbours are (near-)neighbours on the 3D torus; we implement that
/// folding, plus row-major identity and random placements for ablations.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "topo/topology.hpp"
#include "util/check.hpp"

namespace stormtrack {

/// Bijective rank→node placement for a fixed number of ranks.
class Mapping {
 public:
  virtual ~Mapping() = default;

  /// Physical node executing \p rank.
  [[nodiscard]] virtual int node_of_rank(int rank) const = 0;
  /// Number of ranks placed (== nodes used).
  [[nodiscard]] virtual int num_ranks() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Hop distance between two ranks under this mapping on \p topo.
  [[nodiscard]] int rank_hops(const Topology& topo, int rank_a,
                              int rank_b) const {
    return topo.hops(node_of_rank(rank_a), node_of_rank(rank_b));
  }
};

/// Descriptive name for the strategy interface: each topology family has a
/// preferred RankMapping (folding on tori, tiling on dragonfly/fat-tree,
/// identity on flat switched fabrics) — see make_default_mapping().
using RankMapping = Mapping;

/// Identity placement: rank r runs on node r.
class RowMajorMapping final : public Mapping {
 public:
  explicit RowMajorMapping(int num_ranks) : n_(num_ranks) {
    ST_CHECK_MSG(num_ranks >= 1, "need at least one rank");
  }
  [[nodiscard]] int node_of_rank(int rank) const override {
    ST_CHECK_MSG(rank >= 0 && rank < n_, "rank " << rank << " out of range");
    return rank;
  }
  [[nodiscard]] int num_ranks() const override { return n_; }
  [[nodiscard]] std::string name() const override { return "row-major"; }

 private:
  int n_;
};

/// Uniformly random permutation placement (worst-case-ish baseline for the
/// mapping ablation). Deterministic given the seed.
class RandomMapping final : public Mapping {
 public:
  RandomMapping(int num_ranks, std::uint64_t seed);
  [[nodiscard]] int node_of_rank(int rank) const override;
  [[nodiscard]] int num_ranks() const override {
    return static_cast<int>(perm_.size());
  }
  [[nodiscard]] std::string name() const override { return "random"; }

 private:
  std::vector<int> perm_;
};

/// Folding-based topology-aware mapping of a Px×Py process grid onto a 3D
/// torus Tx×Ty×Tz with Px·Py == Tx·Ty·Tz.
///
/// Construction requires the factorisation Px == Tx·fx and Py == Ty·fy with
/// fx·fy == Tz. The process-grid x axis is folded boustrophedon into (torus
/// x, fold index ix); the y axis likewise into (torus y, fold index iy);
/// (ix, iy) then snakes along the torus z ring. With this accordion fold,
/// process-grid neighbours within a fold panel are exactly 1 torus hop
/// apart, and panel-boundary neighbours stay within a handful of z hops —
/// average dilation stays close to 1 (asserted by tests).
class FoldingMapping final : public Mapping {
 public:
  /// \param grid_px process-grid width, \param grid_py height.
  FoldingMapping(int grid_px, int grid_py, const Torus3D& torus);

  [[nodiscard]] int node_of_rank(int rank) const override;
  [[nodiscard]] int num_ranks() const override {
    return static_cast<int>(nodes_.size());
  }
  [[nodiscard]] std::string name() const override { return "folding"; }

  /// True when a FoldingMapping can be constructed for these shapes.
  [[nodiscard]] static bool compatible(int grid_px, int grid_py,
                                       const Torus3D& torus);

 private:
  std::vector<int> nodes_;  // rank -> node
};

/// Tile-based locality mapping for hierarchical networks (dragonfly groups,
/// fat-tree pods): the Px×Py process grid is cut into tile_w×tile_h tiles;
/// ranks within one tile land on consecutive node ids (row-major within the
/// tile), so when the tile area equals the network's locality domain size
/// (Dragonfly::group_size(), FatTree::pod_size()) a whole tile shares one
/// group/pod and most process-grid-adjacent pairs stay at minimum hop
/// distance. Pure O(1) arithmetic per lookup — nothing materialized, so it
/// scales to million-rank grids.
class TiledMapping final : public Mapping {
 public:
  /// Requires tile_w | grid_px and tile_h | grid_py.
  TiledMapping(int grid_px, int grid_py, int tile_w, int tile_h);

  [[nodiscard]] int node_of_rank(int rank) const override;
  [[nodiscard]] int num_ranks() const override { return px_ * py_; }
  [[nodiscard]] std::string name() const override;

  /// True when a TiledMapping can be constructed for these shapes.
  [[nodiscard]] static bool compatible(int grid_px, int grid_py, int tile_w,
                                       int tile_h);

  /// Most-square tile shape of \p tile_area that divides the grid evenly,
  /// or {0, 0} when no factorisation of tile_area fits.
  struct TileShape {
    int w = 0;
    int h = 0;
  };
  [[nodiscard]] static TileShape choose_tile(int grid_px, int grid_py,
                                             int tile_area);

 private:
  int px_, py_, tw_, th_;
};

/// Average torus hop distance between process-grid-adjacent rank pairs under
/// \p mapping (dilation quality metric; 1.0 is perfect).
[[nodiscard]] double average_neighbor_dilation(const Topology& topo,
                                               const Mapping& mapping,
                                               int grid_px, int grid_py);

/// Most-square factorisation Px×Py of \p p with Px <= Py; prefers the
/// factor pair with the smallest ratio (e.g. 1024 -> 32×32, 512 -> 16×32).
struct ProcessGridShape {
  int px = 1;
  int py = 1;
};
[[nodiscard]] ProcessGridShape choose_process_grid(int p);

/// Build the paper's experimental setup for a machine: on a torus, a
/// FoldingMapping when the shapes factor; on dragonfly/fat-tree, a
/// TiledMapping with the tile matched to the group/pod size when one fits;
/// row-major otherwise (and always on flat switched networks).
[[nodiscard]] std::unique_ptr<Mapping> make_default_mapping(
    const Topology& topo, int grid_px, int grid_py);

}  // namespace stormtrack
