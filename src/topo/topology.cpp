#include "topo/topology.hpp"

#include <cstdlib>
#include <sstream>

namespace stormtrack {

// ---------------------------------------------------------------- Torus3D

Torus3D::Torus3D(int dx, int dy, int dz, LinkParams link)
    : Topology(link), dx_(dx), dy_(dy), dz_(dz) {
  ST_CHECK_MSG(dx >= 1 && dy >= 1 && dz >= 1,
               "torus dims must be >= 1, got " << dx << "x" << dy << "x"
                                               << dz);
}

int Torus3D::ring_distance(int a, int b, int dim) {
  const int d = std::abs(a - b);
  return std::min(d, dim - d);
}

Coord3 Torus3D::coord(int n) const {
  require_node(n);
  return Coord3{n % dx_, (n / dx_) % dy_, n / (dx_ * dy_)};
}

int Torus3D::node(const Coord3& c) const {
  ST_CHECK_MSG(c.x >= 0 && c.x < dx_ && c.y >= 0 && c.y < dy_ && c.z >= 0 &&
                   c.z < dz_,
               "coord (" << c.x << "," << c.y << "," << c.z
                         << ") outside torus " << name());
  return (c.z * dy_ + c.y) * dx_ + c.x;
}

int Torus3D::hops(int node_a, int node_b) const {
  const Coord3 a = coord(node_a);
  const Coord3 b = coord(node_b);
  return ring_distance(a.x, b.x, dx_) + ring_distance(a.y, b.y, dy_) +
         ring_distance(a.z, b.z, dz_);
}

std::string Torus3D::name() const {
  std::ostringstream os;
  os << "torus3d-" << dx_ << 'x' << dy_ << 'x' << dz_;
  return os.str();
}

// ----------------------------------------------------------------- Mesh2D

Mesh2D::Mesh2D(int dx, int dy, LinkParams link)
    : Topology(link), dx_(dx), dy_(dy) {
  ST_CHECK_MSG(dx >= 1 && dy >= 1,
               "mesh dims must be >= 1, got " << dx << "x" << dy);
}

int Mesh2D::hops(int node_a, int node_b) const {
  require_node(node_a);
  require_node(node_b);
  const int ax = node_a % dx_, ay = node_a / dx_;
  const int bx = node_b % dx_, by = node_b / dx_;
  return std::abs(ax - bx) + std::abs(ay - by);
}

std::string Mesh2D::name() const {
  std::ostringstream os;
  os << "mesh2d-" << dx_ << 'x' << dy_;
  return os.str();
}

// -------------------------------------------------------- SwitchedNetwork

SwitchedNetwork::SwitchedNetwork(int nodes, int nodes_per_switch,
                                 LinkParams link)
    : Topology(link), nodes_(nodes), per_switch_(nodes_per_switch) {
  ST_CHECK_MSG(nodes >= 1, "need at least one node");
  ST_CHECK_MSG(nodes_per_switch >= 1, "need at least one port per switch");
}

int SwitchedNetwork::hops(int node_a, int node_b) const {
  require_node(node_a);
  require_node(node_b);
  if (node_a == node_b) return 0;
  if (node_a / per_switch_ == node_b / per_switch_) return 2;
  return 4;
}

std::string SwitchedNetwork::name() const {
  std::ostringstream os;
  os << "switched-" << nodes_ << "n-" << per_switch_ << "per";
  return os.str();
}

// -------------------------------------------------------------- Dragonfly

Dragonfly::Dragonfly(int groups, int routers_per_group, int nodes_per_router,
                     LinkParams link)
    : Topology(link),
      groups_(groups),
      routers_per_group_(routers_per_group),
      nodes_per_router_(nodes_per_router) {
  ST_CHECK_MSG(groups >= 1 && routers_per_group >= 1 && nodes_per_router >= 1,
               "dragonfly dims must be >= 1, got " << groups << " groups x "
                                                   << routers_per_group
                                                   << " routers x "
                                                   << nodes_per_router
                                                   << " nodes");
}

int Dragonfly::hops(int node_a, int node_b) const {
  require_node(node_a);
  require_node(node_b);
  if (node_a == node_b) return 0;
  if (node_a / nodes_per_router_ == node_b / nodes_per_router_) return 2;
  if (node_a / group_size() == node_b / group_size()) return 4;
  return 6;
}

std::string Dragonfly::name() const {
  std::ostringstream os;
  os << "dragonfly-" << groups_ << 'g' << routers_per_group_ << 'r'
     << nodes_per_router_ << 'n';
  return os.str();
}

// ---------------------------------------------------------------- FatTree

FatTree::FatTree(int nodes, int nodes_per_leaf, int leaves_per_pod,
                 LinkParams link)
    : Topology(link),
      nodes_(nodes),
      per_leaf_(nodes_per_leaf),
      leaves_per_pod_(leaves_per_pod) {
  ST_CHECK_MSG(nodes >= 1, "need at least one node");
  ST_CHECK_MSG(nodes_per_leaf >= 1 && leaves_per_pod >= 1,
               "fat-tree arity must be >= 1, got " << nodes_per_leaf
                                                   << " per leaf, "
                                                   << leaves_per_pod
                                                   << " leaves per pod");
}

int FatTree::hops(int node_a, int node_b) const {
  require_node(node_a);
  require_node(node_b);
  if (node_a == node_b) return 0;
  if (node_a / per_leaf_ == node_b / per_leaf_) return 2;
  if (node_a / pod_size() == node_b / pod_size()) return 4;
  return 6;
}

std::string FatTree::name() const {
  std::ostringstream os;
  os << "fattree-" << nodes_ << "n-" << per_leaf_ << "per-" << leaves_per_pod_
     << "pod";
  return os.str();
}

// -------------------------------------------------------------- factories

std::unique_ptr<Torus3D> make_bluegene(int cores) {
  ST_CHECK_MSG(cores >= 64 && cores % 64 == 0,
               "BG/L partition must be a positive multiple of 64 nodes, got "
                   << cores);
  return std::make_unique<Torus3D>(8, 8, cores / 64);
}

std::unique_ptr<SwitchedNetwork> make_fist(int cores) {
  return std::make_unique<SwitchedNetwork>(cores, 16,
                                           SwitchedNetwork::fist_links());
}

std::unique_ptr<Dragonfly> make_dragonfly(int cores) {
  ST_CHECK_MSG(cores >= 64 && cores % 64 == 0,
               "dragonfly machine must be a positive multiple of 64 nodes "
               "(16 routers x 4 nodes per group), got "
                   << cores);
  return std::make_unique<Dragonfly>(cores / 64, 16, 4);
}

std::unique_ptr<FatTree> make_fattree(int cores) {
  return std::make_unique<FatTree>(cores, 16, 8);
}

}  // namespace stormtrack
