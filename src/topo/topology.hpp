#pragma once

/// \file topology.hpp
/// Interconnect models.
///
/// The paper evaluates on two machines: a Blue Gene/L with a 3D-torus
/// interconnect (hop count between nodes matters; the direct Alltoallv
/// algorithm's completion time is the max over sender→receiver pair times)
/// and `fist`, an Infiniband *switched* cluster (hop counts are small and
/// uniform; per-sender messages serialize, §IV-C-1). We model both, plus a
/// plain 2D mesh, behind one interface. A Topology deals in *physical node
/// ids*; the separate Mapping class (mapping.hpp) places process-grid ranks
/// onto nodes.

#include <cstdint>
#include <memory>
#include <string>

#include "util/check.hpp"

namespace stormtrack {

/// Per-link communication cost parameters for the analytic cost model:
///   pair_time(h, b) = alpha + h * per_hop + b / bandwidth.
struct LinkParams {
  double alpha = 3e-6;           ///< Per-message startup latency (s).
  double per_hop = 50e-9;        ///< Additional latency per network hop (s).
  double bandwidth = 150.0e6;    ///< Link bandwidth (bytes/s).
  /// Fraction of the theoretical aggregate link capacity that irregular
  /// all-to-all traffic actually achieves on a direct network (routing
  /// imbalance, head-of-line blocking). Applied by Torus3D/Mesh2D
  /// aggregate_capacity().
  double utilization = 0.15;
};

/// 3D integer coordinate on a torus/mesh.
struct Coord3 {
  int x = 0;
  int y = 0;
  int z = 0;
  friend constexpr bool operator==(const Coord3&, const Coord3&) = default;
};

/// Abstract interconnect interface: node count, pairwise hop distance, and
/// whether the network is *direct* (mesh/torus/dragonfly — per-pair times
/// overlap, Alltoallv completion is the max over pairs) or
/// *indirect/switched* (fat-tree/leaf-spine — per-sender messages
/// serialize). This small surface is everything the performance models
/// consume: RedistTimeModel and SimComm use only hops(),
/// is_direct_network(), pair_time(), and aggregate_capacity(), so new
/// interconnects (dragonfly, fat-tree below) plug in without touching any
/// model code.
class ITopology {
 public:
  explicit ITopology(LinkParams link) : link_(link) {
    ST_CHECK_MSG(link.bandwidth > 0, "bandwidth must be positive");
  }
  virtual ~ITopology() = default;
  ITopology(const ITopology&) = delete;
  ITopology& operator=(const ITopology&) = delete;

  /// Total number of physical nodes (== maximum usable ranks).
  [[nodiscard]] virtual int num_nodes() const = 0;

  /// Minimal routing distance in links between two nodes; 0 when equal.
  [[nodiscard]] virtual int hops(int node_a, int node_b) const = 0;

  /// True for mesh/torus-style direct networks.
  [[nodiscard]] virtual bool is_direct_network() const = 0;

  /// Aggregate network capacity in bytes/s: the sum of link bandwidths the
  /// fabric can move concurrently. Used by the simulated runtime's
  /// contention term (phase time >= hop_bytes / aggregate_capacity): a
  /// phase that pushes many bytes across many links cannot finish faster
  /// than the fabric drains them, which is what makes hop-bytes costly on
  /// real machines (§V-E).
  [[nodiscard]] virtual double aggregate_capacity() const = 0;

  /// Human-readable identifier, e.g. "torus3d-8x8x16".
  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] const LinkParams& link() const { return link_; }

  /// Modeled time for one point-to-point message of \p bytes over
  /// \p hop_count links (direct-algorithm building block, §IV-C-1).
  [[nodiscard]] double pair_time(int hop_count, std::int64_t bytes) const {
    return link_.alpha + static_cast<double>(hop_count) * link_.per_hop +
           static_cast<double>(bytes) / link_.bandwidth;
  }

 protected:
  void require_node(int node) const {
    ST_CHECK_MSG(node >= 0 && node < num_nodes(),
                 "node " << node << " outside topology of " << num_nodes()
                         << " nodes");
  }

 private:
  LinkParams link_;
};

/// Historical name of the interface; all pre-refactor code (and most call
/// sites) read `Topology`, which is exactly the ITopology interface.
using Topology = ITopology;

/// 3D torus (Blue Gene/L-like): nodes on a dx×dy×dz lattice with wraparound
/// links in all three dimensions; hop distance is the sum of per-dimension
/// ring distances (XYZ dimension-ordered routing).
class Torus3D final : public ITopology {
 public:
  Torus3D(int dx, int dy, int dz, LinkParams link = bgl_links());

  [[nodiscard]] int num_nodes() const override { return dx_ * dy_ * dz_; }
  [[nodiscard]] int hops(int node_a, int node_b) const override;
  [[nodiscard]] bool is_direct_network() const override { return true; }
  /// 3 undirected torus links per node, derated by achievable utilization.
  [[nodiscard]] double aggregate_capacity() const override {
    return 3.0 * num_nodes() * link().bandwidth * link().utilization;
  }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] int dim_x() const { return dx_; }
  [[nodiscard]] int dim_y() const { return dy_; }
  [[nodiscard]] int dim_z() const { return dz_; }

  /// Coordinate of a node id (x fastest-varying).
  [[nodiscard]] Coord3 coord(int node) const;
  /// Node id of a coordinate (must be in range).
  [[nodiscard]] int node(const Coord3& c) const;

  /// Ring distance along one dimension of size \p dim.
  [[nodiscard]] static int ring_distance(int a, int b, int dim);

  /// Default Blue Gene/L-flavoured link parameters (175 MB/s torus links,
  /// ~3 µs software overhead, ~50 ns router traversal per hop).
  [[nodiscard]] static LinkParams bgl_links() {
    return LinkParams{3e-6, 50e-9, 150.0e6};
  }

 private:
  int dx_, dy_, dz_;
};

/// 2D mesh (no wraparound): hop distance is Manhattan distance. Used for
/// mapping ablations and as a generic direct network.
class Mesh2D final : public ITopology {
 public:
  Mesh2D(int dx, int dy, LinkParams link = Torus3D::bgl_links());

  [[nodiscard]] int num_nodes() const override { return dx_ * dy_; }
  [[nodiscard]] int hops(int node_a, int node_b) const override;
  [[nodiscard]] bool is_direct_network() const override { return true; }
  /// Exact undirected mesh link count, derated by achievable utilization.
  [[nodiscard]] double aggregate_capacity() const override {
    return ((dx_ - 1.0) * dy_ + dx_ * (dy_ - 1.0)) * link().bandwidth *
           link().utilization;
  }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] int dim_x() const { return dx_; }
  [[nodiscard]] int dim_y() const { return dy_; }

 private:
  int dx_, dy_;
};

/// Two-level switched network (fist-like Infiniband cluster): nodes hang off
/// leaf switches of \p nodes_per_switch ports; leaf switches connect through
/// one core switch. Hop distances: 0 (same node), 2 (same leaf switch),
/// 4 (across the core).
class SwitchedNetwork final : public ITopology {
 public:
  SwitchedNetwork(int nodes, int nodes_per_switch,
                  LinkParams link = fist_links());

  [[nodiscard]] int num_nodes() const override { return nodes_; }
  [[nodiscard]] int hops(int node_a, int node_b) const override;
  [[nodiscard]] bool is_direct_network() const override { return false; }
  /// Modestly oversubscribed fabric: half the node links active at once.
  [[nodiscard]] double aggregate_capacity() const override {
    return 0.5 * nodes_ * link().bandwidth;
  }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] int nodes_per_switch() const { return per_switch_; }

  /// Infiniband-flavoured link parameters (~1 GB/s, 2 µs startup,
  /// ~100 ns per switch traversal).
  [[nodiscard]] static LinkParams fist_links() {
    return LinkParams{2e-6, 100e-9, 1.0e9};
  }

 private:
  int nodes_, per_switch_;
};

/// Dragonfly (Cray XC-like): all-to-all connected *groups*, each group a set
/// of routers joined all-to-all, each router hosting a few nodes. Minimal
/// routing crosses at most one global link, so hop distances are tiny and
/// nearly flat: 0 (same node), 2 (same router), 4 (same group, across the
/// local all-to-all), 6 (different groups: local + global + local). A direct
/// network — per-pair transfers overlap.
class Dragonfly final : public ITopology {
 public:
  Dragonfly(int groups, int routers_per_group, int nodes_per_router,
            LinkParams link = dragonfly_links());

  [[nodiscard]] int num_nodes() const override {
    return groups_ * routers_per_group_ * nodes_per_router_;
  }
  [[nodiscard]] int hops(int node_a, int node_b) const override;
  [[nodiscard]] bool is_direct_network() const override { return true; }
  /// Each router contributes its local + global links; the global
  /// all-to-all keeps path diversity high, so derate less than a torus.
  [[nodiscard]] double aggregate_capacity() const override {
    return 2.0 * num_nodes() * link().bandwidth * link().utilization;
  }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] int groups() const { return groups_; }
  [[nodiscard]] int routers_per_group() const { return routers_per_group_; }
  [[nodiscard]] int nodes_per_router() const { return nodes_per_router_; }
  /// Nodes per group — the natural tile size for locality-preserving
  /// mappings (TiledMapping in mapping.hpp).
  [[nodiscard]] int group_size() const {
    return routers_per_group_ * nodes_per_router_;
  }

  /// Optical-global-link flavoured parameters: fast links, higher
  /// utilization than a torus thanks to adaptive routing.
  [[nodiscard]] static LinkParams dragonfly_links() {
    return LinkParams{1.5e-6, 100e-9, 1.0e9, 0.5};
  }

 private:
  int groups_, routers_per_group_, nodes_per_router_;
};

/// Three-level fat-tree (leaf / pod spine / core): nodes hang off leaf
/// switches, leaves group into pods under pod switches, pods connect through
/// core switches. Hop distances: 0 (same node), 2 (same leaf), 4 (same pod),
/// 6 (across the core). An indirect network — per-sender messages serialize
/// through the injection link, like SwitchedNetwork.
class FatTree final : public ITopology {
 public:
  FatTree(int nodes, int nodes_per_leaf, int leaves_per_pod,
          LinkParams link = SwitchedNetwork::fist_links());

  [[nodiscard]] int num_nodes() const override { return nodes_; }
  [[nodiscard]] int hops(int node_a, int node_b) const override;
  [[nodiscard]] bool is_direct_network() const override { return false; }
  /// Full-bisection at the leaf level, 2:1 oversubscribed above it.
  [[nodiscard]] double aggregate_capacity() const override {
    return 0.5 * nodes_ * link().bandwidth;
  }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] int nodes_per_leaf() const { return per_leaf_; }
  [[nodiscard]] int leaves_per_pod() const { return leaves_per_pod_; }
  /// Nodes per pod — the natural tile size for locality-preserving
  /// mappings (TiledMapping in mapping.hpp).
  [[nodiscard]] int pod_size() const { return per_leaf_ * leaves_per_pod_; }

 private:
  int nodes_, per_leaf_, leaves_per_pod_;
};

/// Standard machine factories used throughout the experiments.
/// Blue Gene/L partition of \p cores nodes as an 8×8×(cores/64) torus
/// (cores must be a positive multiple of 64; 1024 gives the real BG/L
/// midplane shape 8×8×16).
[[nodiscard]] std::unique_ptr<Torus3D> make_bluegene(int cores);

/// fist-like switched cluster: \p cores nodes, 16 per leaf switch.
[[nodiscard]] std::unique_ptr<SwitchedNetwork> make_fist(int cores);

/// Dragonfly of \p cores nodes: 16 routers per group, 4 nodes per router
/// (64-node groups; cores must be a positive multiple of 64).
[[nodiscard]] std::unique_ptr<Dragonfly> make_dragonfly(int cores);

/// Fat-tree of \p cores nodes: 16 per leaf, 8 leaves per pod (128-node
/// pods).
[[nodiscard]] std::unique_ptr<FatTree> make_fattree(int cores);

}  // namespace stormtrack
