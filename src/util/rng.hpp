#pragma once

/// \file rng.hpp
/// Deterministic pseudo-random number generation.
///
/// All stochastic components of the simulator (synthetic traces, cloud-system
/// evolution, profiling noise) draw from Xoshiro256** seeded via SplitMix64,
/// so every experiment is bit-reproducible across hosts and runs without
/// depending on libstdc++'s unspecified distribution implementations.

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

#include "util/check.hpp"

namespace stormtrack {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: fast, high-quality 64-bit PRNG (Blackman & Vigna).
/// Satisfies the C++ UniformRandomBitGenerator requirements.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x5eed5eed5eed5eedULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    ST_CHECK_MSG(lo <= hi, "uniform_int needs lo <= hi, got [" << lo << ", "
                                                               << hi << "]");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    // Rejection sampling to kill modulo bias (span never 0: hi-lo+1 >= 1,
    // and span == 0 only if the full 2^64 range is requested, handled below).
    if (span == 0) return static_cast<std::int64_t>((*this)());
    const std::uint64_t limit = max() - max() % span;
    std::uint64_t v;
    do {
      v = (*this)();
    } while (v >= limit);
    return lo + static_cast<std::int64_t>(v % span);
  }

  /// Standard normal via Marsaglia polar method (deterministic given state).
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    have_spare_ = true;
    return u * m;
  }

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stdev) { return mean + stdev * normal(); }

  /// True with probability \p p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Complete generator position, for checkpoint/restart: restoring a saved
  /// state resumes the exact output sequence (including a buffered
  /// Marsaglia spare, so normal() draws line up too).
  struct State {
    std::array<std::uint64_t, 4> s{};
    double spare = 0.0;
    bool have_spare = false;
  };

  [[nodiscard]] State state() const {
    return State{{state_[0], state_[1], state_[2], state_[3]}, spare_,
                 have_spare_};
  }

  void set_state(const State& st) {
    for (int i = 0; i < 4; ++i) state_[i] = st.s[i];
    spare_ = st.spare;
    have_spare_ = st.have_spare;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace stormtrack
