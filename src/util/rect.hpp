#pragma once

/// \file rect.hpp
/// Integer rectangles on a discrete grid.
///
/// Rectangles are half-open in neither dimension: a Rect{x, y, w, h} covers
/// the w×h cells with column indices [x, x+w) and row indices [y, y+h).
/// They are used both for processor sub-grids (cells = MPI-style ranks laid
/// out row-major on a Px×Py process grid) and for nest bounding boxes on the
/// simulation grid.

#include <algorithm>
#include <cstdint>
#include <ostream>
#include <string>

#include "util/check.hpp"

namespace stormtrack {

/// Axis-aligned integer rectangle: origin (x, y), extent w×h cells.
struct Rect {
  int x = 0;  ///< Leftmost column index.
  int y = 0;  ///< Topmost row index.
  int w = 0;  ///< Width in cells (columns).
  int h = 0;  ///< Height in cells (rows).

  constexpr Rect() = default;
  constexpr Rect(int x_, int y_, int w_, int h_) : x(x_), y(y_), w(w_), h(h_) {}

  /// Number of cells covered. Empty rectangles have area 0.
  [[nodiscard]] constexpr std::int64_t area() const {
    return empty() ? 0 : static_cast<std::int64_t>(w) * h;
  }

  /// True when the rectangle covers no cells.
  [[nodiscard]] constexpr bool empty() const { return w <= 0 || h <= 0; }

  /// One-past-the-right column index.
  [[nodiscard]] constexpr int x_end() const { return x + w; }
  /// One-past-the-bottom row index.
  [[nodiscard]] constexpr int y_end() const { return y + h; }

  /// True when cell (cx, cy) lies inside the rectangle.
  [[nodiscard]] constexpr bool contains(int cx, int cy) const {
    return cx >= x && cx < x_end() && cy >= y && cy < y_end();
  }

  /// True when \p other lies fully inside this rectangle.
  [[nodiscard]] constexpr bool contains(const Rect& other) const {
    if (other.empty()) return true;
    return other.x >= x && other.y >= y && other.x_end() <= x_end() &&
           other.y_end() <= y_end();
  }

  /// Cell-set intersection; empty() result when disjoint.
  [[nodiscard]] constexpr Rect intersect(const Rect& o) const {
    const int nx = std::max(x, o.x);
    const int ny = std::max(y, o.y);
    const int nx2 = std::min(x_end(), o.x_end());
    const int ny2 = std::min(y_end(), o.y_end());
    if (nx2 <= nx || ny2 <= ny) return Rect{};
    return Rect{nx, ny, nx2 - nx, ny2 - ny};
  }

  /// True when the two rectangles share at least one cell.
  [[nodiscard]] constexpr bool overlaps(const Rect& o) const {
    return !intersect(o).empty();
  }

  /// Aspect ratio >= 1 (long side / short side); 1 for squares.
  /// Empty rectangles report an aspect ratio of 0.
  [[nodiscard]] double aspect_ratio() const {
    if (empty()) return 0.0;
    const auto lo = static_cast<double>(std::min(w, h));
    const auto hi = static_cast<double>(std::max(w, h));
    return hi / lo;
  }

  /// Smallest rectangle containing both operands (union bounding box).
  [[nodiscard]] Rect bounding_union(const Rect& o) const {
    if (empty()) return o;
    if (o.empty()) return *this;
    const int nx = std::min(x, o.x);
    const int ny = std::min(y, o.y);
    const int nx2 = std::max(x_end(), o.x_end());
    const int ny2 = std::max(y_end(), o.y_end());
    return Rect{nx, ny, nx2 - nx, ny2 - ny};
  }

  friend constexpr bool operator==(const Rect&, const Rect&) = default;

  [[nodiscard]] std::string to_string() const;
};

std::ostream& operator<<(std::ostream& os, const Rect& r);

/// Row-major rank of the north-west corner of \p r on a process grid of
/// width \p grid_width (the paper's "start rank", Tables I/II).
[[nodiscard]] constexpr int start_rank(const Rect& r, int grid_width) {
  return r.y * grid_width + r.x;
}

/// |A ∩ B| / |A ∪ B| over cell sets of two rectangles (Jaccard index).
/// Returns 0 when both are empty.
[[nodiscard]] double jaccard(const Rect& a, const Rect& b);

/// |A ∩ B| / |A| — the fraction of \p a covered by \p b. Returns 0 when
/// \p a is empty.
[[nodiscard]] double coverage_fraction(const Rect& a, const Rect& b);

}  // namespace stormtrack
