#pragma once

/// \file fnv.hpp
/// FNV-1a fingerprinting for byte-identical result comparison.
///
/// The determinism suite reduces whole result structures (PDA outputs,
/// pipeline outcomes, sweep grids) to one 64-bit fingerprint and asserts
/// serial and N-thread runs agree. Doubles are hashed by bit pattern, so a
/// matching fingerprint means *byte*-identical floating point, not just
/// approximately equal values.

#include <bit>
#include <cstdint>
#include <string_view>

namespace stormtrack {

inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/// Incremental FNV-1a accumulator.
class Fingerprint {
 public:
  void add_bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash_ ^= p[i];
      hash_ *= kFnvPrime;
    }
  }

  void add(std::int64_t v) { add_bytes(&v, sizeof(v)); }
  void add(std::uint64_t v) { add_bytes(&v, sizeof(v)); }
  void add(int v) { add(static_cast<std::int64_t>(v)); }
  /// Bit-pattern hash: distinguishes -0.0 from 0.0 and every NaN payload,
  /// which is exactly what "byte-identical" requires.
  void add(double v) { add(std::bit_cast<std::uint64_t>(v)); }
  void add(std::string_view s) {
    add(s.size());
    add_bytes(s.data(), s.size());
  }

  [[nodiscard]] std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = kFnvOffsetBasis;
};

}  // namespace stormtrack
