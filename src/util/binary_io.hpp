#pragma once

/// \file binary_io.hpp
/// Little-endian binary encoding primitives shared by every durable or
/// opaque byte format in the library: the checkpoint file format (ckpt/),
/// the sweep journal (sweep/), and the nest-workload state blobs that ride
/// opaquely inside coupled checkpoints (wsim/workload.hpp).
///
/// BinaryWriter appends typed values to a growable byte buffer;
/// BinaryReader consumes them back with hard bounds checks — every read
/// past the end throws CheckError naming the field being read and the
/// offset, so a truncated checkpoint is rejected with a descriptive error
/// instead of returning garbage. Doubles are encoded by bit pattern
/// (std::bit_cast), so serialize → deserialize round-trips are
/// *byte*-identical: a resumed run's floating-point state matches the
/// uninterrupted run exactly, -0.0 and NaN payloads included.
///
/// The encoding is explicitly little-endian regardless of host byte order,
/// making checkpoint files portable across machines.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/check.hpp"

namespace stormtrack {

/// Append-only typed encoder; see file comment.
class BinaryWriter {
 public:
  void put_u8(std::uint8_t v) { buffer_.push_back(static_cast<std::byte>(v)); }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }

  void put_u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      put_u8(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFu));
  }

  void put_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      put_u8(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFu));
  }

  void put_i32(std::int32_t v) { put_u32(static_cast<std::uint32_t>(v)); }
  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }
  void put_f64(double v) { put_u64(std::bit_cast<std::uint64_t>(v)); }

  /// Length-prefixed string (u32 length + raw bytes).
  void put_string(std::string_view s) {
    put_u32(static_cast<std::uint32_t>(s.size()));
    const auto* p = reinterpret_cast<const std::byte*>(s.data());
    buffer_.insert(buffer_.end(), p, p + s.size());
  }

  void put_bytes(std::span<const std::byte> bytes) {
    buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  }

  /// Container element count; pairs with BinaryReader::get_count.
  void put_count(std::size_t n) { put_u64(n); }

  [[nodiscard]] const std::vector<std::byte>& bytes() const { return buffer_; }
  [[nodiscard]] std::vector<std::byte> take() { return std::move(buffer_); }
  [[nodiscard]] std::size_t size() const { return buffer_.size(); }

 private:
  std::vector<std::byte> buffer_;
};

/// Bounds-checked typed decoder; see file comment. The view must outlive
/// the reader.
class BinaryReader {
 public:
  explicit BinaryReader(std::span<const std::byte> bytes) : bytes_(bytes) {}

  [[nodiscard]] std::size_t offset() const { return offset_; }
  [[nodiscard]] std::size_t remaining() const {
    return bytes_.size() - offset_;
  }
  [[nodiscard]] bool exhausted() const { return offset_ == bytes_.size(); }

  /// Read \p n raw bytes as a field named \p what (for error messages).
  [[nodiscard]] std::span<const std::byte> get_bytes(std::size_t n,
                                                     std::string_view what) {
    ST_CHECK_MSG(remaining() >= n,
                 "truncated data: reading " << what << " (" << n
                                            << " bytes) at offset " << offset_
                                            << " of " << bytes_.size());
    const auto out = bytes_.subspan(offset_, n);
    offset_ += n;
    return out;
  }

  [[nodiscard]] std::uint8_t get_u8(std::string_view what) {
    return static_cast<std::uint8_t>(get_bytes(1, what)[0]);
  }

  [[nodiscard]] bool get_bool(std::string_view what) {
    const std::uint8_t v = get_u8(what);
    ST_CHECK_MSG(v <= 1, "corrupt data: " << what << " is " << int{v}
                                          << ", expected 0 or 1");
    return v != 0;
  }

  [[nodiscard]] std::uint32_t get_u32(std::string_view what) {
    const auto b = get_bytes(4, what);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
    return v;
  }

  [[nodiscard]] std::uint64_t get_u64(std::string_view what) {
    const auto b = get_bytes(8, what);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
    return v;
  }

  [[nodiscard]] std::int32_t get_i32(std::string_view what) {
    return static_cast<std::int32_t>(get_u32(what));
  }
  [[nodiscard]] std::int64_t get_i64(std::string_view what) {
    return static_cast<std::int64_t>(get_u64(what));
  }
  [[nodiscard]] double get_f64(std::string_view what) {
    return std::bit_cast<double>(get_u64(what));
  }

  [[nodiscard]] std::string get_string(std::string_view what) {
    const std::uint32_t n = get_u32(what);
    const auto b = get_bytes(n, what);
    return std::string(reinterpret_cast<const char*>(b.data()), b.size());
  }

  /// Element count of a container field, sanity-capped so a corrupt length
  /// prefix fails loudly instead of attempting a huge allocation.
  [[nodiscard]] std::size_t get_count(std::string_view what,
                                      std::size_t max = 1u << 28) {
    const std::uint64_t n = get_u64(what);
    ST_CHECK_MSG(n <= max, "corrupt data: " << what << " count " << n
                                            << " exceeds sanity cap " << max);
    return static_cast<std::size_t>(n);
  }

 private:
  std::span<const std::byte> bytes_;
  std::size_t offset_ = 0;
};

}  // namespace stormtrack
