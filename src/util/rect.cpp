#include "util/rect.hpp"

#include <sstream>

namespace stormtrack {

std::string Rect::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << "Rect{x=" << r.x << ", y=" << r.y << ", w=" << r.w
            << ", h=" << r.h << '}';
}

double jaccard(const Rect& a, const Rect& b) {
  const std::int64_t inter = a.intersect(b).area();
  const std::int64_t uni = a.area() + b.area() - inter;
  if (uni == 0) return 0.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double coverage_fraction(const Rect& a, const Rect& b) {
  if (a.area() == 0) return 0.0;
  return static_cast<double>(a.intersect(b).area()) /
         static_cast<double>(a.area());
}

}  // namespace stormtrack
