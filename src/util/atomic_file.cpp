#include "util/atomic_file.hpp"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <system_error>

#include <cstring>

#include "util/check.hpp"
#include "util/fs_fault.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define STORMTRACK_HAVE_FSYNC 1
#endif

namespace stormtrack {

namespace {

/// Unique-per-call temp sibling: pid + a process-wide counter, so
/// concurrent writers (sweep workers, parallel test cases) never collide
/// on the same temp name even when targeting the same destination.
std::filesystem::path temp_sibling(const std::filesystem::path& path) {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
#if STORMTRACK_HAVE_FSYNC
  const long pid = static_cast<long>(::getpid());
#else
  const long pid = 0;
#endif
  return path.parent_path() /
         (path.filename().string() + ".tmp." + std::to_string(pid) + "." +
          std::to_string(n));
}

std::atomic<std::uint64_t> g_files_written{0};
std::atomic<std::uint64_t> g_file_syncs{0};
std::atomic<std::uint64_t> g_dir_syncs{0};

/// fsync an open file by path (no-op on platforms without fsync).
void sync_path(const std::filesystem::path& path, bool directory) {
  const FsFaultDecision fault = fs_fault_decide("fsync", path);
  if (fault.fail) {
    // Directory syncs only strengthen durability ordering; a file sync
    // failure means the data may not be on the device — that must fail
    // the write, exactly as the un-injected contract promises.
    if (directory) return;
    ST_CHECK_MSG(false, "fsync of " << path << " failed: "
                                    << std::strerror(fault.error_no)
                                    << " (injected fault)");
  }
#if STORMTRACK_HAVE_FSYNC
  const int flags = directory ? O_RDONLY | O_DIRECTORY : O_RDONLY;
  const int fd = ::open(path.c_str(), flags);
  // Some filesystems refuse to open or sync directories; the rename is
  // still atomic, only its durability ordering is weakened — not worth
  // failing the write over.
  if (fd < 0) return;
  if (::fsync(fd) == 0) {
    (directory ? g_dir_syncs : g_file_syncs)
        .fetch_add(1, std::memory_order_relaxed);
  }
  ::close(fd);
#else
  (void)path;
  (void)directory;
#endif
}

}  // namespace

void write_file_atomic(const std::filesystem::path& path,
                       std::span<const std::byte> bytes) {
  ST_CHECK_MSG(!path.empty(), "write_file_atomic: empty path");
  const FsFaultDecision fault = fs_fault_decide("write", path);
  if (fault.fail) {
    // The destination is untouched: the fault lands before the temp file
    // exists, like open() or the first write returning ENOSPC would.
    ST_CHECK_MSG(false, "cannot write " << path << ": "
                                        << std::strerror(fault.error_no)
                                        << " (injected fault)");
  }
  if (!path.parent_path().empty())
    std::filesystem::create_directories(path.parent_path());
  const std::filesystem::path tmp = temp_sibling(path);
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    ST_CHECK_MSG(os.good(), "cannot open " << tmp << " for writing");
    if (!bytes.empty())
      os.write(reinterpret_cast<const char*>(bytes.data()),
               static_cast<std::streamsize>(bytes.size()));
    os.flush();
    if (!os.good()) {
      os.close();
      std::error_code ignored;
      std::filesystem::remove(tmp, ignored);
      ST_CHECK_MSG(false, "failed writing " << bytes.size() << " bytes to "
                                            << tmp);
    }
  }
  try {
    sync_path(tmp, /*directory=*/false);
  } catch (...) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    throw;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    ST_CHECK_MSG(false, "atomic rename " << tmp << " -> " << path
                                         << " failed: " << ec.message());
  }
  const std::filesystem::path dir =
      path.parent_path().empty() ? std::filesystem::path(".")
                                 : path.parent_path();
  sync_path(dir, /*directory=*/true);
  g_files_written.fetch_add(1, std::memory_order_relaxed);
}

AtomicFileCounters atomic_file_counters() {
  AtomicFileCounters c;
  c.files_written = g_files_written.load(std::memory_order_relaxed);
  c.file_syncs = g_file_syncs.load(std::memory_order_relaxed);
  c.dir_syncs = g_dir_syncs.load(std::memory_order_relaxed);
  return c;
}

void write_file_atomic(const std::filesystem::path& path,
                       std::string_view text) {
  write_file_atomic(
      path, std::span<const std::byte>(
                reinterpret_cast<const std::byte*>(text.data()), text.size()));
}

std::vector<std::byte> read_file_bytes(const std::filesystem::path& path) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  ST_CHECK_MSG(is.good(), "cannot open " << path << " for reading");
  const std::streamsize size = is.tellg();
  ST_CHECK_MSG(size >= 0, "cannot determine size of " << path);
  is.seekg(0);
  std::vector<std::byte> bytes(static_cast<std::size_t>(size));
  if (size > 0) is.read(reinterpret_cast<char*>(bytes.data()), size);
  ST_CHECK_MSG(is.good() || size == 0, "failed reading " << path);
  return bytes;
}

}  // namespace stormtrack
