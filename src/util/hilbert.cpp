#include "util/hilbert.hpp"

#include <algorithm>

namespace stormtrack {

namespace {

/// Rotate/flip the quadrant-local coordinate per the Hilbert recursion.
void rotate(std::uint64_t n, std::uint64_t rx, std::uint64_t ry,
            std::uint64_t& x, std::uint64_t& y) {
  if (ry == 0) {
    if (rx == 1) {
      x = n - 1 - x;
      y = n - 1 - y;
    }
    std::swap(x, y);
  }
}

}  // namespace

CellXY hilbert_d2xy(int order, std::uint64_t d) {
  ST_CHECK_MSG(order >= 0 && order < 31, "unsupported Hilbert order "
                                             << order);
  const std::uint64_t n = 1ULL << order;
  ST_CHECK_MSG(d < n * n, "Hilbert distance " << d << " outside curve");
  std::uint64_t x = 0, y = 0, t = d;
  for (std::uint64_t s = 1; s < n; s *= 2) {
    const std::uint64_t rx = 1 & (t / 2);
    const std::uint64_t ry = 1 & (t ^ rx);
    rotate(s, rx, ry, x, y);
    x += s * rx;
    y += s * ry;
    t /= 4;
  }
  return CellXY{static_cast<int>(x), static_cast<int>(y)};
}

std::uint64_t hilbert_xy2d(int order, CellXY p) {
  ST_CHECK_MSG(order >= 0 && order < 31, "unsupported Hilbert order "
                                             << order);
  const std::uint64_t n = 1ULL << order;
  ST_CHECK_MSG(p.x >= 0 && p.y >= 0 && static_cast<std::uint64_t>(p.x) < n &&
                   static_cast<std::uint64_t>(p.y) < n,
               "point outside 2^" << order << " grid");
  std::uint64_t x = static_cast<std::uint64_t>(p.x);
  std::uint64_t y = static_cast<std::uint64_t>(p.y);
  std::uint64_t d = 0;
  for (std::uint64_t s = n / 2; s > 0; s /= 2) {
    const std::uint64_t rx = (x & s) > 0 ? 1 : 0;
    const std::uint64_t ry = (y & s) > 0 ? 1 : 0;
    d += s * s * ((3 * rx) ^ ry);
    rotate(s, rx, ry, x, y);
  }
  return d;
}

HilbertOrder::HilbertOrder(int width, int height)
    : width_(width), height_(height) {
  ST_CHECK_MSG(width >= 1 && height >= 1,
               "grid must be positive, got " << width << "x" << height);
  int order = 0;
  while ((1 << order) < std::max(width, height)) ++order;
  const std::uint64_t n = 1ULL << order;

  order_.reserve(static_cast<std::size_t>(width) * height);
  position_.assign(static_cast<std::size_t>(width) * height, -1);
  for (std::uint64_t d = 0; d < n * n; ++d) {
    const CellXY c = hilbert_d2xy(order, d);
    if (c.x >= width || c.y >= height) continue;  // outside the real grid
    const int rank = c.y * width + c.x;
    position_[static_cast<std::size_t>(rank)] =
        static_cast<int>(order_.size());
    order_.push_back(rank);
  }
  ST_CHECK(static_cast<int>(order_.size()) == size());
}

int HilbertOrder::rank_at(int i) const {
  ST_CHECK_MSG(i >= 0 && i < size(), "curve position " << i
                                                       << " out of range");
  return order_[static_cast<std::size_t>(i)];
}

int HilbertOrder::position_of(int rank) const {
  ST_CHECK_MSG(rank >= 0 && rank < size(), "rank " << rank
                                                   << " out of range");
  return position_[static_cast<std::size_t>(rank)];
}

}  // namespace stormtrack
