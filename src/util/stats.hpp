#pragma once

/// \file stats.hpp
/// Small statistics toolkit: summary statistics and Pearson correlation,
/// used by the experiment harnesses (paper §V reports means, percentage
/// improvements, and a Pearson coefficient for the execution-time model).

#include <span>
#include <vector>

namespace stormtrack {

/// Arithmetic mean; 0 for an empty span.
[[nodiscard]] double mean(std::span<const double> xs);

/// Population standard deviation; 0 for spans with fewer than 2 elements.
[[nodiscard]] double stdev(std::span<const double> xs);

/// Pearson correlation coefficient between two equal-length series.
/// Returns 0 when either series is constant or shorter than 2.
[[nodiscard]] double pearson(std::span<const double> xs,
                             std::span<const double> ys);

/// Relative improvement of \p candidate over \p baseline in percent:
/// 100 * (baseline - candidate) / baseline. Positive means candidate is
/// better (smaller). Returns 0 when baseline is 0.
[[nodiscard]] double percent_improvement(double baseline, double candidate);

/// Five-number-style summary of a series.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stdev = 0.0;
  double median = 0.0;
};

/// Compute a Summary (copies and sorts internally for the median).
[[nodiscard]] Summary summarize(std::span<const double> xs);

}  // namespace stormtrack
