#pragma once

/// \file image.hpp
/// Minimal PGM/PPM image output for fields and allocation maps.
///
/// The paper's Fig. 1 renders the QCLOUD field ("darker regions correspond
/// to higher cloud water mixing ratios"); these helpers let the examples
/// and benches dump the simulated fields and processor-allocation layouts
/// as portable grey/pixmaps viewable anywhere, with no image library
/// dependency.

#include <cstdint>
#include <filesystem>
#include <vector>

#include "util/grid2d.hpp"

namespace stormtrack {

/// 8-bit RGB pixel.
struct Rgb {
  std::uint8_t r = 0;
  std::uint8_t g = 0;
  std::uint8_t b = 0;
  friend constexpr bool operator==(const Rgb&, const Rgb&) = default;
};

/// Write a binary PGM (P5) greyscale image.
void write_pgm(const Grid2D<std::uint8_t>& image,
               const std::filesystem::path& path);

/// Write a binary PPM (P6) colour image.
void write_ppm(const Grid2D<Rgb>& image, const std::filesystem::path& path);

/// Map a scalar field linearly to grey levels. \p invert makes high values
/// dark (the paper's Fig. 1 convention for QCLOUD). Constant fields map to
/// mid-grey.
[[nodiscard]] Grid2D<std::uint8_t> field_to_grey(const Grid2D<double>& field,
                                                 bool invert = false);

/// Render an integer label map (e.g. nest-id per processor, -1 = free) with
/// a deterministic distinct-colour palette; label -1 renders dark grey.
[[nodiscard]] Grid2D<Rgb> labels_to_rgb(const Grid2D<int>& labels);

}  // namespace stormtrack
