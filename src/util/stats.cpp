#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace stormtrack {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stdev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size()));
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  ST_CHECK_MSG(xs.size() == ys.size(),
               "pearson needs equal lengths, got " << xs.size() << " and "
                                                   << ys.size());
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double percent_improvement(double baseline, double candidate) {
  if (baseline == 0.0) return 0.0;
  return 100.0 * (baseline - candidate) / baseline;
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.mean = mean(xs);
  s.stdev = stdev(xs);
  const std::size_t n = sorted.size();
  s.median = (n % 2 == 1) ? sorted[n / 2]
                          : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
  return s;
}

}  // namespace stormtrack
