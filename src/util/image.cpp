#include "util/image.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/atomic_file.hpp"
#include "util/check.hpp"

namespace stormtrack {

namespace {

// Netpbm binary header + raw pixel bytes, assembled in memory so the file
// itself can be replaced atomically (never observable half-written).
std::string netpbm_bytes(const char* format, int width, int height,
                         const void* pixels, std::size_t num_bytes) {
  std::string out = std::string(format) + "\n" + std::to_string(width) + " " +
                    std::to_string(height) + "\n255\n";
  out.append(static_cast<const char*>(pixels), num_bytes);
  return out;
}

}  // namespace

void write_pgm(const Grid2D<std::uint8_t>& image,
               const std::filesystem::path& path) {
  ST_CHECK_MSG(!image.empty(), "cannot write an empty image");
  write_file_atomic(path, netpbm_bytes("P5", image.width(), image.height(),
                                       image.data().data(), image.size()));
}

void write_ppm(const Grid2D<Rgb>& image, const std::filesystem::path& path) {
  ST_CHECK_MSG(!image.empty(), "cannot write an empty image");
  static_assert(sizeof(Rgb) == 3, "Rgb must be packed");
  write_file_atomic(path, netpbm_bytes("P6", image.width(), image.height(),
                                       image.data().data(), image.size() * 3));
}

Grid2D<std::uint8_t> field_to_grey(const Grid2D<double>& field, bool invert) {
  ST_CHECK_MSG(!field.empty(), "cannot render an empty field");
  double lo = field.data().front(), hi = lo;
  for (double v : field.data()) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  Grid2D<std::uint8_t> out(field.width(), field.height());
  const double span = hi - lo;
  for (int y = 0; y < field.height(); ++y) {
    for (int x = 0; x < field.width(); ++x) {
      double t = span > 0.0 ? (field(x, y) - lo) / span : 0.5;
      if (invert) t = 1.0 - t;
      out(x, y) = static_cast<std::uint8_t>(std::lround(255.0 * t));
    }
  }
  return out;
}

Grid2D<Rgb> labels_to_rgb(const Grid2D<int>& labels) {
  ST_CHECK_MSG(!labels.empty(), "cannot render an empty label map");
  // Deterministic distinct-ish palette via a hashed golden-ratio hue walk.
  auto color_of = [](int label) {
    if (label < 0) return Rgb{40, 40, 40};
    const double hue = std::fmod(0.618033988749895 * (label + 1), 1.0);
    const double h6 = hue * 6.0;
    const int sector = static_cast<int>(h6) % 6;
    const double f = h6 - static_cast<int>(h6);
    const auto byte = [](double v) {
      return static_cast<std::uint8_t>(std::lround(55.0 + 200.0 * v));
    };
    const std::uint8_t p = byte(0.0), q = byte(1.0 - f), t = byte(f),
                       v = byte(1.0);
    switch (sector) {
      case 0: return Rgb{v, t, p};
      case 1: return Rgb{q, v, p};
      case 2: return Rgb{p, v, t};
      case 3: return Rgb{p, q, v};
      case 4: return Rgb{t, p, v};
      default: return Rgb{v, p, q};
    }
  };
  Grid2D<Rgb> out(labels.width(), labels.height());
  for (int y = 0; y < labels.height(); ++y)
    for (int x = 0; x < labels.width(); ++x) out(x, y) = color_of(labels(x, y));
  return out;
}

}  // namespace stormtrack
