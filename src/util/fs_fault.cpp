#include "util/fs_fault.hpp"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <vector>

#include "util/check.hpp"

namespace stormtrack {

namespace {

std::mutex g_mutex;
std::optional<FsFaultSpec> g_spec;
int g_matched = 0;  ///< Matching operations seen since install.
std::atomic<std::uint64_t> g_injected{0};

}  // namespace

void fs_fault_install(const FsFaultSpec& spec) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  g_spec = spec;
  g_matched = 0;
}

void fs_fault_clear() {
  const std::lock_guard<std::mutex> lock(g_mutex);
  g_spec.reset();
  g_matched = 0;
}

bool fs_fault_installed() {
  const std::lock_guard<std::mutex> lock(g_mutex);
  return g_spec.has_value();
}

std::uint64_t fs_fault_injected_count() {
  return g_injected.load(std::memory_order_relaxed);
}

FsFaultDecision fs_fault_decide(std::string_view op_name,
                                const std::filesystem::path& path) {
  FsFaultDecision decision;
  const std::lock_guard<std::mutex> lock(g_mutex);
  if (!g_spec.has_value()) return decision;
  const FsFaultSpec& spec = *g_spec;
  if (!spec.op.empty() && spec.op != op_name) return decision;
  if (!spec.path_contains.empty() &&
      path.string().find(spec.path_contains) == std::string::npos) {
    return decision;
  }
  const int index = g_matched++;
  if (index < spec.skip) return decision;
  if (spec.count >= 0 && index >= spec.skip + spec.count) return decision;
  decision.fail = true;
  decision.error_no = spec.error_no != 0 ? spec.error_no : ENOSPC;
  if (op_name == "write") decision.short_write_bytes = spec.short_write_bytes;
  g_injected.fetch_add(1, std::memory_order_relaxed);
  return decision;
}

namespace {

/// Split on ':' keeping empty segments (so `write::count=2` reads as
/// "any path").
std::vector<std::string> split_colons(const std::string& text) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t colon = text.find(':', start);
    if (colon == std::string::npos) {
      parts.push_back(text.substr(start));
      return parts;
    }
    parts.push_back(text.substr(start, colon - start));
    start = colon + 1;
  }
}

int parse_errno_name(const std::string& value) {
  if (value == "ENOSPC") return ENOSPC;
  if (value == "EIO") return EIO;
  if (value == "EDQUOT") return EDQUOT;
  char* end = nullptr;
  const long n = std::strtol(value.c_str(), &end, 10);
  ST_CHECK_MSG(end != value.c_str() && *end == '\0' && n > 0,
               "fs-fault spec: unknown errno \"" << value
                                                 << "\" (try ENOSPC, EIO, "
                                                    "or a number)");
  return static_cast<int>(n);
}

int parse_int(const std::string& value, const char* what) {
  char* end = nullptr;
  const long n = std::strtol(value.c_str(), &end, 10);
  ST_CHECK_MSG(end != value.c_str() && *end == '\0',
               "fs-fault spec: " << what << " \"" << value
                                 << "\" is not a number");
  return static_cast<int>(n);
}

}  // namespace

FsFaultSpec parse_fs_fault_spec(const std::string& text) {
  const std::vector<std::string> parts = split_colons(text);
  ST_CHECK_MSG(parts.size() >= 2,
               "fs-fault spec \"" << text
                                  << "\" needs at least OP:PATH_SUBSTR "
                                     "segments");
  FsFaultSpec spec;
  spec.op = parts[0];
  ST_CHECK_MSG(spec.op.empty() || spec.op == "write" || spec.op == "fsync",
               "fs-fault spec: op must be \"write\", \"fsync\", or empty, "
               "got \""
                   << spec.op << "\"");
  spec.path_contains = parts[1];
  for (std::size_t i = 2; i < parts.size(); ++i) {
    const std::string& part = parts[i];
    const std::size_t eq = part.find('=');
    ST_CHECK_MSG(eq != std::string::npos,
                 "fs-fault spec: segment \"" << part
                                             << "\" is not key=value");
    const std::string key = part.substr(0, eq);
    const std::string value = part.substr(eq + 1);
    if (key == "skip") {
      spec.skip = parse_int(value, "skip");
      ST_CHECK_MSG(spec.skip >= 0, "fs-fault spec: skip must be >= 0");
    } else if (key == "count") {
      spec.count = parse_int(value, "count");
    } else if (key == "errno") {
      spec.error_no = parse_errno_name(value);
    } else if (key == "short") {
      spec.short_write_bytes = parse_int(value, "short");
    } else {
      ST_CHECK_MSG(false, "fs-fault spec: unknown key \""
                              << key
                              << "\" (known: skip, count, errno, short)");
    }
  }
  return spec;
}

}  // namespace stormtrack
