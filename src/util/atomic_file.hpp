#pragma once

/// \file atomic_file.hpp
/// Torn-write-safe file output.
///
/// Every durable artifact the system writes — checkpoints, sweep journals,
/// bench JSON summaries, traces, fault plans, images — must never be
/// observable in a half-written state: a reader (or a resumed run) that
/// finds a file either sees the complete previous version or the complete
/// new one. write_file_atomic implements the standard protocol:
///
///   1. write the full contents to a unique sibling temp file;
///   2. flush and fsync the temp file (data reaches the device, not just
///      the page cache);
///   3. rename(2) it over the destination — atomic on POSIX filesystems;
///   4. fsync the containing directory so the rename itself survives a
///      crash.
///
/// A crash at any step leaves either the old file or a stray `.tmp.*`
/// sibling, never a truncated destination. Parent directories are created
/// as needed.

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace stormtrack {

/// Process-wide counters for the durability protocol above. Monotonic
/// since process start; read them before and after an operation and diff.
/// They exist so tests (and post-mortem debugging) can prove the fsync
/// steps actually ran — a silently skipped step 2 or 4 still "works" until
/// the first power loss, which is exactly when it must not.
struct AtomicFileCounters {
  std::uint64_t files_written = 0;  ///< completed write_file_atomic calls
  std::uint64_t file_syncs = 0;     ///< step 2: temp-file fsync succeeded
  std::uint64_t dir_syncs = 0;      ///< step 4: directory fsync succeeded
};

/// Snapshot of the process-wide counters (thread-safe, relaxed reads).
[[nodiscard]] AtomicFileCounters atomic_file_counters();

/// Atomically replace \p path with \p bytes (see file comment). Throws
/// CheckError on any I/O failure; the destination is untouched on failure.
void write_file_atomic(const std::filesystem::path& path,
                       std::span<const std::byte> bytes);

/// Text overload of write_file_atomic.
void write_file_atomic(const std::filesystem::path& path,
                       std::string_view text);

/// Read a whole file into a byte buffer. Throws CheckError when the file
/// does not exist or cannot be read.
[[nodiscard]] std::vector<std::byte> read_file_bytes(
    const std::filesystem::path& path);

}  // namespace stormtrack
