#pragma once

/// \file grid2d.hpp
/// Dense row-major 2D field container used for simulation fields
/// (QCLOUD, OLR) and for rank-indexed lookups on process grids.

#include <cstddef>
#include <vector>

#include "util/check.hpp"
#include "util/rect.hpp"

namespace stormtrack {

/// Dense width×height field of T, row-major, (x, y) indexed with x the
/// column (fast-varying) index.
template <typename T>
class Grid2D {
 public:
  Grid2D() = default;

  /// Construct a width×height grid with every cell set to \p fill.
  Grid2D(int width, int height, const T& fill = T{})
      : width_(width), height_(height) {
    ST_CHECK_MSG(width >= 0 && height >= 0,
                 "grid dims must be non-negative, got " << width << "x"
                                                        << height);
    data_.assign(static_cast<std::size_t>(width) * height, fill);
  }

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  /// Whole-grid bounding rectangle.
  [[nodiscard]] Rect bounds() const { return Rect{0, 0, width_, height_}; }

  /// True when (x, y) is a valid cell.
  [[nodiscard]] bool in_bounds(int x, int y) const {
    return x >= 0 && x < width_ && y >= 0 && y < height_;
  }

  [[nodiscard]] T& at(int x, int y) {
    ST_CHECK_MSG(in_bounds(x, y), "grid index (" << x << "," << y
                                                 << ") outside " << width_
                                                 << "x" << height_);
    return data_[static_cast<std::size_t>(y) * width_ + x];
  }

  [[nodiscard]] const T& at(int x, int y) const {
    ST_CHECK_MSG(in_bounds(x, y), "grid index (" << x << "," << y
                                                 << ") outside " << width_
                                                 << "x" << height_);
    return data_[static_cast<std::size_t>(y) * width_ + x];
  }

  /// Unchecked access for hot loops; callers must guarantee bounds.
  [[nodiscard]] T& operator()(int x, int y) {
    return data_[static_cast<std::size_t>(y) * width_ + x];
  }
  [[nodiscard]] const T& operator()(int x, int y) const {
    return data_[static_cast<std::size_t>(y) * width_ + x];
  }

  /// Set every cell to \p value.
  void fill(const T& value) {
    for (auto& v : data_) v = value;
  }

  /// Flat row-major storage (e.g. for bulk copies / reductions).
  [[nodiscard]] const std::vector<T>& data() const { return data_; }
  [[nodiscard]] std::vector<T>& data() { return data_; }

  /// Copy the sub-rectangle \p r (must lie within bounds) into a new grid.
  [[nodiscard]] Grid2D<T> extract(const Rect& r) const {
    ST_CHECK_MSG(bounds().contains(r),
                 "extract rect " << r << " outside grid " << width_ << "x"
                                 << height_);
    Grid2D<T> out(r.w, r.h);
    for (int y = 0; y < r.h; ++y)
      for (int x = 0; x < r.w; ++x) out(x, y) = (*this)(r.x + x, r.y + y);
    return out;
  }

  friend bool operator==(const Grid2D&, const Grid2D&) = default;

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<T> data_;
};

}  // namespace stormtrack
