#include "util/metrics.hpp"

namespace stormtrack {

void MetricsRegistry::add_time(std::string_view name, double seconds) {
  auto it = entries_.find(name);
  if (it == entries_.end())
    it = entries_.emplace(std::string(name), Entry{}).first;
  it->second.seconds += seconds;
  it->second.count += 1;
}

void MetricsRegistry::add_count(std::string_view name, std::int64_t amount) {
  auto it = entries_.find(name);
  if (it == entries_.end())
    it = entries_.emplace(std::string(name), Entry{}).first;
  it->second.count += amount;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, entry] : other.entries_) {
    auto it = entries_.find(name);
    if (it == entries_.end())
      it = entries_.emplace(name, Entry{}).first;
    it->second.seconds += entry.seconds;
    it->second.count += entry.count;
  }
}

void MetricsRegistry::add_entry(std::string_view name, const Entry& entry) {
  auto it = entries_.find(name);
  if (it == entries_.end())
    it = entries_.emplace(std::string(name), Entry{}).first;
  it->second.seconds += entry.seconds;
  it->second.count += entry.count;
}

MetricsRegistry::Entry MetricsRegistry::get(std::string_view name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? Entry{} : it->second;
}

double MetricsRegistry::total_seconds() const {
  double s = 0.0;
  for (const auto& [name, entry] : entries_) s += entry.seconds;
  return s;
}

Table MetricsRegistry::to_table(std::string title) const {
  Table t({"Metric", "Count", "Total (ms)", "Mean (us)"});
  t.set_title(std::move(title));
  for (const auto& [name, entry] : entries_) {
    const bool timed = entry.seconds > 0.0;
    t.add_row({name, Table::num(entry.count),
               timed ? Table::num(entry.seconds * 1e3, 3) : "-",
               timed && entry.count > 0
                   ? Table::num(entry.seconds * 1e6 / entry.count, 1)
                   : "-"});
  }
  return t;
}

}  // namespace stormtrack
