#pragma once

/// \file table.hpp
/// ASCII table and CSV emission for benchmark harnesses. Every bench binary
/// reproduces a paper table/figure as rows; this type renders them the same
/// way everywhere.

#include <iosfwd>
#include <string>
#include <vector>

namespace stormtrack {

/// Column-aligned text table with an optional title, rendered with a
/// header rule, e.g.
///
///   Nest ID | Start Rank | Processor sub-grid
///   --------+------------+-------------------
///   1       | 0          | 13 x 8
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> row);

  /// Convenience: format a double with \p precision digits after the point.
  static std::string num(double v, int precision = 2);
  static std::string num(std::int64_t v);

  void set_title(std::string title) { title_ = std::move(title); }

  /// Render as aligned ASCII.
  [[nodiscard]] std::string to_string() const;
  /// Render as RFC-4180-ish CSV (no quoting of embedded commas needed for
  /// our numeric content; commas in cells are replaced by ';').
  [[nodiscard]] std::string to_csv() const;

  /// Print the ASCII rendering to \p os followed by a blank line.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const { return headers_.size(); }

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace stormtrack
