#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace stormtrack {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  ST_CHECK_MSG(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  ST_CHECK_MSG(row.size() == headers_.size(),
               "row has " << row.size() << " cells, table has "
                          << headers_.size() << " columns");
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::num(std::int64_t v) { return std::to_string(v); }

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  if (!title_.empty()) os << title_ << '\n';
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << " | ";
      os << std::left << std::setw(static_cast<int>(widths[c])) << cells[c];
    }
    os << '\n';
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << "-+-";
    os << std::string(widths[c], '-');
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto sanitize = [](std::string s) {
    std::replace(s.begin(), s.end(), ',', ';');
    return s;
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << sanitize(cells[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_string() << '\n'; }

}  // namespace stormtrack
