#pragma once

/// \file hilbert.hpp
/// Hilbert space-filling curve on 2D grids.
///
/// The paper's related work (§II) discusses SFC-based repartitioning
/// (Hilbert ordering [Sagan '94]) as the standard AMR technique and argues
/// it is *not applicable* to the nest-allocation problem because each nest
/// needs a rectangular processor sub-grid. We implement the Hilbert curve
/// anyway — as the baseline that lets the benches demonstrate that argument
/// quantitatively (alloc/sfc_partitioner.hpp).
///
/// The classic d↔(x,y) transforms cover 2^k × 2^k grids; HilbertOrder
/// generalizes to arbitrary Px×Py grids by walking the curve of the
/// smallest enclosing power-of-two square and skipping cells outside the
/// grid — the standard construction, which preserves the curve's locality.

#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace stormtrack {

/// Grid cell coordinate.
struct CellXY {
  int x = 0;
  int y = 0;
  friend constexpr bool operator==(const CellXY&, const CellXY&) = default;
};

/// Distance-to-coordinate on the 2^order × 2^order Hilbert curve.
[[nodiscard]] CellXY hilbert_d2xy(int order, std::uint64_t d);

/// Coordinate-to-distance on the 2^order × 2^order Hilbert curve.
[[nodiscard]] std::uint64_t hilbert_xy2d(int order, CellXY p);

/// Hilbert ordering of all cells of a Px×Py grid (row-major rank ids).
class HilbertOrder {
 public:
  HilbertOrder(int width, int height);

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }
  [[nodiscard]] int size() const { return width_ * height_; }

  /// Row-major rank at curve position \p i (0 <= i < size()).
  [[nodiscard]] int rank_at(int i) const;

  /// Curve position of row-major rank \p rank.
  [[nodiscard]] int position_of(int rank) const;

 private:
  int width_;
  int height_;
  std::vector<int> order_;     // curve position -> rank
  std::vector<int> position_;  // rank -> curve position
};

}  // namespace stormtrack
