#pragma once

/// \file metrics.hpp
/// Named wall-time and counter accumulation for instrumenting hot paths.
///
/// A MetricsRegistry maps metric names to (accumulated seconds, count)
/// entries. The adaptation pipeline threads one registry through its stages
/// so every adaptation point reports per-stage wall time (candidate build,
/// cost prediction, simulated redistribution, ...) alongside the paper
/// metrics, and the sweep runner aggregates per-case registries without
/// losing determinism of the *results* (timings are reported, never fed
/// back into decisions).

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "util/table.hpp"

namespace stormtrack {

/// Name-keyed accumulation of wall times and counters.
class MetricsRegistry {
 public:
  struct Entry {
    double seconds = 0.0;      ///< Accumulated wall time.
    std::int64_t count = 0;    ///< Samples (times) or accumulated value
                               ///< (counters).
  };

  /// Accumulate \p seconds under \p name and bump its sample count.
  void add_time(std::string_view name, double seconds);

  /// Accumulate \p amount under \p name (wall time stays 0).
  void add_count(std::string_view name, std::int64_t amount = 1);

  /// Fold another registry into this one (entry-wise sums).
  void merge(const MetricsRegistry& other);

  /// Accumulate a whole entry (seconds and count) under \p name — the
  /// deserialization primitive: checkpoint restore rebuilds a registry by
  /// add_entry()-ing every saved entry into an empty one.
  void add_entry(std::string_view name, const Entry& entry);

  void clear() { entries_.clear(); }

  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] const std::map<std::string, Entry, std::less<>>& entries()
      const {
    return entries_;
  }
  /// Entry under \p name, or a zero entry if never recorded.
  [[nodiscard]] Entry get(std::string_view name) const;

  /// Sum of all accumulated seconds (counters contribute nothing).
  [[nodiscard]] double total_seconds() const;

  /// Render as "Metric | Count | Total (ms) | Mean (µs)" rows; counter-only
  /// entries leave the time columns blank.
  [[nodiscard]] Table to_table(std::string title) const;

 private:
  std::map<std::string, Entry, std::less<>> entries_;
};

/// RAII wall timer: accumulates its lifetime into a registry entry.
/// A null registry disables the timer (zero-cost opt-out).
class ScopedTimer {
 public:
  ScopedTimer(MetricsRegistry* registry, std::string_view name)
      : registry_(registry),
        name_(name),
        start_(std::chrono::steady_clock::now()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (registry_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    registry_->add_time(name_,
                        std::chrono::duration<double>(elapsed).count());
  }

 private:
  MetricsRegistry* registry_;
  std::string_view name_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace stormtrack
