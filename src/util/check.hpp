#pragma once

/// \file check.hpp
/// Lightweight precondition / invariant checking used across stormtrack.
///
/// All checks are active in every build type: the library is a research
/// simulator, and silent state corruption costs far more than the branch.

#include <sstream>
#include <stdexcept>
#include <string>

namespace stormtrack {

/// Exception thrown when a library precondition or internal invariant fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace stormtrack

/// Verify \p expr; on failure throw CheckError with file/line context.
#define ST_CHECK(expr)                                                  \
  do {                                                                  \
    if (!(expr))                                                        \
      ::stormtrack::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

/// Verify \p expr with an additional streamed message, e.g.
/// `ST_CHECK_MSG(n > 0, "need at least one nest, got " << n)`.
#define ST_CHECK_MSG(expr, msg)                                             \
  do {                                                                      \
    if (!(expr)) {                                                          \
      std::ostringstream st_check_os__;                                     \
      st_check_os__ << msg;                                                 \
      ::stormtrack::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                         st_check_os__.str());              \
    }                                                                       \
  } while (false)
