#pragma once

/// \file fs_fault.hpp
/// Injectable service-I/O faults for the durability layer.
///
/// PR 3's fault harness covers the *simulation* (lost payloads, dead
/// ranks); this seam covers the *service*: the journal appends, fsyncs,
/// and atomic file writes that stormtrackd's crash-safety story rests on.
/// A test (or `stormtrackd --inject-fs-fault`) installs one process-wide
/// FsFaultSpec; the instrumented call sites in util/atomic_file.cpp and
/// ckpt/framed_log.cpp ask fs_fault_decide() before each matching
/// operation and fail with the injected errno — or persist only a prefix
/// of the record for short-write faults — exactly as a full disk or a
/// dying device would.
///
/// The spec is a counter window, not a probability: "skip the first N
/// matching ops, fail the next M, then succeed again" is deterministic,
/// so the degraded-then-recovered path is replayable in CI. Thread-safe;
/// at most one spec is installed at a time (installing replaces).

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <string>

namespace stormtrack {

/// What to inject and where. `op` and `path_contains` filter the call
/// sites; the skip/count window selects *which* matching operations fail.
struct FsFaultSpec {
  /// Operation filter: "write", "fsync", or "" for any.
  std::string op;
  /// Substring filter on the target path ("" matches any path).
  std::string path_contains;
  /// Matching operations to let succeed before the window opens.
  int skip = 0;
  /// Matching operations to fail once the window is open; -1 = forever.
  int count = -1;
  /// errno reported for failed operations (default ENOSPC).
  int error_no = 0;
  /// For "write" faults: persist this many bytes of the record before
  /// failing (a torn tail, as a crash mid-write leaves). Negative = fail
  /// before writing anything.
  int short_write_bytes = -1;
};

/// Verdict for one operation.
struct FsFaultDecision {
  bool fail = false;
  int error_no = 0;
  /// >= 0 only for "write" faults: persist exactly this many bytes, then
  /// report the failure.
  int short_write_bytes = -1;
};

/// Install \p spec process-wide (replaces any previous spec).
void fs_fault_install(const FsFaultSpec& spec);

/// Remove the installed spec; subsequent operations all succeed.
void fs_fault_clear();

/// True when a spec is installed (its window may already be exhausted).
[[nodiscard]] bool fs_fault_installed();

/// Operations failed by injection since process start.
[[nodiscard]] std::uint64_t fs_fault_injected_count();

/// Consulted by the instrumented call sites before each durable
/// operation. Advances the skip/count window only on a filter match.
[[nodiscard]] FsFaultDecision fs_fault_decide(
    std::string_view op_name, const std::filesystem::path& path);

/// Parse a `--inject-fs-fault` CLI spec of the form
/// `OP:PATH_SUBSTR:skip=N:count=M:errno=ENOSPC|EIO|NUM[:short=K]`
/// (e.g. `write:sessions.stjl:skip=4:count=3:errno=ENOSPC`). Empty OP or
/// PATH_SUBSTR segments mean "any". Throws CheckError on malformed specs.
[[nodiscard]] FsFaultSpec parse_fs_fault_spec(const std::string& text);

}  // namespace stormtrack
