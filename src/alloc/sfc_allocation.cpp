#include "alloc/sfc_allocation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "redist/block_decomp.hpp"
#include "util/check.hpp"

namespace stormtrack {

SfcAllocation::SfcAllocation(std::span<const NestWeight> nests,
                             const HilbertOrder& order) {
  if (nests.empty()) return;
  ST_CHECK_MSG(order.size() >= static_cast<int>(nests.size()),
               "fewer processors than nests");

  // Sort by nest id so retained nests keep their relative curve order
  // across reconfigurations (the locality the SFC scheme relies on).
  std::vector<NestWeight> sorted(nests.begin(), nests.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const NestWeight& a, const NestWeight& b) {
              return a.nest < b.nest;
            });

  double total = 0.0;
  for (const NestWeight& nw : sorted) {
    ST_CHECK_MSG(nw.weight > 0.0, "nest " << nw.nest
                                          << " needs positive weight");
    total += nw.weight;
  }

  // Largest-remainder apportionment with a 1-processor floor.
  const int p = order.size();
  std::vector<int> counts(sorted.size(), 1);
  int assigned = static_cast<int>(sorted.size());
  std::vector<double> remainders(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double exact = sorted[i].weight / total * p;
    const int extra = std::max(0, static_cast<int>(exact) - 1);
    counts[i] += extra;
    assigned += extra;
    remainders[i] = exact - std::floor(exact);
  }
  std::vector<std::size_t> by_remainder(sorted.size());
  std::iota(by_remainder.begin(), by_remainder.end(), 0u);
  std::sort(by_remainder.begin(), by_remainder.end(),
            [&](std::size_t a, std::size_t b) {
              if (remainders[a] != remainders[b])
                return remainders[a] > remainders[b];
              return a < b;
            });
  for (std::size_t k = 0; assigned < p; ++k) {
    counts[by_remainder[k % by_remainder.size()]] += 1;
    ++assigned;
  }
  while (assigned > p) {
    // Floors can overshoot only when nests outnumber spare processors;
    // trim from the largest segments.
    auto it = std::max_element(counts.begin(), counts.end());
    ST_CHECK_MSG(*it > 1, "cannot trim below one processor per nest");
    --*it;
    --assigned;
  }

  int cursor = 0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    segments_.emplace(sorted[i].nest, SfcSegment{cursor, counts[i]});
    cursor += counts[i];
  }
  ST_CHECK(cursor == p);
}

std::vector<int> SfcAllocation::ranks_of(NestId nest,
                                         const HilbertOrder& order) const {
  const auto it = segments_.find(nest);
  ST_CHECK_MSG(it != segments_.end(), "nest " << nest
                                              << " not in SFC allocation");
  std::vector<int> ranks;
  ranks.reserve(static_cast<std::size_t>(it->second.count));
  for (int i = it->second.begin; i < it->second.end(); ++i)
    ranks.push_back(order.rank_at(i));
  return ranks;
}

RedistPlan plan_sfc_redistribution(const NestShape& nest,
                                   std::span<const int> old_ranks,
                                   std::span<const int> new_ranks,
                                   int bytes_per_point) {
  ST_CHECK_MSG(!old_ranks.empty() && !new_ranks.empty(),
               "need at least one processor on both sides");
  ST_CHECK_MSG(bytes_per_point > 0, "bytes_per_point must be positive");
  const std::int64_t cells = static_cast<std::int64_t>(nest.nx) * nest.ny;
  const int m = static_cast<int>(old_ranks.size());
  const int k = static_cast<int>(new_ranks.size());
  ST_CHECK_MSG(cells >= std::max(m, k), "nest smaller than processor count");

  RedistPlan plan;
  plan.total_points = cells;
  // Both sides chunk the same nest-curve order, so chunk i of the old list
  // intersects only a contiguous range of new chunks.
  const int n = static_cast<int>(cells);
  for (int i = 0; i < m; ++i) {
    const Span1D owned = block_range(i, n, m);
    if (owned.count == 0) continue;
    const PartRange targets =
        overlapping_parts(owned.begin, owned.end(), n, k);
    for (int j = targets.first; j <= targets.last; ++j) {
      const Span1D recv = block_range(j, n, k);
      const int lo = std::max(owned.begin, recv.begin);
      const int hi = std::min(owned.end(), recv.end());
      if (hi <= lo) continue;
      const std::int64_t bytes =
          static_cast<std::int64_t>(hi - lo) * bytes_per_point;
      plan.messages.push_back(Message{old_ranks[i], new_ranks[j], bytes});
      if (old_ranks[i] == new_ranks[j]) plan.overlap_points += hi - lo;
    }
  }
  return plan;
}

namespace {

/// Mean boundary length over owner chunks of an owner-id labelling of the
/// nest grid, divided by the equal-area square perimeter.
double halo_inflation_of_labelling(const NestShape& nest,
                                   const std::vector<int>& owner,
                                   int num_owners) {
  std::vector<std::int64_t> boundary(num_owners, 0);
  std::vector<std::int64_t> area(num_owners, 0);
  auto at = [&](int x, int y) { return owner[y * nest.nx + x]; };
  for (int y = 0; y < nest.ny; ++y) {
    for (int x = 0; x < nest.nx; ++x) {
      const int o = at(x, y);
      ++area[o];
      const bool edge =
          (x == 0 || at(x - 1, y) != o) || (x == nest.nx - 1 ||
                                            at(x + 1, y) != o) ||
          (y == 0 || at(x, y - 1) != o) || (y == nest.ny - 1 ||
                                            at(x, y + 1) != o);
      if (edge) ++boundary[o];
    }
  }
  double sum = 0.0;
  int counted = 0;
  for (int o = 0; o < num_owners; ++o) {
    if (area[o] == 0) continue;
    // Boundary cells of the equal-area square block: 4*side - 4 (side>1).
    const double side = std::sqrt(static_cast<double>(area[o]));
    const double square_boundary = std::max(1.0, 4.0 * side - 4.0);
    sum += static_cast<double>(boundary[o]) / square_boundary;
    ++counted;
  }
  return counted == 0 ? 0.0 : sum / counted;
}

}  // namespace

double sfc_halo_inflation(const NestShape& nest, int num_processors) {
  ST_CHECK_MSG(num_processors >= 1, "need at least one processor");
  const HilbertOrder curve(nest.nx, nest.ny);
  const int n = nest.nx * nest.ny;
  std::vector<int> owner(static_cast<std::size_t>(n), 0);
  for (int p = 0; p < num_processors; ++p) {
    const Span1D chunk = block_range(p, n, num_processors);
    for (int i = chunk.begin; i < chunk.end(); ++i)
      owner[static_cast<std::size_t>(curve.rank_at(i))] = p;
  }
  return halo_inflation_of_labelling(nest, owner, num_processors);
}

double block_halo_inflation(const NestShape& nest, int pw, int ph) {
  const BlockDecomposition d(nest, Rect{0, 0, pw, ph}, pw);
  std::vector<int> owner(static_cast<std::size_t>(nest.nx) * nest.ny, 0);
  for (int j = 0; j < ph; ++j) {
    for (int i = 0; i < pw; ++i) {
      const Rect r = d.owned_region(i, j);
      for (int y = r.y; y < r.y_end(); ++y)
        for (int x = r.x; x < r.x_end(); ++x)
          owner[static_cast<std::size_t>(y) * nest.nx + x] = j * pw + i;
    }
  }
  return halo_inflation_of_labelling(nest, owner, pw * ph);
}

}  // namespace stormtrack
