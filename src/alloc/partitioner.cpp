#include "alloc/partitioner.hpp"

#include <vector>

#include "util/check.hpp"

namespace stormtrack {

AllocTree ScratchPartitioner::propose(const AllocTree& /*current*/,
                                      const ReconfigRequest& req) const {
  std::vector<NestWeight> all(req.retained.begin(), req.retained.end());
  all.insert(all.end(), req.inserted.begin(), req.inserted.end());
  return AllocTree::huffman(all);
}

AllocTree DiffusionPartitioner::propose(const AllocTree& current,
                                        const ReconfigRequest& req) const {
  return current.diffuse(req);
}

std::unique_ptr<Partitioner> make_partitioner(std::string_view name) {
  if (name == "scratch") return std::make_unique<ScratchPartitioner>();
  if (name == "diffusion") return std::make_unique<DiffusionPartitioner>();
  ST_CHECK_MSG(false, "unknown partitioner '"
                          << name << "'; known: 'scratch' 'diffusion'");
  return nullptr;  // unreachable
}

AllocationDriver::AllocationDriver(const Partitioner& partitioner,
                                   int grid_px, int grid_py)
    : partitioner_(&partitioner), grid_px_(grid_px), grid_py_(grid_py) {
  ST_CHECK_MSG(grid_px >= 1 && grid_py >= 1,
               "process grid must be positive, got " << grid_px << "x"
                                                     << grid_py);
}

const Allocation& AllocationDriver::step(const ReconfigRequest& req) {
  tree_ = partitioner_->propose(tree_, req);
  allocation_ = allocate(tree_, grid_px_, grid_py_);
  return allocation_;
}

}  // namespace stormtrack
