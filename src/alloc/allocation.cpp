#include "alloc/allocation.hpp"

#include <sstream>

#include "util/check.hpp"

namespace stormtrack {

Allocation::Allocation(int grid_px, int grid_py, std::map<NestId, Rect> rects)
    : grid_px_(grid_px), grid_py_(grid_py), rects_(std::move(rects)) {
  ST_CHECK_MSG(grid_px >= 1 && grid_py >= 1,
               "process grid must be positive, got " << grid_px << "x"
                                                     << grid_py);
  const Rect grid{0, 0, grid_px_, grid_py_};
  for (const auto& [nest, rect] : rects_) {
    ST_CHECK_MSG(!rect.empty(), "nest " << nest << " has empty rectangle");
    ST_CHECK_MSG(grid.contains(rect),
                 "nest " << nest << " rectangle " << rect
                         << " outside process grid " << grid_px_ << "x"
                         << grid_py_);
  }
  for (auto a = rects_.begin(); a != rects_.end(); ++a) {
    auto b = a;
    for (++b; b != rects_.end(); ++b) {
      ST_CHECK_MSG(!a->second.overlaps(b->second),
                   "nests " << a->first << " and " << b->first
                            << " have overlapping rectangles " << a->second
                            << " and " << b->second);
    }
  }
}

std::optional<Rect> Allocation::find(NestId nest) const {
  const auto it = rects_.find(nest);
  if (it == rects_.end()) return std::nullopt;
  return it->second;
}

int Allocation::start_rank_of(NestId nest) const {
  const auto r = find(nest);
  ST_CHECK_MSG(r.has_value(), "nest " << nest << " not in allocation");
  return start_rank(*r, grid_px_);
}

Table Allocation::to_table(const std::string& title) const {
  Table t({"Nest ID", "Start Rank", "Processor sub-grid"});
  if (!title.empty()) t.set_title(title);
  for (const auto& [nest, rect] : rects_) {
    std::ostringstream grid;
    grid << rect.w << " x " << rect.h;
    t.add_row({std::to_string(nest), std::to_string(start_rank(rect, grid_px_)),
               grid.str()});
  }
  return t;
}

std::string Allocation::to_ascii(int max_width) const {
  ST_CHECK_MSG(max_width >= 4, "max_width too small");
  const int step = std::max(1, grid_px_ / max_width);
  std::ostringstream os;
  for (int y = 0; y < grid_py_; y += step) {
    for (int x = 0; x < grid_px_; x += step) {
      char c = '.';
      for (const auto& [nest, rect] : rects_) {
        if (rect.contains(x, y)) {
          c = static_cast<char>(nest < 10 ? '0' + nest
                                          : 'a' + (nest - 10) % 26);
          break;
        }
      }
      os << c;
    }
    os << '\n';
  }
  return os.str();
}

Grid2D<int> Allocation::to_label_grid() const {
  ST_CHECK_MSG(grid_px_ >= 1 && grid_py_ >= 1,
               "label grid of an empty allocation");
  Grid2D<int> labels(grid_px_, grid_py_, -1);
  for (const auto& [nest, rect] : rects_)
    for (int y = rect.y; y < rect.y_end(); ++y)
      for (int x = rect.x; x < rect.x_end(); ++x) labels(x, y) = nest;
  return labels;
}

Allocation allocate(const AllocTree& tree, int grid_px, int grid_py) {
  return allocate(tree, grid_px, grid_py, Rect{0, 0, grid_px, grid_py});
}

Allocation allocate(const AllocTree& tree, int grid_px, int grid_py,
                    const Rect& view) {
  if (tree.empty()) return Allocation{};
  ST_CHECK_MSG(Rect(0, 0, grid_px, grid_py).contains(view) && !view.empty(),
               "grid view " << view << " outside process grid " << grid_px
                            << "x" << grid_py);
  return Allocation(grid_px, grid_py, tree.subdivide(view));
}

double mean_rect_overlap(const Allocation& before, const Allocation& after) {
  double sum = 0.0;
  int count = 0;
  for (const auto& [nest, old_rect] : before.rects()) {
    const auto new_rect = after.find(nest);
    if (!new_rect) continue;
    sum += coverage_fraction(old_rect, *new_rect);
    ++count;
  }
  return count == 0 ? 0.0 : sum / count;
}

}  // namespace stormtrack
