#pragma once

/// \file partitioner.hpp
/// Reallocation strategies (§IV-A / §IV-B).
///
/// A Partitioner proposes the allocation tree for the next adaptation point
/// given the committed tree and the reconfiguration request. Two concrete
/// strategies:
///
///  * ScratchPartitioner — rebuild the Huffman tree from the new weights,
///    ignoring the existing allocation (§IV-A). Partitions are as square-
///    like as Huffman ordering allows, but senders and receivers may be
///    completely disjoint, inflating redistribution cost.
///  * DiffusionPartitioner — tree-based hierarchical diffusion (§IV-B):
///    reorganize the committed tree so retained nests keep their positions,
///    maximizing sender/receiver overlap at a small squareness penalty.
///
/// The DynamicStrategy of §IV-C (core/) evaluates both proposals with the
/// performance models and commits the cheaper one.

#include <memory>
#include <string>
#include <string_view>

#include "alloc/allocation.hpp"
#include "tree/alloc_tree.hpp"

namespace stormtrack {

/// Strategy interface: stateless proposal of a successor tree.
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Propose the tree for the next adaptation point.
  [[nodiscard]] virtual AllocTree propose(const AllocTree& current,
                                          const ReconfigRequest& req)
      const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// §IV-A: partition from scratch (existing allocation ignored).
class ScratchPartitioner final : public Partitioner {
 public:
  [[nodiscard]] AllocTree propose(const AllocTree& current,
                                  const ReconfigRequest& req) const override;
  [[nodiscard]] std::string name() const override { return "scratch"; }
};

/// §IV-B: tree-based hierarchical diffusion.
class DiffusionPartitioner final : public Partitioner {
 public:
  [[nodiscard]] AllocTree propose(const AllocTree& current,
                                  const ReconfigRequest& req) const override;
  [[nodiscard]] std::string name() const override { return "diffusion"; }
};

/// Partitioner by name ("scratch" / "diffusion"); throws CheckError for
/// unknown names. The proposal-mechanism counterpart of the commit-side
/// StrategyRegistry (core/strategy.hpp).
[[nodiscard]] std::unique_ptr<Partitioner> make_partitioner(
    std::string_view name);

/// Stateful convenience wrapper: tracks the committed tree + allocation of
/// one strategy across adaptation points.
class AllocationDriver {
 public:
  /// \p partitioner must outlive the driver.
  AllocationDriver(const Partitioner& partitioner, int grid_px, int grid_py);

  /// Apply one reconfiguration; returns the new allocation (also retained
  /// as current()).
  const Allocation& step(const ReconfigRequest& req);

  [[nodiscard]] const Allocation& current() const { return allocation_; }
  [[nodiscard]] const AllocTree& tree() const { return tree_; }
  [[nodiscard]] int grid_px() const { return grid_px_; }
  [[nodiscard]] int grid_py() const { return grid_py_; }

 private:
  const Partitioner* partitioner_;
  int grid_px_;
  int grid_py_;
  AllocTree tree_;
  Allocation allocation_;
};

}  // namespace stormtrack
