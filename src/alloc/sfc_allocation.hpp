#pragma once

/// \file sfc_allocation.hpp
/// Space-filling-curve (Hilbert) processor allocation — the related-work
/// baseline (§II).
///
/// AMR repartitioners (e.g. Hilbert-ordered SFC partitioning) assign each
/// partition a contiguous segment of the space-filling curve over the
/// processor grid. The paper argues this is *not applicable* to nested
/// weather simulations because each nest requires a rectangular processor
/// sub-grid. This module implements the SFC scheme faithfully so the
/// benches can demonstrate that trade-off quantitatively:
///
///  * SFC segments have excellent 1D locality — retained nests shift
///    little along the curve between adaptation points, so redistribution
///    traffic is small (often competitive with tree-based diffusion);
///  * but the per-processor regions of a nest are curve chunks, not
///    blocks — their boundary (halo) is substantially longer than a
///    rectangular block's, inflating every simulation step's halo
///    exchange (the cost the paper's rectangular invariant avoids).
///
/// Nest data is likewise assigned along the nest's own Hilbert curve: the
/// nest's cells in curve order are split into balanced chunks, one per
/// allocated processor (in segment order).

#include <map>
#include <span>
#include <vector>

#include "perfmodel/ground_truth.hpp"  // NestShape
#include "redist/redistributor.hpp"
#include "simmpi/simcomm.hpp"
#include "tree/alloc_tree.hpp"  // NestWeight
#include "util/hilbert.hpp"

namespace stormtrack {

/// Curve segment of processors owned by one nest.
struct SfcSegment {
  int begin = 0;  ///< First curve position (inclusive).
  int count = 0;  ///< Number of processors.
  [[nodiscard]] int end() const { return begin + count; }
};

/// Allocation of nests to contiguous Hilbert-curve segments of the
/// processor grid.
class SfcAllocation {
 public:
  SfcAllocation() = default;

  /// Partition the full curve of \p order among \p nests proportionally to
  /// weight (largest-remainder rounding, every nest >= 1 processor).
  /// Segments are assigned in ascending nest-id order, so retained nests
  /// keep their relative curve order between reconfigurations.
  SfcAllocation(std::span<const NestWeight> nests, const HilbertOrder& order);

  [[nodiscard]] const std::map<NestId, SfcSegment>& segments() const {
    return segments_;
  }

  /// Global (row-major) ranks of \p nest's segment, in curve order.
  [[nodiscard]] std::vector<int> ranks_of(NestId nest,
                                          const HilbertOrder& order) const;

  [[nodiscard]] bool has(NestId nest) const {
    return segments_.count(nest) != 0;
  }

 private:
  std::map<NestId, SfcSegment> segments_;
};

/// Plan the redistribution of one nest between two SFC allocations: the
/// nest's cells, in nest-curve order, are split into balanced chunks over
/// the old and the new processor lists; intersecting chunks exchange their
/// overlap. Accounting mirrors plan_redistribution().
[[nodiscard]] RedistPlan plan_sfc_redistribution(
    const NestShape& nest, std::span<const int> old_ranks,
    std::span<const int> new_ranks, int bytes_per_point =
        kDefaultBytesPerPoint);

/// Halo-inflation factor of an SFC chunk decomposition: the mean, over the
/// nest's processors, of (chunk boundary length) / (perimeter of the
/// square block of equal area). Rectangular block decompositions sit near
/// 1; Hilbert chunks are typically 1.3–2× — the §II argument against SFC
/// for this workload, quantified.
[[nodiscard]] double sfc_halo_inflation(const NestShape& nest,
                                        int num_processors);

/// Same metric for the rectangular block decomposition of the same nest
/// over a pw×ph processor rectangle (baseline for comparison).
[[nodiscard]] double block_halo_inflation(const NestShape& nest, int pw,
                                          int ph);

}  // namespace stormtrack
