#pragma once

/// \file allocation.hpp
/// Processor allocations: which rectangular sub-grid of the Px×Py process
/// grid executes each nest (§IV, Tables I/II).

#include <map>
#include <optional>
#include <string>

#include "tree/alloc_tree.hpp"
#include "util/grid2d.hpp"
#include "util/rect.hpp"
#include "util/table.hpp"

namespace stormtrack {

/// Immutable snapshot of a processor allocation on a grid_px×grid_py
/// process grid: disjoint rectangles, one per nest.
class Allocation {
 public:
  /// Empty allocation (no nests).
  Allocation() = default;

  /// Validates: every rectangle non-empty, inside the grid, and pairwise
  /// disjoint.
  Allocation(int grid_px, int grid_py, std::map<NestId, Rect> rects);

  [[nodiscard]] int grid_px() const { return grid_px_; }
  [[nodiscard]] int grid_py() const { return grid_py_; }
  [[nodiscard]] int total_procs() const { return grid_px_ * grid_py_; }

  [[nodiscard]] const std::map<NestId, Rect>& rects() const { return rects_; }
  [[nodiscard]] std::size_t num_nests() const { return rects_.size(); }

  /// Processor rectangle of \p nest, or nullopt when absent.
  [[nodiscard]] std::optional<Rect> find(NestId nest) const;

  /// Row-major rank of the north-west corner of \p nest's rectangle
  /// (the paper's "start rank").
  [[nodiscard]] int start_rank_of(NestId nest) const;

  /// Paper-style table: Nest ID | Start Rank | Processor sub-grid.
  [[nodiscard]] Table to_table(const std::string& title = {}) const;

  /// ASCII art of the grid partition (coarse, for examples/docs).
  [[nodiscard]] std::string to_ascii(int max_width = 64) const;

  /// Per-processor nest-id label grid (-1 = unassigned); feeds
  /// labels_to_rgb for allocation renderings.
  [[nodiscard]] Grid2D<int> to_label_grid() const;

 private:
  int grid_px_ = 0;
  int grid_py_ = 0;
  std::map<NestId, Rect> rects_;
};

/// Subdivide the process grid according to \p tree (must have no free
/// slots) and wrap the result. Degenerate case: empty tree → empty
/// allocation.
[[nodiscard]] Allocation allocate(const AllocTree& tree, int grid_px,
                                  int grid_py);

/// As above, but subdivide only \p view (a sub-rectangle of the grid) while
/// keeping rank numbering on the full grid_px-wide grid. Used by rank-loss
/// recovery, which shrinks the usable grid view without renumbering the
/// surviving ranks.
[[nodiscard]] Allocation allocate(const AllocTree& tree, int grid_px,
                                  int grid_py, const Rect& view);

/// Mean, over nests present in both allocations, of the fraction of the old
/// processor rectangle still owned in the new one (a cheap, nest-size-free
/// proxy for the paper's Fig. 11 data-point overlap; the exact data-point
/// metric lives in redist/).
[[nodiscard]] double mean_rect_overlap(const Allocation& before,
                                       const Allocation& after);

}  // namespace stormtrack
