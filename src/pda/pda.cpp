#include "pda/pda.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_set>

#include "fault/fault_injector.hpp"
#include "simmpi/spmd.hpp"
#include "util/check.hpp"

namespace stormtrack {

namespace {

/// Read-or-lose decision for one split file under an injector: retry
/// transient failures up to \p max_retries, report permanent failures (or
/// an exhausted retry budget) as lost.
[[nodiscard]] bool split_read_survives(FaultInjector& injector, int file_rank,
                                       int max_retries) {
  for (int attempt = 0;; ++attempt) {
    switch (injector.check_split_read(file_rank)) {
      case SplitReadFault::kNone:
        return true;
      case SplitReadFault::kPermanent:
        return false;
      case SplitReadFault::kTransient:
        if (attempt >= max_retries) return false;
        break;
    }
  }
}

/// Placeholder aggregate for a lost file: position fields valid, data zero.
[[nodiscard]] QCloudInfo lost_file_info(const SplitFile& file) {
  QCloudInfo info;
  info.file_rank = file.rank;
  info.file_x = file.grid_px > 0 ? file.file_x() : file.rank;
  info.file_y = file.grid_px > 0 ? file.file_y() : 0;
  info.subdomain = file.subdomain;
  info.qcloud = 0.0;
  info.olrfraction = 0.0;
  return info;
}

/// Indices of clusters with a member within 2 file-grid hops (Chebyshev —
/// NNC's maximum merge distance) of any lost file. Lost files are bucketed
/// into a hash set of their file-grid cells once, and each member probes
/// its 5×5 Chebyshev-2 neighborhood — O(members × 25) instead of
/// O(clusters × members × lost_files).
[[nodiscard]] std::vector<int> find_suspect_clusters(
    const std::vector<QCloudInfo>& qcloudinfo,
    const std::vector<Cluster>& clusters,
    const std::vector<QCloudInfo>& lost_files) {
  std::vector<int> suspects;
  if (lost_files.empty()) return suspects;
  std::unordered_set<std::int64_t> lost_cells;
  lost_cells.reserve(lost_files.size());
  const auto cell_key = [](int x, int y) {
    return (static_cast<std::int64_t>(x) << 32) |
           static_cast<std::uint32_t>(y);
  };
  for (const QCloudInfo& lost : lost_files)
    lost_cells.insert(cell_key(lost.file_x, lost.file_y));
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    bool suspect = false;
    for (const int idx : clusters[c]) {
      const QCloudInfo& m = qcloudinfo[static_cast<std::size_t>(idx)];
      for (int dy = -2; dy <= 2 && !suspect; ++dy)
        for (int dx = -2; dx <= 2 && !suspect; ++dx)
          suspect = lost_cells.count(cell_key(m.file_x + dx,
                                              m.file_y + dy)) > 0;
      if (suspect) break;
    }
    if (suspect) suspects.push_back(static_cast<int>(c));
  }
  return suspects;
}

}  // namespace

std::optional<QCloudInfo> analyze_split_file(const SplitFile& file,
                                             const PdaConfig& config) {
  if (file.subdomain.empty()) return std::nullopt;
  double aggregate = 0.0;
  std::int64_t count = 0;
  for (int y = 0; y < file.olr.height(); ++y) {
    for (int x = 0; x < file.olr.width(); ++x) {
      if (file.olr(x, y) <= config.olr_threshold) {
        aggregate += file.qcloud(x, y);
        ++count;
      }
    }
  }
  if (count == 0) return std::nullopt;
  QCloudInfo info;
  info.file_rank = file.rank;
  info.file_x = file.file_x();
  info.file_y = file.file_y();
  info.subdomain = file.subdomain;
  info.qcloud = aggregate;
  info.olrfraction =
      static_cast<double>(count) / static_cast<double>(file.subdomain.area());
  return info;
}

PdaResult parallel_data_analysis_from_dir(const std::filesystem::path& dir,
                                          int num_files,
                                          const PdaConfig& config,
                                          const SimComm* analysis_comm) {
  ST_CHECK_MSG(num_files >= 1, "need at least one split file");
  // Load in rank order; each analysis process would read only its own k
  // files — on this substrate the loads execute sequentially but the
  // analysis below partitions them identically. Under an injector, retry
  // transient read failures here and substitute empty placeholders for
  // permanently lost files, so the in-memory analysis (run without the
  // injector — the "reads" already happened) sees a full rank range.
  std::vector<SplitFile> files(static_cast<std::size_t>(num_files));
  std::vector<int> lost_ranks;
  int grid_px = 0;
  for (int r = 0; r < num_files; ++r) {
    bool lost = config.injector == nullptr
                    ? false
                    : !split_read_survives(*config.injector, r,
                                           config.max_read_retries);
    if (!lost) {
      try {
        files[static_cast<std::size_t>(r)] = load_split_file(dir, r);
      } catch (const CheckError&) {
        lost = true;  // genuinely unreadable file: same degradation path
      }
    }
    if (lost) {
      lost_ranks.push_back(r);
    } else {
      grid_px = files[static_cast<std::size_t>(r)].grid_px;
    }
  }
  for (const int r : lost_ranks) {
    SplitFile& f = files[static_cast<std::size_t>(r)];
    f.rank = r;
    f.grid_px = grid_px;
  }

  PdaConfig inner = config;
  inner.injector = nullptr;
  PdaResult result = parallel_data_analysis(files, inner, analysis_comm);
  for (const int r : lost_ranks)
    result.lost_files.push_back(
        lost_file_info(files[static_cast<std::size_t>(r)]));
  result.suspect_clusters = find_suspect_clusters(
      result.qcloudinfo, result.clusters, result.lost_files);
  return result;
}

PdaResult parallel_data_analysis(std::span<const SplitFile> files,
                                 const PdaConfig& config,
                                 const SimComm* analysis_comm) {
  const int p = static_cast<int>(files.size());
  ST_CHECK_MSG(p >= 1, "need at least one split file");
  const int n = config.analysis_procs;
  ST_CHECK_MSG(n >= 1 && p % n == 0,
               "analysis process count " << n << " must divide file count "
                                         << p);
  const int k = p / n;  // files per analysis process (Algorithm 1 line 1)

  PdaResult result;

  // Lines 3–9: each of the N processes analyzes its k files. File f goes to
  // process f / k: contiguous runs of the row-major file order, i.e.
  // rectangular strips of the file grid. This is the hot step §III
  // parallelizes; each rank fills its own slot and the gather below reads
  // the slots in rank order, so any executor yields identical results.
  // Under an injector each file "read" may fail: transient failures retry
  // within the owning rank's task (sequentially, so attempt budgets stay
  // deterministic under threading); permanent ones drop the file into the
  // rank's lost slot and the analysis proceeds on partial data.
  struct RankAnalysis {
    std::vector<QCloudInfo> found;
    std::vector<QCloudInfo> lost;
  };
  const auto per_rank = run_spmd<RankAnalysis>(
      resolve_executor(config.executor), n, [&](int rank) {
        RankAnalysis local;
        for (int f = rank * k; f < (rank + 1) * k; ++f) {
          const SplitFile& file = files[static_cast<std::size_t>(f)];
          if (config.injector != nullptr &&
              !split_read_survives(*config.injector, file.rank,
                                   config.max_read_retries)) {
            local.lost.push_back(lost_file_info(file));
            continue;
          }
          if (auto info = analyze_split_file(file, config))
            local.found.push_back(*info);
        }
        return local;
      });

  // Line 11: root gathers qcloud + olrfraction from every process. Price
  // the gather when a communicator for the N analysis ranks is supplied.
  if (analysis_comm != nullptr) {
    ST_CHECK_MSG(analysis_comm->size() >= n,
                 "analysis communicator smaller than process count");
    std::vector<std::int64_t> bytes(
        static_cast<std::size_t>(analysis_comm->size()), 0);
    for (int r = 0; r < n; ++r)
      bytes[static_cast<std::size_t>(r)] =
          static_cast<std::int64_t>(per_rank[static_cast<std::size_t>(r)]
                                        .found.size()) *
          static_cast<std::int64_t>(sizeof(double) * 2 + sizeof(int) * 2);
    result.traffic = analysis_comm->gatherv(bytes, config.root);
  }
  for (const auto& local : per_rank) {
    result.qcloudinfo.insert(result.qcloudinfo.end(), local.found.begin(),
                             local.found.end());
    result.lost_files.insert(result.lost_files.end(), local.lost.begin(),
                             local.lost.end());
  }

  // Line 13: sort by aggregate QCLOUD, non-increasing. Ties break by rank
  // for determinism.
  std::sort(result.qcloudinfo.begin(), result.qcloudinfo.end(),
            [](const QCloudInfo& a, const QCloudInfo& b) {
              if (a.qcloud != b.qcloud) return a.qcloud > b.qcloud;
              return a.file_rank < b.file_rank;
            });

  // Line 14: cluster; lines 16–19: bounding rectangles.
  result.clusters = nnc(result.qcloudinfo, config.nnc);
  result.rectangles.reserve(result.clusters.size());
  for (const Cluster& c : result.clusters)
    result.rectangles.push_back(cluster_bounds(result.qcloudinfo, c));
  std::sort(result.rectangles.begin(), result.rectangles.end(),
            [](const Rect& a, const Rect& b) {
              return std::pair{a.x, a.y} < std::pair{b.x, b.y};
            });
  result.suspect_clusters = find_suspect_clusters(
      result.qcloudinfo, result.clusters, result.lost_files);
  return result;
}

}  // namespace stormtrack
