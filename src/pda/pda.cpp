#include "pda/pda.hpp"

#include <algorithm>

#include "simmpi/spmd.hpp"
#include "util/check.hpp"

namespace stormtrack {

std::optional<QCloudInfo> analyze_split_file(const SplitFile& file,
                                             const PdaConfig& config) {
  if (file.subdomain.empty()) return std::nullopt;
  double aggregate = 0.0;
  std::int64_t count = 0;
  for (int y = 0; y < file.olr.height(); ++y) {
    for (int x = 0; x < file.olr.width(); ++x) {
      if (file.olr(x, y) <= config.olr_threshold) {
        aggregate += file.qcloud(x, y);
        ++count;
      }
    }
  }
  if (count == 0) return std::nullopt;
  QCloudInfo info;
  info.file_rank = file.rank;
  info.file_x = file.file_x();
  info.file_y = file.file_y();
  info.subdomain = file.subdomain;
  info.qcloud = aggregate;
  info.olrfraction =
      static_cast<double>(count) / static_cast<double>(file.subdomain.area());
  return info;
}

PdaResult parallel_data_analysis_from_dir(const std::filesystem::path& dir,
                                          int num_files,
                                          const PdaConfig& config,
                                          const SimComm* analysis_comm) {
  ST_CHECK_MSG(num_files >= 1, "need at least one split file");
  // Load in rank order; each analysis process would read only its own k
  // files — on this substrate the loads execute sequentially but the
  // analysis below partitions them identically.
  std::vector<SplitFile> files;
  files.reserve(static_cast<std::size_t>(num_files));
  for (int r = 0; r < num_files; ++r) files.push_back(load_split_file(dir, r));
  return parallel_data_analysis(files, config, analysis_comm);
}

PdaResult parallel_data_analysis(std::span<const SplitFile> files,
                                 const PdaConfig& config,
                                 const SimComm* analysis_comm) {
  const int p = static_cast<int>(files.size());
  ST_CHECK_MSG(p >= 1, "need at least one split file");
  const int n = config.analysis_procs;
  ST_CHECK_MSG(n >= 1 && p % n == 0,
               "analysis process count " << n << " must divide file count "
                                         << p);
  const int k = p / n;  // files per analysis process (Algorithm 1 line 1)

  PdaResult result;

  // Lines 3–9: each of the N processes analyzes its k files. File f goes to
  // process f / k: contiguous runs of the row-major file order, i.e.
  // rectangular strips of the file grid. This is the hot step §III
  // parallelizes; each rank fills its own slot and the gather below reads
  // the slots in rank order, so any executor yields identical results.
  const auto per_rank = run_spmd<std::vector<QCloudInfo>>(
      resolve_executor(config.executor), n, [&](int rank) {
        std::vector<QCloudInfo> local;
        for (int f = rank * k; f < (rank + 1) * k; ++f) {
          if (auto info = analyze_split_file(files[static_cast<std::size_t>(f)],
                                             config))
            local.push_back(*info);
        }
        return local;
      });

  // Line 11: root gathers qcloud + olrfraction from every process. Price
  // the gather when a communicator for the N analysis ranks is supplied.
  if (analysis_comm != nullptr) {
    ST_CHECK_MSG(analysis_comm->size() >= n,
                 "analysis communicator smaller than process count");
    std::vector<std::int64_t> bytes(
        static_cast<std::size_t>(analysis_comm->size()), 0);
    for (int r = 0; r < n; ++r)
      bytes[static_cast<std::size_t>(r)] =
          static_cast<std::int64_t>(per_rank[static_cast<std::size_t>(r)]
                                        .size()) *
          static_cast<std::int64_t>(sizeof(double) * 2 + sizeof(int) * 2);
    result.traffic = analysis_comm->gatherv(bytes, config.root);
  }
  for (const auto& local : per_rank)
    result.qcloudinfo.insert(result.qcloudinfo.end(), local.begin(),
                             local.end());

  // Line 13: sort by aggregate QCLOUD, non-increasing. Ties break by rank
  // for determinism.
  std::sort(result.qcloudinfo.begin(), result.qcloudinfo.end(),
            [](const QCloudInfo& a, const QCloudInfo& b) {
              if (a.qcloud != b.qcloud) return a.qcloud > b.qcloud;
              return a.file_rank < b.file_rank;
            });

  // Line 14: cluster; lines 16–19: bounding rectangles.
  result.clusters = nnc(result.qcloudinfo, config.nnc);
  result.rectangles.reserve(result.clusters.size());
  for (const Cluster& c : result.clusters)
    result.rectangles.push_back(cluster_bounds(result.qcloudinfo, c));
  std::sort(result.rectangles.begin(), result.rectangles.end(),
            [](const Rect& a, const Rect& b) {
              return std::pair{a.x, a.y} < std::pair{b.x, b.y};
            });
  return result;
}

}  // namespace stormtrack
