#pragma once

/// \file nnc.hpp
/// Nearest-neighbour clustering of cloudy subdomains (Algorithm 2).
///
/// Input elements are per-split-file aggregates (one element per cloudy
/// subdomain), sorted by aggregate QCLOUD in non-increasing order. The
/// paper's variant adds an element to an existing cluster only when it is
/// exactly 1 hop (else exactly 2 hops) from a member on the split-file
/// grid AND joining would not shift the cluster's mean QCLOUD by more than
/// 30% — yielding contiguous, non-overlapping, size-bounded clusters
/// (Fig. 9(b)). The baseline variant (Fig. 9(a)) uses only a ≤2-hop check
/// with no mean-deviation criterion and produces overlapping clusters.

#include <span>
#include <vector>

#include "util/rect.hpp"

namespace stormtrack {

/// One element of the sorted qcloudinfo array (Algorithm 1 line 11): the
/// aggregate for one split file / subdomain.
struct QCloudInfo {
  int file_rank = 0;      ///< Writing rank of the split file.
  int file_x = 0;         ///< Split-file grid position (Px×Py of files).
  int file_y = 0;
  Rect subdomain;         ///< Subdomain in parent-grid points.
  double qcloud = 0.0;    ///< Aggregate QCLOUD where OLR <= threshold.
  double olrfraction = 0.0;  ///< Fraction of subdomain with OLR <= threshold.
};

/// Thresholds of Algorithms 1 & 2 (paper values as defaults).
struct NncConfig {
  double qcloud_threshold = 0.005;       ///< Min aggregate QCLOUD (Alg.2 l.3).
  double olrfraction_threshold = 0.005;  ///< Min OLR-covered fraction.
  double mean_deviation_limit = 0.30;    ///< Max relative mean shift.
};

/// A cluster: indices into the input qcloudinfo array.
using Cluster = std::vector<int>;

/// Algorithm 2 — the paper's NNC: 1-hop-first, then 2-hop, with the
/// mean-deviation guard. \p sorted_info must be sorted by qcloud
/// non-increasing (checked).
[[nodiscard]] std::vector<Cluster> nnc(std::span<const QCloudInfo> sorted_info,
                                       const NncConfig& config = {});

/// Fig. 9(a) baseline: ≤2-hop proximity only, no mean-deviation criterion.
[[nodiscard]] std::vector<Cluster> nnc_2hop_only(
    std::span<const QCloudInfo> sorted_info, const NncConfig& config = {});

/// Bounding rectangle (parent-grid points) of a cluster's subdomains —
/// the nest rectangle of Algorithm 1 lines 16–19.
[[nodiscard]] Rect cluster_bounds(std::span<const QCloudInfo> info,
                                  const Cluster& cluster);

/// Number of cluster pairs whose bounding rectangles overlap in space
/// (Fig. 9's qualitative difference, made quantitative).
[[nodiscard]] int count_overlapping_cluster_pairs(
    std::span<const QCloudInfo> info, std::span<const Cluster> clusters);

/// Chebyshev distance between two elements on the split-file grid — the
/// "hop" distance of Algorithm 2 (diagonal neighbours are 1 hop).
[[nodiscard]] int file_grid_distance(const QCloudInfo& a, const QCloudInfo& b);

}  // namespace stormtrack
