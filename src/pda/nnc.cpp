#include "pda/nnc.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace stormtrack {

int file_grid_distance(const QCloudInfo& a, const QCloudInfo& b) {
  return std::max(std::abs(a.file_x - b.file_x),
                  std::abs(a.file_y - b.file_y));
}

namespace {

void require_sorted(std::span<const QCloudInfo> info) {
  for (std::size_t i = 1; i < info.size(); ++i)
    ST_CHECK_MSG(info[i - 1].qcloud >= info[i].qcloud,
                 "qcloudinfo must be sorted by qcloud non-increasing");
}

/// Algorithm 2's DISTANCE function: true when \p element is exactly
/// \p hop away from \p member AND adding it keeps the cluster mean within
/// the deviation limit. \p cluster_sum is the running qcloud sum of the
/// cluster, maintained by the caller: members are only ever appended, so
/// the running sum adds the same values in the same order as a fresh
/// recomputation would — old_mean is bit-identical to the former
/// O(|cluster|) cluster_mean() scan per candidate.
bool distance_ok(std::span<const QCloudInfo> info, int element, int member,
                 std::size_t cluster_size, double cluster_sum, int hop,
                 double deviation_limit) {
  if (file_grid_distance(info[static_cast<std::size_t>(element)],
                         info[static_cast<std::size_t>(member)]) != hop)
    return false;
  const double old_mean = cluster_sum / static_cast<double>(cluster_size);
  const double new_mean =
      (old_mean * static_cast<double>(cluster_size) +
       info[static_cast<std::size_t>(element)].qcloud) /
      static_cast<double>(cluster_size + 1);
  return std::abs(new_mean - old_mean) <= deviation_limit * old_mean;
}

bool passes_thresholds(const QCloudInfo& e, const NncConfig& cfg) {
  return e.qcloud >= cfg.qcloud_threshold &&
         e.olrfraction >= cfg.olrfraction_threshold;
}

}  // namespace

std::vector<Cluster> nnc(std::span<const QCloudInfo> sorted_info,
                         const NncConfig& config) {
  require_sorted(sorted_info);
  std::vector<Cluster> clusters;
  // Running qcloud sum per cluster (parallel to `clusters`): turns the
  // per-candidate mean from an O(|cluster|) scan into O(1).
  std::vector<double> sums;

  for (int e = 0; e < static_cast<int>(sorted_info.size()); ++e) {
    const QCloudInfo& element = sorted_info[static_cast<std::size_t>(e)];
    if (!passes_thresholds(element, config)) continue;

    bool placed = false;
    // First pass: 1-hop proximity to any member of any cluster; only when
    // that fails, a 2-hop pass — this ordering is what makes the clusters
    // non-overlapping (§V-A).
    for (const int hop : {1, 2}) {
      for (std::size_t ci = 0; ci < clusters.size(); ++ci) {
        Cluster& list = clusters[ci];
        for (const int member : list) {
          if (distance_ok(sorted_info, e, member, list.size(), sums[ci], hop,
                          config.mean_deviation_limit)) {
            list.push_back(e);
            sums[ci] += element.qcloud;
            placed = true;
            break;
          }
        }
        if (placed) break;
      }
      if (placed) break;
    }
    if (!placed) {
      clusters.push_back(Cluster{e});
      sums.push_back(element.qcloud);
    }
  }
  return clusters;
}

std::vector<Cluster> nnc_2hop_only(std::span<const QCloudInfo> sorted_info,
                                   const NncConfig& config) {
  require_sorted(sorted_info);
  std::vector<Cluster> clusters;

  for (int e = 0; e < static_cast<int>(sorted_info.size()); ++e) {
    const QCloudInfo& element = sorted_info[static_cast<std::size_t>(e)];
    if (!passes_thresholds(element, config)) continue;

    bool placed = false;
    for (Cluster& list : clusters) {
      for (const int member : list) {
        if (file_grid_distance(element,
                               sorted_info[static_cast<std::size_t>(member)])
            <= 2) {
          list.push_back(e);
          placed = true;
          break;
        }
      }
      if (placed) break;
    }
    if (!placed) clusters.push_back(Cluster{e});
  }
  return clusters;
}

Rect cluster_bounds(std::span<const QCloudInfo> info, const Cluster& cluster) {
  ST_CHECK_MSG(!cluster.empty(), "cluster must be non-empty");
  Rect out;
  bool first = true;
  for (int i : cluster) {
    const Rect& r = info[static_cast<std::size_t>(i)].subdomain;
    out = first ? r : out.bounding_union(r);
    first = false;
  }
  return out;
}

int count_overlapping_cluster_pairs(std::span<const QCloudInfo> info,
                                    std::span<const Cluster> clusters) {
  int count = 0;
  for (std::size_t a = 0; a < clusters.size(); ++a)
    for (std::size_t b = a + 1; b < clusters.size(); ++b)
      if (cluster_bounds(info, clusters[a])
              .overlaps(cluster_bounds(info, clusters[b])))
        ++count;
  return count;
}

}  // namespace stormtrack
