#pragma once

/// \file pda.hpp
/// Parallel Data Analysis (Algorithm 1).
///
/// P split files are divided among N analysis processes (rectangular
/// subsets of the Px×Py file grid); each process aggregates QCLOUD over the
/// grid points of its files where OLR ≤ 200 and computes the fraction of
/// each subdomain under that threshold; the per-file aggregates are
/// gathered at a root rank, sorted by QCLOUD non-increasing, clustered with
/// NNC (Algorithm 2), and each cluster's bounding rectangle becomes a nest
/// region of interest. The analysis runs on its own processor set,
/// concurrently with the simulation, so it never stalls WRF (§III).

#include <optional>
#include <span>
#include <vector>

#include "exec/executor.hpp"
#include "pda/nnc.hpp"
#include "simmpi/simcomm.hpp"
#include "wsim/split_file.hpp"

namespace stormtrack {

class FaultInjector;

/// Configuration of Algorithm 1 (paper values as defaults).
struct PdaConfig {
  double olr_threshold = 200.0;  ///< OLR cut for "tall organized cloud".
  int analysis_procs = 16;       ///< N; must divide the file count P.
  int root = 0;                  ///< Gathering rank among the N.
  NncConfig nnc;                 ///< Algorithm 2 thresholds.
  /// Runs the per-rank analysis bodies; null = serial. Results are
  /// identical for any executor (per-rank slots, rank-order reduction).
  Executor* executor = nullptr;
  /// When set, split-file reads consult the injector: transient failures
  /// are retried up to max_read_retries times; permanent failures (or
  /// exhausted retries) drop the file into PdaResult::lost_files and the
  /// analysis proceeds on partial data.
  FaultInjector* injector = nullptr;
  int max_read_retries = 3;
};

/// Output of one PDA invocation.
struct PdaResult {
  /// Gathered per-file aggregates, sorted by qcloud non-increasing
  /// (only files with any OLR-qualifying points are present).
  std::vector<QCloudInfo> qcloudinfo;
  /// NNC clusters (indices into qcloudinfo).
  std::vector<Cluster> clusters;
  /// Nest regions of interest: one bounding rectangle (parent-grid points)
  /// per cluster, in deterministic (x, y) order.
  std::vector<Rect> rectangles;
  /// Modeled gather cost on the analysis communicator (zero when no
  /// communicator is supplied).
  TrafficReport traffic;
  /// Files whose reads failed permanently under fault injection (qcloud 0;
  /// position fields valid), ascending by file_rank. Empty without faults.
  std::vector<QCloudInfo> lost_files;
  /// Indices into `clusters` of clusters with a member within 2 file-grid
  /// hops (NNC's maximum merge distance) of a lost file — their extents may
  /// be understated by the missing data.
  std::vector<int> suspect_clusters;

  /// True when the analysis ran on partial data.
  [[nodiscard]] bool degraded() const { return !lost_files.empty(); }
};

/// Per-file aggregation (Algorithm 1 lines 4–9) for one split file;
/// nullopt when no grid point satisfies OLR ≤ threshold.
[[nodiscard]] std::optional<QCloudInfo> analyze_split_file(
    const SplitFile& file, const PdaConfig& config);

/// Algorithm 1 end to end over the split files of one time step.
/// \p analysis_comm — when non-null, the gather is priced on it (the
/// communicator of the N analysis processes).
[[nodiscard]] PdaResult parallel_data_analysis(
    std::span<const SplitFile> files, const PdaConfig& config = {},
    const SimComm* analysis_comm = nullptr);

/// Algorithm 1 reading the split files from disk, as the real system does:
/// each of the N analysis processes loads and analyzes its k = P/N files
/// from \p dir (written by save_split_file for ranks 0..P-1).
[[nodiscard]] PdaResult parallel_data_analysis_from_dir(
    const std::filesystem::path& dir, int num_files,
    const PdaConfig& config = {}, const SimComm* analysis_comm = nullptr);

}  // namespace stormtrack
