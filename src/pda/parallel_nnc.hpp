#pragma once

/// \file parallel_nnc.hpp
/// Parallel nearest-neighbour clustering — the paper's stated future work
/// ("we would like to parallelize the NNC algorithm in future for
/// simulations on larger number of processors", §III).
///
/// Design: tile-and-merge.
///  1. The split-file grid is tiled over N analysis ranks (most-square
///     factorisation). Each element belongs to one tile.
///  2. Every rank runs the sequential Algorithm 2 on its tile's elements
///     (kept in the global QCLOUD-sorted order) — embarrassingly parallel.
///  3. A merge pass unions clusters from different tiles when some member
///     pair lies within 2 hops on the file grid AND the union's mean
///     QCLOUD stays within the mean-deviation limit of *both* clusters'
///     means — the same admission rule Algorithm 2 applies element-wise.
///
/// The result is not always identical to the sequential clustering (greedy
/// order differs at tile boundaries), but the invariants the paper's
/// pipeline relies on hold and are tested: thresholded elements are all
/// covered, clusters are disjoint, and well-separated cloud systems yield
/// exactly the sequential clusters.

#include <span>
#include <vector>

#include "exec/executor.hpp"
#include "pda/nnc.hpp"
#include "simmpi/simcomm.hpp"

namespace stormtrack {

/// Outcome of the parallel clustering.
struct ParallelNncResult {
  std::vector<Cluster> clusters;    ///< Indices into the input array.
  int tiles_x = 0;                  ///< Tile grid used.
  int tiles_y = 0;
  int merges = 0;                   ///< Cross-tile unions performed.
  TrafficReport traffic;            ///< Gather cost (when comm supplied).
};

/// Parallel NNC over \p sorted_info (sorted by qcloud non-increasing, as
/// for nnc()). \p num_ranks analysis processes; \p comm, when non-null,
/// prices the cluster-summary gather on it. \p executor runs the per-tile
/// clustering bodies concurrently (null = serial); the tile outputs land in
/// per-rank slots and the merge pass reads them in rank order, so results
/// are identical for any executor.
[[nodiscard]] ParallelNncResult parallel_nnc(
    std::span<const QCloudInfo> sorted_info, const NncConfig& config,
    int num_ranks, const SimComm* comm = nullptr,
    Executor* executor = nullptr);

}  // namespace stormtrack
