#include "pda/parallel_nnc.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "simmpi/spmd.hpp"
#include "topo/mapping.hpp"  // choose_process_grid
#include "util/check.hpp"

namespace stormtrack {

namespace {

/// Union-find over cluster indices with incremental sum/count so the
/// mean-deviation admission rule can be evaluated cheaply.
class ClusterUnion {
 public:
  explicit ClusterUnion(std::span<const QCloudInfo> info,
                        const std::vector<Cluster>& clusters)
      : parent_(clusters.size()), sum_(clusters.size()),
        count_(clusters.size()) {
    std::iota(parent_.begin(), parent_.end(), 0u);
    for (std::size_t c = 0; c < clusters.size(); ++c) {
      for (int e : clusters[c])
        sum_[c] += info[static_cast<std::size_t>(e)].qcloud;
      count_[c] = clusters[c].size();
    }
  }

  std::size_t find(std::size_t c) {
    while (parent_[c] != c) {
      parent_[c] = parent_[parent_[c]];
      c = parent_[c];
    }
    return c;
  }

  [[nodiscard]] double mean(std::size_t root) const {
    return sum_[root] / static_cast<double>(count_[root]);
  }

  /// Merge the sets of a and b when the union's mean stays within
  /// \p deviation_limit of both current means. Returns true on merge.
  bool merge_if_admissible(std::size_t a, std::size_t b,
                           double deviation_limit) {
    const std::size_t ra = find(a);
    const std::size_t rb = find(b);
    if (ra == rb) return false;
    const double merged =
        (sum_[ra] + sum_[rb]) / static_cast<double>(count_[ra] + count_[rb]);
    if (std::abs(merged - mean(ra)) > deviation_limit * mean(ra))
      return false;
    if (std::abs(merged - mean(rb)) > deviation_limit * mean(rb))
      return false;
    parent_[rb] = ra;
    sum_[ra] += sum_[rb];
    count_[ra] += count_[rb];
    return true;
  }

 private:
  std::vector<std::size_t> parent_;
  std::vector<double> sum_;
  std::vector<std::size_t> count_;
};

}  // namespace

ParallelNncResult parallel_nnc(std::span<const QCloudInfo> sorted_info,
                               const NncConfig& config, int num_ranks,
                               const SimComm* comm, Executor* executor) {
  ST_CHECK_MSG(num_ranks >= 1, "need at least one analysis rank");
  ParallelNncResult result;
  if (sorted_info.empty()) {
    result.tiles_x = 1;
    result.tiles_y = 1;
    return result;
  }

  // ---- 1. Tile the file-grid bounding box of the elements.
  int min_x = sorted_info[0].file_x, max_x = sorted_info[0].file_x;
  int min_y = sorted_info[0].file_y, max_y = sorted_info[0].file_y;
  for (const QCloudInfo& e : sorted_info) {
    min_x = std::min(min_x, e.file_x);
    max_x = std::max(max_x, e.file_x);
    min_y = std::min(min_y, e.file_y);
    max_y = std::max(max_y, e.file_y);
  }
  const ProcessGridShape tiles = choose_process_grid(num_ranks);
  result.tiles_x = tiles.px;
  result.tiles_y = tiles.py;
  const int span_x = max_x - min_x + 1;
  const int span_y = max_y - min_y + 1;
  auto tile_of = [&](const QCloudInfo& e) {
    const int tx = std::min(tiles.px - 1,
                            (e.file_x - min_x) * tiles.px / span_x);
    const int ty = std::min(tiles.py - 1,
                            (e.file_y - min_y) * tiles.py / span_y);
    return ty * tiles.px + tx;
  };

  // ---- 2. Per-rank local clustering (SPMD; sequential Algorithm 2 on the
  //         tile's elements in global sorted order).
  const auto local_clusters = run_spmd<std::vector<Cluster>>(
      resolve_executor(executor), num_ranks, [&](int rank) {
        std::vector<int> mine;  // global indices, already sorted
        for (int i = 0; i < static_cast<int>(sorted_info.size()); ++i)
          if (tile_of(sorted_info[static_cast<std::size_t>(i)]) == rank)
            mine.push_back(i);
        std::vector<QCloudInfo> local;
        local.reserve(mine.size());
        for (int i : mine)
          local.push_back(sorted_info[static_cast<std::size_t>(i)]);
        std::vector<Cluster> clusters = nnc(local, config);
        for (Cluster& c : clusters)
          for (int& e : c) e = mine[static_cast<std::size_t>(e)];
        return clusters;
      });

  std::vector<Cluster> all;
  for (const auto& per_rank : local_clusters)
    all.insert(all.end(), per_rank.begin(), per_rank.end());

  // Gather cost: each rank ships one (sum, count, bbox) summary per local
  // cluster plus its member list.
  if (comm != nullptr) {
    ST_CHECK_MSG(comm->size() >= num_ranks,
                 "communicator smaller than rank count");
    std::vector<std::int64_t> bytes(static_cast<std::size_t>(comm->size()),
                                    0);
    for (int r = 0; r < num_ranks; ++r) {
      std::int64_t b = 0;
      for (const Cluster& c :
           local_clusters[static_cast<std::size_t>(r)])
        b += 32 + static_cast<std::int64_t>(c.size()) * 4;
      bytes[static_cast<std::size_t>(r)] = b;
    }
    result.traffic = comm->gatherv(bytes, 0);
  }

  // ---- 3. Cross-tile merge with the Algorithm-2 admission rule.
  // Precompute spatial adjacency once, then merge to a fixpoint: a union
  // moves the merged mean, which can admit further unions (mirroring the
  // sequential algorithm's gradual mean drift as it grows a cluster).
  ClusterUnion uf(sorted_info, all);
  std::vector<std::pair<std::size_t, std::size_t>> adjacent;
  for (std::size_t a = 0; a < all.size(); ++a) {
    for (std::size_t b = a + 1; b < all.size(); ++b) {
      bool close = false;
      for (int ea : all[a]) {
        for (int eb : all[b]) {
          if (file_grid_distance(sorted_info[static_cast<std::size_t>(ea)],
                                 sorted_info[static_cast<std::size_t>(eb)])
              <= 2) {
            close = true;
            break;
          }
        }
        if (close) break;
      }
      if (close) adjacent.emplace_back(a, b);
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [a, b] : adjacent) {
      if (uf.merge_if_admissible(a, b, config.mean_deviation_limit)) {
        ++result.merges;
        changed = true;
      }
    }
  }

  // Emit merged clusters, members ascending for determinism.
  std::map<std::size_t, Cluster> merged;
  for (std::size_t c = 0; c < all.size(); ++c) {
    Cluster& out = merged[uf.find(c)];
    out.insert(out.end(), all[c].begin(), all[c].end());
  }
  for (auto& [root, members] : merged) {
    std::sort(members.begin(), members.end());
    result.clusters.push_back(std::move(members));
  }
  return result;
}

}  // namespace stormtrack
