#include "fault/fault_plan.hpp"

#include <algorithm>
#include <array>
#include <fstream>
#include <sstream>

#include "util/atomic_file.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace stormtrack {

namespace {

constexpr const char* kMagic = "stormtrack-faults";
constexpr int kVersion = 1;

constexpr std::array<std::pair<FaultKind, std::string_view>, 7> kKindNames{{
    {FaultKind::kSplitReadTransient, "split_read_transient"},
    {FaultKind::kSplitReadPermanent, "split_read_permanent"},
    {FaultKind::kSplitReadCorrupt, "split_read_corrupt"},
    {FaultKind::kPayloadDrop, "payload_drop"},
    {FaultKind::kPayloadCorrupt, "payload_corrupt"},
    {FaultKind::kRankDeath, "rank_death"},
    {FaultKind::kTaskFault, "task"},
}};

}  // namespace

std::string_view to_string(FaultKind kind) {
  for (const auto& [k, name] : kKindNames)
    if (k == kind) return name;
  ST_CHECK_MSG(false, "unknown FaultKind " << static_cast<int>(kind));
  return {};
}

FaultKind fault_kind_from(std::string_view name) {
  for (const auto& [k, n] : kKindNames)
    if (n == name) return k;
  ST_CHECK_MSG(false, "unknown fault kind '" << name << "'");
  return FaultKind::kSplitReadTransient;
}

void FaultPlan::validate() const {
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& e = events[i];
    const auto fail = [&](const char* why) {
      ST_CHECK_MSG(false, "fault event " << i << " (" << to_string(e.kind)
                                         << " at point " << e.point
                                         << "): " << why);
    };
    if (e.point < 0) fail("point must be >= 0");
    if (e.attempts < 0) fail("attempts must be >= 0");
    switch (e.kind) {
      case FaultKind::kSplitReadTransient:
        if (e.rank < 0) fail("transient split read needs a concrete rank");
        if (e.attempts < 1) fail("transient split read needs attempts >= 1");
        break;
      case FaultKind::kSplitReadPermanent:
      case FaultKind::kSplitReadCorrupt:
        if (e.rank < -1) fail("rank must be >= -1");
        break;
      case FaultKind::kPayloadDrop:
      case FaultKind::kPayloadCorrupt:
        if (e.rank < -1) fail("rank must be >= -1");
        if (e.peer < -1) fail("peer must be >= -1");
        break;
      case FaultKind::kRankDeath:
        if (e.rank < 0) fail("rank death needs a concrete rank");
        break;
      case FaultKind::kTaskFault:
        if (e.site.empty()) fail("task fault needs a site name");
        if (e.index < 0) fail("task fault needs a concrete index");
        break;
    }
  }
}

void FaultPlan::save(std::ostream& os) const {
  os << kMagic << ' ' << kVersion << '\n';
  for (const FaultEvent& e : events) {
    os << "fault " << to_string(e.kind) << " point=" << e.point;
    if (e.rank != -1) os << " rank=" << e.rank;
    if (e.peer != -1) os << " peer=" << e.peer;
    if (e.index != -1) os << " index=" << e.index;
    if (e.attempts != 1) os << " attempts=" << e.attempts;
    if (!e.site.empty()) os << " site=" << e.site;
    os << '\n';
  }
  ST_CHECK_MSG(os.good(), "failed writing fault plan");
}

void FaultPlan::save(const std::filesystem::path& path) const {
  // Atomic replace: a crash mid-save never leaves a truncated plan file.
  std::ostringstream os;
  save(os);
  write_file_atomic(path, os.str());
}

FaultPlan FaultPlan::load(std::istream& is) {
  std::string magic;
  int version = 0;
  is >> magic >> version;
  ST_CHECK_MSG(is.good() && magic == kMagic,
               "not a stormtrack fault plan (bad magic)");
  ST_CHECK_MSG(version == kVersion,
               "unsupported fault plan version " << version);

  FaultPlan plan;
  std::string line;
  std::getline(is, line);  // consume the header's newline
  int line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos)
      line.erase(hash);
    std::istringstream ls(line);
    std::string keyword;
    if (!(ls >> keyword)) continue;
    ST_CHECK_MSG(keyword == "fault", "line " << line_no
                                             << ": unknown keyword '"
                                             << keyword << "'");
    std::string kind_name;
    ST_CHECK_MSG(static_cast<bool>(ls >> kind_name),
                 "line " << line_no << ": missing fault kind");
    FaultEvent e;
    e.kind = fault_kind_from(kind_name);
    std::string kv;
    while (ls >> kv) {
      const auto eq = kv.find('=');
      ST_CHECK_MSG(eq != std::string::npos && eq > 0 && eq + 1 < kv.size(),
                   "line " << line_no << ": malformed field '" << kv
                           << "' (expected key=value)");
      const std::string key = kv.substr(0, eq);
      const std::string value = kv.substr(eq + 1);
      if (key == "site") {
        e.site = value;
        continue;
      }
      int parsed = 0;
      std::size_t consumed = 0;
      try {
        parsed = std::stoi(value, &consumed);
      } catch (const std::exception&) {
        consumed = std::string::npos;
      }
      ST_CHECK_MSG(consumed == value.size(),
                   "line " << line_no << ": field '" << key
                           << "' needs an integer, got '" << value << "'");
      if (key == "point") e.point = parsed;
      else if (key == "rank") e.rank = parsed;
      else if (key == "peer") e.peer = parsed;
      else if (key == "index") e.index = parsed;
      else if (key == "attempts") e.attempts = parsed;
      else
        ST_CHECK_MSG(false, "line " << line_no << ": unknown field '" << key
                                    << "'");
    }
    plan.events.push_back(std::move(e));
  }
  plan.validate();
  return plan;
}

FaultPlan FaultPlan::load(const std::filesystem::path& path) {
  std::ifstream is(path);
  ST_CHECK_MSG(is.is_open(), "cannot open fault plan file " << path);
  return load(is);
}

FaultPlan FaultPlan::random(const RandomConfig& cfg) {
  ST_CHECK_MSG(cfg.num_events >= 0, "num_events must be >= 0");
  ST_CHECK_MSG(cfg.num_points >= 1, "num_points must be >= 1");
  ST_CHECK_MSG(cfg.num_ranks >= 1, "num_ranks must be >= 1");
  Xoshiro256 rng(cfg.seed);
  constexpr std::string_view kTaskSites[] = {"build_candidates",
                                             "predict_costs", "redistribute"};
  FaultPlan plan;
  int rank_deaths = 0;
  while (static_cast<int>(plan.events.size()) < cfg.num_events) {
    FaultEvent e;
    e.point = static_cast<int>(rng.uniform_int(0, cfg.num_points - 1));
    switch (rng.uniform_int(0, 5)) {
      case 0:
        e.kind = FaultKind::kSplitReadTransient;
        e.rank = static_cast<int>(rng.uniform_int(0, cfg.num_ranks - 1));
        e.attempts = static_cast<int>(rng.uniform_int(1, 2));
        break;
      case 1:
        e.kind = rng.bernoulli(0.5) ? FaultKind::kSplitReadPermanent
                                    : FaultKind::kSplitReadCorrupt;
        e.rank = static_cast<int>(rng.uniform_int(0, cfg.num_ranks - 1));
        break;
      case 2:
        e.kind = FaultKind::kPayloadDrop;
        e.rank = static_cast<int>(rng.uniform_int(0, cfg.num_ranks - 1));
        break;
      case 3:
        e.kind = FaultKind::kPayloadCorrupt;
        e.rank = static_cast<int>(rng.uniform_int(0, cfg.num_ranks - 1));
        break;
      case 4:
        e.kind = FaultKind::kTaskFault;
        e.site = kTaskSites[rng.uniform_int(0, 2)];
        e.index = static_cast<int>(rng.uniform_int(0, 1));
        e.attempts = static_cast<int>(rng.uniform_int(0, 1));
        break;
      default:
        if (rank_deaths >= cfg.max_rank_deaths) continue;  // redraw
        e.kind = FaultKind::kRankDeath;
        e.rank = static_cast<int>(rng.uniform_int(0, cfg.num_ranks - 1));
        ++rank_deaths;
        break;
    }
    plan.events.push_back(std::move(e));
  }
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.point < b.point;
                   });
  plan.validate();
  return plan;
}

}  // namespace stormtrack
