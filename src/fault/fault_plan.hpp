#pragma once

/// \file fault_plan.hpp
/// Deterministic fault schedules for robustness experiments.
///
/// A FaultPlan is a list of FaultEvents, each bound to an adaptation point
/// (the pipeline's point counter / the coupled run's interval) and a target
/// (split-file rank, message endpoints, task site + index, or a dying
/// machine rank). Plans are plain data: they serialize to a line-oriented
/// text format so experiments can commit them next to traces, and they can
/// be generated pseudo-randomly from a seed (util/rng.hpp — never
/// wall-clock), so a "random" fault campaign is still bit-reproducible.
///
/// Text format ('#' comments, one event per line):
///
///   stormtrack-faults 1
///   fault split_read_transient point=3 rank=5 attempts=2
///   fault split_read_permanent point=4 rank=9
///   fault payload_drop point=7 rank=2 peer=-1
///   fault task point=5 site=build_candidates index=1
///   fault rank_death point=6 rank=17
///
/// The FaultInjector (fault_injector.hpp) interprets a plan at run time.

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace stormtrack {

/// Everything the injector can break.
enum class FaultKind {
  kSplitReadTransient,  ///< Read fails `attempts` times (truncation), then
                        ///< succeeds — recoverable by bounded retry.
  kSplitReadPermanent,  ///< Read always fails (ENOENT) — the file is lost.
  kSplitReadCorrupt,    ///< Corrupt header — permanent, distinct flavour.
  kPayloadDrop,         ///< exchange_payloads message vanishes in flight.
  kPayloadCorrupt,      ///< exchange_payloads payload bytes are damaged.
  kRankDeath,           ///< Machine rank dies at the adaptation point.
  kTaskFault,           ///< Executor task body throws at a pipeline stage.
};

[[nodiscard]] std::string_view to_string(FaultKind kind);
/// Inverse of to_string; throws CheckError on unknown names.
[[nodiscard]] FaultKind fault_kind_from(std::string_view name);

/// One scheduled fault.
struct FaultEvent {
  FaultKind kind = FaultKind::kSplitReadTransient;
  int point = 0;     ///< Adaptation point / interval the fault fires at.
  int rank = -1;     ///< Split-file rank, payload source, or dying rank;
                     ///< -1 = any (permanent split reads and payloads only).
  int peer = -1;     ///< Payload destination; -1 = any destination.
  int index = -1;    ///< Task index within the stage batch (kTaskFault).
  int attempts = 1;  ///< Times the fault fires before clearing; 0 = always
                     ///< (split reads: failing read attempts; task faults:
                     ///< failing executions across ladder retries).
  std::string site;  ///< Stage site name (kTaskFault), e.g.
                     ///< "build_candidates", "predict_costs", "commit".
};

/// See file comment.
struct FaultPlan {
  std::vector<FaultEvent> events;

  [[nodiscard]] bool empty() const { return events.empty(); }

  /// Structural validation (kind-specific target requirements; notably a
  /// *transient* split read must name a concrete rank — a wildcard with an
  /// attempt budget would make the set of failing readers depend on thread
  /// scheduling). Throws CheckError.
  void validate() const;

  /// Parse / serialize the text format. load() validates.
  [[nodiscard]] static FaultPlan load(std::istream& is);
  [[nodiscard]] static FaultPlan load(const std::filesystem::path& path);
  void save(std::ostream& os) const;
  void save(const std::filesystem::path& path) const;

  /// Seeded pseudo-random campaign over a run of \p num_points adaptation
  /// points on \p num_ranks machine ranks.
  struct RandomConfig {
    int num_events = 8;
    int num_points = 20;
    int num_ranks = 64;
    int max_rank_deaths = 1;   ///< Cap on kRankDeath events in the plan.
    std::uint64_t seed = 2013;
  };
  [[nodiscard]] static FaultPlan random(const RandomConfig& cfg);
};

}  // namespace stormtrack
