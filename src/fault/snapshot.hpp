#pragma once

/// \file snapshot.hpp
/// FNV fingerprints of allocation state for transactional adaptation.
///
/// The pipeline snapshots (tree, allocation, nest set) before each
/// adaptation point; these helpers reduce that state to a 64-bit FNV-1a
/// fingerprint so tests can assert a rolled-back point left it
/// byte-identical. Tree hashing walks preorder with explicit null markers,
/// so structurally different trees with equal leaf sets still differ.

#include <cstdint>

#include "alloc/allocation.hpp"
#include "tree/alloc_tree.hpp"
#include "util/fnv.hpp"
#include "util/rect.hpp"

namespace stormtrack {

void add_fingerprint(Fingerprint& fp, const Rect& rect);
void add_fingerprint(Fingerprint& fp, const AllocTree& tree);
void add_fingerprint(Fingerprint& fp, const Allocation& alloc);

[[nodiscard]] std::uint64_t fingerprint_of(const AllocTree& tree);
[[nodiscard]] std::uint64_t fingerprint_of(const Allocation& alloc);

}  // namespace stormtrack
