#include "fault/fault_injector.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace stormtrack {

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  plan_.validate();
  fired_.assign(plan_.events.size(), 0);
}

void FaultInjector::begin_point(int point) {
  std::lock_guard<std::mutex> lock(mutex_);
  point_ = point;
}

int FaultInjector::point() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return point_;
}

bool FaultInjector::consume_attempt_locked(std::size_t event_index) {
  const FaultEvent& e = plan_.events[event_index];
  if (e.attempts == 0) return true;  // unbounded: always fires
  if (fired_[event_index] >= e.attempts) return false;
  ++fired_[event_index];
  return true;
}

SplitReadFault FaultInjector::check_split_read(int file_rank) {
  std::lock_guard<std::mutex> lock(mutex_);
  SplitReadFault result = SplitReadFault::kNone;
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& e = plan_.events[i];
    if (e.point != point_) continue;
    switch (e.kind) {
      case FaultKind::kSplitReadPermanent:
      case FaultKind::kSplitReadCorrupt:
        if (e.rank == -1 || e.rank == file_rank) {
          ++stats_.split_read_faults;
          return SplitReadFault::kPermanent;
        }
        break;
      case FaultKind::kSplitReadTransient:
        // validate() guarantees a concrete rank, so the attempt budget is
        // consumed only by that rank's own sequential retries.
        if (e.rank == file_rank && result == SplitReadFault::kNone &&
            consume_attempt_locked(i)) {
          ++stats_.split_read_faults;
          result = SplitReadFault::kTransient;
        }
        break;
      default:
        break;
    }
  }
  return result;
}

void FaultInjector::inject_split_read(int file_rank) {
  switch (check_split_read(file_rank)) {
    case SplitReadFault::kNone:
      return;
    case SplitReadFault::kTransient: {
      std::ostringstream os;
      os << "injected transient split-file read failure for rank " << file_rank
         << " (truncated read)";
      throw FaultError(FaultKind::kSplitReadTransient, true, os.str());
    }
    case SplitReadFault::kPermanent: {
      std::ostringstream os;
      os << "injected permanent split-file read failure for rank " << file_rank
         << " (missing or corrupt file)";
      throw FaultError(FaultKind::kSplitReadPermanent, false, os.str());
    }
  }
}

void FaultInjector::guard_task(std::string_view site, std::size_t index) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& e = plan_.events[i];
    if (e.kind != FaultKind::kTaskFault || e.point != point_) continue;
    if (e.site != site || static_cast<std::size_t>(e.index) != index) continue;
    if (!consume_attempt_locked(i)) continue;
    ++stats_.task_faults;
    std::ostringstream os;
    os << "injected task fault at site '" << site << "' index " << index;
    throw FaultError(FaultKind::kTaskFault, e.attempts != 0, os.str());
  }
}

std::vector<int> FaultInjector::ranks_dying_at(int point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<int> dying;
  for (const FaultEvent& e : plan_.events)
    if (e.kind == FaultKind::kRankDeath && e.point == point)
      dying.push_back(e.rank);
  std::sort(dying.begin(), dying.end());
  dying.erase(std::unique(dying.begin(), dying.end()), dying.end());
  return dying;
}

PayloadFaultHook::Action FaultInjector::on_payload(int src, int dst,
                                                   std::int64_t /*bytes*/) {
  std::lock_guard<std::mutex> lock(mutex_);
  Action action = Action::kNone;
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& e = plan_.events[i];
    if (e.point != point_) continue;
    if (e.kind != FaultKind::kPayloadDrop &&
        e.kind != FaultKind::kPayloadCorrupt)
      continue;
    if (e.rank != -1 && e.rank != src) continue;
    if (e.peer != -1 && e.peer != dst) continue;
    if (e.kind == FaultKind::kPayloadDrop) {
      // Drop wins over corrupt when both match the same message.
      ++stats_.payload_drops;
      return Action::kDrop;
    }
    if (action == Action::kNone) {
      ++stats_.payload_corruptions;
      action = Action::kCorrupt;
    }
  }
  return action;
}

FaultInjectorStats FaultInjector::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

FaultInjector::State FaultInjector::export_state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return State{point_, fired_, stats_};
}

void FaultInjector::import_state(const State& state) {
  std::lock_guard<std::mutex> lock(mutex_);
  ST_CHECK_MSG(state.fired.size() == plan_.events.size(),
               "fault-injector state has " << state.fired.size()
                                           << " event counters but the plan "
                                              "has "
                                           << plan_.events.size()
                                           << " events — checkpoint taken "
                                              "under a different fault plan");
  for (const int count : state.fired)
    ST_CHECK_MSG(count >= 0, "fault-injector state has a negative firing "
                             "count");
  point_ = state.point;
  fired_ = state.fired;
  stats_ = state.stats;
}

}  // namespace stormtrack
