#include "fault/snapshot.hpp"

namespace stormtrack {

namespace {

void add_tree_rec(Fingerprint& fp, const AllocTree& tree, int idx) {
  if (idx < 0) {
    fp.add(-1);
    return;
  }
  const AllocTree::Node& n = tree.node(idx);
  fp.add(n.weight);
  fp.add(n.nest);
  fp.add(static_cast<int>(n.free_slot));
  add_tree_rec(fp, tree, n.left);
  add_tree_rec(fp, tree, n.right);
}

}  // namespace

void add_fingerprint(Fingerprint& fp, const Rect& rect) {
  fp.add(rect.x);
  fp.add(rect.y);
  fp.add(rect.w);
  fp.add(rect.h);
}

void add_fingerprint(Fingerprint& fp, const AllocTree& tree) {
  add_tree_rec(fp, tree, tree.root());
}

void add_fingerprint(Fingerprint& fp, const Allocation& alloc) {
  fp.add(alloc.grid_px());
  fp.add(alloc.grid_py());
  fp.add(static_cast<std::int64_t>(alloc.rects().size()));
  for (const auto& [nest, rect] : alloc.rects()) {
    fp.add(nest);
    add_fingerprint(fp, rect);
  }
}

std::uint64_t fingerprint_of(const AllocTree& tree) {
  Fingerprint fp;
  add_fingerprint(fp, tree);
  return fp.value();
}

std::uint64_t fingerprint_of(const Allocation& alloc) {
  Fingerprint fp;
  add_fingerprint(fp, alloc);
  return fp.value();
}

}  // namespace stormtrack
