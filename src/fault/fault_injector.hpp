#pragma once

/// \file fault_injector.hpp
/// Runtime interpreter for a FaultPlan.
///
/// One FaultInjector is shared by every component of a run (split-file
/// reader, exchange_payloads, executor task guards, the adaptation
/// pipeline). The pipeline advances it with begin_point(); components then
/// query it with their own coordinates (file rank, message endpoints, task
/// site + index) and the injector decides purely from the plan and the
/// current point — never from call order — so N-thread runs observe the
/// same faults as serial runs.
///
/// The only call-order-dependent state is the per-event attempt counter for
/// *transient* faults, which FaultPlan::validate() restricts to concrete
/// single targets: all of a transient event's firings happen at one rank's
/// read site, which retries sequentially, so the counter is still
/// deterministic under threading.

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "fault/fault_plan.hpp"
#include "simmpi/simcomm.hpp"

namespace stormtrack {

/// Thrown by injected faults (distinct from CheckError so recovery code can
/// tell injected failures from genuine invariant violations in tests; the
/// degradation ladder catches both).
class FaultError : public std::runtime_error {
 public:
  FaultError(FaultKind kind, bool transient, const std::string& what)
      : std::runtime_error(what), kind_(kind), transient_(transient) {}

  [[nodiscard]] FaultKind kind() const { return kind_; }
  /// True when a bounded retry may clear the fault.
  [[nodiscard]] bool transient() const { return transient_; }

 private:
  FaultKind kind_;
  bool transient_;
};

/// What a split-file read attempt should do.
enum class SplitReadFault {
  kNone,       ///< Read succeeds.
  kTransient,  ///< This attempt fails; retrying may succeed.
  kPermanent,  ///< Every attempt fails; the file is lost.
};

/// Injection counters, surfaced as fault.* metrics by the pipeline.
struct FaultInjectorStats {
  std::int64_t split_read_faults = 0;
  std::int64_t payload_drops = 0;
  std::int64_t payload_corruptions = 0;
  std::int64_t task_faults = 0;
};

/// See file comment.
class FaultInjector final : public PayloadFaultHook {
 public:
  /// Validates the plan (throws CheckError on a malformed one).
  explicit FaultInjector(FaultPlan plan);

  /// Enter an adaptation point; idempotent for the same point. Faults only
  /// fire for the current point.
  void begin_point(int point);
  [[nodiscard]] int point() const;

  /// Consult the plan for one read attempt of \p file_rank's split file at
  /// the current point. Transient events consume one of their attempts per
  /// call; permanent/corrupt events always fire.
  [[nodiscard]] SplitReadFault check_split_read(int file_rank);

  /// check_split_read + throw FaultError when the read should fail.
  void inject_split_read(int file_rank);

  /// Throw FaultError if a task fault is scheduled for (site, index) at the
  /// current point. attempts=0 events always fire; attempts>0 events fire
  /// that many executions (ladder retries re-run the batch).
  void guard_task(std::string_view site, std::size_t index);

  /// Ranks with a kRankDeath event at \p point (ascending, deduplicated).
  [[nodiscard]] std::vector<int> ranks_dying_at(int point) const;

  /// PayloadFaultHook: match drop/corrupt events against the message's
  /// endpoints at the current point (rank = src, peer = dst, -1 wildcards).
  [[nodiscard]] Action on_payload(int src, int dst,
                                  std::int64_t bytes) override;

  [[nodiscard]] FaultInjectorStats stats() const;
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  /// Complete interpreter position, for checkpoint/restart: the current
  /// point, every event's firing count (transient attempt budgets), and the
  /// cumulative stats. Restoring it into an injector built from the same
  /// plan resumes the exact fault schedule mid-campaign.
  struct State {
    int point = -1;
    std::vector<int> fired;
    FaultInjectorStats stats;
  };
  [[nodiscard]] State export_state() const;
  /// Throws CheckError when \p state does not match this injector's plan
  /// (wrong event count — the checkpoint was taken under a different plan).
  void import_state(const State& state);

 private:
  [[nodiscard]] bool consume_attempt_locked(std::size_t event_index);

  FaultPlan plan_;
  mutable std::mutex mutex_;
  int point_ = -1;
  std::vector<int> fired_;  ///< Per-event firing counts (attempt budgets).
  FaultInjectorStats stats_;
};

}  // namespace stormtrack
