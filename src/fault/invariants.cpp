#include "fault/invariants.hpp"

#include <cstdint>

#include "util/check.hpp"

namespace stormtrack {

void validate_allocation(const AllocTree& tree, const Allocation& alloc,
                         const Rect& view) {
  if (tree.empty()) {
    ST_CHECK_MSG(alloc.rects().empty(),
                 "empty tree induced a non-empty allocation of "
                     << alloc.rects().size() << " rectangles");
    return;
  }
  tree.validate();
  ST_CHECK_MSG(!tree.has_free_slots(),
               "committed tree still holds free slots");
  const auto leaves = tree.leaves();
  ST_CHECK_MSG(leaves.size() == alloc.rects().size(),
               "tree has " << leaves.size() << " nests but allocation has "
                           << alloc.rects().size() << " rectangles");
  std::int64_t covered = 0;
  for (const NestWeight& leaf : leaves) {
    const auto rect = alloc.find(leaf.nest);
    ST_CHECK_MSG(rect.has_value(),
                 "nest " << leaf.nest << " has a leaf but no rectangle");
    ST_CHECK_MSG(!rect->empty(), "nest " << leaf.nest
                                         << " owns an empty rectangle");
    ST_CHECK_MSG(view.contains(*rect),
                 "nest " << leaf.nest << " rectangle " << rect->to_string()
                         << " leaves the grid view " << view.to_string());
    covered += rect->area();
  }
  // The Allocation ctor enforced pairwise disjointness, so area equality
  // here means the rectangles exactly partition the view.
  ST_CHECK_MSG(covered == view.area(),
               "allocation covers " << covered << " of " << view.area()
                                    << " cells in view " << view.to_string());
}

}  // namespace stormtrack
