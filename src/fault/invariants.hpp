#pragma once

/// \file invariants.hpp
/// Post-stage allocation validator gating every commit.
///
/// Recovery paths (degradation ladder, rank-loss re-allocation) must never
/// install a broken allocation: before the pipeline commits a candidate it
/// runs this validator, which cross-checks the tree against the allocation
/// it induced — structural tree invariants, no leftover free slots, a
/// rectangle for every occupied leaf, every rectangle non-empty and inside
/// the active grid view, and the rectangles exactly partitioning the view
/// (pairwise disjointness is enforced by the Allocation constructor, so
/// disjoint + Σ areas == view area ⇒ full coverage).

#include "alloc/allocation.hpp"
#include "tree/alloc_tree.hpp"
#include "util/rect.hpp"

namespace stormtrack {

/// Throws CheckError on the first violated invariant. \p view is the grid
/// region the allocation is expected to partition (the full machine grid,
/// or the shrunken view after rank-loss recovery).
void validate_allocation(const AllocTree& tree, const Allocation& alloc,
                         const Rect& view);

}  // namespace stormtrack
