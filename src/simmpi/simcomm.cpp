#include "simmpi/simcomm.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace stormtrack {

TrafficReport& TrafficReport::operator+=(const TrafficReport& o) {
  modeled_time += o.modeled_time;
  total_bytes += o.total_bytes;
  hop_bytes += o.hop_bytes;
  local_bytes += o.local_bytes;
  num_messages += o.num_messages;
  max_hops = std::max(max_hops, o.max_hops);
  return *this;
}

SimComm::SimComm(const Topology& topo, const Mapping& mapping)
    : topo_(&topo), mapping_(&mapping) {
  ST_CHECK_MSG(mapping.num_ranks() <= topo.num_nodes(),
               "mapping places " << mapping.num_ranks() << " ranks on "
                                 << topo.num_nodes() << " nodes");
}

TrafficReport SimComm::alltoallv(std::span<const Message> msgs) const {
  // Single-port endpoint model with a fabric contention floor:
  //
  //   serial     = max over ranks of max(Σ send times, Σ receive times)
  //   contention = hop_bytes / aggregate_capacity
  //   phase time = max(serial, contention)
  //
  // Each rank injects/drains one message at a time (single-port), so its
  // sends and its receives serialize while different ranks overlap; and no
  // phase can finish before the fabric has drained every byte across every
  // link it traverses. This is deliberately *richer* than the paper's
  // §IV-C-1 prediction formula (see RedistTimeModel, which implements that
  // one verbatim): here the simulated network plays the role of the real
  // machine, where endpoint serialization and link contention are what the
  // paper's measured 10–25% redistribution-time gains come from.
  TrafficReport rep;
  std::unordered_map<int, double> send_time;
  std::unordered_map<int, double> recv_time;

  for (const Message& m : msgs) {
    require_rank(m.src);
    require_rank(m.dst);
    ST_CHECK_MSG(m.bytes >= 0, "negative message size " << m.bytes);
    if (m.bytes == 0) continue;
    if (m.src == m.dst) {
      rep.local_bytes += m.bytes;
      continue;
    }
    const int h = hops(m.src, m.dst);
    const double t = topo_->pair_time(h, m.bytes);
    rep.total_bytes += m.bytes;
    rep.hop_bytes += m.bytes * h;
    rep.num_messages += 1;
    rep.max_hops = std::max(rep.max_hops, h);
    send_time[m.src] += t;
    recv_time[m.dst] += t;
  }

  double serial = 0.0;
  for (const auto& [r, t] : send_time) serial = std::max(serial, t);
  for (const auto& [r, t] : recv_time) serial = std::max(serial, t);
  // Contended quantity: on direct networks messages occupy every link they
  // traverse (hop-bytes); on switched fabrics the core carries each byte
  // once regardless of the 2/4-hop switch path.
  const double contended_bytes = static_cast<double>(
      topo_->is_direct_network() ? rep.hop_bytes : rep.total_bytes);
  rep.modeled_time =
      std::max(serial, contended_bytes / topo_->aggregate_capacity());
  return rep;
}

TrafficReport SimComm::gatherv(std::span<const std::int64_t> bytes_per_rank,
                               int root) const {
  ST_CHECK_MSG(static_cast<int>(bytes_per_rank.size()) == size(),
               "gatherv needs one byte count per rank");
  require_rank(root);
  std::vector<Message> msgs;
  msgs.reserve(bytes_per_rank.size());
  for (int r = 0; r < size(); ++r)
    msgs.push_back(Message{r, root, bytes_per_rank[static_cast<std::size_t>(r)]});
  return alltoallv(msgs);
}

TrafficReport SimComm::bcast(std::int64_t bytes, int root) const {
  require_rank(root);
  ST_CHECK_MSG(bytes >= 0, "negative broadcast size");
  TrafficReport rep;
  if (size() <= 1 || bytes == 0) return rep;

  // Binomial tree: in round k, ranks that already hold the payload forward
  // it 2^k positions away (modulo rotation around the root).
  int have = 1;
  while (have < size()) {
    double round_time = 0.0;
    for (int i = 0; i < have && i + have < size(); ++i) {
      const int src = (root + i) % size();
      const int dst = (root + i + have) % size();
      const int h = hops(src, dst);
      rep.total_bytes += bytes;
      rep.hop_bytes += bytes * h;
      rep.num_messages += 1;
      rep.max_hops = std::max(rep.max_hops, h);
      round_time = std::max(round_time, topo_->pair_time(h, bytes));
    }
    rep.modeled_time += round_time;
    have *= 2;
  }
  return rep;
}

}  // namespace stormtrack
