#pragma once

/// \file simcomm.hpp
/// Simulated message-passing runtime.
///
/// The paper's experiments run MPI on Blue Gene/L and an Infiniband cluster;
/// neither is available here, so the library ships a deterministic simulated
/// communicator. A SimComm binds a Topology (physical hop distances + link
/// cost parameters) to a Mapping (rank→node placement) and prices message
/// phases with a single-port + contention model:
///
///  * point-to-point pair time  t(h, b) = α + h·per_hop + b/BW;
///  * MPI_Alltoallv phase time = max(serial, contention) with
///      serial     = max over ranks of max(Σ send times, Σ receive times)
///      contention = contended bytes / topology.aggregate_capacity(),
///      where the contended quantity is hop-bytes on direct networks
///      (messages occupy every traversed link) and total bytes on switched
///      fabrics (the core carries each byte once).
///
/// The simulated network stands in for the *real machine*; the paper's
/// simpler §IV-C-1 prediction formula (max over pair times on mesh/torus,
/// per-sender sums on switched networks) is implemented verbatim in
/// RedistTimeModel (perfmodel/redist_model.hpp) and used only to predict.
///
/// Every phase returns a TrafficReport with the modeled time plus the exact
/// byte/hop-byte accounting used for the paper's Fig. 10 metric. Typed
/// exchange helpers actually move payload bytes so redistribution
/// correctness (conservation) is testable end-to-end.

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "topo/mapping.hpp"
#include "topo/topology.hpp"
#include "util/check.hpp"

namespace stormtrack {

/// Byte-, hop- and time-accounting for one communication phase.
struct TrafficReport {
  double modeled_time = 0.0;       ///< Phase completion time (s).
  std::int64_t total_bytes = 0;    ///< Payload bytes moved off-rank.
  std::int64_t hop_bytes = 0;      ///< Σ bytes × hops (network load, Fig. 10).
  std::int64_t local_bytes = 0;    ///< Bytes "moved" rank→itself (0 hops).
  std::int64_t num_messages = 0;   ///< Off-rank messages in the phase.
  int max_hops = 0;                ///< Longest route used.

  /// Average hops travelled per off-rank byte (the paper's "average
  /// hop-bytes" per test case); 0 when no bytes moved.
  [[nodiscard]] double avg_hops_per_byte() const {
    if (total_bytes == 0) return 0.0;
    return static_cast<double>(hop_bytes) / static_cast<double>(total_bytes);
  }

  /// Sequential composition of phases: times add, counters add, max_hops
  /// takes the max.
  TrafficReport& operator+=(const TrafficReport& o);
};

/// One point-to-point message in a phase (payload size only; use
/// TypedExchange for payload-carrying traffic).
struct Message {
  int src = 0;
  int dst = 0;
  std::int64_t bytes = 0;
};

/// Simulated communicator over all ranks of a Mapping.
class SimComm {
 public:
  /// Both referents must outlive the communicator.
  SimComm(const Topology& topo, const Mapping& mapping);

  [[nodiscard]] int size() const { return mapping_->num_ranks(); }
  [[nodiscard]] const Topology& topology() const { return *topo_; }
  [[nodiscard]] const Mapping& mapping() const { return *mapping_; }

  /// Hop distance between two ranks under the bound mapping.
  [[nodiscard]] int hops(int rank_a, int rank_b) const {
    return mapping_->rank_hops(*topo_, rank_a, rank_b);
  }

  /// Price an Alltoallv phase described by its sparse message list.
  /// Zero-byte and self messages cost nothing on the network but self
  /// messages are tallied in local_bytes.
  [[nodiscard]] TrafficReport alltoallv(std::span<const Message> msgs) const;

  /// Price a Gatherv of \p bytes_per_rank[i] bytes from every rank i to
  /// \p root (modelled as the Alltoallv of the corresponding messages).
  [[nodiscard]] TrafficReport gatherv(
      std::span<const std::int64_t> bytes_per_rank, int root) const;

  /// Price a binomial-tree broadcast of \p bytes from \p root: ceil(log2 P)
  /// rounds, each priced at the worst pair time of that round.
  [[nodiscard]] TrafficReport bcast(std::int64_t bytes, int root) const;

 private:
  void require_rank(int rank) const {
    ST_CHECK_MSG(rank >= 0 && rank < size(),
                 "rank " << rank << " outside communicator of " << size());
  }

  const Topology* topo_;
  const Mapping* mapping_;
};

/// Hook consulted once per message in exchange_payloads, after pricing
/// (the bytes were sent; faults strike in flight). kDrop removes the
/// message before delivery; kCorrupt damages payload bytes but keeps the
/// message, so receivers must detect the damage themselves.
class PayloadFaultHook {
 public:
  enum class Action { kNone, kDrop, kCorrupt };

  virtual ~PayloadFaultHook() = default;
  [[nodiscard]] virtual Action on_payload(int src, int dst,
                                          std::int64_t bytes) = 0;
};

/// Payload-carrying exchange: moves per-message payload vectors between
/// ranks and prices the phase like SimComm::alltoallv. Delivered messages
/// are grouped contiguously by destination rank (ascending), each group
/// ascending by source rank — a deterministic iteration order without the
/// per-destination map + per-list sort the old implementation paid.
template <typename T>
struct TypedMessage {
  int src = 0;
  int dst = 0;
  std::vector<T> payload;
};

/// Half-open range of a destination rank's messages in
/// ExchangeResult::messages.
struct DeliveryGroup {
  int dst = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
};

template <typename T>
struct ExchangeResult {
  /// Every delivered message, grouped by destination (ascending), each
  /// group ascending by source.
  std::vector<TypedMessage<T>> messages;
  /// One entry per destination that received anything, ascending by dst.
  std::vector<DeliveryGroup> groups;
  TrafficReport traffic;

  /// Messages delivered to \p dst (empty when it received nothing).
  [[nodiscard]] std::span<const TypedMessage<T>> received_by(int dst) const {
    const auto it = std::lower_bound(
        groups.begin(), groups.end(), dst,
        [](const DeliveryGroup& g, int d) { return g.dst < d; });
    if (it == groups.end() || it->dst != dst) return {};
    return std::span<const TypedMessage<T>>(messages)
        .subspan(it->begin, it->end - it->begin);
  }
};

template <typename T>
[[nodiscard]] ExchangeResult<T> exchange_payloads(
    const SimComm& comm, std::vector<TypedMessage<T>> msgs,
    PayloadFaultHook* faults = nullptr) {
  std::vector<Message> sizes;
  sizes.reserve(msgs.size());
  for (const auto& m : msgs)
    sizes.push_back(Message{m.src, m.dst,
                            static_cast<std::int64_t>(m.payload.size() *
                                                      sizeof(T))});
  ExchangeResult<T> out;
  out.traffic = comm.alltoallv(sizes);
  if (faults != nullptr) {
    std::size_t keep = 0;
    for (std::size_t i = 0; i < msgs.size(); ++i) {
      auto& m = msgs[i];
      const auto bytes =
          static_cast<std::int64_t>(m.payload.size() * sizeof(T));
      const auto action = faults->on_payload(m.src, m.dst, bytes);
      if (action == PayloadFaultHook::Action::kDrop) continue;
      if (action == PayloadFaultHook::Action::kCorrupt && !m.payload.empty()) {
        // Damage only the trailing element: structured headers at the front
        // of a payload stay parseable, so corruption is a *data* integrity
        // problem for the receiver to detect, not a crash.
        auto* bytes_ptr =
            reinterpret_cast<unsigned char*>(&m.payload.back());
        for (std::size_t b = 0; b < sizeof(T); ++b) bytes_ptr[b] ^= 0xA5;
      }
      if (keep != i) msgs[keep] = std::move(m);
      ++keep;
    }
    msgs.resize(keep);
  }
  // Single stable sort (dst, then src); equal (src, dst) pairs keep
  // submission order, matching the old stable per-list sorts.
  std::stable_sort(msgs.begin(), msgs.end(),
                   [](const TypedMessage<T>& a, const TypedMessage<T>& b) {
                     if (a.dst != b.dst) return a.dst < b.dst;
                     return a.src < b.src;
                   });
  out.messages = std::move(msgs);
  for (std::size_t i = 0; i < out.messages.size();) {
    std::size_t j = i;
    while (j < out.messages.size() &&
           out.messages[j].dst == out.messages[i].dst)
      ++j;
    out.groups.push_back(DeliveryGroup{out.messages[i].dst, i, j});
    i = j;
  }
  return out;
}

}  // namespace stormtrack
