#pragma once

/// \file spmd.hpp
/// SPMD execution helper for the simulated runtime.
///
/// Code written against the simulator keeps the per-rank structure of the
/// real MPI program (the parallel data analysis of §III runs one analysis
/// function per rank). run_spmd executes every rank's body on an Executor:
/// handed a ThreadPoolExecutor the rank bodies genuinely run concurrently;
/// the overloads without an executor run serially in rank order. Either
/// way each rank writes only its own preallocated result slot, so the
/// collected results are identical regardless of thread count.
///
/// The callable is a perfect-forwarded template parameter, not a
/// std::function: the per-rank analysis bodies are the hot path and pay no
/// type-erasure allocation or indirect-call cost.

#include <type_traits>
#include <utility>
#include <vector>

#include "exec/executor.hpp"
#include "util/check.hpp"

namespace stormtrack {

/// Run \p body(rank) for every rank in [0, num_ranks) on \p exec and
/// collect the results in rank order (slot per rank).
template <typename R, typename F>
[[nodiscard]] std::vector<R> run_spmd(Executor& exec, int num_ranks,
                                      F&& body) {
  ST_CHECK_MSG(num_ranks >= 1, "need at least one rank");
  std::vector<R> results(static_cast<std::size_t>(num_ranks));
  exec.parallel_for(static_cast<std::size_t>(num_ranks),
                    [&](std::size_t rank) {
                      results[rank] = body(static_cast<int>(rank));
                    });
  return results;
}

/// Void-returning overload: \p body(rank) for every rank on \p exec.
template <typename F,
          typename = std::enable_if_t<
              std::is_void_v<std::invoke_result_t<F&, int>>>>
void run_spmd(Executor& exec, int num_ranks, F&& body) {
  ST_CHECK_MSG(num_ranks >= 1, "need at least one rank");
  exec.parallel_for(static_cast<std::size_t>(num_ranks),
                    [&](std::size_t rank) { body(static_cast<int>(rank)); });
}

/// Serial convenience overloads (rank bodies run in rank order on the
/// calling thread).
template <typename R, typename F>
[[nodiscard]] std::vector<R> run_spmd(int num_ranks, F&& body) {
  return run_spmd<R>(serial_executor(), num_ranks, std::forward<F>(body));
}

template <typename F,
          typename = std::enable_if_t<
              std::is_void_v<std::invoke_result_t<F&, int>>>>
void run_spmd(int num_ranks, F&& body) {
  run_spmd(serial_executor(), num_ranks, std::forward<F>(body));
}

}  // namespace stormtrack
