#pragma once

/// \file spmd.hpp
/// SPMD execution helper for the simulated runtime.
///
/// Code written against the simulator keeps the per-rank structure of the
/// real MPI program (the parallel data analysis of §III runs one analysis
/// function per rank). run_spmd executes every rank's body; on this
/// single-core substrate the ranks run sequentially, but the programming
/// model — and therefore the code under test — is the parallel one.

#include <functional>
#include <vector>

#include "util/check.hpp"

namespace stormtrack {

/// Run \p body(rank) for every rank in [0, num_ranks) and collect the
/// results in rank order.
template <typename R>
[[nodiscard]] std::vector<R> run_spmd(int num_ranks,
                                      const std::function<R(int)>& body) {
  ST_CHECK_MSG(num_ranks >= 1, "need at least one rank");
  std::vector<R> results;
  results.reserve(static_cast<std::size_t>(num_ranks));
  for (int rank = 0; rank < num_ranks; ++rank) results.push_back(body(rank));
  return results;
}

/// Void-returning overload.
inline void run_spmd(int num_ranks, const std::function<void(int)>& body) {
  ST_CHECK_MSG(num_ranks >= 1, "need at least one rank");
  for (int rank = 0; rank < num_ranks; ++rank) body(rank);
}

}  // namespace stormtrack
