#include "redist/block_decomp.hpp"

namespace stormtrack {

PartRange overlapping_parts(int lo, int hi, int n, int parts) {
  ST_CHECK_MSG(parts >= 1 && n >= 1, "need positive n and parts");
  ST_CHECK_MSG(lo >= 0 && hi <= n, "range [" << lo << ", " << hi
                                             << ") outside [0, " << n << ")");
  if (lo >= hi) return PartRange{0, -1};
  // part k owns [k·n/parts, (k+1)·n/parts); find the parts covering lo and
  // hi-1. Owner of index x is floor(((x+1)·parts - 1) / n): the largest k
  // with k·n/parts <= x. A simple closed form that avoids off-by-one with
  // flooring is to compute candidates and adjust.
  auto owner_of = [&](int x) {
    int k = static_cast<int>((static_cast<std::int64_t>(x) * parts) / n);
    // Adjust for flooring: ensure block_range(k) contains x.
    while (k > 0 && block_range(k, n, parts).begin > x) --k;
    while (k + 1 < parts && block_range(k + 1, n, parts).begin <= x) ++k;
    return k;
  };
  return PartRange{owner_of(lo), owner_of(hi - 1)};
}

BlockDecomposition::BlockDecomposition(NestShape nest, Rect proc_rect,
                                       int grid_px)
    : nest_(nest), proc_rect_(proc_rect), grid_px_(grid_px) {
  ST_CHECK_MSG(nest.nx >= 1 && nest.ny >= 1,
               "nest must be non-empty, got " << nest.nx << "x" << nest.ny);
  ST_CHECK_MSG(!proc_rect.empty(), "processor rectangle must be non-empty");
  ST_CHECK_MSG(grid_px >= proc_rect.x_end(),
               "process-grid width " << grid_px
                                     << " does not contain rectangle "
                                     << proc_rect);
}

int BlockDecomposition::rank_at(int i, int j) const {
  ST_CHECK_MSG(i >= 0 && i < proc_rect_.w && j >= 0 && j < proc_rect_.h,
               "local position (" << i << "," << j << ") outside rectangle "
                                  << proc_rect_);
  return (proc_rect_.y + j) * grid_px_ + (proc_rect_.x + i);
}

Rect BlockDecomposition::owned_region(int i, int j) const {
  ST_CHECK_MSG(i >= 0 && i < proc_rect_.w && j >= 0 && j < proc_rect_.h,
               "local position (" << i << "," << j << ") outside rectangle "
                                  << proc_rect_);
  const Span1D cols = block_range(i, nest_.nx, proc_rect_.w);
  const Span1D rows = block_range(j, nest_.ny, proc_rect_.h);
  return Rect{cols.begin, rows.begin, cols.count, rows.count};
}

int BlockDecomposition::owner_rank(int x, int y) const {
  ST_CHECK_MSG(x >= 0 && x < nest_.nx && y >= 0 && y < nest_.ny,
               "nest point (" << x << "," << y << ") outside nest "
                              << nest_.nx << "x" << nest_.ny);
  const PartRange ci = overlapping_parts(x, x + 1, nest_.nx, proc_rect_.w);
  const PartRange rj = overlapping_parts(y, y + 1, nest_.ny, proc_rect_.h);
  return rank_at(ci.first, rj.first);
}

}  // namespace stormtrack
