#pragma once

/// \file shared_pricing.hpp
/// Cross-session redistribution pricing: one cache, many pipelines.
///
/// RedistCostCache (cost_cache.hpp) memoizes pricing per pipeline, and its
/// key deliberately omits the communicator — one instance per machine, so
/// summaries can never leak between topologies. That is the right contract
/// inside a single run, but the daemon runs hundreds of sessions whose
/// pipelines price the *same* candidates on the *same* machine model, each
/// warming a private cache from cold.
///
/// SharedPricingCache generalizes the key with an explicit 64-bit *scope*
/// (Machine::fingerprint(): label + process grid, which pins topology,
/// mapping, and decomposition), making one process-wide map safe for every
/// communicator: equal scope implies equal cost semantics, different
/// scopes can never collide. Entries are pure functions of (scope, key),
/// so sharing is bit-identical by construction — a hit returns exactly the
/// summary a cold pipeline would have computed, and session fingerprints
/// are unchanged whether the cache is shared, private, or disabled.
///
/// Counter contract matches RedistCostCache: a hit still counts as a
/// cost query in the process-wide RedistCounters and bumps
/// cost_cache_hits; additionally the instance keeps its own hit/miss
/// totals so the daemon can report the *sharing* win separately
/// (server.pricing_shared_hits).
///
/// When a machine's cost model changes (e.g. a recalibrated topology under
/// an unchanged label — anything that would break the "equal scope, equal
/// semantics" invariant), callers must invalidate(scope) before pricing
/// against the new model.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <shared_mutex>
#include <unordered_map>

#include "redist/redistributor.hpp"

namespace stormtrack {

/// See file comment. Thread-safe: price() races with itself, stats(), and
/// invalidation from any thread; the normal case is many sessions pricing
/// candidates concurrently on a shared executor pool.
class SharedPricingCache {
 public:
  /// \p max_entries bounds the map across all scopes; reaching it flushes
  /// everything (summaries are pure functions of the key, so flush timing
  /// cannot change any result).
  explicit SharedPricingCache(std::size_t max_entries = 1 << 18)
      : max_entries_(max_entries) {}

  /// Lifetime hit/miss totals for this instance (distinct from the global
  /// RedistCounters, which aggregate every cache in the process).
  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    [[nodiscard]] double hit_rate() const {
      const std::int64_t total = hits + misses;
      return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                       : 0.0;
    }
  };

  /// Cached equivalent of redistribution_cost(nest, old_rect, new_rect,
  /// grid_px, bytes_per_point, comm), memoized under (scope, key). \p comm
  /// must be the communicator \p scope stands for — callers derive both
  /// from the same Machine.
  [[nodiscard]] RedistCostSummary price(std::uint64_t scope,
                                        const NestShape& nest,
                                        const Rect& old_rect,
                                        const Rect& new_rect, int grid_px,
                                        int bytes_per_point,
                                        const SimComm* comm);

  /// Drop every entry priced under \p scope: required when the machine
  /// model behind that fingerprint changes meaning. Other scopes keep
  /// their entries.
  void invalidate(std::uint64_t scope);

  /// Drop everything (results are unaffected; only hit rates change).
  void invalidate_all();

  /// Instance hit/miss totals; see Stats.
  [[nodiscard]] Stats stats() const;

  /// Current number of memoized summaries across all scopes.
  [[nodiscard]] std::size_t size() const;

 private:
  struct Key {
    std::uint64_t scope;
    int nest_nx, nest_ny;
    int old_x, old_y, old_w, old_h;
    int new_x, new_y, new_w, new_h;
    int grid_px, bytes_per_point;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };

  mutable std::shared_mutex mutex_;
  std::unordered_map<Key, RedistCostSummary, KeyHash> entries_;
  std::size_t max_entries_;
  std::atomic<std::int64_t> hits_{0};
  std::atomic<std::int64_t> misses_{0};
};

}  // namespace stormtrack
