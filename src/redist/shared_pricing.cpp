#include "redist/shared_pricing.hpp"

#include <mutex>

namespace stormtrack {

std::size_t SharedPricingCache::KeyHash::operator()(const Key& k) const {
  // FNV-1a over scope then the key's ints, matching cost_cache.cpp's idiom.
  std::uint64_t h = 1469598103934665603ULL;
  for (int shift = 0; shift < 64; shift += 8) {
    h ^= (k.scope >> shift) & 0xffULL;
    h *= 1099511628211ULL;
  }
  const int fields[] = {k.nest_nx, k.nest_ny, k.old_x, k.old_y,
                        k.old_w,   k.old_h,   k.new_x, k.new_y,
                        k.new_w,   k.new_h,   k.grid_px, k.bytes_per_point};
  for (const int f : fields) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(f));
    h *= 1099511628211ULL;
  }
  return static_cast<std::size_t>(h);
}

RedistCostSummary SharedPricingCache::price(std::uint64_t scope,
                                            const NestShape& nest,
                                            const Rect& old_rect,
                                            const Rect& new_rect, int grid_px,
                                            int bytes_per_point,
                                            const SimComm* comm) {
  const Key key{scope,       nest.nx,    nest.ny,    old_rect.x, old_rect.y,
                old_rect.w,  old_rect.h, new_rect.x, new_rect.y, new_rect.w,
                new_rect.h,  grid_px,    bytes_per_point};
  auto& counters = detail::redist_counter_state();
  {
    std::shared_lock lock(mutex_);
    if (const auto it = entries_.find(key); it != entries_.end()) {
      // Same contract as RedistCostCache: a served pricing is still a
      // pricing for the process-wide counters.
      counters.cost_queries.fetch_add(1, std::memory_order_relaxed);
      counters.cost_cache_hits.fetch_add(1, std::memory_order_relaxed);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  // Compute outside any lock (redistribution_cost bumps cost_queries and
  // the probe counters itself).
  const RedistCostSummary summary = redistribution_cost(
      nest, old_rect, new_rect, grid_px, bytes_per_point, comm);
  counters.cost_cache_misses.fetch_add(1, std::memory_order_relaxed);
  misses_.fetch_add(1, std::memory_order_relaxed);
  {
    std::unique_lock lock(mutex_);
    if (entries_.size() >= max_entries_) entries_.clear();
    entries_.emplace(key, summary);
  }
  return summary;
}

void SharedPricingCache::invalidate(std::uint64_t scope) {
  std::unique_lock lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.scope == scope) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

void SharedPricingCache::invalidate_all() {
  std::unique_lock lock(mutex_);
  entries_.clear();
}

SharedPricingCache::Stats SharedPricingCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  return s;
}

std::size_t SharedPricingCache::size() const {
  std::shared_lock lock(mutex_);
  return entries_.size();
}

}  // namespace stormtrack
