#include "redist/redistributor.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "redist/interval_index.hpp"
#include "util/check.hpp"

namespace stormtrack {

namespace detail {

RedistCounterState& redist_counter_state() {
  static RedistCounterState state;
  return state;
}

}  // namespace detail

RedistCounters redist_counters() {
  const auto& s = detail::redist_counter_state();
  RedistCounters out;
  out.plans_built = s.plans_built.load(std::memory_order_relaxed);
  out.messages_materialized =
      s.messages_materialized.load(std::memory_order_relaxed);
  out.message_bytes_materialized =
      out.messages_materialized * static_cast<std::int64_t>(sizeof(Message));
  out.cost_queries = s.cost_queries.load(std::memory_order_relaxed);
  out.intersection_probes =
      s.intersection_probes.load(std::memory_order_relaxed);
  out.moved_blocks_enumerated =
      s.moved_blocks_enumerated.load(std::memory_order_relaxed);
  out.cost_cache_hits = s.cost_cache_hits.load(std::memory_order_relaxed);
  out.cost_cache_misses = s.cost_cache_misses.load(std::memory_order_relaxed);
  return out;
}

std::int64_t count_redist_messages(const NestShape& nest, const Rect& old_rect,
                                   const Rect& new_rect, int grid_px) {
  // The decomposition is a tensor product of independent column and row
  // splits, so (sender block, receiver block) pairs with a non-empty
  // intersection factor into intersecting column-block pairs × intersecting
  // row-block pairs. The constructions validate the arguments exactly as
  // the fill loops would.
  [[maybe_unused]] const BlockDecomposition old_d(nest, old_rect, grid_px);
  [[maybe_unused]] const BlockDecomposition new_d(nest, new_rect, grid_px);
  std::int64_t col_pairs = 0;
  for (int i = 0; i < old_rect.w; ++i) {
    const Span1D span = block_range(i, nest.nx, old_rect.w);
    if (span.count == 0) continue;
    const PartRange r =
        overlapping_parts(span.begin, span.end(), nest.nx, new_rect.w);
    col_pairs += r.last - r.first + 1;
  }
  std::int64_t row_pairs = 0;
  for (int j = 0; j < old_rect.h; ++j) {
    const Span1D span = block_range(j, nest.ny, old_rect.h);
    if (span.count == 0) continue;
    const PartRange r =
        overlapping_parts(span.begin, span.end(), nest.ny, new_rect.h);
    row_pairs += r.last - r.first + 1;
  }
  return col_pairs * row_pairs;
}

RedistPlan plan_redistribution(const NestShape& nest, const Rect& old_rect,
                               const Rect& new_rect, int grid_px,
                               int bytes_per_point) {
  ST_CHECK_MSG(bytes_per_point > 0, "bytes_per_point must be positive");
  RedistPlan plan;
  plan.total_points = static_cast<std::int64_t>(nest.nx) * nest.ny;
  plan.messages.reserve(static_cast<std::size_t>(
      count_redist_messages(nest, old_rect, new_rect, grid_px)));

  for_each_redist_block(
      nest, old_rect, new_rect, grid_px,
      [&](int sender, int receiver, const Rect& inter) {
        plan.messages.push_back(
            Message{sender, receiver, inter.area() * bytes_per_point});
        if (sender == receiver) plan.overlap_points += inter.area();
      });

  auto& counters = detail::redist_counter_state();
  counters.plans_built.fetch_add(1, std::memory_order_relaxed);
  counters.messages_materialized.fetch_add(
      static_cast<std::int64_t>(plan.messages.size()),
      std::memory_order_relaxed);
  return plan;
}

RedistCostSummary redistribution_cost_dense(const NestShape& nest,
                                            const Rect& old_rect,
                                            const Rect& new_rect, int grid_px,
                                            int bytes_per_point,
                                            const SimComm* comm) {
  ST_CHECK_MSG(bytes_per_point > 0, "bytes_per_point must be positive");
  RedistCostSummary s;
  s.total_points = static_cast<std::int64_t>(nest.nx) * nest.ny;
  const Topology* topo = comm != nullptr ? &comm->topology() : nullptr;
  const bool direct = topo != nullptr && topo->is_direct_network();

  // Per-sender serial time for the switched-network §IV-C-1 term: senders
  // arrive strictly ascending and contiguous from for_each_redist_block, so
  // a running (sender, sum) pair reproduces RedistTimeModel's per-sender
  // map — same additions per sender in the same order, folded into the max
  // in the same ascending-sender order.
  int current_sender = -1;
  double sender_sum = 0.0;
  const auto flush_sender = [&] {
    s.worst_sender_time = std::max(s.worst_sender_time, sender_sum);
    sender_sum = 0.0;
  };

  for_each_redist_block(
      nest, old_rect, new_rect, grid_px,
      [&](int sender, int receiver, const Rect& inter) {
        const std::int64_t points = inter.area();
        const std::int64_t bytes = points * bytes_per_point;
        if (sender == receiver) {
          s.overlap_points += points;
          s.local_bytes += bytes;
          return;
        }
        s.total_bytes += bytes;
        s.num_messages += 1;
        if (topo == nullptr) return;
        const int h = comm->hops(sender, receiver);
        s.hop_bytes += bytes * h;
        s.max_hops = std::max(s.max_hops, h);
        const double t = topo->pair_time(h, bytes);
        if (direct) {
          s.worst_pair_time = std::max(s.worst_pair_time, t);
        } else {
          if (sender != current_sender) {
            flush_sender();
            current_sender = sender;
          }
          sender_sum += t;
        }
      });
  flush_sender();

  detail::redist_counter_state().cost_queries.fetch_add(
      1, std::memory_order_relaxed);
  return s;
}

// ---------------------------------------------------------- sparse pricing

namespace {

/// One per-dimension (sender block, receiver block) intersection.
struct AxisEntry {
  int r = 0;        ///< Receiver part index.
  int len = 0;      ///< Overlap length (> 0).
  bool diag = false;  ///< Sender and receiver sit on the same grid line.
};

/// Per-dimension pair list in CSR-by-sender-part layout, plus the closed-
/// form aggregates the 2-D summary factors into. Lives in thread-local
/// scratch: reset() keeps capacity, so steady-state pricing is
/// allocation-free like the dense walk it replaced.
struct AxisPairs {
  std::vector<AxisEntry> entries;  ///< Grouped by sender part, r ascending.
  std::vector<int> offsets;        ///< entries index per sender part (+1).
  std::vector<int> nonempty;       ///< Sender parts with >= 1 entry.
  std::vector<int> off_diag;       ///< Sender parts with >= 1 off-diag entry.
  std::int64_t pair_count = 0;
  std::int64_t diag_count = 0;
  std::int64_t diag_len = 0;       ///< Σ overlap length over diagonal pairs.

  void reset() {
    entries.clear();
    offsets.clear();
    nonempty.clear();
    off_diag.clear();
    pair_count = 0;
    diag_count = 0;
    diag_len = 0;
  }

  /// A sender part whose every intersection is diagonal (at most one per
  /// part and dimension) emits no off-rank message along this axis.
  [[nodiscard]] bool all_diag(int s) const {
    return offsets[static_cast<std::size_t>(s) + 1] ==
               offsets[static_cast<std::size_t>(s)] + 1 &&
           entries[static_cast<std::size_t>(offsets[
               static_cast<std::size_t>(s)])].diag;
  }
};

/// Build one dimension's pair list: for each sender block of the old split,
/// locate the overlapping receiver blocks of the new split via the interval
/// index (O(log parts) probes each) and record the surviving intersections.
/// A pair is *diagonal* when sender and receiver occupy the same absolute
/// grid line (old_origin + s == new_origin + r) — a message is local iff
/// both its column pair and its row pair are diagonal.
void build_axis_pairs(int n, int old_parts, int new_parts, int old_origin,
                      int new_origin, AxisPairs& out, std::int64_t& probes) {
  out.reset();
  out.offsets.reserve(static_cast<std::size_t>(old_parts) + 1);
  const BlockIntervalIndex index(n, new_parts);
  for (int s = 0; s < old_parts; ++s) {
    out.offsets.push_back(static_cast<int>(out.entries.size()));
    const Span1D span = block_range(s, n, old_parts);
    if (span.count == 0) continue;
    const PartRange pr = index.overlapping(span.begin, span.end(), &probes);
    bool any_off_diag = false;
    for (int r = pr.first; r <= pr.last; ++r) {
      const Span1D rs = block_range(r, n, new_parts);
      const int lo = std::max(span.begin, rs.begin);
      const int hi = std::min(span.end(), rs.end());
      if (hi <= lo) continue;  // empty receiver block inside the range
      const bool diag = old_origin + s == new_origin + r;
      out.entries.push_back(AxisEntry{r, hi - lo, diag});
      ++out.pair_count;
      if (diag) {
        ++out.diag_count;
        out.diag_len += hi - lo;
      } else {
        any_off_diag = true;
      }
    }
    if (static_cast<int>(out.entries.size()) > out.offsets.back())
      out.nonempty.push_back(s);
    if (any_off_diag) out.off_diag.push_back(s);
  }
  out.offsets.push_back(static_cast<int>(out.entries.size()));
}

}  // namespace

RedistCostSummary redistribution_cost(const NestShape& nest,
                                      const Rect& old_rect,
                                      const Rect& new_rect, int grid_px,
                                      int bytes_per_point,
                                      const SimComm* comm) {
  ST_CHECK_MSG(bytes_per_point > 0, "bytes_per_point must be positive");
  // Same argument validation (and rank arithmetic) as the dense walk.
  const BlockDecomposition old_d(nest, old_rect, grid_px);
  const BlockDecomposition new_d(nest, new_rect, grid_px);

  thread_local AxisPairs cols;
  thread_local AxisPairs rows;
  std::int64_t probes = 0;
  build_axis_pairs(nest.nx, old_rect.w, new_rect.w, old_rect.x, new_rect.x,
                   cols, probes);
  build_axis_pairs(nest.ny, old_rect.h, new_rect.h, old_rect.y, new_rect.y,
                   rows, probes);

  // The 2-D aggregates factor over the tensor product: every (column pair,
  // row pair) combination is one intersecting (sender, receiver) block with
  // area clen·rlen, and it is local exactly when both pairs are diagonal.
  RedistCostSummary s;
  s.total_points = static_cast<std::int64_t>(nest.nx) * nest.ny;
  s.overlap_points = cols.diag_len * rows.diag_len;
  s.local_bytes = s.overlap_points * bytes_per_point;
  s.total_bytes = (s.total_points - s.overlap_points) * bytes_per_point;
  s.num_messages =
      cols.pair_count * rows.pair_count - cols.diag_count * rows.diag_count;

  std::int64_t moved_blocks = 0;
  if (comm != nullptr && s.num_messages > 0) {
    const Topology* topo = &comm->topology();
    const bool direct = topo->is_direct_network();
    // Only the moved (off-rank) blocks are enumerated, in the dense walk's
    // exact order: sender cells row-major (j outer, i inner), receivers
    // (rj outer, ri inner) within each sender. Integer sums and float maxes
    // are order-free, but worst_sender_time on switched networks is a
    // per-sender float *sum* folded into a max — this order is what keeps
    // it bit-identical to redistribution_cost_dense(). Sender cells whose
    // column and row pairs are all diagonal move nothing and are skipped
    // wholesale (a fully-local sender contributes max(·, 0), which the
    // initial 0.0 already covers) — the identity-move fast path.
    for (const int j : rows.nonempty) {
      const int rb = rows.offsets[static_cast<std::size_t>(j)];
      const int re = rows.offsets[static_cast<std::size_t>(j) + 1];
      const std::vector<int>& col_list =
          rows.all_diag(j) ? cols.off_diag : cols.nonempty;
      for (const int i : col_list) {
        const int cb = cols.offsets[static_cast<std::size_t>(i)];
        const int ce = cols.offsets[static_cast<std::size_t>(i) + 1];
        const int sender = old_d.rank_at(i, j);
        double sender_sum = 0.0;
        for (int rj = rb; rj < re; ++rj) {
          const AxisEntry& row_pair = rows.entries[
              static_cast<std::size_t>(rj)];
          for (int ci = cb; ci < ce; ++ci) {
            const AxisEntry& col_pair = cols.entries[
                static_cast<std::size_t>(ci)];
            if (row_pair.diag && col_pair.diag) continue;  // local block
            ++moved_blocks;
            const std::int64_t bytes =
                static_cast<std::int64_t>(col_pair.len) * row_pair.len *
                bytes_per_point;
            const int receiver = new_d.rank_at(col_pair.r, row_pair.r);
            const int h = comm->hops(sender, receiver);
            s.hop_bytes += bytes * h;
            s.max_hops = std::max(s.max_hops, h);
            const double t = topo->pair_time(h, bytes);
            if (direct)
              s.worst_pair_time = std::max(s.worst_pair_time, t);
            else
              sender_sum += t;
          }
        }
        if (!direct)
          s.worst_sender_time = std::max(s.worst_sender_time, sender_sum);
      }
    }
  }

  auto& counters = detail::redist_counter_state();
  counters.cost_queries.fetch_add(1, std::memory_order_relaxed);
  counters.intersection_probes.fetch_add(probes, std::memory_order_relaxed);
  counters.moved_blocks_enumerated.fetch_add(moved_blocks,
                                             std::memory_order_relaxed);
  return s;
}

Redistributor::Redistributor(const SimComm& comm, int bytes_per_point,
                             PayloadFaultHook* faults)
    : comm_(&comm), bytes_per_point_(bytes_per_point), faults_(faults) {
  ST_CHECK_MSG(bytes_per_point > 0, "bytes_per_point must be positive");
}

RedistMetrics Redistributor::redistribute(const NestShape& nest,
                                          const Rect& old_rect,
                                          const Rect& new_rect,
                                          int grid_px) const {
  const RedistPlan plan = plan_redistribution(nest, old_rect, new_rect,
                                              grid_px, bytes_per_point_);
  RedistMetrics m;
  m.traffic = comm_->alltoallv(plan.messages);
  m.overlap_fraction = plan.overlap_fraction();
  m.total_points = plan.total_points;
  return m;
}

Grid2D<double> Redistributor::redistribute_field(const Grid2D<double>& field,
                                                 const Rect& old_rect,
                                                 const Rect& new_rect,
                                                 int grid_px,
                                                 RedistMetrics* metrics)
    const {
  const NestShape nest{field.width(), field.height()};

  // Build typed messages: one per intersecting (sender region, receiver
  // region) pair, payload = the intersection's values, row-major, prefixed
  // by the intersection rectangle (as 4 doubles) so the receiver can place
  // the block without global knowledge of the old decomposition.
  std::vector<TypedMessage<double>> msgs;
  msgs.reserve(static_cast<std::size_t>(
      count_redist_messages(nest, old_rect, new_rect, grid_px)));
  std::int64_t overlap_points = 0;
  for_each_redist_block(
      nest, old_rect, new_rect, grid_px,
      [&](int sender, int receiver, const Rect& inter) {
        if (sender == receiver) overlap_points += inter.area();
        TypedMessage<double> m;
        m.src = sender;
        m.dst = receiver;
        m.payload.resize(static_cast<std::size_t>(inter.area()) + 4);
        m.payload[0] = inter.x;
        m.payload[1] = inter.y;
        m.payload[2] = inter.w;
        m.payload[3] = inter.h;
        double* out = m.payload.data() + 4;
        for (int y = inter.y; y < inter.y_end(); ++y, out += inter.w)
          std::copy_n(&field(inter.x, y), inter.w, out);
        msgs.push_back(std::move(m));
      });

  const ExchangeResult<double> ex = exchange(std::move(msgs));

  // Reassemble the field from delivered blocks (grouped by destination;
  // placement only needs every block once, in any deterministic order).
  Grid2D<double> out(nest.nx, nest.ny, 0.0);
  std::int64_t placed = 0;
  for (const TypedMessage<double>& m : ex.messages) {
    ST_CHECK_MSG(m.payload.size() >= 4, "malformed redistribution payload");
    const Rect inter{static_cast<int>(m.payload[0]),
                     static_cast<int>(m.payload[1]),
                     static_cast<int>(m.payload[2]),
                     static_cast<int>(m.payload[3])};
    ST_CHECK_MSG(static_cast<std::int64_t>(m.payload.size()) ==
                     inter.area() + 4,
                 "payload size does not match block " << inter);
    const double* in = m.payload.data() + 4;
    for (int y = inter.y; y < inter.y_end(); ++y, in += inter.w)
      std::copy_n(in, inter.w, &out(inter.x, y));
    placed += inter.area();
  }
  ST_CHECK_MSG(placed == static_cast<std::int64_t>(nest.nx) * nest.ny,
               "redistribution conservation violated: placed " << placed
                                                               << " of "
                                                               << nest.nx *
                                                                      nest.ny);
  // Placement copies values verbatim, so the reassembled field must be
  // bit-identical to the source; any mismatch means payload bytes were
  // damaged in flight.
  for (int y = 0; y < nest.ny; ++y)
    for (int x = 0; x < nest.nx; ++x)
      ST_CHECK_MSG(std::bit_cast<std::uint64_t>(out(x, y)) ==
                       std::bit_cast<std::uint64_t>(field(x, y)),
                   "redistribution integrity violated at (" << x << ", " << y
                                                            << ")");
  if (metrics != nullptr) {
    metrics->traffic = ex.traffic;
    metrics->total_points = static_cast<std::int64_t>(nest.nx) * nest.ny;
    metrics->overlap_fraction =
        static_cast<double>(overlap_points) /
        static_cast<double>(metrics->total_points);
  }
  return out;
}

}  // namespace stormtrack
