#include "redist/redistributor.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>

#include "util/check.hpp"

namespace stormtrack {

namespace detail {

RedistCounterState& redist_counter_state() {
  static RedistCounterState state;
  return state;
}

}  // namespace detail

RedistCounters redist_counters() {
  const auto& s = detail::redist_counter_state();
  RedistCounters out;
  out.plans_built = s.plans_built.load(std::memory_order_relaxed);
  out.messages_materialized =
      s.messages_materialized.load(std::memory_order_relaxed);
  out.message_bytes_materialized =
      out.messages_materialized * static_cast<std::int64_t>(sizeof(Message));
  out.cost_queries = s.cost_queries.load(std::memory_order_relaxed);
  return out;
}

std::int64_t count_redist_messages(const NestShape& nest, const Rect& old_rect,
                                   const Rect& new_rect, int grid_px) {
  // The decomposition is a tensor product of independent column and row
  // splits, so (sender block, receiver block) pairs with a non-empty
  // intersection factor into intersecting column-block pairs × intersecting
  // row-block pairs. The constructions validate the arguments exactly as
  // the fill loops would.
  [[maybe_unused]] const BlockDecomposition old_d(nest, old_rect, grid_px);
  [[maybe_unused]] const BlockDecomposition new_d(nest, new_rect, grid_px);
  std::int64_t col_pairs = 0;
  for (int i = 0; i < old_rect.w; ++i) {
    const Span1D span = block_range(i, nest.nx, old_rect.w);
    if (span.count == 0) continue;
    const PartRange r =
        overlapping_parts(span.begin, span.end(), nest.nx, new_rect.w);
    col_pairs += r.last - r.first + 1;
  }
  std::int64_t row_pairs = 0;
  for (int j = 0; j < old_rect.h; ++j) {
    const Span1D span = block_range(j, nest.ny, old_rect.h);
    if (span.count == 0) continue;
    const PartRange r =
        overlapping_parts(span.begin, span.end(), nest.ny, new_rect.h);
    row_pairs += r.last - r.first + 1;
  }
  return col_pairs * row_pairs;
}

RedistPlan plan_redistribution(const NestShape& nest, const Rect& old_rect,
                               const Rect& new_rect, int grid_px,
                               int bytes_per_point) {
  ST_CHECK_MSG(bytes_per_point > 0, "bytes_per_point must be positive");
  RedistPlan plan;
  plan.total_points = static_cast<std::int64_t>(nest.nx) * nest.ny;
  plan.messages.reserve(static_cast<std::size_t>(
      count_redist_messages(nest, old_rect, new_rect, grid_px)));

  for_each_redist_block(
      nest, old_rect, new_rect, grid_px,
      [&](int sender, int receiver, const Rect& inter) {
        plan.messages.push_back(
            Message{sender, receiver, inter.area() * bytes_per_point});
        if (sender == receiver) plan.overlap_points += inter.area();
      });

  auto& counters = detail::redist_counter_state();
  counters.plans_built.fetch_add(1, std::memory_order_relaxed);
  counters.messages_materialized.fetch_add(
      static_cast<std::int64_t>(plan.messages.size()),
      std::memory_order_relaxed);
  return plan;
}

RedistCostSummary redistribution_cost(const NestShape& nest,
                                      const Rect& old_rect,
                                      const Rect& new_rect, int grid_px,
                                      int bytes_per_point,
                                      const SimComm* comm) {
  ST_CHECK_MSG(bytes_per_point > 0, "bytes_per_point must be positive");
  RedistCostSummary s;
  s.total_points = static_cast<std::int64_t>(nest.nx) * nest.ny;
  const Topology* topo = comm != nullptr ? &comm->topology() : nullptr;
  const bool direct = topo != nullptr && topo->is_direct_network();

  // Per-sender serial time for the switched-network §IV-C-1 term: senders
  // arrive strictly ascending and contiguous from for_each_redist_block, so
  // a running (sender, sum) pair reproduces RedistTimeModel's per-sender
  // map — same additions per sender in the same order, folded into the max
  // in the same ascending-sender order.
  int current_sender = -1;
  double sender_sum = 0.0;
  const auto flush_sender = [&] {
    s.worst_sender_time = std::max(s.worst_sender_time, sender_sum);
    sender_sum = 0.0;
  };

  for_each_redist_block(
      nest, old_rect, new_rect, grid_px,
      [&](int sender, int receiver, const Rect& inter) {
        const std::int64_t points = inter.area();
        const std::int64_t bytes = points * bytes_per_point;
        if (sender == receiver) {
          s.overlap_points += points;
          s.local_bytes += bytes;
          return;
        }
        s.total_bytes += bytes;
        s.num_messages += 1;
        if (topo == nullptr) return;
        const int h = comm->hops(sender, receiver);
        s.hop_bytes += bytes * h;
        s.max_hops = std::max(s.max_hops, h);
        const double t = topo->pair_time(h, bytes);
        if (direct) {
          s.worst_pair_time = std::max(s.worst_pair_time, t);
        } else {
          if (sender != current_sender) {
            flush_sender();
            current_sender = sender;
          }
          sender_sum += t;
        }
      });
  flush_sender();

  detail::redist_counter_state().cost_queries.fetch_add(
      1, std::memory_order_relaxed);
  return s;
}

Redistributor::Redistributor(const SimComm& comm, int bytes_per_point,
                             PayloadFaultHook* faults)
    : comm_(&comm), bytes_per_point_(bytes_per_point), faults_(faults) {
  ST_CHECK_MSG(bytes_per_point > 0, "bytes_per_point must be positive");
}

RedistMetrics Redistributor::redistribute(const NestShape& nest,
                                          const Rect& old_rect,
                                          const Rect& new_rect,
                                          int grid_px) const {
  const RedistPlan plan = plan_redistribution(nest, old_rect, new_rect,
                                              grid_px, bytes_per_point_);
  RedistMetrics m;
  m.traffic = comm_->alltoallv(plan.messages);
  m.overlap_fraction = plan.overlap_fraction();
  m.total_points = plan.total_points;
  return m;
}

Grid2D<double> Redistributor::redistribute_field(const Grid2D<double>& field,
                                                 const Rect& old_rect,
                                                 const Rect& new_rect,
                                                 int grid_px,
                                                 RedistMetrics* metrics)
    const {
  const NestShape nest{field.width(), field.height()};

  // Build typed messages: one per intersecting (sender region, receiver
  // region) pair, payload = the intersection's values, row-major, prefixed
  // by the intersection rectangle (as 4 doubles) so the receiver can place
  // the block without global knowledge of the old decomposition.
  std::vector<TypedMessage<double>> msgs;
  msgs.reserve(static_cast<std::size_t>(
      count_redist_messages(nest, old_rect, new_rect, grid_px)));
  std::int64_t overlap_points = 0;
  for_each_redist_block(
      nest, old_rect, new_rect, grid_px,
      [&](int sender, int receiver, const Rect& inter) {
        if (sender == receiver) overlap_points += inter.area();
        TypedMessage<double> m;
        m.src = sender;
        m.dst = receiver;
        m.payload.resize(static_cast<std::size_t>(inter.area()) + 4);
        m.payload[0] = inter.x;
        m.payload[1] = inter.y;
        m.payload[2] = inter.w;
        m.payload[3] = inter.h;
        double* out = m.payload.data() + 4;
        for (int y = inter.y; y < inter.y_end(); ++y, out += inter.w)
          std::copy_n(&field(inter.x, y), inter.w, out);
        msgs.push_back(std::move(m));
      });

  const ExchangeResult<double> ex =
      exchange_payloads(*comm_, std::move(msgs), faults_);

  // Reassemble the field from delivered blocks (grouped by destination;
  // placement only needs every block once, in any deterministic order).
  Grid2D<double> out(nest.nx, nest.ny, 0.0);
  std::int64_t placed = 0;
  for (const TypedMessage<double>& m : ex.messages) {
    ST_CHECK_MSG(m.payload.size() >= 4, "malformed redistribution payload");
    const Rect inter{static_cast<int>(m.payload[0]),
                     static_cast<int>(m.payload[1]),
                     static_cast<int>(m.payload[2]),
                     static_cast<int>(m.payload[3])};
    ST_CHECK_MSG(static_cast<std::int64_t>(m.payload.size()) ==
                     inter.area() + 4,
                 "payload size does not match block " << inter);
    const double* in = m.payload.data() + 4;
    for (int y = inter.y; y < inter.y_end(); ++y, in += inter.w)
      std::copy_n(in, inter.w, &out(inter.x, y));
    placed += inter.area();
  }
  ST_CHECK_MSG(placed == static_cast<std::int64_t>(nest.nx) * nest.ny,
               "redistribution conservation violated: placed " << placed
                                                               << " of "
                                                               << nest.nx *
                                                                      nest.ny);
  // Placement copies values verbatim, so the reassembled field must be
  // bit-identical to the source; any mismatch means payload bytes were
  // damaged in flight.
  for (int y = 0; y < nest.ny; ++y)
    for (int x = 0; x < nest.nx; ++x)
      ST_CHECK_MSG(std::bit_cast<std::uint64_t>(out(x, y)) ==
                       std::bit_cast<std::uint64_t>(field(x, y)),
                   "redistribution integrity violated at (" << x << ", " << y
                                                            << ")");
  if (metrics != nullptr) {
    metrics->traffic = ex.traffic;
    metrics->total_points = static_cast<std::int64_t>(nest.nx) * nest.ny;
    metrics->overlap_fraction =
        static_cast<double>(overlap_points) /
        static_cast<double>(metrics->total_points);
  }
  return out;
}

}  // namespace stormtrack
