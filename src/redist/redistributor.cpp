#include "redist/redistributor.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>

#include "util/check.hpp"

namespace stormtrack {

RedistPlan plan_redistribution(const NestShape& nest, const Rect& old_rect,
                               const Rect& new_rect, int grid_px,
                               int bytes_per_point) {
  ST_CHECK_MSG(bytes_per_point > 0, "bytes_per_point must be positive");
  const BlockDecomposition old_d(nest, old_rect, grid_px);
  const BlockDecomposition new_d(nest, new_rect, grid_px);

  RedistPlan plan;
  plan.total_points = static_cast<std::int64_t>(nest.nx) * nest.ny;

  // For each sender block, enumerate only the receiver blocks its region
  // intersects (balanced blocks are ordered, so the overlapping receiver
  // index range is computable directly).
  for (int j = 0; j < old_rect.h; ++j) {
    for (int i = 0; i < old_rect.w; ++i) {
      const Rect region = old_d.owned_region(i, j);
      if (region.empty()) continue;
      const int sender = old_d.rank_at(i, j);
      const PartRange cols = overlapping_parts(region.x, region.x_end(),
                                               nest.nx, new_rect.w);
      const PartRange rows = overlapping_parts(region.y, region.y_end(),
                                               nest.ny, new_rect.h);
      for (int rj = rows.first; rj <= rows.last; ++rj) {
        for (int ri = cols.first; ri <= cols.last; ++ri) {
          const Rect inter = region.intersect(new_d.owned_region(ri, rj));
          if (inter.empty()) continue;
          const int receiver = new_d.rank_at(ri, rj);
          plan.messages.push_back(
              Message{sender, receiver, inter.area() * bytes_per_point});
          if (sender == receiver) plan.overlap_points += inter.area();
        }
      }
    }
  }
  return plan;
}

Redistributor::Redistributor(const SimComm& comm, int bytes_per_point,
                             PayloadFaultHook* faults)
    : comm_(&comm), bytes_per_point_(bytes_per_point), faults_(faults) {
  ST_CHECK_MSG(bytes_per_point > 0, "bytes_per_point must be positive");
}

RedistMetrics Redistributor::redistribute(const NestShape& nest,
                                          const Rect& old_rect,
                                          const Rect& new_rect,
                                          int grid_px) const {
  const RedistPlan plan = plan_redistribution(nest, old_rect, new_rect,
                                              grid_px, bytes_per_point_);
  RedistMetrics m;
  m.traffic = comm_->alltoallv(plan.messages);
  m.overlap_fraction = plan.overlap_fraction();
  m.total_points = plan.total_points;
  return m;
}

Grid2D<double> Redistributor::redistribute_field(const Grid2D<double>& field,
                                                 const Rect& old_rect,
                                                 const Rect& new_rect,
                                                 int grid_px,
                                                 RedistMetrics* metrics)
    const {
  const NestShape nest{field.width(), field.height()};
  const BlockDecomposition old_d(nest, old_rect, grid_px);
  const BlockDecomposition new_d(nest, new_rect, grid_px);

  // Build typed messages: one per intersecting (sender region, receiver
  // region) pair, payload = the intersection's values, row-major, prefixed
  // by the intersection rectangle (as 4 doubles) so the receiver can place
  // the block without global knowledge of the old decomposition.
  std::vector<TypedMessage<double>> msgs;
  std::int64_t overlap_points = 0;
  for (int j = 0; j < old_rect.h; ++j) {
    for (int i = 0; i < old_rect.w; ++i) {
      const Rect region = old_d.owned_region(i, j);
      if (region.empty()) continue;
      const int sender = old_d.rank_at(i, j);
      const PartRange cols = overlapping_parts(region.x, region.x_end(),
                                               nest.nx, new_rect.w);
      const PartRange rows = overlapping_parts(region.y, region.y_end(),
                                               nest.ny, new_rect.h);
      for (int rj = rows.first; rj <= rows.last; ++rj) {
        for (int ri = cols.first; ri <= cols.last; ++ri) {
          const Rect inter = region.intersect(new_d.owned_region(ri, rj));
          if (inter.empty()) continue;
          const int receiver = new_d.rank_at(ri, rj);
          if (sender == receiver) overlap_points += inter.area();
          TypedMessage<double> m;
          m.src = sender;
          m.dst = receiver;
          m.payload.reserve(static_cast<std::size_t>(inter.area()) + 4);
          m.payload.push_back(inter.x);
          m.payload.push_back(inter.y);
          m.payload.push_back(inter.w);
          m.payload.push_back(inter.h);
          for (int y = inter.y; y < inter.y_end(); ++y)
            for (int x = inter.x; x < inter.x_end(); ++x)
              m.payload.push_back(field(x, y));
          msgs.push_back(std::move(m));
        }
      }
    }
  }

  const ExchangeResult<double> ex =
      exchange_payloads(*comm_, std::move(msgs), faults_);

  // Reassemble the field from delivered blocks (grouped by destination;
  // placement only needs every block once, in any deterministic order).
  Grid2D<double> out(nest.nx, nest.ny, 0.0);
  std::int64_t placed = 0;
  for (const TypedMessage<double>& m : ex.messages) {
    ST_CHECK_MSG(m.payload.size() >= 4, "malformed redistribution payload");
    const Rect inter{static_cast<int>(m.payload[0]),
                     static_cast<int>(m.payload[1]),
                     static_cast<int>(m.payload[2]),
                     static_cast<int>(m.payload[3])};
    ST_CHECK_MSG(static_cast<std::int64_t>(m.payload.size()) ==
                     inter.area() + 4,
                 "payload size does not match block " << inter);
    std::size_t k = 4;
    for (int y = inter.y; y < inter.y_end(); ++y)
      for (int x = inter.x; x < inter.x_end(); ++x)
        out(x, y) = m.payload[k++];
    placed += inter.area();
  }
  ST_CHECK_MSG(placed == static_cast<std::int64_t>(nest.nx) * nest.ny,
               "redistribution conservation violated: placed " << placed
                                                               << " of "
                                                               << nest.nx *
                                                                      nest.ny);
  // Placement copies values verbatim, so the reassembled field must be
  // bit-identical to the source; any mismatch means payload bytes were
  // damaged in flight.
  for (int y = 0; y < nest.ny; ++y)
    for (int x = 0; x < nest.nx; ++x)
      ST_CHECK_MSG(std::bit_cast<std::uint64_t>(out(x, y)) ==
                       std::bit_cast<std::uint64_t>(field(x, y)),
                   "redistribution integrity violated at (" << x << ", " << y
                                                            << ")");
  if (metrics != nullptr) {
    metrics->traffic = ex.traffic;
    metrics->total_points = static_cast<std::int64_t>(nest.nx) * nest.ny;
    metrics->overlap_fraction =
        static_cast<double>(overlap_points) /
        static_cast<double>(metrics->total_points);
  }
  return out;
}

}  // namespace stormtrack
