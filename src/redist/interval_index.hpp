#pragma once

/// \file interval_index.hpp
/// Interval index over the receiver blocks of a balanced 1-D decomposition.
///
/// A balanced split of n items into `parts` blocks has boundaries
/// b_k = ⌊k·n/parts⌋ — a sorted, implicitly-stored segment tree: the block
/// owning item x is the largest k with b_k <= x, found by bisection on k
/// with b_k computed on the fly (no materialized boundary array, so building
/// the index is O(1) regardless of P). This is the receiver-side lookup
/// behind the sparse redistribution_cost(): instead of walking every
/// (sender, receiver) rectangle pair, each sender block locates its
/// overlapping receiver range in O(log parts) probes.
///
/// The probe count is the measurable asymptotic: callers pass a counter that
/// is bumped once per bisection step, and the perf-smoke bench gates its
/// growth in P (sub-quadratic — in practice O(√P·log P) per pricing query).
///
/// owner lookups here must agree exactly with overlapping_parts()
/// (block_decomp.cpp) — the dense walk and the sparse pricing enumerate the
/// same part ranges, which is what makes the two bit-identical.

#include <cstdint>

#include "redist/block_decomp.hpp"

namespace stormtrack {

/// See file comment. Cheap to construct (two ints); query cost is
/// O(log parts) bisection probes.
class BlockIntervalIndex {
 public:
  /// Index over the balanced split of \p n items into \p parts blocks.
  BlockIntervalIndex(int n, int parts) : n_(n), parts_(parts) {
    ST_CHECK_MSG(n >= 1 && parts >= 1, "need positive n and parts");
  }

  /// Largest block k with block_range(k).begin <= x — identical to the
  /// owner_of adjustment in overlapping_parts(). \p probes is bumped once
  /// per bisection step.
  [[nodiscard]] int owner_of(int x, std::int64_t* probes) const {
    int lo = 0;            // invariant: block_range(lo).begin == 0 <= x
    int hi = parts_ - 1;
    while (lo < hi) {
      const int mid = (lo + hi + 1) / 2;
      ++*probes;
      if (block_range(mid, n_, parts_).begin <= x)
        lo = mid;
      else
        hi = mid - 1;
    }
    return lo;
  }

  /// Inclusive range of blocks intersecting [lo, hi); empty input yields
  /// first > last. Agrees with overlapping_parts(lo, hi, n, parts).
  [[nodiscard]] PartRange overlapping(int lo, int hi,
                                      std::int64_t* probes) const {
    ST_CHECK_MSG(lo >= 0 && hi <= n_,
                 "range [" << lo << ", " << hi << ") outside [0, " << n_
                           << ")");
    if (lo >= hi) return PartRange{0, -1};
    return PartRange{owner_of(lo, probes), owner_of(hi - 1, probes)};
  }

  [[nodiscard]] int parts() const { return parts_; }

 private:
  int n_;
  int parts_;
};

}  // namespace stormtrack
