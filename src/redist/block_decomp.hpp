#pragma once

/// \file block_decomp.hpp
/// 2D block decomposition of a nest domain over a processor rectangle.
///
/// A nest of Nx×Ny fine-grid points assigned to a pw×ph processor rectangle
/// is "equally subdivided among its allocated processors" (§IV, Fig. 3):
/// the processor at rectangle-local position (i, j) owns the balanced
/// column block i of Nx and row block j of Ny. Global rank ids are
/// row-major positions on the full Px×Py process grid, so the same nest
/// point can be attributed to its owner rank under the old and the new
/// allocation — the basis of redistribution planning and of the Fig. 11
/// overlap metric.

#include <cstdint>

#include "perfmodel/ground_truth.hpp"  // NestShape
#include "util/check.hpp"
#include "util/rect.hpp"

namespace stormtrack {

/// Contiguous 1D index span.
struct Span1D {
  int begin = 0;
  int count = 0;
  [[nodiscard]] constexpr int end() const { return begin + count; }
};

/// Balanced block \p part of \p n items split into \p parts pieces:
/// part k owns [k·n/parts, (k+1)·n/parts).
[[nodiscard]] constexpr Span1D block_range(int part, int n, int parts) {
  const int b = static_cast<int>((static_cast<std::int64_t>(part) * n) /
                                 parts);
  const int e = static_cast<int>((static_cast<std::int64_t>(part + 1) * n) /
                                 parts);
  return Span1D{b, e - b};
}

/// Inclusive range of parts whose blocks intersect [lo, hi) when \p n items
/// are split into \p parts blocks. Empty input range yields first > last.
struct PartRange {
  int first = 0;
  int last = -1;
};
[[nodiscard]] PartRange overlapping_parts(int lo, int hi, int n, int parts);

/// Block decomposition of one nest over one processor rectangle.
class BlockDecomposition {
 public:
  /// \param nest      nest extent in fine-grid points;
  /// \param proc_rect processor sub-rectangle on the process grid;
  /// \param grid_px   full process-grid width (for global rank ids).
  BlockDecomposition(NestShape nest, Rect proc_rect, int grid_px);

  [[nodiscard]] const NestShape& nest() const { return nest_; }
  [[nodiscard]] const Rect& proc_rect() const { return proc_rect_; }
  [[nodiscard]] int grid_px() const { return grid_px_; }

  /// Global rank at rectangle-local position (i, j).
  [[nodiscard]] int rank_at(int i, int j) const;

  /// Nest-space region owned by rectangle-local processor (i, j); may be
  /// empty when the rectangle has more processors than nest points along a
  /// dimension.
  [[nodiscard]] Rect owned_region(int i, int j) const;

  /// Global rank owning nest point (x, y).
  [[nodiscard]] int owner_rank(int x, int y) const;

 private:
  NestShape nest_;
  Rect proc_rect_;
  int grid_px_;
};

}  // namespace stormtrack
