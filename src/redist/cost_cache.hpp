#pragma once

/// \file cost_cache.hpp
/// Memoized redistribution pricing for the adaptation hot path.
///
/// The pipeline prices every retained nest against every candidate at every
/// adaptation point, but between points most of those queries repeat: in
/// the diffusion steady state a nest whose subtree did not change (see
/// tree_delta.hpp) keeps its rectangle, so its (shape, old, new, grid,
/// bytes) key — and therefore its RedistCostSummary — is identical to the
/// previous point's. RedistCostCache serves those repeats from a hash map
/// under the same shared_mutex + atomic-counter idiom as ExecTimeModel's
/// memo cache; misses fall through to the sparse redistribution_cost().
///
/// Counter contract: a cache *hit* still counts as a cost query in the
/// process-wide RedistCounters (pricings requested, however served), and
/// additionally bumps cost_cache_hits; misses bump cost_cache_misses. Hit
/// and miss totals live in RedistCounters — never in a pipeline's
/// MetricsRegistry — because a resumed run restarts with a cold cache and
/// checkpoint resume guarantees identical metric totals.
///
/// One cache instance must only ever be asked about one communicator (the
/// key deliberately omits it); the pipeline owns one cache per instance.
/// When the map reaches its entry cap it is flushed wholesale — summaries
/// are pure functions of the key, so flush timing cannot change any result.

#include <cstddef>
#include <shared_mutex>
#include <unordered_map>

#include "redist/redistributor.hpp"

namespace stormtrack {

/// See file comment. Thread-safe; concurrent price() calls are the normal
/// case (candidates are priced in a parallel_for).
class RedistCostCache {
 public:
  /// \p max_entries bounds the map; reaching it flushes everything.
  explicit RedistCostCache(std::size_t max_entries = 1 << 16)
      : max_entries_(max_entries) {}

  /// Cached equivalent of redistribution_cost(nest, old_rect, new_rect,
  /// grid_px, bytes_per_point, comm) — bit-identical results, cheaper on
  /// repeats.
  [[nodiscard]] RedistCostSummary price(const NestShape& nest,
                                        const Rect& old_rect,
                                        const Rect& new_rect, int grid_px,
                                        int bytes_per_point,
                                        const SimComm* comm);

  /// Drop every entry (results are unaffected; only hit rates change).
  void invalidate();

  /// Current number of memoized summaries.
  [[nodiscard]] std::size_t size() const;

 private:
  struct Key {
    int nest_nx, nest_ny;
    int old_x, old_y, old_w, old_h;
    int new_x, new_y, new_w, new_h;
    int grid_px, bytes_per_point;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };

  mutable std::shared_mutex mutex_;
  std::unordered_map<Key, RedistCostSummary, KeyHash> entries_;
  std::size_t max_entries_;
};

}  // namespace stormtrack
