#pragma once

/// \file redistributor.hpp
/// Planning and execution of nest-data redistribution (§IV).
///
/// When a retained nest's processor rectangle changes, every old owner
/// (sender) ships to every new owner (receiver) the intersection of their
/// nest-space regions; the phase runs as one MPI_Alltoallv per nest, with
/// processors that are neither senders nor receivers contributing zero
/// counts — exactly the scheme the paper implements inside WRF. This module
/// computes the sparse message matrix, the paper's Fig. 10/11 metrics
/// (hop-bytes and sender/receiver data-point overlap), and can execute the
/// exchange with real payloads for end-to-end validation.
///
/// Prediction vs movement: candidate *pricing* at an adaptation point only
/// needs aggregate costs (§IV-C-1), so the hot path uses the streaming
/// redistribution_cost() — since the decomposition is a tensor product, it
/// prices from per-dimension block-pair lists built with an interval index
/// over the receiver blocks (interval_index.hpp), enumerating only the
/// *moved* (off-rank) intersections: O(moved blocks · log P) instead of the
/// dense O(senders × receivers) walk, and O(W + H) for the identity moves
/// diffusion keeps producing. plan_redistribution() (which allocates the
/// sparse matrix) is reserved for the commit / redistribute stage, where
/// the messages actually run on the simulated network. The sparse pricing
/// visits the surviving intersections in for_each_redist_block's exact
/// order, so its aggregates are bit-identical to the materialized totals —
/// property-tested against redistribution_cost_dense(), the retained dense
/// reference walk.

#include <atomic>
#include <cstdint>
#include <vector>

#include "perfmodel/ground_truth.hpp"  // NestShape
#include "redist/block_decomp.hpp"
#include "simmpi/simcomm.hpp"
#include "util/grid2d.hpp"

namespace stormtrack {

/// Per-nest-grid-point payload in bytes. A WRF nest carries a full column
/// of model state per horizontal point: ~150 prognostic/diagnostic 3D
/// fields × 27 levels × 4-byte reals (the WRF restart-state order of
/// magnitude — all of it must move when the nest changes processors).
inline constexpr int kDefaultBytesPerPoint = 150 * 27 * 4;

/// Process-wide instrumentation of the redistribution machinery. The
/// counters prove (in tests and the perf-smoke CI gate) that candidate
/// pricing stays allocation-free: a pipeline apply() must bump cost_queries
/// during pricing and plans_built / messages_materialized only in the
/// redistribute stage. Relaxed atomics — counts are observability only and
/// never feed back into results.
struct RedistCounters {
  std::int64_t plans_built = 0;             ///< plan_redistribution() calls.
  std::int64_t messages_materialized = 0;   ///< Message objects pushed.
  std::int64_t message_bytes_materialized = 0;  ///< sizeof(Message) × above.
  std::int64_t cost_queries = 0;            ///< Pricings requested (sparse,
                                            ///< dense, or cache-served).
  /// Bisection probes the sparse pricing's interval index performed while
  /// locating receiver blocks — the measurable O(moved blocks · log P)
  /// asymptotic, gated against quadratic regressions by the perf-smoke
  /// bench at up to 1M ranks.
  std::int64_t intersection_probes = 0;
  /// Off-rank block intersections the sparse pricing actually visited
  /// ("moved blocks"); fully-local senders are skipped without being
  /// enumerated, so an identity move counts zero.
  std::int64_t moved_blocks_enumerated = 0;
  /// RedistCostCache queries served from / missing the memo (incremental
  /// candidate pricing; see cost_cache.hpp).
  std::int64_t cost_cache_hits = 0;
  std::int64_t cost_cache_misses = 0;
};

/// Snapshot of the process-wide counters (monotonic since process start).
[[nodiscard]] RedistCounters redist_counters();

namespace detail {
struct RedistCounterState {
  std::atomic<std::int64_t> plans_built{0};
  std::atomic<std::int64_t> messages_materialized{0};
  std::atomic<std::int64_t> cost_queries{0};
  std::atomic<std::int64_t> intersection_probes{0};
  std::atomic<std::int64_t> moved_blocks_enumerated{0};
  std::atomic<std::int64_t> cost_cache_hits{0};
  std::atomic<std::int64_t> cost_cache_misses{0};
};
RedistCounterState& redist_counter_state();
}  // namespace detail

/// Invoke `fn(sender_rank, receiver_rank, intersection)` for every
/// non-empty sender×receiver nest-region intersection of the move from
/// \p old_rect to \p new_rect, in plan_redistribution's exact order
/// (sender blocks row-major over old_rect, receivers row-major within each
/// sender's overlapping part range). Sender ranks arrive strictly
/// ascending, so per-sender aggregation needs no map. Allocation-free.
template <typename Fn>
void for_each_redist_block(const NestShape& nest, const Rect& old_rect,
                           const Rect& new_rect, int grid_px, Fn&& fn) {
  const BlockDecomposition old_d(nest, old_rect, grid_px);
  const BlockDecomposition new_d(nest, new_rect, grid_px);
  for (int j = 0; j < old_rect.h; ++j) {
    for (int i = 0; i < old_rect.w; ++i) {
      const Rect region = old_d.owned_region(i, j);
      if (region.empty()) continue;
      const int sender = old_d.rank_at(i, j);
      const PartRange cols = overlapping_parts(region.x, region.x_end(),
                                               nest.nx, new_rect.w);
      const PartRange rows = overlapping_parts(region.y, region.y_end(),
                                               nest.ny, new_rect.h);
      for (int rj = rows.first; rj <= rows.last; ++rj) {
        for (int ri = cols.first; ri <= cols.last; ++ri) {
          const Rect inter = region.intersect(new_d.owned_region(ri, rj));
          if (inter.empty()) continue;
          fn(sender, new_d.rank_at(ri, rj), inter);
        }
      }
    }
  }
}

/// Exact number of messages for_each_redist_block will emit, in
/// O(old_rect.w + old_rect.h): the decomposition is a tensor product, so
/// the count factors into (intersecting column-block pairs) × (intersecting
/// row-block pairs). Used to reserve() message vectors before the fill
/// loops.
[[nodiscard]] std::int64_t count_redist_messages(const NestShape& nest,
                                                 const Rect& old_rect,
                                                 const Rect& new_rect,
                                                 int grid_px);

/// Sparse message matrix plus the point-accounting of a planned
/// redistribution.
struct RedistPlan {
  std::vector<Message> messages;     ///< (sender, receiver, bytes); includes
                                     ///< self messages (priced as local).
  std::int64_t total_points = 0;     ///< Nest points moved (== nest area).
  std::int64_t overlap_points = 0;   ///< Points whose owner rank is
                                     ///< unchanged (Fig. 11 numerator).

  /// Fraction of nest points that stay on their processor.
  [[nodiscard]] double overlap_fraction() const {
    if (total_points == 0) return 0.0;
    return static_cast<double>(overlap_points) /
           static_cast<double>(total_points);
  }
};

/// Plan the redistribution of one nest from \p old_rect to \p new_rect on a
/// process grid of width \p grid_px. Message count is
/// O(actual sender/receiver intersections), not O(|senders|·|receivers|).
[[nodiscard]] RedistPlan plan_redistribution(const NestShape& nest,
                                             const Rect& old_rect,
                                             const Rect& new_rect,
                                             int grid_px,
                                             int bytes_per_point =
                                                 kDefaultBytesPerPoint);

/// Aggregate cost view of one redistribution phase, accumulated by the
/// streaming redistribution_cost() without materializing messages. The
/// traffic fields match SimComm::alltoallv's accounting of the same plan
/// bit-for-bit; worst_pair_time / worst_sender_time are the §IV-C-1
/// prediction terms (see RedistTimeModel::predict(const RedistCostSummary&))
/// and are only filled when a communicator is supplied.
struct RedistCostSummary {
  std::int64_t total_points = 0;    ///< Nest points moved (== nest area).
  std::int64_t overlap_points = 0;  ///< Points staying on their rank.
  std::int64_t total_bytes = 0;     ///< Payload bytes moved off-rank.
  std::int64_t hop_bytes = 0;       ///< Σ bytes × hops (Fig. 10 numerator).
  std::int64_t local_bytes = 0;     ///< Bytes "moved" rank→itself.
  std::int64_t num_messages = 0;    ///< Off-rank messages in the phase.
  int max_hops = 0;                 ///< Longest route used.
  /// §IV-C-1 on direct networks: max over sender/receiver pairs of the
  /// pair time.
  double worst_pair_time = 0.0;
  /// §IV-C-1 on switched networks: max over senders of the sum of that
  /// sender's pair times.
  double worst_sender_time = 0.0;

  /// Fraction of nest points that stay on their processor.
  [[nodiscard]] double overlap_fraction() const {
    if (total_points == 0) return 0.0;
    return static_cast<double>(overlap_points) /
           static_cast<double>(total_points);
  }
};

/// Streaming cost of the move from \p old_rect to \p new_rect — the sparse
/// pricing path. Exploits the tensor-product structure of the block
/// decomposition: per-dimension (sender block, receiver block, overlap)
/// pair lists are built with the interval index (interval_index.hpp) in
/// O((W + H) · log P) probes, the integer aggregates (points, bytes,
/// message count) come out in closed form, and only *off-rank* block
/// intersections — the moved blocks — are enumerated for hop-bytes and the
/// §IV-C-1 prediction terms, in the dense walk's exact order so every
/// field, including the order-dependent worst_sender_time float sum, is
/// bit-identical to redistribution_cost_dense(). An identity move (the
/// diffusion strategy's steady state) enumerates nothing: O(W + H) total.
/// With \p comm bound, also accumulates hop-bytes and prediction terms
/// against that communicator's topology and mapping; without it the
/// hop/time fields stay zero. No allocation in steady state (thread-local
/// scratch reused across queries).
[[nodiscard]] RedistCostSummary redistribution_cost(
    const NestShape& nest, const Rect& old_rect, const Rect& new_rect,
    int grid_px, int bytes_per_point = kDefaultBytesPerPoint,
    const SimComm* comm = nullptr);

/// Reference implementation of redistribution_cost: the dense
/// O(senders × receivers) walk over for_each_redist_block. Kept as the
/// ground truth the property tests (and any future sparse-path change)
/// compare against, field-for-field with EXPECT_EQ. Bumps the same
/// cost_queries counter; never probes the interval index.
[[nodiscard]] RedistCostSummary redistribution_cost_dense(
    const NestShape& nest, const Rect& old_rect, const Rect& new_rect,
    int grid_px, int bytes_per_point = kDefaultBytesPerPoint,
    const SimComm* comm = nullptr);

/// Outcome of pricing/executing one redistribution phase.
struct RedistMetrics {
  TrafficReport traffic;            ///< Time/bytes/hop-bytes of the phase.
  double overlap_fraction = 0.0;    ///< Fig. 11 metric.
  std::int64_t total_points = 0;
};

/// Prices redistribution phases on a bound communicator.
class Redistributor {
 public:
  /// \p comm (and \p faults when set) must outlive the redistributor. An
  /// injected payload fault surfaces as a CheckError from
  /// redistribute_field's conservation/integrity checks — dropped blocks
  /// fail conservation, corrupted blocks fail the bit-exact comparison
  /// against the source field.
  explicit Redistributor(const SimComm& comm,
                         int bytes_per_point = kDefaultBytesPerPoint,
                         PayloadFaultHook* faults = nullptr);

  /// Plan + price the move of one nest between processor rectangles.
  [[nodiscard]] RedistMetrics redistribute(const NestShape& nest,
                                           const Rect& old_rect,
                                           const Rect& new_rect,
                                           int grid_px) const;

  /// Payload-carrying variant for end-to-end validation: \p field is the
  /// nest's global field; the function scatters it by the old decomposition,
  /// executes the typed exchange, reassembles from received messages, and
  /// returns the reassembled field (callers assert equality with \p field).
  [[nodiscard]] Grid2D<double> redistribute_field(const Grid2D<double>& field,
                                                  const Rect& old_rect,
                                                  const Rect& new_rect,
                                                  int grid_px,
                                                  RedistMetrics* metrics =
                                                      nullptr) const;

  /// Payload-agnostic move-buffer seam: execute one typed exchange phase on
  /// the bound communicator, under the bound fault hook. The redistributor
  /// knows nothing about the payload layout — workloads (wsim/workload.hpp)
  /// pack their own (sender, receiver, buffer) messages and detect loss or
  /// damage themselves (conservation counts, trailing checksums), exactly
  /// like redistribute_field, which is built on this same seam.
  template <typename T>
  [[nodiscard]] ExchangeResult<T> exchange(
      std::vector<TypedMessage<T>> msgs) const {
    return exchange_payloads(*comm_, std::move(msgs), faults_);
  }

  [[nodiscard]] int bytes_per_point() const { return bytes_per_point_; }
  [[nodiscard]] const SimComm& comm() const { return *comm_; }

 private:
  const SimComm* comm_;
  int bytes_per_point_;
  PayloadFaultHook* faults_;
};

}  // namespace stormtrack
