#pragma once

/// \file redistributor.hpp
/// Planning and execution of nest-data redistribution (§IV).
///
/// When a retained nest's processor rectangle changes, every old owner
/// (sender) ships to every new owner (receiver) the intersection of their
/// nest-space regions; the phase runs as one MPI_Alltoallv per nest, with
/// processors that are neither senders nor receivers contributing zero
/// counts — exactly the scheme the paper implements inside WRF. This module
/// computes the sparse message matrix, the paper's Fig. 10/11 metrics
/// (hop-bytes and sender/receiver data-point overlap), and can execute the
/// exchange with real payloads for end-to-end validation.

#include <cstdint>
#include <map>
#include <vector>

#include "perfmodel/ground_truth.hpp"  // NestShape
#include "redist/block_decomp.hpp"
#include "simmpi/simcomm.hpp"
#include "util/grid2d.hpp"

namespace stormtrack {

/// Per-nest-grid-point payload in bytes. A WRF nest carries a full column
/// of model state per horizontal point: ~150 prognostic/diagnostic 3D
/// fields × 27 levels × 4-byte reals (the WRF restart-state order of
/// magnitude — all of it must move when the nest changes processors).
inline constexpr int kDefaultBytesPerPoint = 150 * 27 * 4;

/// Sparse message matrix plus the point-accounting of a planned
/// redistribution.
struct RedistPlan {
  std::vector<Message> messages;     ///< (sender, receiver, bytes); includes
                                     ///< self messages (priced as local).
  std::int64_t total_points = 0;     ///< Nest points moved (== nest area).
  std::int64_t overlap_points = 0;   ///< Points whose owner rank is
                                     ///< unchanged (Fig. 11 numerator).

  /// Fraction of nest points that stay on their processor.
  [[nodiscard]] double overlap_fraction() const {
    if (total_points == 0) return 0.0;
    return static_cast<double>(overlap_points) /
           static_cast<double>(total_points);
  }
};

/// Plan the redistribution of one nest from \p old_rect to \p new_rect on a
/// process grid of width \p grid_px. Message count is
/// O(actual sender/receiver intersections), not O(|senders|·|receivers|).
[[nodiscard]] RedistPlan plan_redistribution(const NestShape& nest,
                                             const Rect& old_rect,
                                             const Rect& new_rect,
                                             int grid_px,
                                             int bytes_per_point =
                                                 kDefaultBytesPerPoint);

/// Outcome of pricing/executing one redistribution phase.
struct RedistMetrics {
  TrafficReport traffic;            ///< Time/bytes/hop-bytes of the phase.
  double overlap_fraction = 0.0;    ///< Fig. 11 metric.
  std::int64_t total_points = 0;
};

/// Prices redistribution phases on a bound communicator.
class Redistributor {
 public:
  /// \p comm (and \p faults when set) must outlive the redistributor. An
  /// injected payload fault surfaces as a CheckError from
  /// redistribute_field's conservation/integrity checks — dropped blocks
  /// fail conservation, corrupted blocks fail the bit-exact comparison
  /// against the source field.
  explicit Redistributor(const SimComm& comm,
                         int bytes_per_point = kDefaultBytesPerPoint,
                         PayloadFaultHook* faults = nullptr);

  /// Plan + price the move of one nest between processor rectangles.
  [[nodiscard]] RedistMetrics redistribute(const NestShape& nest,
                                           const Rect& old_rect,
                                           const Rect& new_rect,
                                           int grid_px) const;

  /// Payload-carrying variant for end-to-end validation: \p field is the
  /// nest's global field; the function scatters it by the old decomposition,
  /// executes the typed exchange, reassembles from received messages, and
  /// returns the reassembled field (callers assert equality with \p field).
  [[nodiscard]] Grid2D<double> redistribute_field(const Grid2D<double>& field,
                                                  const Rect& old_rect,
                                                  const Rect& new_rect,
                                                  int grid_px,
                                                  RedistMetrics* metrics =
                                                      nullptr) const;

  [[nodiscard]] int bytes_per_point() const { return bytes_per_point_; }
  [[nodiscard]] const SimComm& comm() const { return *comm_; }

 private:
  const SimComm* comm_;
  int bytes_per_point_;
  PayloadFaultHook* faults_;
};

}  // namespace stormtrack
