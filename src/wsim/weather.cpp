#include "wsim/weather.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace stormtrack {

namespace {
constexpr double kKmPerDegreeLat = 111.2;
constexpr double kPi = 3.14159265358979323846;
}  // namespace

int GeoDomain::nx() const {
  const double mid_lat = 0.5 * (lat_min + lat_max);
  const double km = (lon_max - lon_min) * kKmPerDegreeLat *
                    std::cos(mid_lat * kPi / 180.0);
  return std::max(8, static_cast<int>(km / resolution_km));
}

int GeoDomain::ny() const {
  const double km = (lat_max - lat_min) * kKmPerDegreeLat;
  return std::max(8, static_cast<int>(km / resolution_km));
}

WeatherConfig WeatherConfig::mumbai_2005() {
  WeatherConfig c;
  c.spawn_probability = 0.30;
  c.min_systems = 2;
  c.max_systems = 7;
  return c;
}

WeatherModel::WeatherModel(WeatherConfig config, std::uint64_t seed)
    : config_(config),
      rng_(seed),
      qcloud_(config.domain.nx(), config.domain.ny(), config.qcloud_clear),
      olr_(config.domain.nx(), config.domain.ny(), config.olr_clear) {
  ST_CHECK_MSG(config_.max_systems >= config_.min_systems,
               "max_systems must be >= min_systems");
  while (static_cast<int>(systems_.size()) < config_.min_systems)
    spawn_system();
  render_fields();
}

void WeatherModel::spawn_system() {
  const int nx = config_.domain.nx();
  const int ny = config_.domain.ny();
  // System geometry and drift are physical (km-scaled): a cloud system is
  // the same size whether the grid is run at 12 km or coarsened for tests.
  const double pts = 12.0 / config_.domain.resolution_km;
  CloudSystem s;
  // Systems preferentially form over the lower-left (Arabian Sea / west
  // coast) half of the domain during the monsoon, then drift north-east.
  s.cx = rng_.uniform(0.12 * nx, 0.75 * nx);
  s.cy = rng_.uniform(0.15 * ny, 0.80 * ny);
  s.sigma_x = rng_.uniform(9.0, 26.0) * pts;   // ~110–310 km
  s.sigma_y = rng_.uniform(9.0, 26.0) * pts;
  s.intensity = rng_.uniform(0.8, 2.5) * config_.qcloud_opaque;
  s.vx = rng_.uniform(0.2, 1.6) * pts;         // eastward steering flow
  s.vy = rng_.uniform(-0.5, 0.9) * pts;
  s.growth = rng_.uniform(0.97, 1.05);         // intensification or decay
  s.lifetime = static_cast<int>(rng_.uniform_int(8, 40));
  systems_.push_back(s);
}

void WeatherModel::step() {
  ++step_;
  const int nx = config_.domain.nx();
  const int ny = config_.domain.ny();

  for (CloudSystem& s : systems_) {
    s.cx += s.vx;
    s.cy += s.vy;
    s.intensity *= s.growth;
    // Gentle size evolution coupled to intensification.
    s.sigma_x *= rng_.uniform(0.99, 1.02);
    s.sigma_y *= rng_.uniform(0.99, 1.02);
    ++s.age;
    if (s.age > s.lifetime) s.intensity *= 0.75;  // forced decay
  }

  // Remove systems that decayed or drifted out of the domain.
  std::erase_if(systems_, [&](const CloudSystem& s) {
    const bool faded = s.intensity < 0.25 * config_.qcloud_opaque;
    const bool gone = s.cx < -3.0 * s.sigma_x ||
                      s.cx > nx + 3.0 * s.sigma_x ||
                      s.cy < -3.0 * s.sigma_y || s.cy > ny + 3.0 * s.sigma_y;
    return faded || gone;
  });

  // Spawn: keep the population within [min_systems, max_systems].
  while (static_cast<int>(systems_.size()) < config_.min_systems)
    spawn_system();
  if (static_cast<int>(systems_.size()) < config_.max_systems &&
      rng_.bernoulli(config_.spawn_probability))
    spawn_system();

  render_fields();
}

void WeatherModel::render_fields() {
  const int nx = qcloud_.width();
  const int ny = qcloud_.height();
  qcloud_.fill(config_.qcloud_clear);

  for (const CloudSystem& s : systems_) {
    // Render only within ±3.5 sigma for speed.
    const int x0 = std::max(0, static_cast<int>(s.cx - 3.5 * s.sigma_x));
    const int x1 = std::min(nx - 1, static_cast<int>(s.cx + 3.5 * s.sigma_x));
    const int y0 = std::max(0, static_cast<int>(s.cy - 3.5 * s.sigma_y));
    const int y1 = std::min(ny - 1, static_cast<int>(s.cy + 3.5 * s.sigma_y));
    for (int y = y0; y <= y1; ++y) {
      const double dy = (y - s.cy) / s.sigma_y;
      for (int x = x0; x <= x1; ++x) {
        const double dx = (x - s.cx) / s.sigma_x;
        qcloud_(x, y) += s.intensity * std::exp(-0.5 * (dx * dx + dy * dy));
      }
    }
  }

  // OLR: clear-sky value depressed where cloud water is high (coherent
  // low-OLR patterns over organized systems, §III). Rows are independent.
#pragma omp parallel for schedule(static)
  for (int y = 0; y < ny; ++y) {
    for (int x = 0; x < nx; ++x) {
      const double opacity =
          std::min(1.0, qcloud_(x, y) / config_.qcloud_opaque);
      olr_(x, y) = config_.olr_clear - config_.olr_depression * opacity;
    }
  }
}

WeatherModel::State WeatherModel::export_state() const {
  return State{step_, rng_.state(), systems_};
}

void WeatherModel::import_state(const State& state) {
  ST_CHECK_MSG(state.step >= 0,
               "weather state has negative step " << state.step);
  ST_CHECK_MSG(static_cast<int>(state.systems.size()) <= config_.max_systems,
               "weather state carries " << state.systems.size()
                                        << " systems, above the config cap "
                                        << config_.max_systems);
  step_ = state.step;
  rng_.set_state(state.rng);
  systems_ = state.systems;
  render_fields();
}

}  // namespace stormtrack
