#include "wsim/split_file.hpp"

#include <cstdint>
#include <fstream>

#include "fault/fault_injector.hpp"
#include "redist/block_decomp.hpp"
#include "util/check.hpp"

namespace stormtrack {

std::vector<SplitFile> write_split_files(const WeatherModel& model, int px,
                                         int py) {
  ST_CHECK_MSG(px >= 1 && py >= 1,
               "process grid must be positive, got " << px << "x" << py);
  const Grid2D<double>& q = model.qcloud();
  const Grid2D<double>& o = model.olr();
  std::vector<SplitFile> files;
  files.reserve(static_cast<std::size_t>(px) * py);
  for (int j = 0; j < py; ++j) {
    const Span1D rows = block_range(j, q.height(), py);
    for (int i = 0; i < px; ++i) {
      const Span1D cols = block_range(i, q.width(), px);
      SplitFile f;
      f.rank = j * px + i;
      f.grid_px = px;
      f.subdomain = Rect{cols.begin, rows.begin, cols.count, rows.count};
      if (!f.subdomain.empty()) {
        f.qcloud = q.extract(f.subdomain);
        f.olr = o.extract(f.subdomain);
      }
      files.push_back(std::move(f));
    }
  }
  return files;
}

namespace {

constexpr std::uint32_t kMagic = 0x53544646;  // "STFF"

void write_grid(std::ofstream& os, const Grid2D<double>& g) {
  const std::int32_t w = g.width(), h = g.height();
  os.write(reinterpret_cast<const char*>(&w), sizeof w);
  os.write(reinterpret_cast<const char*>(&h), sizeof h);
  os.write(reinterpret_cast<const char*>(g.data().data()),
           static_cast<std::streamsize>(g.data().size() * sizeof(double)));
}

Grid2D<double> read_grid(std::ifstream& is) {
  std::int32_t w = 0, h = 0;
  is.read(reinterpret_cast<char*>(&w), sizeof w);
  is.read(reinterpret_cast<char*>(&h), sizeof h);
  ST_CHECK_MSG(is.good() && w >= 0 && h >= 0, "corrupt split file grid");
  Grid2D<double> g(w, h);
  is.read(reinterpret_cast<char*>(g.data().data()),
          static_cast<std::streamsize>(g.data().size() * sizeof(double)));
  ST_CHECK_MSG(is.good(), "truncated split file grid");
  return g;
}

std::filesystem::path file_path(const std::filesystem::path& dir, int rank) {
  return dir / ("wrfout_d01_" + std::to_string(rank) + ".bin");
}

}  // namespace

void save_split_file(const SplitFile& f, const std::filesystem::path& dir) {
  std::filesystem::create_directories(dir);
  std::ofstream os(file_path(dir, f.rank), std::ios::binary);
  ST_CHECK_MSG(os.is_open(), "cannot open split file for rank " << f.rank);
  os.write(reinterpret_cast<const char*>(&kMagic), sizeof kMagic);
  const std::int32_t header[6] = {f.rank, f.grid_px, f.subdomain.x,
                                  f.subdomain.y, f.subdomain.w,
                                  f.subdomain.h};
  os.write(reinterpret_cast<const char*>(header), sizeof header);
  write_grid(os, f.qcloud);
  write_grid(os, f.olr);
  ST_CHECK_MSG(os.good(), "failed writing split file for rank " << f.rank);
}

SplitFile load_split_file(const std::filesystem::path& dir, int rank,
                          FaultInjector* faults) {
  if (faults != nullptr) faults->inject_split_read(rank);
  std::ifstream is(file_path(dir, rank), std::ios::binary);
  ST_CHECK_MSG(is.is_open(), "cannot open split file for rank " << rank);
  std::uint32_t magic = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof magic);
  ST_CHECK_MSG(magic == kMagic, "bad split file magic for rank " << rank);
  std::int32_t header[6] = {};
  is.read(reinterpret_cast<char*>(header), sizeof header);
  ST_CHECK_MSG(is.good(), "truncated split file header for rank " << rank);
  SplitFile f;
  f.rank = header[0];
  f.grid_px = header[1];
  f.subdomain = Rect{header[2], header[3], header[4], header[5]};
  f.qcloud = read_grid(is);
  f.olr = read_grid(is);
  return f;
}

}  // namespace stormtrack
