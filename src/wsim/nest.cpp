#include "wsim/nest.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace stormtrack {

NestField::NestField(const Grid2D<double>& parent, const Rect& region,
                     int ratio)
    : region_(region),
      ratio_(ratio),
      data_(region.w * ratio, region.h * ratio) {
  ST_CHECK_MSG(ratio >= 1, "refinement ratio must be >= 1, got " << ratio);
  ST_CHECK_MSG(!region.empty(), "nest region must be non-empty");
  ST_CHECK_MSG(parent.bounds().contains(region),
               "nest region " << region << " outside parent "
                              << parent.width() << "x" << parent.height());

  // Bilinear interpolation: fine point (fx, fy) samples parent coordinate
  // region.origin + (fx + 0.5)/ratio - 0.5 (cell-centre alignment).
  const int fnx = data_.width();
  const int fny = data_.height();
  for (int fy = 0; fy < fny; ++fy) {
    const double py = region.y + (fy + 0.5) / ratio - 0.5;
    const int y0 = std::clamp(static_cast<int>(std::floor(py)), 0,
                              parent.height() - 1);
    const int y1 = std::min(y0 + 1, parent.height() - 1);
    const double wy = std::clamp(py - y0, 0.0, 1.0);
    for (int fx = 0; fx < fnx; ++fx) {
      const double px = region.x + (fx + 0.5) / ratio - 0.5;
      const int x0 = std::clamp(static_cast<int>(std::floor(px)), 0,
                                parent.width() - 1);
      const int x1 = std::min(x0 + 1, parent.width() - 1);
      const double wx = std::clamp(px - x0, 0.0, 1.0);
      const double top =
          (1.0 - wx) * parent(x0, y0) + wx * parent(x1, y0);
      const double bot =
          (1.0 - wx) * parent(x0, y1) + wx * parent(x1, y1);
      data_(fx, fy) = (1.0 - wy) * top + wy * bot;
    }
  }
}

}  // namespace stormtrack
