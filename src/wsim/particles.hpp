#pragma once

/// \file particles.hpp
/// Lagrangian particle advection as a nest workload.
///
/// The second INestWorkload implementation, following the
/// parallelize-over-data idiom of distributed particle advection: each
/// nest seeds a fixed set of trajectories over its fine grid, every
/// sub-step advects them through a synthetic wind field derived from the
/// parent weather model (background monsoon drift + a cyclonic vortex
/// around every cloud system), and each particle is *owned* by the rank
/// whose block of the nest's processor rectangle contains it. A particle
/// crossing a block boundary is handed off to the new owner: the handoff
/// payloads (id + position, plus a trailing FNV checksum element) move as
/// real typed messages through the redistributor's payload-agnostic
/// exchange seam, so injected payload faults strike particle traffic
/// exactly as they strike field redistribution — a dropped message fails
/// count conservation, a corrupted one fails the checksum, both surface as
/// CheckError for the engine's reinit path.
///
/// Accounting (`workload.*` metrics, all deterministic):
///  * active_ranks / rank_slots — ranks owning >= 1 particle vs. rectangle
///    size (the participation ratio of parallelize-over-data);
///  * handoffs — ownership transfers at sub-steps;
///  * ping_pong_particles — handoffs straight back to the previous owner
///    on the next sub-step (the pathological oscillation case);
///  * particles_moved_on_realloc — ownership transfers caused by the
///    reallocation moving the nest's processor rectangle.
///
/// Advection is a pure per-particle function of (weather state, position),
/// so the parallel advection sweep writes each result into its particle's
/// slot and is byte-identical for any thread count.

#include <map>

#include "wsim/workload.hpp"

namespace stormtrack {

/// One trajectory. Positions are nest fine-grid coordinates in
/// [0, nx) × [0, ny); the trajectory fingerprint hashes id + position, so
/// ownership (derived from position + rectangle) never enters the state.
struct Particle {
  std::int64_t id = 0;  ///< Globally unique: nest id × 2^20 + seed index.
  double x = 0.0;
  double y = 0.0;
};

/// Wind at parent-grid position (px, py): monsoon drift plus a Gaussian-
/// enveloped cyclonic vortex (strength ∝ intensity × vortex_scale) and the
/// steering flow around every cloud system. Deterministic in the weather
/// state; units are parent cells per step.
struct Wind {
  double u = 0.0;
  double v = 0.0;
};
[[nodiscard]] Wind wind_at(const WeatherModel& weather,
                           const ParticleParams& params, double px,
                           double py);

/// See file comment.
class ParticleWorkload final : public INestWorkload {
 public:
  explicit ParticleWorkload(ParticleParams params = {});

  [[nodiscard]] std::string_view name() const override {
    return "particles";
  }

  void insert_nest(const NestSpec& spec, const WorkloadEnv& env) override;
  void delete_nest(int id) override;
  void move_nest(int id, const Rect& old_rect, const Rect& new_rect,
                 const WorkloadEnv& env) override;
  void reinit_nest(int id, const WorkloadEnv& env) override;
  [[nodiscard]] TrafficReport integrate(int id, const Rect& proc_rect,
                                        int steps,
                                        const WorkloadEnv& env) override;

  [[nodiscard]] bool has_nest(int id) const override {
    return nests_.contains(id);
  }
  [[nodiscard]] std::size_t num_nests() const override {
    return nests_.size();
  }
  [[nodiscard]] const NestSpec& nest_spec(int id) const override;
  [[nodiscard]] std::vector<int> nest_ids() const override;

  void add_state_fingerprint(Fingerprint& fp) const override;
  [[nodiscard]] std::vector<std::byte> export_state() const override;
  void import_state(std::span<const std::byte> blob) override;

  /// Particles of nest \p id (throws CheckError when absent); ascending by
  /// id, positions in fine-grid coordinates.
  [[nodiscard]] const std::vector<Particle>& particles(int id) const;
  /// Total live particles across all nests.
  [[nodiscard]] std::int64_t total_particles() const;

  [[nodiscard]] const ParticleParams& params() const { return params_; }

 private:
  struct ParticleNest {
    NestSpec spec;
    std::vector<Particle> particles;  ///< Ascending by id.
  };

  ParticleNest& nest_at(int id);
  void seed(ParticleNest& nest) const;
  /// Decode an exchange's delivered handoff payloads back into \p nest:
  /// verifies count conservation against \p sent (drop detection) and the
  /// per-message trailing checksum (corruption detection), then writes the
  /// shipped positions by particle id. Throws CheckError naming \p phase.
  void apply_delivered(ParticleNest& nest, const ExchangeResult<double>& ex,
                       std::int64_t sent, const char* phase) const;

  ParticleParams params_;
  std::map<int, ParticleNest> nests_;
};

}  // namespace stormtrack
