#pragma once

/// \file dynamics.hpp
/// Nest-domain dynamics: a distributed advection–diffusion integrator.
///
/// The paper treats nest execution as a cost (the performance model); this
/// module additionally makes the nested simulation *runnable*, so the
/// library can demonstrate the full life of a nest: spawn (interpolation
/// from the parent, nest.hpp) → distributed time stepping with halo
/// exchanges over the simulated network → redistribution to a new
/// processor rectangle (redist/) → continued stepping, with bit-exact
/// agreement against a sequential reference.
///
/// Numerics: first-order upwind advection + 5-point central diffusion
/// (FTCS), Neumann (zero-gradient) boundaries at the nest edge. The
/// positivity/maximum-principle condition |u| + |v| + 4·diffusion <= 1
/// (per step, cell units) is enforced.
///
/// Parallel structure: the nest field is 2D-block decomposed over the
/// nest's processor rectangle exactly as in redist/block_decomp.hpp; each
/// step exchanges one-cell-deep edge halos between neighbouring blocks
/// (priced on the SimComm) and then updates each block from its halo-
/// extended local view — the canonical stencil SPMD pattern.

#include "perfmodel/ground_truth.hpp"  // NestShape
#include "redist/block_decomp.hpp"
#include "simmpi/simcomm.hpp"
#include "util/grid2d.hpp"

namespace stormtrack {

/// Integrator coefficients (per-step, in cell units).
struct DynamicsParams {
  double u = 0.5;            ///< Eastward advection (cells/step).
  double v = 0.2;            ///< Northward advection (cells/step).
  double diffusion = 0.075;  ///< Diffusivity (cells²/step).
};

/// One sequential reference step of the whole field.
[[nodiscard]] Grid2D<double> step_reference(const Grid2D<double>& field,
                                            const DynamicsParams& params);

/// Distributed stepper bound to a nest's processor rectangle.
class DistributedNestStepper {
 public:
  /// \p comm must outlive the stepper. \p proc_rect / \p grid_px as in
  /// BlockDecomposition.
  DistributedNestStepper(const SimComm& comm, const NestShape& nest,
                         const Rect& proc_rect, int grid_px,
                         DynamicsParams params = {});

  /// Advance \p field (the global nest field, block-owned by the ranks)
  /// one step: halo exchange priced on the communicator, then per-block
  /// updates from halo-extended local views. Returns the exchange traffic.
  TrafficReport step(Grid2D<double>& field) const;

  [[nodiscard]] const BlockDecomposition& decomposition() const {
    return decomp_;
  }
  [[nodiscard]] const DynamicsParams& params() const { return params_; }

 private:
  const SimComm* comm_;
  BlockDecomposition decomp_;
  DynamicsParams params_;
};

}  // namespace stormtrack
