#pragma once

/// \file nest.hpp
/// Nested high-resolution domains (§IV).
///
/// A nest covers a region of interest of the parent domain at 3× finer
/// resolution ("the resolutions of these nested simulations are thrice
/// that of the parent simulation"); its initial state is interpolated from
/// the parent fields, matching the paper's modified-WRF on-the-fly spawn.

#include "perfmodel/ground_truth.hpp"  // NestShape
#include "util/grid2d.hpp"
#include "util/rect.hpp"

namespace stormtrack {

/// Parent-to-nest refinement ratio used throughout (12 km → 4 km).
inline constexpr int kRefinementRatio = 3;

/// One active nest: stable id, parent-grid region, fine-grid shape.
/// (Lives here rather than with the tracker so the nest-workload layer —
/// workload.hpp — can name nests without depending on core/.)
struct NestSpec {
  int id = 0;
  Rect region;       ///< Parent-grid bounding rectangle (the ROI).
  NestShape shape;   ///< Fine-grid extent (region × refinement ratio).
};

/// Fine-resolution field over a parent region.
class NestField {
 public:
  /// Interpolate \p parent's values over \p region (parent-grid points,
  /// must lie within the parent's bounds) at \p ratio× resolution using
  /// bilinear interpolation.
  NestField(const Grid2D<double>& parent, const Rect& region,
            int ratio = kRefinementRatio);

  [[nodiscard]] const Rect& region() const { return region_; }
  [[nodiscard]] int ratio() const { return ratio_; }
  [[nodiscard]] NestShape shape() const {
    return NestShape{data_.width(), data_.height()};
  }
  [[nodiscard]] const Grid2D<double>& data() const { return data_; }
  [[nodiscard]] Grid2D<double>& data() { return data_; }

 private:
  Rect region_;
  int ratio_;
  Grid2D<double> data_;
};

/// Fine-grid extent of a nest spawned over \p region at \p ratio.
[[nodiscard]] inline NestShape nest_shape_for(const Rect& region,
                                              int ratio = kRefinementRatio) {
  return NestShape{region.w * ratio, region.h * ratio};
}

}  // namespace stormtrack
