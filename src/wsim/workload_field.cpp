#include "wsim/workload_field.hpp"

#include <utility>

#include "fault/snapshot.hpp"
#include "redist/redistributor.hpp"
#include "util/binary_io.hpp"
#include "util/check.hpp"
#include "wsim/weather.hpp"

namespace stormtrack {

FieldWorkload::FieldWorkload(DynamicsParams dynamics)
    : dynamics_(dynamics) {}

void FieldWorkload::insert_nest(const NestSpec& spec,
                                const WorkloadEnv& env) {
  ST_CHECK_MSG(!nests_.contains(spec.id),
               "field workload already holds nest " << spec.id);
  LiveNest nest;
  nest.spec = spec;
  nest.field = NestField(env.weather->qcloud(), spec.region).data();
  ST_CHECK(nest.field.width() == spec.shape.nx &&
           nest.field.height() == spec.shape.ny);
  nests_.emplace(spec.id, std::move(nest));
}

void FieldWorkload::delete_nest(int id) { nests_.erase(id); }

void FieldWorkload::move_nest(int id, const Rect& old_rect,
                              const Rect& new_rect, const WorkloadEnv& env) {
  LiveNest& nest = nests_.at(id);
  // redistribute_field verifies conservation + bit-exact integrity
  // internally; an injected payload fault propagates as CheckError.
  RedistMetrics moved;
  nest.field = env.redistributor->redistribute_field(
      nest.field, old_rect, new_rect, env.grid_px, &moved);
  if (env.data_movement != nullptr) *env.data_movement += moved.traffic;
}

void FieldWorkload::reinit_nest(int id, const WorkloadEnv& env) {
  LiveNest& nest = nests_.at(id);
  nest.field = NestField(env.weather->qcloud(), nest.spec.region).data();
}

TrafficReport FieldWorkload::integrate(int id, const Rect& proc_rect,
                                       int steps, const WorkloadEnv& env) {
  LiveNest& nest = nests_.at(id);
  const DistributedNestStepper stepper(*env.comm, nest.spec.shape, proc_rect,
                                       env.grid_px, dynamics_);
  TrafficReport traffic;
  for (int s = 0; s < steps; ++s) traffic += stepper.step(nest.field);
  return traffic;
}

const NestSpec& FieldWorkload::nest_spec(int id) const {
  const auto it = nests_.find(id);
  ST_CHECK_MSG(it != nests_.end(), "field workload has no nest " << id);
  return it->second.spec;
}

std::vector<int> FieldWorkload::nest_ids() const {
  std::vector<int> ids;
  ids.reserve(nests_.size());
  for (const auto& [id, nest] : nests_) ids.push_back(id);
  return ids;
}

void FieldWorkload::add_state_fingerprint(Fingerprint& fp) const {
  // Byte-for-byte the hashing order of the pre-workload-layer
  // CoupledSimulation::state_fingerprint (golden test pins this).
  fp.add(static_cast<std::int64_t>(nests_.size()));
  for (const auto& [id, nest] : nests_) {
    fp.add(id);
    add_fingerprint(fp, nest.spec.region);
    fp.add(nest.spec.shape.nx);
    fp.add(nest.spec.shape.ny);
    for (const double v : nest.field.data()) fp.add(v);
  }
}

std::vector<std::byte> FieldWorkload::export_state() const {
  BinaryWriter w;
  w.put_count(nests_.size());
  for (const auto& [id, nest] : nests_) {
    w.put_i32(nest.spec.id);
    w.put_i32(nest.spec.region.x);
    w.put_i32(nest.spec.region.y);
    w.put_i32(nest.spec.region.w);
    w.put_i32(nest.spec.region.h);
    w.put_i32(nest.spec.shape.nx);
    w.put_i32(nest.spec.shape.ny);
    w.put_i32(nest.field.width());
    w.put_i32(nest.field.height());
    for (const double v : nest.field.data()) w.put_f64(v);
  }
  return w.take();
}

void FieldWorkload::import_state(std::span<const std::byte> blob) {
  BinaryReader r(blob);
  const std::size_t n = r.get_count("field workload nests");
  std::map<int, LiveNest> nests;
  for (std::size_t i = 0; i < n; ++i) {
    LiveNest nest;
    nest.spec.id = r.get_i32("nest id");
    nest.spec.region.x = r.get_i32("nest region x");
    nest.spec.region.y = r.get_i32("nest region y");
    nest.spec.region.w = r.get_i32("nest region w");
    nest.spec.region.h = r.get_i32("nest region h");
    nest.spec.shape.nx = r.get_i32("nest shape nx");
    nest.spec.shape.ny = r.get_i32("nest shape ny");
    const int width = r.get_i32("nest field width");
    const int height = r.get_i32("nest field height");
    ST_CHECK_MSG(width >= 0 && height >= 0,
                 "nest field has negative extent " << width << "x" << height);
    ST_CHECK_MSG(width == nest.spec.shape.nx &&
                     height == nest.spec.shape.ny,
                 "live nest " << nest.spec.id << " carries a " << width << "x"
                              << height << " field but its spec says "
                              << nest.spec.shape.nx << "x"
                              << nest.spec.shape.ny);
    nest.field = Grid2D<double>(width, height);
    for (double& v : nest.field.data()) v = r.get_f64("nest field cell");
    const int id = nest.spec.id;
    ST_CHECK_MSG(nests.emplace(id, std::move(nest)).second,
                 "field workload state repeats live nest id " << id);
  }
  ST_CHECK_MSG(r.exhausted(), "field workload state has trailing bytes");
  nests_ = std::move(nests);
}

}  // namespace stormtrack
