#include "wsim/dynamics.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.hpp"

namespace stormtrack {

namespace {

void validate_params(const DynamicsParams& p) {
  ST_CHECK_MSG(p.diffusion >= 0.0, "diffusion must be non-negative");
  // Positivity / maximum principle for upwind + FTCS: the centre-cell
  // coefficient 1 - |u| - |v| - 4D must stay non-negative.
  ST_CHECK_MSG(std::abs(p.u) + std::abs(p.v) + 4.0 * p.diffusion <= 1.0,
               "unstable dynamics: need |u| + |v| + 4*diffusion <= 1, got "
                   << std::abs(p.u) + std::abs(p.v) + 4.0 * p.diffusion);
}

/// Zero-gradient (Neumann) sample of the field at clamped coordinates.
double sample(const Grid2D<double>& f, int x, int y) {
  return f(std::clamp(x, 0, f.width() - 1), std::clamp(y, 0, f.height() - 1));
}

/// Stencil update of one cell from any field view with Neumann clamping.
double update_cell(const Grid2D<double>& f, int x, int y,
                   const DynamicsParams& p) {
  const double c = sample(f, x, y);
  const double w = sample(f, x - 1, y);
  const double e = sample(f, x + 1, y);
  const double s = sample(f, x, y - 1);
  const double n = sample(f, x, y + 1);
  // First-order upwind advection.
  const double adv_x = p.u >= 0.0 ? p.u * (c - w) : p.u * (e - c);
  const double adv_y = p.v >= 0.0 ? p.v * (c - s) : p.v * (n - c);
  // 5-point diffusion.
  const double diff = p.diffusion * (w + e + s + n - 4.0 * c);
  return c - adv_x - adv_y + diff;
}

}  // namespace

Grid2D<double> step_reference(const Grid2D<double>& field,
                              const DynamicsParams& params) {
  validate_params(params);
  Grid2D<double> out(field.width(), field.height());
  // Each output row depends only on the (read-only) input field.
#pragma omp parallel for schedule(static)
  for (int y = 0; y < field.height(); ++y)
    for (int x = 0; x < field.width(); ++x)
      out(x, y) = update_cell(field, x, y, params);
  return out;
}

DistributedNestStepper::DistributedNestStepper(const SimComm& comm,
                                               const NestShape& nest,
                                               const Rect& proc_rect,
                                               int grid_px,
                                               DynamicsParams params)
    : comm_(&comm), decomp_(nest, proc_rect, grid_px), params_(params) {
  validate_params(params);
}

TrafficReport DistributedNestStepper::step(Grid2D<double>& field) const {
  const Rect proc_rect = decomp_.proc_rect();

  // ---- 1. Halo exchange: each block ships its one-cell-deep edges to the
  //         N/S/E/W neighbouring blocks (8 bytes per cell).
  std::vector<Message> msgs;
  for (int j = 0; j < proc_rect.h; ++j) {
    for (int i = 0; i < proc_rect.w; ++i) {
      const Rect region = decomp_.owned_region(i, j);
      if (region.empty()) continue;
      const int me = decomp_.rank_at(i, j);
      const auto send_edge = [&](int ni, int nj, int cells) {
        if (ni < 0 || ni >= proc_rect.w || nj < 0 || nj >= proc_rect.h)
          return;
        if (decomp_.owned_region(ni, nj).empty()) return;
        msgs.push_back(Message{me, decomp_.rank_at(ni, nj),
                               static_cast<std::int64_t>(cells) * 8});
      };
      send_edge(i - 1, j, region.h);
      send_edge(i + 1, j, region.h);
      send_edge(i, j - 1, region.w);
      send_edge(i, j + 1, region.w);
    }
  }
  const TrafficReport traffic = comm_->alltoallv(msgs);

  // ---- 2. Per-block update from a halo-extended local view. Each block
  //         reads only its own cells plus the one-cell halo it just
  //         received; blocks at the nest edge clamp (Neumann).
  Grid2D<double> out(field.width(), field.height());
  for (int j = 0; j < proc_rect.h; ++j) {
    for (int i = 0; i < proc_rect.w; ++i) {
      const Rect region = decomp_.owned_region(i, j);
      if (region.empty()) continue;
      // Halo-extended view, clamped at the global nest boundary.
      const Rect halo_rect{
          std::max(0, region.x - 1), std::max(0, region.y - 1),
          std::min(field.width(), region.x_end() + 1) -
              std::max(0, region.x - 1),
          std::min(field.height(), region.y_end() + 1) -
              std::max(0, region.y - 1)};
      const Grid2D<double> local = field.extract(halo_rect);
      for (int y = region.y; y < region.y_end(); ++y)
        for (int x = region.x; x < region.x_end(); ++x)
          out(x, y) = update_cell(local, x - halo_rect.x, y - halo_rect.y,
                                  params_);
    }
  }

  field = std::move(out);
  return traffic;
}

}  // namespace stormtrack
