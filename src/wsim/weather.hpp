#pragma once

/// \file weather.hpp
/// Synthetic weather-field generator (the WRF stand-in).
///
/// The paper runs WRF v3.3.1 over the Indian region (60–120°E, 5–40°N) at
/// 12 km and analyzes two diagnostics: QCLOUD (cloud water mixing ratio)
/// and OLR (outgoing long-wave radiation, low under tall organized cloud
/// systems). The detection/reallocation pipeline only consumes those two
/// fields, so the substitution is a generator that evolves a population of
/// organized convective systems — anisotropic Gaussian cloud clusters that
/// form, drift with a monsoon-like steering flow, intensify, merge
/// spatially, and decay — and renders QCLOUD/OLR from them. Darker Fig. 1
/// regions ↔ higher QCLOUD; OLR drops below the paper's 200 threshold
/// where cloud tops are tall.

#include <cstdint>
#include <vector>

#include "util/grid2d.hpp"
#include "util/rng.hpp"

namespace stormtrack {

/// Geographic configuration of the parent simulation domain.
struct GeoDomain {
  double lon_min = 60.0;
  double lon_max = 120.0;
  double lat_min = 5.0;
  double lat_max = 40.0;
  double resolution_km = 12.0;

  /// Grid points east–west (uses the mid-latitude meridian convergence).
  [[nodiscard]] int nx() const;
  /// Grid points north–south.
  [[nodiscard]] int ny() const;
};

/// One organized convective cloud system (anisotropic Gaussian).
struct CloudSystem {
  double cx = 0.0, cy = 0.0;       ///< Centre (grid points).
  double sigma_x = 0.0, sigma_y = 0.0;  ///< Extent (grid points).
  double intensity = 0.0;          ///< Peak QCLOUD contribution (kg/kg).
  double vx = 0.0, vy = 0.0;       ///< Drift per step (grid points).
  double growth = 1.0;             ///< Intensity multiplier per step.
  int age = 0;
  int lifetime = 0;                ///< Steps until forced decay.
};

/// Tunables of the synthetic scenario.
struct WeatherConfig {
  GeoDomain domain;
  double spawn_probability = 0.25;   ///< New-system probability per step.
  int min_systems = 2;               ///< Spawn until at least this many.
  int max_systems = 9;               ///< Hard cap on concurrent systems.
  double qcloud_clear = 1e-5;        ///< Background QCLOUD (kg/kg).
  double olr_clear = 290.0;          ///< Clear-sky OLR (W/m²).
  double olr_depression = 170.0;     ///< Max OLR drop under thick cloud.
  double qcloud_opaque = 4e-4;       ///< QCLOUD at which cloud is "tall".

  /// The Mumbai July-2005 flavoured scenario (§V-B): a persistent intense
  /// system near the west coast plus transient systems, 2–7 concurrent.
  [[nodiscard]] static WeatherConfig mumbai_2005();
};

/// Evolves the cloud-system population and renders QCLOUD/OLR.
class WeatherModel {
 public:
  WeatherModel(WeatherConfig config, std::uint64_t seed);

  /// Advance one coupled interval: move/grow/decay systems, spawn new ones,
  /// re-render the fields.
  void step();

  [[nodiscard]] int time_step() const { return step_; }
  [[nodiscard]] const WeatherConfig& config() const { return config_; }
  [[nodiscard]] const std::vector<CloudSystem>& systems() const {
    return systems_;
  }

  /// Cloud water mixing ratio field (kg/kg), nx()×ny().
  [[nodiscard]] const Grid2D<double>& qcloud() const { return qcloud_; }
  /// Outgoing long-wave radiation field (W/m²).
  [[nodiscard]] const Grid2D<double>& olr() const { return olr_; }

  /// Complete evolving state for checkpoint/restart: the RNG position, the
  /// cloud-system population and the step counter. The rendered fields are
  /// a deterministic function of the systems, so import_state() re-renders
  /// them instead of carrying two full grids in every checkpoint.
  struct State {
    int step = 0;
    Xoshiro256::State rng;
    std::vector<CloudSystem> systems;
  };
  [[nodiscard]] State export_state() const;
  /// Restore a state exported from a model with the same config; the next
  /// step() continues the exact sequence of the original run.
  void import_state(const State& state);

 private:
  void spawn_system();
  void render_fields();

  WeatherConfig config_;
  Xoshiro256 rng_;
  std::vector<CloudSystem> systems_;
  Grid2D<double> qcloud_;
  Grid2D<double> olr_;
  int step_ = 0;
};

}  // namespace stormtrack
