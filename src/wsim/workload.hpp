#pragma once

/// \file workload.hpp
/// The pluggable nest-workload layer.
///
/// The paper's framework claims the reallocation strategy is independent of
/// what the nests compute; this interface is that claim made structural.
/// An INestWorkload owns everything the coupled engine used to assume was a
/// field:
///
///  * per-nest state creation on insert (initialized from the parent
///    model — interpolation for fields, seeding for particles);
///  * genuine data movement when a retained nest's processor rectangle
///    changes, executed through the redistributor's payload-agnostic
///    exchange seam with conservation / integrity invariants — an injected
///    payload fault surfaces as a CheckError the engine answers by
///    reinit_nest();
///  * per-interval integration on the nest's processor rectangle, with the
///    neighbour/halo traffic it generated reported back;
///  * a state fingerprint contribution (byte-identical determinism) and an
///    opaque export/import blob for checkpoint format v3.
///
/// The engine (core/coupled.cpp) orchestrates lifecycle and recovery and
/// never sees payload bytes; workloads never see the tracker, pipeline, or
/// checkpoint framing. Two implementations ship: the original
/// advection–diffusion field (workload_field.hpp, ported bit-identically)
/// and Lagrangian particle advection (particles.hpp).

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "simmpi/simcomm.hpp"
#include "util/fnv.hpp"
#include "util/rect.hpp"
#include "wsim/dynamics.hpp"
#include "wsim/nest.hpp"

namespace stormtrack {

class Executor;
class MetricsRegistry;
class Redistributor;
class WeatherModel;

/// Tunables of the particle-advection workload (particles.hpp). Lives here
/// so WorkloadParams (and CoupledConfig) can carry it without pulling in
/// the implementation header.
struct ParticleParams {
  /// Trajectories seeded per nest at insert/reinit (golden-ratio lattice
  /// over the nest's fine grid).
  int particles_per_nest = 256;
  /// Rotational (vortex) wind-speed scale around each cloud system, in
  /// parent cells/step per unit QCLOUD intensity.
  double vortex_scale = 2500.0;
  /// Background monsoon drift (parent cells/step), eastward / northward.
  double drift_u = 0.35;
  double drift_v = 0.12;
};

/// Everything a workload operation may touch, lent by the engine for the
/// duration of one call. All pointers are non-owning; comm / grid_px /
/// weather / redistributor are always set, executor and metrics may be
/// null (serial integration, no counter sink), data_movement may be null
/// (traffic not wanted).
struct WorkloadEnv {
  const SimComm* comm = nullptr;          ///< Machine communicator.
  int grid_px = 0;                        ///< Full process-grid width.
  const WeatherModel* weather = nullptr;  ///< Parent model (init + winds).
  const Redistributor* redistributor = nullptr;  ///< Data-movement seam.
  MetricsRegistry* metrics = nullptr;     ///< `workload.*` counter sink.
  Executor* executor = nullptr;           ///< Null = serial integration.
  /// When set, data movement performed by move_nest() is accumulated here
  /// (the engine folds it into IntervalReport::workload_traffic).
  TrafficReport* data_movement = nullptr;
};

/// See file comment. One instance lives per CoupledSimulation and holds
/// the payload state of every live nest.
class INestWorkload {
 public:
  virtual ~INestWorkload() = default;

  /// Registry name ("field", "particles").
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Create nest \p spec's payload state from the parent model. The spec
  /// is frozen here for the nest's lifetime (regions do not follow the
  /// cloud; see coupled.hpp).
  virtual void insert_nest(const NestSpec& spec, const WorkloadEnv& env) = 0;

  /// Drop nest \p id's state (no-op when absent).
  virtual void delete_nest(int id) = 0;

  /// Genuinely move nest \p id's data from \p old_rect to \p new_rect
  /// through env.redistributor. Throws CheckError when the moved payload
  /// was lost or damaged in flight (fault injection) — the state is then
  /// unusable and the engine must reinit_nest().
  virtual void move_nest(int id, const Rect& old_rect, const Rect& new_rect,
                         const WorkloadEnv& env) = 0;

  /// Lossy rebuild of nest \p id's state from the parent model (the fault
  /// recovery path; same initialization as a fresh insert).
  virtual void reinit_nest(int id, const WorkloadEnv& env) = 0;

  /// Integrate nest \p id \p steps sub-steps on processor rectangle
  /// \p proc_rect; returns the neighbour traffic (halo exchanges, particle
  /// handoffs) the integration generated. May throw CheckError under
  /// payload fault injection (particle handoffs move real payloads).
  [[nodiscard]] virtual TrafficReport integrate(int id, const Rect& proc_rect,
                                                int steps,
                                                const WorkloadEnv& env) = 0;

  [[nodiscard]] virtual bool has_nest(int id) const = 0;
  [[nodiscard]] virtual std::size_t num_nests() const = 0;
  /// Frozen spawn-time spec of live nest \p id; throws CheckError when
  /// absent.
  [[nodiscard]] virtual const NestSpec& nest_spec(int id) const = 0;
  /// Live nest ids, ascending.
  [[nodiscard]] virtual std::vector<int> nest_ids() const = 0;

  /// Fold the complete payload state into \p fp. The field workload hashes
  /// exactly the bytes the pre-refactor engine hashed, so fingerprints are
  /// bit-identical across the port (pinned by the golden test).
  virtual void add_state_fingerprint(Fingerprint& fp) const = 0;

  /// Opaque state blob for checkpoint format v3 (util/binary_io.hpp
  /// encoding, but the engine and checkpoint codec treat it as bytes).
  [[nodiscard]] virtual std::vector<std::byte> export_state() const = 0;
  /// Replace the live state with \p blob, validating shapes and id
  /// uniqueness; throws CheckError (leaving the workload unchanged is NOT
  /// guaranteed — import into a fresh instance to get transactionality,
  /// as CoupledSimulation::import_state does).
  virtual void import_state(std::span<const std::byte> blob) = 0;
};

/// Construction-time knobs shared by every workload.
struct WorkloadParams {
  DynamicsParams dynamics;    ///< Field integrator coefficients.
  ParticleParams particles;   ///< Particle-advection tunables.
};

/// Name → factory registry, mirroring StrategyRegistry: the CLI, sweep
/// runner, and CoupledSimulation all resolve workloads by name through the
/// global() instance ("field" and "particles" self-register).
class WorkloadRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<INestWorkload>(const WorkloadParams&)>;

  [[nodiscard]] static WorkloadRegistry& global();

  /// Registers \p name; throws CheckError on duplicates.
  void register_workload(std::string name, Factory factory);
  [[nodiscard]] bool contains(const std::string& name) const;
  /// Registered names, ascending.
  [[nodiscard]] std::vector<std::string> names() const;
  /// Throws CheckError listing the registered names when \p name is
  /// unknown.
  [[nodiscard]] std::unique_ptr<INestWorkload> create(
      const std::string& name, const WorkloadParams& params) const;

 private:
  std::vector<std::pair<std::string, Factory>> entries_;  ///< Name-sorted.
};

}  // namespace stormtrack
