#pragma once

/// \file split_file.hpp
/// Per-rank "split file" simulation output (§III).
///
/// Each WRF process writes the fields of its subdomain into its own split
/// file; the parallel data analysis then reads those files. Here a split
/// file is a value type holding the rank's subdomain rectangle and its
/// QCLOUD/OLR tiles; binary serialization to a directory is provided so
/// the read-files-from-disk code path of Algorithm 1 is exercised for real
/// when callers want it.

#include <filesystem>
#include <vector>

#include "util/grid2d.hpp"
#include "util/rect.hpp"
#include "wsim/weather.hpp"

namespace stormtrack {

class FaultInjector;

/// One process's simulation output for one time step.
struct SplitFile {
  int rank = 0;          ///< Writing rank (row-major on the Px×Py grid).
  int grid_px = 0;       ///< Process-grid width the rank lives on.
  Rect subdomain;        ///< Owned region in parent-grid points.
  Grid2D<double> qcloud; ///< QCLOUD tile, subdomain-sized.
  Grid2D<double> olr;    ///< OLR tile, subdomain-sized.

  /// Process-grid position of the writer.
  [[nodiscard]] int file_x() const { return rank % grid_px; }
  [[nodiscard]] int file_y() const { return rank / grid_px; }
};

/// Decompose the model's current fields over a px×py process grid and
/// produce one split file per rank (balanced 2D blocks).
[[nodiscard]] std::vector<SplitFile> write_split_files(
    const WeatherModel& model, int px, int py);

/// Serialize one split file to <dir>/wrfout_d01_<rank>.bin.
void save_split_file(const SplitFile& f, const std::filesystem::path& dir);

/// Deserialize a split file previously written by save_split_file. When
/// \p faults is set, its scheduled read failures for \p rank fire first
/// (as FaultError), before the file is touched.
[[nodiscard]] SplitFile load_split_file(const std::filesystem::path& dir,
                                        int rank,
                                        FaultInjector* faults = nullptr);

}  // namespace stormtrack
