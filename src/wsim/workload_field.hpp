#pragma once

/// \file workload_field.hpp
/// The original nest payload — an advection–diffusion field — behind the
/// INestWorkload interface.
///
/// This is a *port*, not a rewrite: insert interpolates from the parent
/// QCLOUD grid exactly as CoupledSimulation used to, move runs the same
/// redistribute_field (conservation + bit-exact integrity checked
/// internally), integrate drives the same DistributedNestStepper, and
/// add_state_fingerprint hashes the same bytes in the same order — the
/// golden-fingerprint test pins state fingerprints and halo-byte totals
/// captured on the pre-refactor engine.

#include <map>

#include "util/grid2d.hpp"
#include "wsim/dynamics.hpp"
#include "wsim/workload.hpp"

namespace stormtrack {

/// A live nested simulation domain.
struct LiveNest {
  NestSpec spec;            ///< Frozen at spawn (region does not follow).
  Grid2D<double> field;     ///< Integrated fine-resolution state.
};

/// See file comment.
class FieldWorkload final : public INestWorkload {
 public:
  explicit FieldWorkload(DynamicsParams dynamics = {});

  [[nodiscard]] std::string_view name() const override { return "field"; }

  void insert_nest(const NestSpec& spec, const WorkloadEnv& env) override;
  void delete_nest(int id) override;
  void move_nest(int id, const Rect& old_rect, const Rect& new_rect,
                 const WorkloadEnv& env) override;
  void reinit_nest(int id, const WorkloadEnv& env) override;
  [[nodiscard]] TrafficReport integrate(int id, const Rect& proc_rect,
                                        int steps,
                                        const WorkloadEnv& env) override;

  [[nodiscard]] bool has_nest(int id) const override {
    return nests_.contains(id);
  }
  [[nodiscard]] std::size_t num_nests() const override {
    return nests_.size();
  }
  [[nodiscard]] const NestSpec& nest_spec(int id) const override;
  [[nodiscard]] std::vector<int> nest_ids() const override;

  void add_state_fingerprint(Fingerprint& fp) const override;
  [[nodiscard]] std::vector<std::byte> export_state() const override;
  void import_state(std::span<const std::byte> blob) override;

  /// Direct access for tests and field-specific tooling (the
  /// CoupledSimulation::nests() compatibility accessor forwards here).
  [[nodiscard]] const std::map<int, LiveNest>& nests() const {
    return nests_;
  }

 private:
  DynamicsParams dynamics_;
  std::map<int, LiveNest> nests_;
};

}  // namespace stormtrack
