#include "wsim/particles.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <map>
#include <utility>

#include "exec/executor.hpp"
#include "fault/snapshot.hpp"
#include "redist/block_decomp.hpp"
#include "redist/redistributor.hpp"
#include "util/binary_io.hpp"
#include "util/check.hpp"
#include "util/metrics.hpp"
#include "wsim/weather.hpp"

namespace stormtrack {

namespace {

/// Globally unique particle ids: nest id in the high bits, seed index in
/// the low 20 (a nest never seeds close to 2^20 particles).
constexpr std::int64_t kIdStride = std::int64_t{1} << 20;

/// R2 low-discrepancy sequence constants (plastic number powers): a
/// deterministic, well-spread seeding lattice with no RNG state to carry.
constexpr double kR2Alpha1 = 0.7548776662466927;
constexpr double kR2Alpha2 = 0.5698402909980532;

[[nodiscard]] double fract(double v) { return v - std::floor(v); }

/// Fine-grid cell of a position (positions live in [0, n); clamp guards
/// the n - epsilon == n rounding edge).
[[nodiscard]] int cell_of(double v, int n) {
  return std::clamp(static_cast<int>(v), 0, n - 1);
}

/// Keep a position inside [0, n): reflect one overshoot, then clamp.
[[nodiscard]] double reflect_into(double v, int n) {
  const double hi = static_cast<double>(n);
  if (v < 0.0) v = -v;
  if (v >= hi) v = 2.0 * hi - v;
  return std::clamp(v, 0.0, std::nextafter(hi, 0.0));
}

/// FNV fingerprint of a particle payload's data doubles (everything
/// between the leading count and the trailing checksum slot).
[[nodiscard]] double payload_checksum(std::span<const double> data) {
  Fingerprint fp;
  for (const double v : data) fp.add(v);
  return std::bit_cast<double>(fp.value());
}

/// One particle advection sub-step: pure in (weather, params, spec,
/// position), so the parallel sweep is schedule-independent.
[[nodiscard]] Particle advect(const WeatherModel& weather,
                              const ParticleParams& params,
                              const NestSpec& spec, Particle p) {
  const double ratio_x =
      static_cast<double>(spec.shape.nx) / static_cast<double>(spec.region.w);
  const double ratio_y =
      static_cast<double>(spec.shape.ny) / static_cast<double>(spec.region.h);
  const double px = spec.region.x + p.x / ratio_x;
  const double py = spec.region.y + p.y / ratio_y;
  const Wind w = wind_at(weather, params, px, py);
  p.x = reflect_into(p.x + w.u * ratio_x, spec.shape.nx);
  p.y = reflect_into(p.y + w.v * ratio_y, spec.shape.ny);
  return p;
}

}  // namespace

Wind wind_at(const WeatherModel& weather, const ParticleParams& params,
             double px, double py) {
  Wind w{params.drift_u, params.drift_v};
  for (const CloudSystem& s : weather.systems()) {
    const double dx = px - s.cx;
    const double dy = py - s.cy;
    const double sx = std::max(s.sigma_x, 1.0);
    const double sy = std::max(s.sigma_y, 1.0);
    const double envelope =
        std::exp(-0.5 * ((dx * dx) / (sx * sx) + (dy * dy) / (sy * sy)));
    // Steering flow: particles near a system share its drift.
    w.u += s.vx * envelope;
    w.v += s.vy * envelope;
    // Cyclonic vortex: tangential speed ∝ intensity, Gaussian falloff.
    const double r = std::sqrt(dx * dx + dy * dy) + 1e-9;
    const double speed = params.vortex_scale * s.intensity * envelope;
    w.u += -dy / r * speed;
    w.v += dx / r * speed;
  }
  return w;
}

ParticleWorkload::ParticleWorkload(ParticleParams params) : params_(params) {
  ST_CHECK_MSG(params_.particles_per_nest > 0 &&
                   params_.particles_per_nest < kIdStride,
               "particles_per_nest out of range: "
                   << params_.particles_per_nest);
}

void ParticleWorkload::seed(ParticleNest& nest) const {
  nest.particles.clear();
  nest.particles.reserve(static_cast<std::size_t>(params_.particles_per_nest));
  for (int k = 0; k < params_.particles_per_nest; ++k) {
    Particle p;
    p.id = static_cast<std::int64_t>(nest.spec.id) * kIdStride + k;
    p.x = fract((k + 0.5) * kR2Alpha1) * nest.spec.shape.nx;
    p.y = fract((k + 0.5) * kR2Alpha2) * nest.spec.shape.ny;
    nest.particles.push_back(p);
  }
}

void ParticleWorkload::insert_nest(const NestSpec& spec,
                                   const WorkloadEnv& env) {
  (void)env;  // Seeding is lattice-based; the parent model drives advection.
  ST_CHECK_MSG(!nests_.contains(spec.id),
               "particle workload already holds nest " << spec.id);
  ST_CHECK_MSG(spec.region.w > 0 && spec.region.h > 0 && spec.shape.nx > 0 &&
                   spec.shape.ny > 0,
               "nest " << spec.id << " has empty region or shape");
  ParticleNest nest;
  nest.spec = spec;
  seed(nest);
  nests_.emplace(spec.id, std::move(nest));
}

void ParticleWorkload::delete_nest(int id) { nests_.erase(id); }

ParticleWorkload::ParticleNest& ParticleWorkload::nest_at(int id) {
  const auto it = nests_.find(id);
  ST_CHECK_MSG(it != nests_.end(), "particle workload has no nest " << id);
  return it->second;
}

void ParticleWorkload::move_nest(int id, const Rect& old_rect,
                                 const Rect& new_rect,
                                 const WorkloadEnv& env) {
  ParticleNest& nest = nest_at(id);
  const BlockDecomposition old_d(nest.spec.shape, old_rect, env.grid_px);
  const BlockDecomposition new_d(nest.spec.shape, new_rect, env.grid_px);

  // Every particle whose owning rank changes under the new rectangle is
  // shipped (id + position) from old owner to new owner, grouped into one
  // message per (sender, receiver) pair — the redistributor executes the
  // phase under the fault hook exactly as it does for field blocks.
  std::map<std::pair<int, int>, std::vector<std::size_t>> moved;
  for (std::size_t i = 0; i < nest.particles.size(); ++i) {
    const Particle& p = nest.particles[i];
    const int cx = cell_of(p.x, nest.spec.shape.nx);
    const int cy = cell_of(p.y, nest.spec.shape.ny);
    const int from = old_d.owner_rank(cx, cy);
    const int to = new_d.owner_rank(cx, cy);
    if (from != to) moved[{from, to}].push_back(i);
  }

  std::vector<TypedMessage<double>> msgs;
  msgs.reserve(moved.size());
  std::int64_t sent = 0;
  for (const auto& [pair, idxs] : moved) {
    TypedMessage<double> m;
    m.src = pair.first;
    m.dst = pair.second;
    m.payload.reserve(idxs.size() * 3 + 2);
    m.payload.push_back(static_cast<double>(idxs.size()));
    for (const std::size_t i : idxs) {
      const Particle& p = nest.particles[i];
      m.payload.push_back(std::bit_cast<double>(p.id));
      m.payload.push_back(p.x);
      m.payload.push_back(p.y);
    }
    m.payload.push_back(payload_checksum(
        std::span<const double>(m.payload).subspan(1)));
    sent += static_cast<std::int64_t>(idxs.size());
    msgs.push_back(std::move(m));
  }

  if (!msgs.empty()) {
    const ExchangeResult<double> ex =
        env.redistributor->exchange(std::move(msgs));
    apply_delivered(nest, ex, sent, "realloc move");
    if (env.data_movement != nullptr) *env.data_movement += ex.traffic;
  }
  if (env.metrics != nullptr)
    env.metrics->add_count("workload.particles_moved_on_realloc", sent);
}

void ParticleWorkload::reinit_nest(int id, const WorkloadEnv& env) {
  (void)env;
  seed(nest_at(id));
}

TrafficReport ParticleWorkload::integrate(int id, const Rect& proc_rect,
                                          int steps,
                                          const WorkloadEnv& env) {
  ParticleNest& nest = nest_at(id);
  const BlockDecomposition decomp(nest.spec.shape, proc_rect, env.grid_px);
  const std::size_t n = nest.particles.size();
  TrafficReport traffic;

  // Current owner of every particle, plus the rank it last came from (for
  // the ping-pong counter: a handoff straight back to that rank).
  std::vector<int> owner(n);
  std::vector<int> came_from(n, -1);
  for (std::size_t i = 0; i < n; ++i)
    owner[i] = decomp.owner_rank(cell_of(nest.particles[i].x,
                                         nest.spec.shape.nx),
                                 cell_of(nest.particles[i].y,
                                         nest.spec.shape.ny));

  // Participation: how many of the rectangle's ranks own any particle.
  if (env.metrics != nullptr) {
    std::vector<int> active(owner);
    std::sort(active.begin(), active.end());
    active.erase(std::unique(active.begin(), active.end()), active.end());
    env.metrics->add_count("workload.active_ranks",
                           static_cast<std::int64_t>(active.size()));
    env.metrics->add_count("workload.rank_slots", proc_rect.area());
  }

  std::vector<Particle> next(n);
  for (int s = 0; s < steps; ++s) {
    // Advect every particle (pure per-particle function — parallel sweep
    // writes into slots, byte-identical for any thread count).
    const auto body = [&](std::size_t i) {
      next[i] = advect(*env.weather, params_, nest.spec, nest.particles[i]);
    };
    if (env.executor != nullptr) {
      env.executor->parallel_for(n, body);
    } else {
      for (std::size_t i = 0; i < n; ++i) body(i);
    }
    if (env.metrics != nullptr)
      env.metrics->add_count("workload.advected_particle_steps",
                             static_cast<std::int64_t>(n));

    // Serial accounting pass: detect ownership changes, group handoff
    // payloads per (sender, receiver) pair.
    std::map<std::pair<int, int>, std::vector<std::size_t>> moved;
    std::int64_t handoffs = 0;
    std::int64_t ping_pong = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const int to = decomp.owner_rank(cell_of(next[i].x, nest.spec.shape.nx),
                                       cell_of(next[i].y,
                                               nest.spec.shape.ny));
      nest.particles[i] = next[i];
      if (to == owner[i]) continue;
      ++handoffs;
      if (to == came_from[i]) ++ping_pong;
      came_from[i] = owner[i];
      moved[{owner[i], to}].push_back(i);
      owner[i] = to;
    }
    if (env.metrics != nullptr) {
      env.metrics->add_count("workload.handoffs", handoffs);
      env.metrics->add_count("workload.ping_pong_particles", ping_pong);
    }
    if (moved.empty()) continue;

    std::vector<TypedMessage<double>> msgs;
    msgs.reserve(moved.size());
    std::int64_t sent = 0;
    for (const auto& [pair, idxs] : moved) {
      TypedMessage<double> m;
      m.src = pair.first;
      m.dst = pair.second;
      m.payload.reserve(idxs.size() * 3 + 2);
      m.payload.push_back(static_cast<double>(idxs.size()));
      for (const std::size_t i : idxs) {
        const Particle& p = nest.particles[i];
        m.payload.push_back(std::bit_cast<double>(p.id));
        m.payload.push_back(p.x);
        m.payload.push_back(p.y);
      }
      m.payload.push_back(payload_checksum(
          std::span<const double>(m.payload).subspan(1)));
      sent += static_cast<std::int64_t>(idxs.size());
      msgs.push_back(std::move(m));
    }
    const ExchangeResult<double> ex =
        env.redistributor->exchange(std::move(msgs));
    apply_delivered(nest, ex, sent, "sub-step handoff");
    traffic += ex.traffic;
  }
  return traffic;
}

void ParticleWorkload::apply_delivered(ParticleNest& nest,
                                       const ExchangeResult<double>& ex,
                                       std::int64_t sent,
                                       const char* phase) const {
  std::int64_t delivered = 0;
  for (const TypedMessage<double>& m : ex.messages) {
    ST_CHECK_MSG(m.payload.size() >= 2,
                 "particle " << phase << " payload from rank " << m.src
                             << " is truncated");
    const auto count = static_cast<std::int64_t>(m.payload[0]);
    ST_CHECK_MSG(count >= 0 &&
                     m.payload.size() ==
                         static_cast<std::size_t>(count) * 3 + 2,
                 "particle " << phase << " payload from rank " << m.src
                             << " has malformed framing");
    const std::span<const double> data =
        std::span<const double>(m.payload).subspan(
            1, static_cast<std::size_t>(count) * 3);
    // Compare bit patterns, not values: an FNV hash can land on a NaN
    // pattern, where double == is always false.
    ST_CHECK_MSG(std::bit_cast<std::uint64_t>(payload_checksum(data)) ==
                     std::bit_cast<std::uint64_t>(m.payload.back()),
                 "particle " << phase << " payload from rank " << m.src
                             << " to rank " << m.dst
                             << " failed its integrity checksum");
    for (std::int64_t k = 0; k < count; ++k) {
      const auto id = std::bit_cast<std::int64_t>(data[k * 3]);
      const auto it = std::lower_bound(
          nest.particles.begin(), nest.particles.end(), id,
          [](const Particle& p, std::int64_t i) { return p.id < i; });
      ST_CHECK_MSG(it != nest.particles.end() && it->id == id,
                   "particle " << phase << " delivered unknown particle "
                               << id);
      it->x = data[k * 3 + 1];
      it->y = data[k * 3 + 2];
    }
    delivered += count;
  }
  ST_CHECK_MSG(delivered == sent,
               "particle " << phase << " lost particles in flight: sent "
                           << sent << ", delivered " << delivered);
}

const NestSpec& ParticleWorkload::nest_spec(int id) const {
  const auto it = nests_.find(id);
  ST_CHECK_MSG(it != nests_.end(), "particle workload has no nest " << id);
  return it->second.spec;
}

std::vector<int> ParticleWorkload::nest_ids() const {
  std::vector<int> ids;
  ids.reserve(nests_.size());
  for (const auto& [id, nest] : nests_) ids.push_back(id);
  return ids;
}

const std::vector<Particle>& ParticleWorkload::particles(int id) const {
  const auto it = nests_.find(id);
  ST_CHECK_MSG(it != nests_.end(), "particle workload has no nest " << id);
  return it->second.particles;
}

std::int64_t ParticleWorkload::total_particles() const {
  std::int64_t total = 0;
  for (const auto& [id, nest] : nests_)
    total += static_cast<std::int64_t>(nest.particles.size());
  return total;
}

void ParticleWorkload::add_state_fingerprint(Fingerprint& fp) const {
  fp.add(static_cast<std::int64_t>(nests_.size()));
  for (const auto& [id, nest] : nests_) {
    fp.add(id);
    add_fingerprint(fp, nest.spec.region);
    fp.add(nest.spec.shape.nx);
    fp.add(nest.spec.shape.ny);
    fp.add(static_cast<std::int64_t>(nest.particles.size()));
    for (const Particle& p : nest.particles) {
      fp.add(p.id);
      fp.add(p.x);
      fp.add(p.y);
    }
  }
}

std::vector<std::byte> ParticleWorkload::export_state() const {
  BinaryWriter w;
  w.put_count(nests_.size());
  for (const auto& [id, nest] : nests_) {
    w.put_i32(nest.spec.id);
    w.put_i32(nest.spec.region.x);
    w.put_i32(nest.spec.region.y);
    w.put_i32(nest.spec.region.w);
    w.put_i32(nest.spec.region.h);
    w.put_i32(nest.spec.shape.nx);
    w.put_i32(nest.spec.shape.ny);
    w.put_count(nest.particles.size());
    for (const Particle& p : nest.particles) {
      w.put_i64(p.id);
      w.put_f64(p.x);
      w.put_f64(p.y);
    }
  }
  return w.take();
}

void ParticleWorkload::import_state(std::span<const std::byte> blob) {
  BinaryReader r(blob);
  const std::size_t num_nests = r.get_count("particle workload nests");
  std::map<int, ParticleNest> nests;
  for (std::size_t i = 0; i < num_nests; ++i) {
    ParticleNest nest;
    nest.spec.id = r.get_i32("nest id");
    nest.spec.region.x = r.get_i32("nest region x");
    nest.spec.region.y = r.get_i32("nest region y");
    nest.spec.region.w = r.get_i32("nest region w");
    nest.spec.region.h = r.get_i32("nest region h");
    nest.spec.shape.nx = r.get_i32("nest shape nx");
    nest.spec.shape.ny = r.get_i32("nest shape ny");
    ST_CHECK_MSG(nest.spec.shape.nx > 0 && nest.spec.shape.ny > 0,
                 "nest " << nest.spec.id << " has non-positive shape "
                         << nest.spec.shape.nx << "x" << nest.spec.shape.ny);
    const std::size_t count = r.get_count("nest particle count");
    nest.particles.reserve(count);
    std::int64_t prev_id = -1;
    for (std::size_t k = 0; k < count; ++k) {
      Particle p;
      p.id = r.get_i64("particle id");
      p.x = r.get_f64("particle x");
      p.y = r.get_f64("particle y");
      ST_CHECK_MSG(p.id > prev_id, "particle ids not strictly ascending at "
                                       << p.id);
      ST_CHECK_MSG(p.x >= 0.0 && p.x < nest.spec.shape.nx && p.y >= 0.0 &&
                       p.y < nest.spec.shape.ny,
                   "particle " << p.id << " outside nest " << nest.spec.id
                               << " at (" << p.x << ", " << p.y << ")");
      prev_id = p.id;
      nest.particles.push_back(p);
    }
    const int id = nest.spec.id;
    ST_CHECK_MSG(nests.emplace(id, std::move(nest)).second,
                 "particle workload state repeats live nest id " << id);
  }
  ST_CHECK_MSG(r.exhausted(), "particle workload state has trailing bytes");
  nests_ = std::move(nests);
}

}  // namespace stormtrack
