#include "wsim/workload.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"
#include "wsim/particles.hpp"
#include "wsim/workload_field.hpp"

namespace stormtrack {

WorkloadRegistry& WorkloadRegistry::global() {
  static WorkloadRegistry registry = [] {
    WorkloadRegistry r;
    r.register_workload("field", [](const WorkloadParams& p) {
      return std::make_unique<FieldWorkload>(p.dynamics);
    });
    r.register_workload("particles", [](const WorkloadParams& p) {
      return std::make_unique<ParticleWorkload>(p.particles);
    });
    return r;
  }();
  return registry;
}

void WorkloadRegistry::register_workload(std::string name, Factory factory) {
  ST_CHECK_MSG(!name.empty(), "workload name must not be empty");
  ST_CHECK_MSG(factory != nullptr, "workload '" << name
                                                << "' needs a factory");
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const auto& e, const std::string& n) { return e.first < n; });
  ST_CHECK_MSG(it == entries_.end() || it->first != name,
               "workload '" << name << "' registered twice");
  entries_.emplace(it, std::move(name), std::move(factory));
}

bool WorkloadRegistry::contains(const std::string& name) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [&](const auto& e) { return e.first == name; });
}

std::vector<std::string> WorkloadRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, factory] : entries_) out.push_back(name);
  return out;
}

std::unique_ptr<INestWorkload> WorkloadRegistry::create(
    const std::string& name, const WorkloadParams& params) const {
  for (const auto& [n, factory] : entries_)
    if (n == name) return factory(params);
  std::string known;
  for (const auto& [n, factory] : entries_) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  ST_CHECK_MSG(false, "unknown workload '" << name << "' (registered: "
                                           << known << ")");
}

}  // namespace stormtrack
