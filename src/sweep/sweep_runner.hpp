#pragma once

/// \file sweep_runner.hpp
/// Parallel {trace × machine × strategy} experiment grids.
///
/// Every bench binary used to hand-roll the same serial triple loop over
/// traces, machines and strategies. A SweepRunner names each axis point,
/// expands the cross product in a fixed strategy-major-last order
/// (trace, then machine, then strategy), and runs the cases as one batch
/// on an Executor (src/exec) — it owns no threads of its own. Results land
/// in a preallocated slot per case, so the output order — and, because
/// every simulated component is deterministic and shared state is
/// read-only — the output *values* are byte-identical to a serial run
/// regardless of thread count or scheduling.
///
/// The executor is also handed to every case's AdaptationPipeline (unless
/// the spec's config already names one), so candidate evaluation inside a
/// case nests its batches on the same shared pool.
///
/// Machines are constructed once, up front, on the calling thread; workers
/// only ever call const members of Machine / ExecTimeModel /
/// GroundTruthCost, which carry no hidden mutable state.

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "exec/executor.hpp"

namespace stormtrack {

class FaultPlan;

/// Supervision knobs for SweepRunner::run_supervised. Defaults mean "no
/// supervision": no deadline, one attempt, no journal.
struct SweepSupervision {
  /// Wall-clock budget per case attempt; 0 = unlimited. Enforced
  /// cooperatively: the pipeline polls a CancelToken at every adaptation
  /// point, so an attempt stops at the next point after the deadline.
  double case_deadline_seconds = 0.0;
  /// Total attempts per case before it is quarantined (>= 1).
  int max_attempts = 1;
  /// Base of the exponential backoff slept between attempts: retry k
  /// (1-based) waits backoff_seconds * 2^(k-1).
  double backoff_seconds = 0.01;
  /// Append-only completion journal; empty = no journal. See
  /// sweep_journal.hpp for the format.
  std::filesystem::path journal;
  /// Replay an existing journal and re-run only unfinished cases. Requires
  /// \ref journal to be set.
  bool resume = false;
};

/// Named trace axis point.
struct SweepTrace {
  std::string name;
  Trace trace;
};

/// Named coupled-scenario axis point: the alternative first axis to
/// traces. A scenario case runs a full CoupledSimulation (weather + PDA +
/// reallocation + SweepSpec::workload payload) for scenario.num_intervals
/// intervals instead of replaying a pre-built Trace; its TraceRunResult
/// carries the per-interval realloc outcomes, the simulation's merged
/// metrics (including workload.* counters), and the final state
/// fingerprint, so journaling / supervision / reporting work unchanged.
struct SweepScenario {
  std::string name;
  RealScenarioConfig scenario;
};

/// Named machine axis point; the factory defers (potentially expensive)
/// topology construction until the sweep actually runs.
struct SweepMachine {
  std::string name;
  std::function<Machine()> factory;
};

/// Shorthand axis points for the paper's two platforms.
[[nodiscard]] SweepMachine sweep_bluegene(int cores);
[[nodiscard]] SweepMachine sweep_fist_cluster(int cores);

/// One experiment grid. The first axis is either \ref traces (bare
/// pipeline replays) or \ref scenarios (full coupled runs) — never both.
struct SweepSpec {
  std::vector<SweepTrace> traces;
  /// Coupled-run axis, mutually exclusive with \ref traces.
  std::vector<SweepScenario> scenarios;
  /// Nest payload for scenario cases (WorkloadRegistry name); ignored for
  /// trace cases.
  std::string workload = "field";
  std::vector<SweepMachine> machines;
  std::vector<std::string> strategies;  ///< StrategyRegistry names.
  /// Shared pipeline tunables; the strategy field is overridden per case.
  ManagerConfig config;
  /// Worker threads for the runner-owned pool; 0 = default_thread_count()
  /// (hardware concurrency, or the STORMTRACK_THREADS env override), 1 =
  /// serial in-thread execution (no pool). Ignored when \ref executor is
  /// set.
  int threads = 0;
  /// Run on this shared executor instead of a runner-owned pool (must
  /// outlive the run). Null = owned pool per \ref threads.
  Executor* executor = nullptr;
  /// When set, every case runs under fault injection: each grid cell gets
  /// its OWN FaultInjector built from this plan (the injector carries
  /// per-point attempt state, so sharing one across concurrent cases would
  /// make firing order scheduling-dependent). Mutually exclusive with
  /// config.injector. Must outlive the run.
  const FaultPlan* fault_plan = nullptr;
  /// Deadlines, retries, and the completion journal for run_supervised
  /// (ignored by plain run()).
  SweepSupervision supervision;

  /// Size of whichever first axis is populated.
  [[nodiscard]] std::size_t num_first_axis() const {
    return traces.empty() ? scenarios.size() : traces.size();
  }
  [[nodiscard]] std::size_t num_cases() const {
    return num_first_axis() * machines.size() * strategies.size();
  }
};

/// How a supervised case ended up in the report.
enum class SweepCaseStatus {
  kOk = 0,           ///< Completed (possibly after retries, or replayed).
  kQuarantined = 1,  ///< Every attempt failed; \ref SweepCaseResult::error
                     ///< holds the last failure. The sweep continues.
};

[[nodiscard]] const char* to_string(SweepCaseStatus status);

/// One grid cell's run, tagged with its axis coordinates. For scenario
/// sweeps, trace_index / trace_name carry the scenario axis (the journal
/// format and reporting shape are shared between the two first axes).
struct SweepCaseResult {
  std::size_t trace_index = 0;
  std::size_t machine_index = 0;
  std::size_t strategy_index = 0;
  std::string trace_name;
  std::string machine_name;
  std::string machine_label;  ///< Machine::label() of the built machine.
  std::string strategy;
  SweepCaseStatus status = SweepCaseStatus::kOk;
  int attempts = 1;           ///< Attempts consumed (run(): always 1).
  bool from_journal = false;  ///< Replayed, not re-executed, this run.
  std::string error;          ///< Last failure message when quarantined.
  TraceRunResult result;      ///< Default-constructed when quarantined.
};

/// Output of run_supervised: the per-case results plus `supervisor.*`
/// counters (attempts, retries, deadline hits, quarantines, journal
/// replays/appends/torn records).
struct SweepRunReport {
  std::vector<SweepCaseResult> results;
  MetricsRegistry supervisor;
};

/// See file comment. The referenced models must outlive the runner.
class SweepRunner {
 public:
  SweepRunner(const ExecTimeModel& model, const GroundTruthCost& truth);
  explicit SweepRunner(const ModelStack& models)
      : SweepRunner(models.model, models.truth) {}

  /// Run the full grid; results are ordered trace-major, then machine,
  /// then strategy (spec order), independent of thread interleaving.
  /// The lowest-indexed failing case's exception propagates to the caller
  /// after the batch drains (Executor contract).
  [[nodiscard]] std::vector<SweepCaseResult> run(const SweepSpec& spec) const;

  /// run(), but the sweep survives individual cases dying. Each case runs
  /// under spec.supervision: a per-attempt wall-clock deadline (enforced via
  /// a CancelToken polled at adaptation points), bounded retries with
  /// exponential backoff and a fresh fault injector per attempt, and
  /// quarantine — a case whose attempts are all exhausted is reported with
  /// SweepCaseStatus::kQuarantined instead of aborting the batch. With a
  /// journal configured, every completed case is durably appended as it
  /// finishes, and supervision.resume replays finished cases instead of
  /// re-running them (their results are byte-identical to the original
  /// run's). Calls validate_sweep_spec first.
  [[nodiscard]] SweepRunReport run_supervised(const SweepSpec& spec) const;

 private:
  const ExecTimeModel* model_;
  const GroundTruthCost* truth_;
};

/// Every problem with \p spec, one human-readable message per field; empty
/// when the spec is valid. Checked: empty axes, traces vs scenarios
/// exclusivity, unknown workload names, duplicate axis-point names,
/// unknown strategies, null machine factories, negative thread counts,
/// fault_plan vs config.injector exclusivity, config.cancel set under
/// supervision (the supervisor owns the token), negative deadlines /
/// backoff, max_attempts < 1, and resume without a journal.
[[nodiscard]] std::vector<std::string> sweep_spec_problems(
    const SweepSpec& spec);

/// Throws CheckError listing every problem reported by
/// sweep_spec_problems; no-op on a valid spec.
void validate_sweep_spec(const SweepSpec& spec);

/// Fingerprint binding a journal to the grid it indexes: axis-point names,
/// full trace contents, strategy list, the result-affecting ManagerConfig
/// fields, and the fault plan. Execution knobs (threads, executor,
/// supervision) are excluded — changing them must not orphan a journal.
[[nodiscard]] std::uint64_t sweep_spec_fingerprint(const SweepSpec& spec);

/// The result for (\p trace, \p machine, \p strategy) by axis-point name;
/// throws CheckError when absent.
[[nodiscard]] const SweepCaseResult& find_case(
    const std::vector<SweepCaseResult>& results, std::string_view trace,
    std::string_view machine, std::string_view strategy);

/// Merge of every case's pipeline metrics (per-stage wall times, counters).
[[nodiscard]] MetricsRegistry merged_metrics(
    const std::vector<SweepCaseResult>& results);

}  // namespace stormtrack
