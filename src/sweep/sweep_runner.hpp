#pragma once

/// \file sweep_runner.hpp
/// Parallel {trace × machine × strategy} experiment grids.
///
/// Every bench binary used to hand-roll the same serial triple loop over
/// traces, machines and strategies. A SweepRunner names each axis point,
/// expands the cross product in a fixed strategy-major-last order
/// (trace, then machine, then strategy), and runs the cases as one batch
/// on an Executor (src/exec) — it owns no threads of its own. Results land
/// in a preallocated slot per case, so the output order — and, because
/// every simulated component is deterministic and shared state is
/// read-only — the output *values* are byte-identical to a serial run
/// regardless of thread count or scheduling.
///
/// The executor is also handed to every case's AdaptationPipeline (unless
/// the spec's config already names one), so candidate evaluation inside a
/// case nests its batches on the same shared pool.
///
/// Machines are constructed once, up front, on the calling thread; workers
/// only ever call const members of Machine / ExecTimeModel /
/// GroundTruthCost, which carry no hidden mutable state.

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "exec/executor.hpp"

namespace stormtrack {

class FaultPlan;

/// Named trace axis point.
struct SweepTrace {
  std::string name;
  Trace trace;
};

/// Named machine axis point; the factory defers (potentially expensive)
/// topology construction until the sweep actually runs.
struct SweepMachine {
  std::string name;
  std::function<Machine()> factory;
};

/// Shorthand axis points for the paper's two platforms.
[[nodiscard]] SweepMachine sweep_bluegene(int cores);
[[nodiscard]] SweepMachine sweep_fist_cluster(int cores);

/// One experiment grid.
struct SweepSpec {
  std::vector<SweepTrace> traces;
  std::vector<SweepMachine> machines;
  std::vector<std::string> strategies;  ///< StrategyRegistry names.
  /// Shared pipeline tunables; the strategy field is overridden per case.
  ManagerConfig config;
  /// Worker threads for the runner-owned pool; 0 = default_thread_count()
  /// (hardware concurrency, or the STORMTRACK_THREADS env override), 1 =
  /// serial in-thread execution (no pool). Ignored when \ref executor is
  /// set.
  int threads = 0;
  /// Run on this shared executor instead of a runner-owned pool (must
  /// outlive the run). Null = owned pool per \ref threads.
  Executor* executor = nullptr;
  /// When set, every case runs under fault injection: each grid cell gets
  /// its OWN FaultInjector built from this plan (the injector carries
  /// per-point attempt state, so sharing one across concurrent cases would
  /// make firing order scheduling-dependent). Mutually exclusive with
  /// config.injector. Must outlive the run.
  const FaultPlan* fault_plan = nullptr;

  [[nodiscard]] std::size_t num_cases() const {
    return traces.size() * machines.size() * strategies.size();
  }
};

/// One grid cell's run, tagged with its axis coordinates.
struct SweepCaseResult {
  std::size_t trace_index = 0;
  std::size_t machine_index = 0;
  std::size_t strategy_index = 0;
  std::string trace_name;
  std::string machine_name;
  std::string machine_label;  ///< Machine::label() of the built machine.
  std::string strategy;
  TraceRunResult result;
};

/// See file comment. The referenced models must outlive the runner.
class SweepRunner {
 public:
  SweepRunner(const ExecTimeModel& model, const GroundTruthCost& truth);
  explicit SweepRunner(const ModelStack& models)
      : SweepRunner(models.model, models.truth) {}

  /// Run the full grid; results are ordered trace-major, then machine,
  /// then strategy (spec order), independent of thread interleaving.
  /// The lowest-indexed failing case's exception propagates to the caller
  /// after the batch drains (Executor contract).
  [[nodiscard]] std::vector<SweepCaseResult> run(const SweepSpec& spec) const;

 private:
  const ExecTimeModel* model_;
  const GroundTruthCost* truth_;
};

/// The result for (\p trace, \p machine, \p strategy) by axis-point name;
/// throws CheckError when absent.
[[nodiscard]] const SweepCaseResult& find_case(
    const std::vector<SweepCaseResult>& results, std::string_view trace,
    std::string_view machine, std::string_view strategy);

/// Merge of every case's pipeline metrics (per-stage wall times, counters).
[[nodiscard]] MetricsRegistry merged_metrics(
    const std::vector<SweepCaseResult>& results);

}  // namespace stormtrack
