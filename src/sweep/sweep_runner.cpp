#include "sweep/sweep_runner.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "core/coupled.hpp"
#include "exec/cancel.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "sweep/sweep_journal.hpp"
#include "util/check.hpp"
#include "fault/snapshot.hpp"
#include "util/fnv.hpp"

namespace stormtrack {

namespace {

/// Build every machine up front on the calling thread; workers only touch
/// them through const members.
std::vector<Machine> build_machines(const SweepSpec& spec) {
  std::vector<Machine> machines;
  machines.reserve(spec.machines.size());
  for (const SweepMachine& m : spec.machines) machines.push_back(m.factory());
  return machines;
}

/// Fill every case slot's axis coordinates and names (first axis major,
/// then machine, then strategy — the fixed order both runners report in).
std::vector<SweepCaseResult> prefill_cases(const SweepSpec& spec,
                                           const std::vector<Machine>& machines) {
  const std::size_t n = spec.num_cases();
  std::vector<SweepCaseResult> results(n);
  const std::size_t per_first = spec.machines.size() * spec.strategies.size();
  for (std::size_t i = 0; i < n; ++i) {
    SweepCaseResult& r = results[i];
    r.trace_index = i / per_first;
    r.machine_index = (i / spec.strategies.size()) % spec.machines.size();
    r.strategy_index = i % spec.strategies.size();
    r.trace_name = spec.traces.empty()
                       ? spec.scenarios[r.trace_index].name
                       : spec.traces[r.trace_index].name;
    r.machine_name = spec.machines[r.machine_index].name;
    r.machine_label = machines[r.machine_index].label();
    r.strategy = spec.strategies[r.strategy_index];
  }
  return results;
}

/// One scenario case: a full coupled run, folded into the TraceRunResult
/// shape the journal and reporting layers already understand.
TraceRunResult run_scenario_case(const Machine& machine,
                                 const ExecTimeModel& model,
                                 const GroundTruthCost& truth,
                                 const std::string& strategy,
                                 const RealScenarioConfig& scenario,
                                 const std::string& workload,
                                 const ManagerConfig& manager) {
  CoupledConfig cfg;
  cfg.scenario = scenario;
  cfg.manager = manager;
  cfg.manager.strategy = strategy;
  cfg.workload = workload;
  cfg.executor = manager.executor;
  CoupledSimulation sim(machine, model, truth, cfg);
  TraceRunResult result;
  result.outcomes.reserve(
      static_cast<std::size_t>(std::max(scenario.num_intervals, 0)));
  for (int i = 0; i < scenario.num_intervals; ++i)
    result.outcomes.push_back(sim.advance().realloc);
  result.metrics = sim.metrics();
  result.final_state_fingerprint = sim.state_fingerprint();
  return result;
}

/// Dispatch a case to its first axis: trace replay or coupled scenario.
TraceRunResult run_case(const SweepSpec& spec,
                        const std::vector<Machine>& machines,
                        const ExecTimeModel& model,
                        const GroundTruthCost& truth,
                        const SweepCaseResult& r,
                        const ManagerConfig& config) {
  if (spec.traces.empty())
    return run_scenario_case(machines[r.machine_index], model, truth,
                             r.strategy,
                             spec.scenarios[r.trace_index].scenario,
                             spec.workload, config);
  return run_trace(machines[r.machine_index], model, truth, r.strategy,
                   spec.traces[r.trace_index].trace, config);
}

/// Resolve the executor for \p spec: the caller-shared one, or a pool owned
/// for the duration of the run (threads = 1 stays fully serial, no pool).
Executor* resolve_spec_executor(const SweepSpec& spec, std::size_t n,
                                std::unique_ptr<ThreadPoolExecutor>& owned) {
  Executor* exec = spec.executor;
  if (exec == nullptr && spec.threads != 1 && n > 1) {
    const int want = spec.threads == 0 ? default_thread_count() : spec.threads;
    const int pool_size =
        std::min(want, static_cast<int>(std::min<std::size_t>(
                           n, std::numeric_limits<int>::max())));
    if (pool_size > 1) {
      owned = std::make_unique<ThreadPoolExecutor>(pool_size);
      exec = owned.get();
    }
  }
  return exec;
}

void check_duplicates(const std::vector<std::string>& names,
                      const char* axis, std::vector<std::string>& problems) {
  std::unordered_set<std::string_view> seen;
  for (const std::string& name : names)
    if (!seen.insert(name).second)
      problems.push_back(std::string("duplicate ") + axis + " name '" + name +
                         "'");
}

}  // namespace

SweepMachine sweep_bluegene(int cores) {
  return {"bluegene-" + std::to_string(cores),
          [cores] { return Machine::bluegene(cores); }};
}

SweepMachine sweep_fist_cluster(int cores) {
  return {"fist-" + std::to_string(cores),
          [cores] { return Machine::fist_cluster(cores); }};
}

SweepRunner::SweepRunner(const ExecTimeModel& model,
                         const GroundTruthCost& truth)
    : model_(&model), truth_(&truth) {}

std::vector<SweepCaseResult> SweepRunner::run(const SweepSpec& spec) const {
  ST_CHECK_MSG(spec.threads >= 0,
               "thread count must be >= 0, got " << spec.threads);
  ST_CHECK_MSG(spec.traces.empty() || spec.scenarios.empty(),
               "set either SweepSpec::traces or SweepSpec::scenarios, "
               "not both");
  ST_CHECK_MSG(spec.scenarios.empty() ||
                   WorkloadRegistry::global().contains(spec.workload),
               "unknown workload '" << spec.workload << "' in sweep spec");
  for (const std::string& s : spec.strategies)
    ST_CHECK_MSG(StrategyRegistry::global().contains(s),
                 "unknown strategy '" << s << "' in sweep spec");
  for (const SweepMachine& m : spec.machines)
    ST_CHECK_MSG(m.factory != nullptr,
                 "machine '" << m.name << "' has no factory");

  // Machines are built once on this thread and shared read-only by workers.
  const std::vector<Machine> machines = build_machines(spec);
  const std::size_t n = spec.num_cases();
  std::vector<SweepCaseResult> results = prefill_cases(spec, machines);
  std::unique_ptr<ThreadPoolExecutor> owned;
  Executor* exec = resolve_spec_executor(spec, n, owned);

  // A fault plan gives every case a private injector (per-point attempt
  // state must not be shared across concurrently running cases).
  ST_CHECK_MSG(spec.fault_plan == nullptr || spec.config.injector == nullptr,
               "set either SweepSpec::fault_plan or config.injector, not both");
  std::vector<std::unique_ptr<FaultInjector>> injectors;
  if (spec.fault_plan != nullptr) {
    injectors.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      injectors.push_back(std::make_unique<FaultInjector>(*spec.fault_plan));
  }

  // One batch over the grid: each case writes into its preallocated slot,
  // so the result vector's order never depends on scheduling. The case's
  // pipeline inherits the same executor (nested batches are safe) unless
  // the spec's config already names one.
  ManagerConfig case_config = spec.config;
  if (case_config.executor == nullptr) case_config.executor = exec;
  resolve_executor(exec).parallel_for(n, [&](std::size_t i) {
    SweepCaseResult& r = results[i];
    ManagerConfig config = case_config;
    if (!injectors.empty()) config.injector = injectors[i].get();
    r.result = run_case(spec, machines, *model_, *truth_, r, config);
  });
  return results;
}

SweepRunReport SweepRunner::run_supervised(const SweepSpec& spec) const {
  validate_sweep_spec(spec);
  const SweepSupervision& sup = spec.supervision;

  const std::vector<Machine> machines = build_machines(spec);
  const std::size_t n = spec.num_cases();
  std::vector<SweepCaseResult> results = prefill_cases(spec, machines);
  std::unique_ptr<ThreadPoolExecutor> owned;
  Executor* exec = resolve_spec_executor(spec, n, owned);

  // Replay the journal (if any) before launching anything: finished cases
  // take their recorded result verbatim and are never re-executed.
  std::unique_ptr<SweepJournal> journal;
  std::vector<char> done(n, 0);
  std::size_t replayed = 0;
  if (!sup.journal.empty()) {
    journal = std::make_unique<SweepJournal>(
        sup.journal, sweep_spec_fingerprint(spec), n, sup.resume);
    for (const auto& [index, result] : journal->replayed()) {
      results[index] = result;
      results[index].from_journal = true;
      done[index] = 1;
      ++replayed;
    }
  }

  // Per-case counters live in plain slots and are folded into the (not
  // thread-safe) supervisor registry only after the batch drains.
  struct CaseCounters {
    int attempts = 0;
    int retries = 0;
    int deadline_hits = 0;
    bool quarantined = false;
  };
  std::vector<CaseCounters> counters(n);

  ManagerConfig case_config = spec.config;
  if (case_config.executor == nullptr) case_config.executor = exec;
  resolve_executor(exec).parallel_for(n, [&](std::size_t i) {
    if (done[i] != 0) return;
    SweepCaseResult& r = results[i];
    CaseCounters& c = counters[i];
    std::string last_error;
    CancelToken token;
    for (int attempt = 1; attempt <= sup.max_attempts; ++attempt) {
      c.attempts = attempt;
      // Each attempt gets a fresh deadline, armed before the retry backoff
      // that precedes it: the backoff sleep is cancellable against that
      // deadline, so a deadline shorter than the backoff wakes promptly and
      // quarantines the case once instead of oversleeping the budget (and
      // the attempt the sleep belonged to is charged exactly one deadline
      // hit, never one for the sleep plus one for the doomed attempt).
      token.reset();
      if (sup.case_deadline_seconds > 0.0)
        token.set_deadline_after(sup.case_deadline_seconds);
      if (attempt > 1) {
        ++c.retries;
        const double backoff = std::ldexp(sup.backoff_seconds, attempt - 2);
        if (backoff > 0.0 && !token.wait_for(backoff)) {
          ++c.deadline_hits;
          last_error = "case deadline expired during retry backoff";
          break;
        }
      }
      // Each attempt starts from scratch: a fresh injector (attempt state
      // must not leak across retries).
      std::unique_ptr<FaultInjector> injector;
      ManagerConfig config = case_config;
      if (spec.fault_plan != nullptr) {
        injector = std::make_unique<FaultInjector>(*spec.fault_plan);
        config.injector = injector.get();
      }
      config.cancel = &token;
      try {
        r.result = run_case(spec, machines, *model_, *truth_, r, config);
        r.status = SweepCaseStatus::kOk;
        r.attempts = attempt;
        r.error.clear();
        if (journal != nullptr) journal->append(i, r);
        return;
      } catch (const CancelledError& e) {
        ++c.deadline_hits;
        last_error = e.what();
      } catch (const std::exception& e) {
        last_error = e.what();
      }
    }
    // Quarantine: report the failure in the slot, keep the sweep alive.
    // Deliberately not journaled — a resume re-attempts quarantined cases.
    // attempts reports what was actually consumed: a deadline expiring
    // during a backoff sleep forfeits the remaining attempts.
    r.status = SweepCaseStatus::kQuarantined;
    r.attempts = c.attempts;
    r.error = last_error;
    r.result = TraceRunResult{};
    c.quarantined = true;
  });

  SweepRunReport report;
  report.supervisor.add_count("supervisor.cases",
                              static_cast<std::int64_t>(n));
  report.supervisor.add_count("supervisor.replayed",
                              static_cast<std::int64_t>(replayed));
  for (const CaseCounters& c : counters) {
    report.supervisor.add_count("supervisor.attempts", c.attempts);
    report.supervisor.add_count("supervisor.retries", c.retries);
    report.supervisor.add_count("supervisor.deadline_hits", c.deadline_hits);
    report.supervisor.add_count("supervisor.quarantined",
                                c.quarantined ? 1 : 0);
  }
  if (journal != nullptr) {
    report.supervisor.add_count("supervisor.journal_appends",
                                journal->appends());
    report.supervisor.add_count("supervisor.journal_torn_dropped",
                                journal->torn_records_dropped());
  }
  report.results = std::move(results);
  return report;
}

const char* to_string(SweepCaseStatus status) {
  switch (status) {
    case SweepCaseStatus::kOk:
      return "ok";
    case SweepCaseStatus::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

std::vector<std::string> sweep_spec_problems(const SweepSpec& spec) {
  std::vector<std::string> problems;
  if (spec.traces.empty() && spec.scenarios.empty())
    problems.emplace_back("no traces or scenarios in sweep spec");
  if (!spec.traces.empty() && !spec.scenarios.empty())
    problems.emplace_back("set either traces or scenarios, not both");
  if (!spec.scenarios.empty() &&
      !WorkloadRegistry::global().contains(spec.workload))
    problems.push_back("unknown workload '" + spec.workload + "'");
  if (spec.machines.empty())
    problems.emplace_back("no machines in sweep spec");
  if (spec.strategies.empty())
    problems.emplace_back("no strategies in sweep spec");

  std::vector<std::string> trace_names, scenario_names, machine_names;
  trace_names.reserve(spec.traces.size());
  for (const SweepTrace& t : spec.traces) trace_names.push_back(t.name);
  scenario_names.reserve(spec.scenarios.size());
  for (const SweepScenario& s : spec.scenarios)
    scenario_names.push_back(s.name);
  machine_names.reserve(spec.machines.size());
  for (const SweepMachine& m : spec.machines) machine_names.push_back(m.name);
  check_duplicates(trace_names, "trace", problems);
  check_duplicates(scenario_names, "scenario", problems);
  check_duplicates(machine_names, "machine", problems);
  check_duplicates(spec.strategies, "strategy", problems);

  for (const std::string& s : spec.strategies)
    if (!StrategyRegistry::global().contains(s))
      problems.push_back("unknown strategy '" + s + "'");
  for (const SweepMachine& m : spec.machines)
    if (m.factory == nullptr)
      problems.push_back("machine '" + m.name + "' has no factory");

  if (spec.threads < 0)
    problems.push_back("threads must be >= 0, got " +
                       std::to_string(spec.threads));
  if (spec.fault_plan != nullptr && spec.config.injector != nullptr)
    problems.emplace_back(
        "set either SweepSpec::fault_plan or config.injector, not both");
  if (spec.config.cancel != nullptr)
    problems.emplace_back(
        "config.cancel must be null under supervision — the supervisor owns "
        "each attempt's cancel token");

  const SweepSupervision& sup = spec.supervision;
  if (sup.case_deadline_seconds < 0.0)
    problems.push_back("case_deadline_seconds must be >= 0, got " +
                       std::to_string(sup.case_deadline_seconds));
  if (sup.max_attempts < 1)
    problems.push_back("max_attempts must be >= 1, got " +
                       std::to_string(sup.max_attempts));
  if (sup.backoff_seconds < 0.0)
    problems.push_back("backoff_seconds must be >= 0, got " +
                       std::to_string(sup.backoff_seconds));
  if (sup.resume && sup.journal.empty())
    problems.emplace_back(
        "supervision.resume requires supervision.journal to be set");
  return problems;
}

void validate_sweep_spec(const SweepSpec& spec) {
  const std::vector<std::string> problems = sweep_spec_problems(spec);
  if (problems.empty()) return;
  std::ostringstream msg;
  msg << "invalid sweep spec (" << problems.size() << " problem"
      << (problems.size() == 1 ? "" : "s") << "):";
  for (const std::string& p : problems) msg << "\n  - " << p;
  ST_CHECK_MSG(false, msg.str());
}

std::uint64_t sweep_spec_fingerprint(const SweepSpec& spec) {
  Fingerprint fp;
  fp.add(static_cast<std::int64_t>(spec.traces.size()));
  for (const SweepTrace& t : spec.traces) {
    fp.add(std::string_view(t.name));
    fp.add(static_cast<std::int64_t>(t.trace.size()));
    for (const std::vector<NestSpec>& event : t.trace) {
      fp.add(static_cast<std::int64_t>(event.size()));
      for (const NestSpec& spec_entry : event) {
        fp.add(spec_entry.id);
        add_fingerprint(fp, spec_entry.region);
        fp.add(spec_entry.shape.nx);
        fp.add(spec_entry.shape.ny);
      }
    }
  }
  // Scenario sweeps fold the scenario axis and workload in; pure-trace
  // specs hash exactly as before the scenario axis existed, so established
  // journals stay valid.
  if (!spec.scenarios.empty()) {
    fp.add(std::string_view(spec.workload));
    fp.add(static_cast<std::int64_t>(spec.scenarios.size()));
    for (const SweepScenario& s : spec.scenarios) {
      fp.add(std::string_view(s.name));
      const RealScenarioConfig& sc = s.scenario;
      fp.add(sc.num_intervals);
      fp.add(sc.sim_px);
      fp.add(sc.sim_py);
      fp.add(static_cast<std::uint64_t>(sc.seed));
      fp.add(sc.weather.domain.lon_min);
      fp.add(sc.weather.domain.lon_max);
      fp.add(sc.weather.domain.lat_min);
      fp.add(sc.weather.domain.lat_max);
      fp.add(sc.weather.domain.resolution_km);
      fp.add(sc.weather.spawn_probability);
      fp.add(sc.weather.min_systems);
      fp.add(sc.weather.max_systems);
      fp.add(sc.pda.olr_threshold);
      fp.add(sc.pda.analysis_procs);
    }
  }
  fp.add(static_cast<std::int64_t>(spec.machines.size()));
  for (const SweepMachine& m : spec.machines) fp.add(std::string_view(m.name));
  fp.add(static_cast<std::int64_t>(spec.strategies.size()));
  for (const std::string& s : spec.strategies) fp.add(std::string_view(s));
  fp.add(spec.config.strategy_options.hysteresis_threshold);
  fp.add(spec.config.steps_per_interval);
  fp.add(spec.config.bytes_per_point);
  const FaultPlan* plan = spec.fault_plan;
  if (plan == nullptr && spec.config.injector != nullptr)
    plan = &spec.config.injector->plan();
  if (plan != nullptr) {
    fp.add(static_cast<std::int64_t>(plan->events.size()));
    for (const FaultEvent& e : plan->events) {
      fp.add(static_cast<int>(e.kind));
      fp.add(e.point);
      fp.add(e.rank);
      fp.add(e.peer);
      fp.add(e.index);
      fp.add(e.attempts);
      fp.add(std::string_view(e.site));
    }
  }
  return fp.value();
}

const SweepCaseResult& find_case(const std::vector<SweepCaseResult>& results,
                                 std::string_view trace,
                                 std::string_view machine,
                                 std::string_view strategy) {
  for (const SweepCaseResult& r : results)
    if (r.trace_name == trace && r.machine_name == machine &&
        r.strategy == strategy)
      return r;
  ST_CHECK_MSG(false, "no sweep case (" << trace << ", " << machine << ", "
                                        << strategy << ") in results");
  std::abort();  // unreachable — ST_CHECK_MSG(false, ...) always throws
}

MetricsRegistry merged_metrics(const std::vector<SweepCaseResult>& results) {
  MetricsRegistry merged;
  for (const SweepCaseResult& r : results) merged.merge(r.result.metrics);
  return merged;
}

}  // namespace stormtrack
