#include "sweep/sweep_runner.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <memory>

#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "util/check.hpp"

namespace stormtrack {

SweepMachine sweep_bluegene(int cores) {
  return {"bluegene-" + std::to_string(cores),
          [cores] { return Machine::bluegene(cores); }};
}

SweepMachine sweep_fist_cluster(int cores) {
  return {"fist-" + std::to_string(cores),
          [cores] { return Machine::fist_cluster(cores); }};
}

SweepRunner::SweepRunner(const ExecTimeModel& model,
                         const GroundTruthCost& truth)
    : model_(&model), truth_(&truth) {}

std::vector<SweepCaseResult> SweepRunner::run(const SweepSpec& spec) const {
  ST_CHECK_MSG(spec.threads >= 0,
               "thread count must be >= 0, got " << spec.threads);
  for (const std::string& s : spec.strategies)
    ST_CHECK_MSG(StrategyRegistry::global().contains(s),
                 "unknown strategy '" << s << "' in sweep spec");
  for (const SweepMachine& m : spec.machines)
    ST_CHECK_MSG(m.factory != nullptr,
                 "machine '" << m.name << "' has no factory");

  // Machines are built once on this thread and shared read-only by workers.
  std::vector<Machine> machines;
  machines.reserve(spec.machines.size());
  for (const SweepMachine& m : spec.machines)
    machines.push_back(m.factory());

  const std::size_t n = spec.num_cases();
  std::vector<SweepCaseResult> results(n);
  const std::size_t per_trace = spec.machines.size() * spec.strategies.size();
  for (std::size_t i = 0; i < n; ++i) {
    SweepCaseResult& r = results[i];
    r.trace_index = i / per_trace;
    r.machine_index = (i / spec.strategies.size()) % spec.machines.size();
    r.strategy_index = i % spec.strategies.size();
    r.trace_name = spec.traces[r.trace_index].name;
    r.machine_name = spec.machines[r.machine_index].name;
    r.machine_label = machines[r.machine_index].label();
    r.strategy = spec.strategies[r.strategy_index];
  }

  // Resolve the executor: a caller-shared one, or a pool owned for the
  // duration of this run (threads = 1 stays fully serial, no pool).
  Executor* exec = spec.executor;
  std::unique_ptr<ThreadPoolExecutor> owned;
  if (exec == nullptr && spec.threads != 1 && n > 1) {
    const int want = spec.threads == 0 ? default_thread_count() : spec.threads;
    const int pool_size =
        std::min(want, static_cast<int>(std::min<std::size_t>(
                           n, std::numeric_limits<int>::max())));
    if (pool_size > 1) {
      owned = std::make_unique<ThreadPoolExecutor>(pool_size);
      exec = owned.get();
    }
  }

  // A fault plan gives every case a private injector (per-point attempt
  // state must not be shared across concurrently running cases).
  ST_CHECK_MSG(spec.fault_plan == nullptr || spec.config.injector == nullptr,
               "set either SweepSpec::fault_plan or config.injector, not both");
  std::vector<std::unique_ptr<FaultInjector>> injectors;
  if (spec.fault_plan != nullptr) {
    injectors.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      injectors.push_back(std::make_unique<FaultInjector>(*spec.fault_plan));
  }

  // One batch over the grid: each case writes into its preallocated slot,
  // so the result vector's order never depends on scheduling. The case's
  // pipeline inherits the same executor (nested batches are safe) unless
  // the spec's config already names one.
  ManagerConfig case_config = spec.config;
  if (case_config.executor == nullptr) case_config.executor = exec;
  resolve_executor(exec).parallel_for(n, [&](std::size_t i) {
    SweepCaseResult& r = results[i];
    ManagerConfig config = case_config;
    if (!injectors.empty()) config.injector = injectors[i].get();
    r.result = run_trace(machines[r.machine_index], *model_, *truth_,
                         r.strategy, spec.traces[r.trace_index].trace,
                         config);
  });
  return results;
}

const SweepCaseResult& find_case(const std::vector<SweepCaseResult>& results,
                                 std::string_view trace,
                                 std::string_view machine,
                                 std::string_view strategy) {
  for (const SweepCaseResult& r : results)
    if (r.trace_name == trace && r.machine_name == machine &&
        r.strategy == strategy)
      return r;
  ST_CHECK_MSG(false, "no sweep case (" << trace << ", " << machine << ", "
                                        << strategy << ") in results");
  std::abort();  // unreachable — ST_CHECK_MSG(false, ...) always throws
}

MetricsRegistry merged_metrics(const std::vector<SweepCaseResult>& results) {
  MetricsRegistry merged;
  for (const SweepCaseResult& r : results) merged.merge(r.result.metrics);
  return merged;
}

}  // namespace stormtrack
