#include "sweep/sweep_runner.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <thread>

#include "util/check.hpp"

namespace stormtrack {

SweepMachine sweep_bluegene(int cores) {
  return {"bluegene-" + std::to_string(cores),
          [cores] { return Machine::bluegene(cores); }};
}

SweepMachine sweep_fist_cluster(int cores) {
  return {"fist-" + std::to_string(cores),
          [cores] { return Machine::fist_cluster(cores); }};
}

SweepRunner::SweepRunner(const ExecTimeModel& model,
                         const GroundTruthCost& truth)
    : model_(&model), truth_(&truth) {}

std::vector<SweepCaseResult> SweepRunner::run(const SweepSpec& spec) const {
  ST_CHECK_MSG(spec.threads >= 0,
               "thread count must be >= 0, got " << spec.threads);
  for (const std::string& s : spec.strategies)
    ST_CHECK_MSG(StrategyRegistry::global().contains(s),
                 "unknown strategy '" << s << "' in sweep spec");
  for (const SweepMachine& m : spec.machines)
    ST_CHECK_MSG(m.factory != nullptr,
                 "machine '" << m.name << "' has no factory");

  // Machines are built once on this thread and shared read-only by workers.
  std::vector<Machine> machines;
  machines.reserve(spec.machines.size());
  for (const SweepMachine& m : spec.machines)
    machines.push_back(m.factory());

  const std::size_t n = spec.num_cases();
  std::vector<SweepCaseResult> results(n);
  const std::size_t per_trace = spec.machines.size() * spec.strategies.size();
  for (std::size_t i = 0; i < n; ++i) {
    SweepCaseResult& r = results[i];
    r.trace_index = i / per_trace;
    r.machine_index = (i / spec.strategies.size()) % spec.machines.size();
    r.strategy_index = i % spec.strategies.size();
    r.trace_name = spec.traces[r.trace_index].name;
    r.machine_name = spec.machines[r.machine_index].name;
    r.machine_label = machines[r.machine_index].label();
    r.strategy = spec.strategies[r.strategy_index];
  }

  const auto run_case = [&](SweepCaseResult& r) {
    r.result = run_trace(machines[r.machine_index], *model_, *truth_,
                         r.strategy, spec.traces[r.trace_index].trace,
                         spec.config);
  };

  std::size_t threads = spec.threads == 0
                            ? std::max(1u, std::thread::hardware_concurrency())
                            : static_cast<std::size_t>(spec.threads);
  threads = std::min(threads, n);
  if (threads <= 1) {
    for (SweepCaseResult& r : results) run_case(r);
    return results;
  }

  // Work-stealing by atomic ticket: each worker claims the next unclaimed
  // case index and writes into that case's preallocated slot, so the result
  // vector's order never depends on scheduling.
  std::atomic<std::size_t> next{0};
  std::vector<std::exception_ptr> errors(threads);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t w = 0; w < threads; ++w) {
    pool.emplace_back([&, w] {
      try {
        for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1))
          run_case(results[i]);
      } catch (...) {
        errors[w] = std::current_exception();
        // Drain remaining tickets so sibling workers exit promptly.
        next.store(n);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  for (const std::exception_ptr& e : errors)
    if (e) std::rethrow_exception(e);
  return results;
}

const SweepCaseResult& find_case(const std::vector<SweepCaseResult>& results,
                                 std::string_view trace,
                                 std::string_view machine,
                                 std::string_view strategy) {
  for (const SweepCaseResult& r : results)
    if (r.trace_name == trace && r.machine_name == machine &&
        r.strategy == strategy)
      return r;
  ST_CHECK_MSG(false, "no sweep case (" << trace << ", " << machine << ", "
                                        << strategy << ") in results");
  std::abort();  // unreachable — ST_CHECK_MSG(false, ...) always throws
}

MetricsRegistry merged_metrics(const std::vector<SweepCaseResult>& results) {
  MetricsRegistry merged;
  for (const SweepCaseResult& r : results) merged.merge(r.result.metrics);
  return merged;
}

}  // namespace stormtrack
