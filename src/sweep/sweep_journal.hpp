#pragma once

/// \file sweep_journal.hpp
/// Append-only completion journal for supervised sweeps.
///
/// The supervised runner appends one framed record per *successfully*
/// completed case — quarantined cases are deliberately not journaled, so a
/// later resume re-attempts them. Each record is length-prefixed and
/// CRC-32-guarded, and the file is flushed and fsync'd after every append:
/// killing the process at any instant leaves at most one torn record at the
/// tail, which the next open detects, truncates, and reports — every record
/// before it replays intact.
///
/// The header binds the journal to a sweep-spec fingerprint; opening a
/// journal written by a different spec fails loudly instead of skipping the
/// wrong cases.
///
/// On disk:
///
///     u32 magic "STJL" | u32 version | u64 spec fingerprint
///     repeated: u32 payload size | payload | u32 CRC(payload)

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <map>

#include "ckpt/framed_log.hpp"
#include "sweep/sweep_runner.hpp"

namespace stormtrack {

/// "STJL" when the little-endian u32 is viewed as bytes on disk.
inline constexpr std::uint32_t kJournalMagic = 0x4C4A5453u;
inline constexpr std::uint32_t kJournalVersion = 1;

/// See file comment.
class SweepJournal {
 public:
  /// Open \p path for appending. With \p resume set, an existing journal is
  /// validated (magic, version, spec fingerprint), replayed into
  /// replayed(), and any torn tail truncated; without it the file is
  /// started fresh. Throws CheckError on a journal written by a different
  /// spec, an unsupported version, or a record naming a case index >=
  /// \p num_cases.
  SweepJournal(std::filesystem::path path, std::uint64_t spec_fingerprint,
               std::size_t num_cases, bool resume);

  SweepJournal(const SweepJournal&) = delete;
  SweepJournal& operator=(const SweepJournal&) = delete;

  /// Completed cases replayed from the existing journal, by case index.
  [[nodiscard]] const std::map<std::size_t, SweepCaseResult>& replayed()
      const {
    return replayed_;
  }

  /// Torn/corrupt records dropped from the tail at open (0 or 1 after a
  /// kill; more only for external corruption).
  [[nodiscard]] int torn_records_dropped() const {
    return log_.torn_records_dropped();
  }

  [[nodiscard]] int appends() const { return log_.appends(); }
  [[nodiscard]] const std::filesystem::path& path() const {
    return log_.path();
  }

  /// Append one completed case; the record is flushed and fsync'd before
  /// returning. Thread-safe (workers append as their cases finish).
  void append(std::size_t case_index, const SweepCaseResult& result);

 private:
  std::map<std::size_t, SweepCaseResult> replayed_;
  FramedLog log_;
};

}  // namespace stormtrack
