#include "sweep/sweep_journal.hpp"

#include <utility>
#include <vector>

#include "util/binary_io.hpp"
#include "ckpt/codec.hpp"
#include "util/check.hpp"

namespace stormtrack {

namespace {

void put_case(BinaryWriter& w, std::size_t case_index,
              const SweepCaseResult& r) {
  w.put_u64(case_index);
  w.put_u64(r.trace_index);
  w.put_u64(r.machine_index);
  w.put_u64(r.strategy_index);
  w.put_string(r.trace_name);
  w.put_string(r.machine_name);
  w.put_string(r.machine_label);
  w.put_string(r.strategy);
  w.put_u8(static_cast<std::uint8_t>(r.status));
  w.put_i32(r.attempts);
  w.put_string(r.error);
  ckptio::put_trace_result(w, r.result);
}

std::pair<std::size_t, SweepCaseResult> get_case(BinaryReader& r) {
  const auto case_index = static_cast<std::size_t>(r.get_u64("case index"));
  SweepCaseResult result;
  result.trace_index = static_cast<std::size_t>(r.get_u64("trace index"));
  result.machine_index =
      static_cast<std::size_t>(r.get_u64("machine index"));
  result.strategy_index =
      static_cast<std::size_t>(r.get_u64("strategy index"));
  result.trace_name = r.get_string("trace name");
  result.machine_name = r.get_string("machine name");
  result.machine_label = r.get_string("machine label");
  result.strategy = r.get_string("strategy name");
  const std::uint8_t status = r.get_u8("case status");
  ST_CHECK_MSG(
      status <= static_cast<std::uint8_t>(SweepCaseStatus::kQuarantined),
      "journal record has unknown case status " << int{status});
  result.status = static_cast<SweepCaseStatus>(status);
  result.attempts = r.get_i32("case attempts");
  result.error = r.get_string("case error");
  result.result = ckptio::get_trace_result(r);
  return {case_index, std::move(result)};
}

}  // namespace

SweepJournal::SweepJournal(std::filesystem::path path,
                           std::uint64_t spec_fingerprint,
                           std::size_t num_cases, bool resume)
    : log_(std::move(path),
           FramedLog::Format{kJournalMagic, kJournalVersion, spec_fingerprint,
                             "sweep journal"},
           resume, [this, num_cases](BinaryReader& rec) {
             auto [index, result] = get_case(rec);
             // A record that decodes cleanly but names a case outside the
             // grid is not a torn tail — it is the wrong journal. Fail
             // loudly.
             ST_CHECK_MSG(index < num_cases,
                          "journal record names case "
                              << index << " but the sweep has only "
                              << num_cases
                              << " cases — journal does not match this spec");
             replayed_[index] = std::move(result);
           }) {}

void SweepJournal::append(std::size_t case_index,
                          const SweepCaseResult& result) {
  BinaryWriter payload;
  put_case(payload, case_index, result);
  log_.append(payload.bytes());
}

}  // namespace stormtrack
