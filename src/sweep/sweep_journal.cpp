#include "sweep/sweep_journal.hpp"

#include <utility>
#include <vector>

#include "util/binary_io.hpp"
#include "ckpt/codec.hpp"
#include "ckpt/crc32.hpp"
#include "util/atomic_file.hpp"
#include "util/check.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define STORMTRACK_JOURNAL_HAVE_FSYNC 1
#endif

namespace stormtrack {

namespace {

void put_case(BinaryWriter& w, std::size_t case_index,
              const SweepCaseResult& r) {
  w.put_u64(case_index);
  w.put_u64(r.trace_index);
  w.put_u64(r.machine_index);
  w.put_u64(r.strategy_index);
  w.put_string(r.trace_name);
  w.put_string(r.machine_name);
  w.put_string(r.machine_label);
  w.put_string(r.strategy);
  w.put_u8(static_cast<std::uint8_t>(r.status));
  w.put_i32(r.attempts);
  w.put_string(r.error);
  ckptio::put_trace_result(w, r.result);
}

std::pair<std::size_t, SweepCaseResult> get_case(BinaryReader& r) {
  const auto case_index = static_cast<std::size_t>(r.get_u64("case index"));
  SweepCaseResult result;
  result.trace_index = static_cast<std::size_t>(r.get_u64("trace index"));
  result.machine_index =
      static_cast<std::size_t>(r.get_u64("machine index"));
  result.strategy_index =
      static_cast<std::size_t>(r.get_u64("strategy index"));
  result.trace_name = r.get_string("trace name");
  result.machine_name = r.get_string("machine name");
  result.machine_label = r.get_string("machine label");
  result.strategy = r.get_string("strategy name");
  const std::uint8_t status = r.get_u8("case status");
  ST_CHECK_MSG(
      status <= static_cast<std::uint8_t>(SweepCaseStatus::kQuarantined),
      "journal record has unknown case status " << int{status});
  result.status = static_cast<SweepCaseStatus>(status);
  result.attempts = r.get_i32("case attempts");
  result.error = r.get_string("case error");
  result.result = ckptio::get_trace_result(r);
  return {case_index, std::move(result)};
}

void sync_file(std::FILE* f) {
  ST_CHECK_MSG(std::fflush(f) == 0, "journal flush failed");
#ifdef STORMTRACK_JOURNAL_HAVE_FSYNC
  ST_CHECK_MSG(::fsync(::fileno(f)) == 0, "journal fsync failed");
#endif
}

}  // namespace

SweepJournal::SweepJournal(std::filesystem::path path,
                           std::uint64_t spec_fingerprint,
                           std::size_t num_cases, bool resume)
    : path_(std::move(path)), spec_fingerprint_(spec_fingerprint) {
  ST_CHECK_MSG(!path_.empty(), "journal path is empty");
  if (path_.has_parent_path())
    std::filesystem::create_directories(path_.parent_path());
  if (resume && std::filesystem::exists(path_))
    open_resume(num_cases);
  else
    open_fresh();
}

SweepJournal::~SweepJournal() {
  if (file_ != nullptr) std::fclose(file_);
}

void SweepJournal::open_fresh() {
  file_ = std::fopen(path_.string().c_str(), "wb");
  ST_CHECK_MSG(file_ != nullptr,
               "cannot create journal " << path_.string());
  BinaryWriter header;
  header.put_u32(kJournalMagic);
  header.put_u32(kJournalVersion);
  header.put_u64(spec_fingerprint_);
  const std::vector<std::byte>& bytes = header.bytes();
  ST_CHECK_MSG(
      std::fwrite(bytes.data(), 1, bytes.size(), file_) == bytes.size(),
      "cannot write journal header to " << path_.string());
  sync_file(file_);
}

void SweepJournal::open_resume(std::size_t num_cases) {
  const std::vector<std::byte> bytes = read_file_bytes(path_);
  constexpr std::size_t kHeaderSize = 4 + 4 + 8;
  if (bytes.size() < kHeaderSize) {
    // The process died before the very first header sync completed; there
    // is nothing to replay.
    ++torn_dropped_;
    open_fresh();
    return;
  }
  BinaryReader r({bytes.data(), bytes.size()});
  const std::uint32_t magic = r.get_u32("journal magic");
  ST_CHECK_MSG(magic == kJournalMagic,
               path_.string() << " is not a sweep journal (bad magic 0x"
                              << std::hex << magic << std::dec << ")");
  const std::uint32_t version = r.get_u32("journal version");
  ST_CHECK_MSG(version == kJournalVersion,
               "unsupported journal version " << version << " in "
                                              << path_.string());
  const std::uint64_t fingerprint = r.get_u64("journal spec fingerprint");
  ST_CHECK_MSG(fingerprint == spec_fingerprint_,
               "journal " << path_.string()
                          << " was written by a different sweep spec "
                             "(fingerprint mismatch) — refusing to resume "
                             "the wrong grid");

  // Replay records until the first torn or corrupt one; everything from
  // there on is dropped (after a SIGKILL only the final record can be
  // torn, so this loses at most the case that was mid-append).
  std::size_t valid_end = r.offset();
  while (!r.exhausted()) {
    bool ok = false;
    std::size_t index = 0;
    SweepCaseResult result;
    try {
      const std::uint32_t size = r.get_u32("record size");
      const std::span<const std::byte> payload =
          r.get_bytes(size, "record payload");
      const std::uint32_t stored_crc = r.get_u32("record CRC");
      if (stored_crc == crc32(payload)) {
        BinaryReader rec(payload);
        auto [decoded_index, decoded_result] = get_case(rec);
        ST_CHECK_MSG(rec.exhausted(),
                     "journal record has trailing bytes");
        index = decoded_index;
        result = std::move(decoded_result);
        ok = true;
      }
    } catch (const CheckError&) {
      ok = false;
    }
    if (!ok) {
      ++torn_dropped_;
      break;
    }
    // A record that decodes cleanly but names a case outside the grid is
    // not a torn tail — it is the wrong journal. Fail loudly.
    ST_CHECK_MSG(index < num_cases,
                 "journal record names case "
                     << index << " but the sweep has only " << num_cases
                     << " cases — journal does not match this spec");
    replayed_[index] = std::move(result);
    valid_end = r.offset();
  }
  if (valid_end < bytes.size())
    std::filesystem::resize_file(path_, valid_end);

  file_ = std::fopen(path_.string().c_str(), "ab");
  ST_CHECK_MSG(file_ != nullptr,
               "cannot reopen journal " << path_.string()
                                        << " for appending");
}

void SweepJournal::append(std::size_t case_index,
                          const SweepCaseResult& result) {
  BinaryWriter payload;
  put_case(payload, case_index, result);
  BinaryWriter framed;
  framed.put_u32(static_cast<std::uint32_t>(payload.size()));
  framed.put_bytes(payload.bytes());
  framed.put_u32(crc32(payload.bytes()));
  const std::vector<std::byte>& bytes = framed.bytes();

  const std::lock_guard<std::mutex> lock(mutex_);
  ST_CHECK_MSG(
      std::fwrite(bytes.data(), 1, bytes.size(), file_) == bytes.size(),
      "cannot append to journal " << path_.string());
  sync_file(file_);
  ++appends_;
}

}  // namespace stormtrack
