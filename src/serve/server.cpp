#include "serve/server.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <string_view>
#include <utility>

#include "serve/protocol.hpp"
#include "util/check.hpp"

namespace stormtrack {

SessionServer::SessionServer(SessionSupervisor& supervisor,
                             ServerConfig config)
    : supervisor_(supervisor), config_(std::move(config)) {}

SessionServer::~SessionServer() { stop(); }

void SessionServer::start() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (running_) return;
  listen_fd_ = listen_unix(config_.socket_path, config_.backlog);
  running_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void SessionServer::stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) {
      shutdown_requested_ = true;
      shutdown_cv_.notify_all();
      return;
    }
    running_ = false;
    shutdown_requested_ = true;
    // Closing the listening fd pops accept(); shutting down connection
    // fds pops any handler blocked in recv or a long attach stream.
    if (listen_fd_ >= 0) {
      ::shutdown(listen_fd_, SHUT_RDWR);
      close_fd(listen_fd_);
      listen_fd_ = -1;
    }
    for (const auto& [handler, fd] : open_fds_) {
      ::shutdown(fd, SHUT_RDWR);
    }
    shutdown_cv_.notify_all();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::map<int, std::thread> handlers;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    handlers.swap(handlers_);
    finished_handlers_.clear();
  }
  for (auto& [handler, thread] : handlers) {
    if (thread.joinable()) thread.join();
  }
  std::error_code ignored;
  std::filesystem::remove(config_.socket_path, ignored);
}

bool SessionServer::shutdown_requested() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return shutdown_requested_;
}

void SessionServer::wait_shutdown_requested() {
  std::unique_lock<std::mutex> lock(mutex_);
  shutdown_cv_.wait(lock, [this] { return shutdown_requested_; });
}

int SessionServer::connections_handled() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return connections_;
}

int SessionServer::deadline_drops() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return deadline_drops_;
}

std::int64_t SessionServer::events_dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_dropped_;
}

void SessionServer::accept_loop() {
  while (true) {
    reap_finished_handlers();
    int listen_fd = -1;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!running_) return;
      listen_fd = listen_fd_;
    }
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // The usual exit: stop() closed the listening socket under us.
      return;
    }
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) {
      close_fd(fd);
      return;
    }
    if (config_.send_buffer_bytes > 0) {
      // Shrunk in tests so a stalled reader fills the socket quickly and
      // the write deadline actually fires.
      const int bytes = config_.send_buffer_bytes;
      (void)::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes));
    }
    ++connections_;
    const int handler = next_handler_++;
    open_fds_[handler] = fd;
    handlers_.emplace(handler, std::thread([this, fd, handler] {
      handle_connection(fd);
      {
        // Deregister before closing: once stop() can no longer see the
        // fd it is safe to close (and for the kernel to reuse) it.
        const std::lock_guard<std::mutex> inner(mutex_);
        open_fds_.erase(handler);
      }
      close_fd(fd);
      const std::lock_guard<std::mutex> inner(mutex_);
      finished_handlers_.push_back(handler);
    }));
  }
}

void SessionServer::reap_finished_handlers() {
  std::vector<std::thread> done;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const int handler : finished_handlers_) {
      const auto it = handlers_.find(handler);
      if (it == handlers_.end()) continue;  // stop() already took it
      done.push_back(std::move(it->second));
      handlers_.erase(it);
    }
    finished_handlers_.clear();
  }
  // The joins happen outside the lock; each thread has already queued its
  // id, so it is at most a few instructions from returning.
  for (auto& thread : done) {
    if (thread.joinable()) thread.join();
  }
}

void SessionServer::handle_connection(int fd) {
  // Shorthand: every reply honors the configured write deadline.
  const auto reply_frame = [&](MsgType type, const BinaryWriter& body) {
    send_frame(fd, type, body, config_.write_deadline_seconds);
  };
  try {
    while (true) {
      std::optional<Frame> frame =
          recv_frame(fd, config_.read_deadline_seconds);
      if (!frame.has_value()) break;  // client hung up
      BinaryReader r = frame->reader();
      switch (frame->type) {
        case MsgType::kHello: {
          const std::uint32_t version = r.get_u32("hello version");
          if (version != kProtocolVersion) {
            BinaryWriter reply;
            reply.put_string("protocol version " + std::to_string(version) +
                             " not supported (daemon speaks " +
                             std::to_string(kProtocolVersion) + ")");
            reply_frame(MsgType::kError, reply);
            break;
          }
          BinaryWriter reply;
          reply.put_u32(kProtocolVersion);
          reply.put_u64(
              static_cast<std::uint64_t>(supervisor_.active_count()));
          reply.put_u64(
              static_cast<std::uint64_t>(supervisor_.queued_count()));
          reply_frame(MsgType::kHelloOk, reply);
          break;
        }
        case MsgType::kSubmit: {
          const SessionSpec spec = get_session_spec(r);
          const SessionSupervisor::SubmitResult result =
              supervisor_.submit(spec);
          switch (result.admission) {
            case SessionSupervisor::Admission::kAccepted: {
              BinaryWriter reply;
              reply.put_u64(result.id);
              reply_frame(MsgType::kAccepted, reply);
              break;
            }
            case SessionSupervisor::Admission::kRejectedBusy: {
              BinaryWriter reply;
              reply.put_string(result.reason);
              reply.put_u64(static_cast<std::uint64_t>(result.active));
              reply.put_u64(static_cast<std::uint64_t>(result.queued));
              reply.put_f64(result.estimated_wait_seconds);
              reply_frame(MsgType::kRejectedBusy, reply);
              break;
            }
            case SessionSupervisor::Admission::kInvalid: {
              BinaryWriter reply;
              reply.put_string("invalid session spec: " + result.reason);
              reply_frame(MsgType::kError, reply);
              break;
            }
          }
          break;
        }
        case MsgType::kAttach:
          handle_attach(fd, r);
          break;
        case MsgType::kStats: {
          BinaryWriter reply;
          put_server_stats(reply, supervisor_.stats());
          reply_frame(MsgType::kStatsReply, reply);
          break;
        }
        case MsgType::kList: {
          const std::vector<SessionStatus> sessions = supervisor_.list();
          BinaryWriter reply;
          reply.put_count(sessions.size());
          for (const SessionStatus& status : sessions) {
            put_session_status(reply, status);
          }
          reply_frame(MsgType::kListReply, reply);
          break;
        }
        case MsgType::kStatus: {
          const std::uint64_t id = r.get_u64("status request id");
          try {
            const SessionStatus status = supervisor_.status(id);
            BinaryWriter reply;
            put_session_status(reply, status);
            reply_frame(MsgType::kStatusReply, reply);
          } catch (const CheckError& e) {
            BinaryWriter reply;
            reply.put_string(e.what());
            reply_frame(MsgType::kError, reply);
          }
          break;
        }
        case MsgType::kCancel: {
          const std::uint64_t id = r.get_u64("cancel request id");
          try {
            const SessionStatus status =
                supervisor_.cancel(id, "cancelled by client");
            BinaryWriter reply;
            put_session_status(reply, status);
            reply_frame(MsgType::kStatusReply, reply);
          } catch (const CheckError& e) {
            BinaryWriter reply;
            reply.put_string(e.what());
            reply_frame(MsgType::kError, reply);
          }
          break;
        }
        case MsgType::kShutdown: {
          // Flag before the ack: once the client sees kShutdownOk the
          // request must already be observable via shutdown_requested().
          {
            const std::lock_guard<std::mutex> lock(mutex_);
            shutdown_requested_ = true;
            shutdown_cv_.notify_all();
          }
          reply_frame(MsgType::kShutdownOk, BinaryWriter{});
          break;
        }
        default: {
          BinaryWriter reply;
          reply.put_string(std::string("unexpected ") +
                           to_string(frame->type) + " frame from a client");
          reply_frame(MsgType::kError, reply);
          break;
        }
      }
    }
  } catch (const std::exception& e) {
    // Framing violation, dead peer, or a blown read/write deadline: drop
    // this connection, keep serving.
    if (std::string_view(e.what()).find("deadline exceeded") !=
        std::string_view::npos) {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++deadline_drops_;
    }
  }
  // The caller (the handler thread) deregisters and closes the fd.
}

void SessionServer::handle_attach(int fd, BinaryReader& request) {
  const std::uint64_t id = request.get_u64("attach id");
  std::uint64_t seq = request.get_u64("attach from seq");
  const double write_deadline = config_.write_deadline_seconds;
  while (true) {
    SessionSupervisor::EventBatch batch;
    try {
      batch = supervisor_.wait_events(id, seq, 0.2);
    } catch (const CheckError& e) {
      BinaryWriter reply;
      reply.put_string(e.what());
      send_frame(fd, MsgType::kError, reply, write_deadline);
      return;
    }
    // Bounded send queue, drop-oldest: a reader that fell more than
    // max_event_backlog events behind gets only the newest ones. The seq
    // numbers expose the gap, so a client that cares can re-attach from
    // the first missing seq.
    std::size_t first = 0;
    if (config_.max_event_backlog > 0 &&
        batch.events.size() >
            static_cast<std::size_t>(config_.max_event_backlog)) {
      first = batch.events.size() -
              static_cast<std::size_t>(config_.max_event_backlog);
      const std::lock_guard<std::mutex> lock(mutex_);
      events_dropped_ += static_cast<std::int64_t>(first);
    }
    for (std::size_t i = first; i < batch.events.size(); ++i) {
      const SessionEvent& event = batch.events[i];
      BinaryWriter body;
      put_session_event(body, event);
      // A stalled reader makes this throw once its socket fills and the
      // write deadline passes; handle_connection drops the connection.
      send_frame(fd, MsgType::kEvent, body, write_deadline);
      seq = event.seq + 1;
    }
    if (batch.terminal) {
      BinaryWriter body;
      put_session_status(body, batch.status);
      send_frame(fd, MsgType::kDone, body, write_deadline);
      return;
    }
    bool running = false;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      running = running_;
    }
    // Never send while holding mutex_: a peer that stops reading would
    // otherwise block this handler inside the lock stop() needs.
    if (!running) {
      BinaryWriter reply;
      reply.put_string("daemon stopping; reattach session " +
                       std::to_string(id) + " after restart");
      send_frame(fd, MsgType::kError, reply, write_deadline);
      return;
    }
  }
}

}  // namespace stormtrack
