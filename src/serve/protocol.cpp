#include "serve/protocol.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "ckpt/crc32.hpp"
#include "util/check.hpp"

namespace stormtrack {

const char* to_string(MsgType type) {
  switch (type) {
    case MsgType::kHello: return "hello";
    case MsgType::kSubmit: return "submit";
    case MsgType::kAttach: return "attach";
    case MsgType::kList: return "list";
    case MsgType::kStatus: return "status";
    case MsgType::kCancel: return "cancel";
    case MsgType::kShutdown: return "shutdown";
    case MsgType::kStats: return "stats";
    case MsgType::kHelloOk: return "hello-ok";
    case MsgType::kAccepted: return "accepted";
    case MsgType::kRejectedBusy: return "rejected-busy";
    case MsgType::kStatusReply: return "status-reply";
    case MsgType::kListReply: return "list-reply";
    case MsgType::kEvent: return "event";
    case MsgType::kDone: return "done";
    case MsgType::kError: return "error";
    case MsgType::kShutdownOk: return "shutdown-ok";
    case MsgType::kStatsReply: return "stats-reply";
  }
  return "unknown";
}

void put_server_stats(BinaryWriter& w, const ServerStats& stats) {
  w.put_u64(stats.active);
  w.put_u64(stats.queued);
  w.put_u8(stats.healthy ? 1 : 0);
  w.put_u64(stats.journal_pending);
  w.put_u64(stats.journal_write_failures);
  w.put_f64(stats.estimated_wait_seconds);
  w.put_count(stats.tenants.size());
  for (const TenantStats& t : stats.tenants) {
    w.put_string(t.tenant);
    w.put_u64(t.submitted);
    w.put_u64(t.admitted);
    w.put_u64(t.rejected);
    w.put_u64(t.shed);
    w.put_u64(t.completed);
    w.put_f64(t.cpu_seconds);
  }
  // Shared-pool extension block (see ServerStats): appended last so a v2
  // decoder that predates it simply stops reading at the tenant list.
  w.put_u64(stats.pool_threads);
  w.put_u64(stats.pool_executing);
  w.put_u64(stats.pool_runnable);
  w.put_u64(stats.pool_delayed);
  w.put_u64(stats.pool_batches);
  w.put_u64(stats.pricing_shared_hits);
  w.put_u64(stats.pricing_shared_misses);
}

ServerStats get_server_stats(BinaryReader& r) {
  ServerStats stats;
  stats.active = r.get_u64("stats active");
  stats.queued = r.get_u64("stats queued");
  stats.healthy = r.get_u8("stats healthy") != 0;
  stats.journal_pending = r.get_u64("stats journal pending");
  stats.journal_write_failures = r.get_u64("stats journal write failures");
  stats.estimated_wait_seconds = r.get_f64("stats estimated wait");
  const std::size_t count = r.get_count("stats tenant count");
  stats.tenants.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    TenantStats t;
    t.tenant = r.get_string("tenant name");
    t.submitted = r.get_u64("tenant submitted");
    t.admitted = r.get_u64("tenant admitted");
    t.rejected = r.get_u64("tenant rejected");
    t.shed = r.get_u64("tenant shed");
    t.completed = r.get_u64("tenant completed");
    t.cpu_seconds = r.get_f64("tenant cpu seconds");
    stats.tenants.push_back(std::move(t));
  }
  // Version-tolerant tail: a payload from a daemon without the
  // shared-pool block ends here, and the defaults (all zeros) already
  // mean "no pool, no shared pricing observed".
  if (r.exhausted()) return stats;
  stats.pool_threads = r.get_u64("stats pool threads");
  stats.pool_executing = r.get_u64("stats pool executing");
  stats.pool_runnable = r.get_u64("stats pool runnable");
  stats.pool_delayed = r.get_u64("stats pool delayed");
  stats.pool_batches = r.get_u64("stats pool batches");
  stats.pricing_shared_hits = r.get_u64("stats pricing shared hits");
  stats.pricing_shared_misses = r.get_u64("stats pricing shared misses");
  return stats;
}

namespace {

using SteadyClock = std::chrono::steady_clock;
using Deadline = std::optional<SteadyClock::time_point>;

/// Block until \p fd is ready for \p events or \p deadline passes.
/// Returns false exactly on deadline expiry; POLLERR/POLLHUP count as
/// ready (the following recv/send reports the real error or EOF).
bool poll_ready(int fd, short events, const Deadline& deadline) {
  while (true) {
    int timeout_ms = -1;
    if (deadline) {
      const auto remaining = std::chrono::duration_cast<
          std::chrono::milliseconds>(*deadline - SteadyClock::now());
      if (remaining.count() <= 0) return false;
      // +1 so we never spin on a sub-millisecond remainder.
      timeout_ms = static_cast<int>(remaining.count()) + 1;
    }
    pollfd pfd{fd, events, 0};
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      ST_CHECK_MSG(false, "poll failed: " << std::strerror(errno));
    }
    if (rc > 0) return true;
    if (deadline) return false;  // rc == 0 only happens with a timeout
  }
}

/// Write all of \p bytes, retrying short writes and EINTR. MSG_NOSIGNAL
/// turns a dead peer into EPIPE instead of SIGPIPE, so library users need
/// no signal handler. With a deadline, each chunk waits for the socket to
/// accept bytes at most until the deadline — a peer that stops draining
/// its receive buffer makes this throw instead of blocking forever.
void write_all(int fd, std::span<const std::byte> bytes,
               const Deadline& deadline = std::nullopt) {
  std::size_t done = 0;
  while (done < bytes.size()) {
    ST_CHECK_MSG(poll_ready(fd, POLLOUT, deadline),
                 "write deadline exceeded: peer stopped draining its "
                 "socket (wrote "
                     << done << " of " << bytes.size() << " bytes)");
    const ssize_t n = ::send(fd, bytes.data() + done, bytes.size() - done,
                             MSG_NOSIGNAL | (deadline ? MSG_DONTWAIT : 0));
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
        continue;
      ST_CHECK_MSG(false, "socket write failed: " << std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
}

/// Read exactly bytes.size() bytes. Returns false on EOF before the first
/// byte (clean close); throws on EOF mid-read, any error, or — with a
/// deadline — when the bytes do not all arrive in time.
bool read_exact(int fd, std::span<std::byte> bytes,
                const Deadline& deadline = std::nullopt) {
  std::size_t done = 0;
  while (done < bytes.size()) {
    ST_CHECK_MSG(poll_ready(fd, POLLIN, deadline),
                 "read deadline exceeded: peer sent only "
                     << done << " of " << bytes.size()
                     << " bytes of a frame (slowloris?)");
    const ssize_t n = ::recv(fd, bytes.data() + done, bytes.size() - done,
                             deadline ? MSG_DONTWAIT : 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
        continue;
      ST_CHECK_MSG(false, "socket read failed: " << std::strerror(errno));
    }
    if (n == 0) {
      if (done == 0) return false;
      ST_CHECK_MSG(false, "peer closed the connection mid-frame ("
                              << done << " of " << bytes.size()
                              << " bytes read)");
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

Deadline deadline_after(double seconds) {
  if (seconds <= 0.0) return std::nullopt;
  return SteadyClock::now() +
         std::chrono::duration_cast<SteadyClock::duration>(
             std::chrono::duration<double>(seconds));
}

}  // namespace

void send_frame(int fd, MsgType type, std::span<const std::byte> payload,
                double deadline_seconds) {
  ST_CHECK_MSG(payload.size() <= kMaxFramePayload,
               "frame payload of " << payload.size()
                                   << " bytes exceeds the protocol limit of "
                                   << kMaxFramePayload);
  const std::byte type_byte{static_cast<std::uint8_t>(type)};
  std::uint32_t crc = crc32_update(0, {&type_byte, 1});
  crc = crc32_update(crc, payload);

  // One deadline covers the whole frame: header, payload, and CRC.
  const Deadline deadline = deadline_after(deadline_seconds);
  BinaryWriter head;
  head.put_u32(kFrameMagic);
  head.put_u8(static_cast<std::uint8_t>(type));
  head.put_u32(static_cast<std::uint32_t>(payload.size()));
  write_all(fd, head.bytes(), deadline);
  write_all(fd, payload, deadline);
  BinaryWriter tail;
  tail.put_u32(crc);
  write_all(fd, tail.bytes(), deadline);
}

void send_frame(int fd, MsgType type, const BinaryWriter& payload,
                double deadline_seconds) {
  send_frame(fd, type, payload.bytes(), deadline_seconds);
}

std::optional<Frame> recv_frame(int fd, double deadline_seconds) {
  // The deadline arms at the frame's first byte: read one byte with no
  // time bound (idling between frames is legal), then require the rest of
  // the frame within the budget.
  std::array<std::byte, 9> head_bytes;  // magic + type + size
  if (!read_exact(fd, std::span(head_bytes).first(1))) return std::nullopt;
  const Deadline deadline = deadline_after(deadline_seconds);
  ST_CHECK_MSG(read_exact(fd, std::span(head_bytes).subspan(1), deadline),
               "peer closed the connection mid-frame header");
  BinaryReader head(head_bytes);
  const std::uint32_t magic = head.get_u32("frame magic");
  ST_CHECK_MSG(magic == kFrameMagic,
               "frame does not start with the STMF magic (got 0x" << std::hex
                   << magic << ") — peer is not speaking this protocol");
  const std::uint8_t type = head.get_u8("frame type");
  const std::uint32_t size = head.get_u32("frame size");
  ST_CHECK_MSG(size <= kMaxFramePayload,
               "frame announces a " << size
                                    << "-byte payload, over the protocol "
                                       "limit of "
                                    << kMaxFramePayload);

  Frame frame;
  frame.type = static_cast<MsgType>(type);
  frame.payload.resize(size);
  if (size > 0) {
    ST_CHECK_MSG(read_exact(fd, frame.payload, deadline),
                 "peer closed the connection before the frame payload");
  }
  std::array<std::byte, 4> crc_bytes;
  ST_CHECK_MSG(read_exact(fd, crc_bytes, deadline),
               "peer closed the connection before the frame CRC");
  BinaryReader crc_reader(crc_bytes);
  const std::uint32_t stored = crc_reader.get_u32("frame crc");
  const std::byte type_byte{type};
  std::uint32_t computed = crc32_update(0, {&type_byte, 1});
  computed = crc32_update(computed, frame.payload);
  ST_CHECK_MSG(stored == computed,
               "frame CRC mismatch (stored 0x"
                   << std::hex << stored << ", computed 0x" << computed
                   << ") — corrupted " << to_string(frame.type) << " frame");
  return frame;
}

namespace {

sockaddr_un unix_address(const std::filesystem::path& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  const std::string str = path.string();
  ST_CHECK_MSG(str.size() < sizeof(addr.sun_path),
               "socket path \"" << str << "\" is " << str.size()
                                << " bytes, over the AF_UNIX limit of "
                                << sizeof(addr.sun_path) - 1);
  std::memcpy(addr.sun_path, str.c_str(), str.size() + 1);
  return addr;
}

}  // namespace

int listen_unix(const std::filesystem::path& path, int backlog) {
  const sockaddr_un addr = unix_address(path);
  std::error_code ignored;
  std::filesystem::remove(path, ignored);  // stale socket from a kill -9
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ST_CHECK_MSG(fd >= 0, "socket() failed: " << std::strerror(errno));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    close_fd(fd);
    ST_CHECK_MSG(false, "cannot bind " << path << ": " << std::strerror(err));
  }
  if (::listen(fd, backlog) != 0) {
    const int err = errno;
    close_fd(fd);
    ST_CHECK_MSG(false,
                 "cannot listen on " << path << ": " << std::strerror(err));
  }
  return fd;
}

int connect_unix(const std::filesystem::path& path) {
  const sockaddr_un addr = unix_address(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ST_CHECK_MSG(fd >= 0, "socket() failed: " << std::strerror(errno));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    close_fd(fd);
    ST_CHECK_MSG(false, "cannot connect to stormtrackd at "
                            << path << ": " << std::strerror(err)
                            << " — is the daemon running?");
  }
  return fd;
}

void close_fd(int fd) noexcept {
  if (fd >= 0) ::close(fd);
}

ClientConnection::ClientConnection(const std::filesystem::path& socket_path)
    : fd_(connect_unix(socket_path)) {
  try {
    BinaryWriter hello;
    hello.put_u32(kProtocolVersion);
    const Frame reply = round_trip(MsgType::kHello, hello, MsgType::kHelloOk);
    BinaryReader r = reply.reader();
    const std::uint32_t version = r.get_u32("hello version");
    ST_CHECK_MSG(version == kProtocolVersion,
                 "daemon speaks protocol version "
                     << version << ", this client speaks "
                     << kProtocolVersion);
  } catch (...) {
    close_fd(fd_);
    throw;
  }
}

ClientConnection::~ClientConnection() { close_fd(fd_); }

Frame ClientConnection::round_trip(MsgType request,
                                   const BinaryWriter& payload,
                                   MsgType expected) {
  send_frame(fd_, request, payload);
  std::optional<Frame> reply = recv_frame(fd_);
  ST_CHECK_MSG(reply.has_value(), "daemon closed the connection instead of "
                                  "replying to "
                                      << to_string(request));
  if (reply->type == MsgType::kError) {
    BinaryReader r = reply->reader();
    ST_CHECK_MSG(false, "daemon: " << r.get_string("error message"));
  }
  ST_CHECK_MSG(reply->type == expected,
               "daemon replied to " << to_string(request) << " with "
                                    << to_string(reply->type) << ", expected "
                                    << to_string(expected));
  return std::move(*reply);
}

ClientConnection::SubmitReply ClientConnection::submit(
    const SessionSpec& spec) {
  BinaryWriter w;
  put_session_spec(w, spec);
  send_frame(fd_, MsgType::kSubmit, w);
  std::optional<Frame> reply = recv_frame(fd_);
  ST_CHECK_MSG(reply.has_value(),
               "daemon closed the connection instead of replying to submit");
  SubmitReply out;
  BinaryReader r = reply->reader();
  if (reply->type == MsgType::kError) {
    ST_CHECK_MSG(false, "daemon: " << r.get_string("error message"));
  }
  if (reply->type == MsgType::kAccepted) {
    out.accepted = true;
    out.id = r.get_u64("accepted id");
    return out;
  }
  ST_CHECK_MSG(reply->type == MsgType::kRejectedBusy,
               "daemon replied to submit with " << to_string(reply->type));
  out.accepted = false;
  out.reason = r.get_string("rejection reason");
  out.active = r.get_u64("rejection active");
  out.queued = r.get_u64("rejection queued");
  out.estimated_wait_seconds = r.get_f64("rejection estimated wait");
  return out;
}

ServerStats ClientConnection::stats() {
  const Frame reply =
      round_trip(MsgType::kStats, BinaryWriter{}, MsgType::kStatsReply);
  BinaryReader r = reply.reader();
  return get_server_stats(r);
}

std::vector<SessionStatus> ClientConnection::list() {
  const Frame reply =
      round_trip(MsgType::kList, BinaryWriter{}, MsgType::kListReply);
  BinaryReader r = reply.reader();
  const std::size_t count = r.get_count("session count");
  std::vector<SessionStatus> sessions;
  sessions.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    sessions.push_back(get_session_status(r));
  }
  return sessions;
}

SessionStatus ClientConnection::status(std::uint64_t id) {
  BinaryWriter w;
  w.put_u64(id);
  const Frame reply = round_trip(MsgType::kStatus, w, MsgType::kStatusReply);
  BinaryReader r = reply.reader();
  return get_session_status(r);
}

SessionStatus ClientConnection::cancel(std::uint64_t id) {
  BinaryWriter w;
  w.put_u64(id);
  const Frame reply = round_trip(MsgType::kCancel, w, MsgType::kStatusReply);
  BinaryReader r = reply.reader();
  return get_session_status(r);
}

void ClientConnection::shutdown_server() {
  (void)round_trip(MsgType::kShutdown, BinaryWriter{}, MsgType::kShutdownOk);
}

SessionStatus ClientConnection::attach(
    std::uint64_t id, std::uint64_t from_seq,
    const std::function<void(const SessionEvent&)>& on_event) {
  BinaryWriter w;
  w.put_u64(id);
  w.put_u64(from_seq);
  send_frame(fd_, MsgType::kAttach, w);
  while (true) {
    std::optional<Frame> frame = recv_frame(fd_);
    ST_CHECK_MSG(frame.has_value(),
                 "daemon closed the attach stream for session "
                     << id << " without a terminal status");
    BinaryReader r = frame->reader();
    if (frame->type == MsgType::kError) {
      ST_CHECK_MSG(false, "daemon: " << r.get_string("error message"));
    }
    if (frame->type == MsgType::kDone) return get_session_status(r);
    ST_CHECK_MSG(frame->type == MsgType::kEvent,
                 "unexpected " << to_string(frame->type)
                               << " frame in attach stream");
    if (on_event) on_event(get_session_event(r));
  }
}

}  // namespace stormtrack
