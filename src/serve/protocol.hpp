#pragma once

/// \file protocol.hpp
/// The stormtrackd wire protocol: CRC-framed, length-prefixed messages
/// over a Unix-domain stream socket.
///
/// Every message is one frame:
///
///     u32  magic      "STMF" (0x464D5453 little-endian)
///     u8   type       MsgType discriminator
///     u32  size       payload length in bytes (<= kMaxFramePayload)
///     ...  payload    BinaryWriter-encoded message body
///     u32  crc        CRC-32 (IEEE) over the type byte + payload
///
/// The CRC covers the type byte so a corrupted discriminator can never
/// deliver one message's payload as another's. Framing errors (bad magic,
/// oversized frame, CRC mismatch, EOF mid-frame) throw CheckError — on a
/// connected stream there is no resynchronization story worth having, so
/// the connection is simply dropped. A clean EOF *between* frames returns
/// nullopt from recv_frame() and means the peer hung up.
///
/// Payload encodings reuse the session codecs (serve/session.hpp); the
/// exact body of every message type is documented on MsgType.

#include <cstdint>
#include <filesystem>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "serve/session.hpp"
#include "util/binary_io.hpp"

namespace stormtrack {

/// "STMF" little-endian.
inline constexpr std::uint32_t kFrameMagic = 0x464D'5453u;
inline constexpr std::uint32_t kProtocolVersion = 1;
/// Upper bound on one frame's payload (16 MiB) — admission control for
/// the codec itself: a garbage length can never make the receiver
/// allocate unbounded memory.
inline constexpr std::uint32_t kMaxFramePayload = 16u << 20;

/// Message discriminators. Client → server types are < 64, server →
/// client types >= 64. Payloads (all BinaryWriter-encoded):
///
///   kHello        u32 protocol version
///   kSubmit       SessionSpec
///   kAttach       u64 session id, u64 from_seq
///   kList         (empty)
///   kStatus       u64 session id
///   kCancel       u64 session id
///   kShutdown     (empty)
///
///   kHelloOk      u32 version, u64 active, u64 queued
///   kAccepted     u64 session id
///   kRejectedBusy string reason, u64 active, u64 queued
///   kStatusReply  SessionStatus
///   kListReply    count, then SessionStatus each
///   kEvent        SessionEvent
///   kDone         SessionStatus (terminal; ends an attach stream)
///   kError        string message
///   kShutdownOk   (empty)
enum class MsgType : std::uint8_t {
  kHello = 1,
  kSubmit = 2,
  kAttach = 3,
  kList = 4,
  kStatus = 5,
  kCancel = 6,
  kShutdown = 7,

  kHelloOk = 64,
  kAccepted = 65,
  kRejectedBusy = 66,
  kStatusReply = 67,
  kListReply = 68,
  kEvent = 69,
  kDone = 70,
  kError = 71,
  kShutdownOk = 72,
};

[[nodiscard]] const char* to_string(MsgType type);

/// One decoded frame.
struct Frame {
  MsgType type = MsgType::kError;
  std::vector<std::byte> payload;

  /// Bounds-checked reader over the payload.
  [[nodiscard]] BinaryReader reader() const {
    return BinaryReader(payload);
  }
};

/// Write one frame to \p fd, handling short writes and EINTR; throws
/// CheckError when the peer is gone (EPIPE/ECONNRESET) or on any other
/// write failure.
void send_frame(int fd, MsgType type, std::span<const std::byte> payload);
void send_frame(int fd, MsgType type, const BinaryWriter& payload);
inline void send_frame(int fd, MsgType type) {
  send_frame(fd, type, std::span<const std::byte>{});
}

/// Read one frame from \p fd. Returns nullopt on clean EOF at a frame
/// boundary; throws CheckError on garbage, CRC mismatch, or EOF
/// mid-frame.
[[nodiscard]] std::optional<Frame> recv_frame(int fd);

/// Bind + listen on a Unix-domain stream socket at \p path (an existing
/// socket file is removed first — stale sockets from a killed daemon must
/// not block restart). Returns the listening fd; throws CheckError.
[[nodiscard]] int listen_unix(const std::filesystem::path& path,
                              int backlog);

/// Connect to the daemon at \p path. Returns the connected fd; throws
/// CheckError (mentioning the path) when nothing listens there.
[[nodiscard]] int connect_unix(const std::filesystem::path& path);

/// close() ignoring errors — destructor-safe.
void close_fd(int fd) noexcept;

/// Owns a connected client socket and speaks the request/reply half of
/// the protocol — the convenience layer stormtrackctl and the tests use.
/// Not thread-safe (one outstanding request at a time, like the wire).
class ClientConnection {
 public:
  struct SubmitReply {
    bool accepted = false;
    std::uint64_t id = 0;       ///< Valid when accepted.
    std::string reason;         ///< Valid when rejected.
    std::uint64_t active = 0;   ///< Server load at rejection time.
    std::uint64_t queued = 0;
  };

  /// Connects and performs the kHello handshake (version check).
  explicit ClientConnection(const std::filesystem::path& socket_path);
  ~ClientConnection();

  ClientConnection(const ClientConnection&) = delete;
  ClientConnection& operator=(const ClientConnection&) = delete;

  [[nodiscard]] SubmitReply submit(const SessionSpec& spec);
  [[nodiscard]] std::vector<SessionStatus> list();
  [[nodiscard]] SessionStatus status(std::uint64_t id);
  /// Returns the post-cancel status.
  SessionStatus cancel(std::uint64_t id);
  /// Ask the daemon to shut down gracefully.
  void shutdown_server();

  /// Stream events for \p id starting at \p from_seq, invoking
  /// \p on_event per event, until the session reaches a terminal state;
  /// returns the terminal status.
  SessionStatus attach(
      std::uint64_t id, std::uint64_t from_seq,
      const std::function<void(const SessionEvent&)>& on_event);

  [[nodiscard]] int fd() const { return fd_; }

 private:
  /// Send \p request, receive the reply; throws CheckError when the reply
  /// is kError (with the server's message) or an unexpected type.
  Frame round_trip(MsgType request, const BinaryWriter& payload,
                   MsgType expected);

  int fd_ = -1;
};

}  // namespace stormtrack
