#pragma once

/// \file protocol.hpp
/// The stormtrackd wire protocol: CRC-framed, length-prefixed messages
/// over a Unix-domain stream socket.
///
/// Every message is one frame:
///
///     u32  magic      "STMF" (0x464D5453 little-endian)
///     u8   type       MsgType discriminator
///     u32  size       payload length in bytes (<= kMaxFramePayload)
///     ...  payload    BinaryWriter-encoded message body
///     u32  crc        CRC-32 (IEEE) over the type byte + payload
///
/// The CRC covers the type byte so a corrupted discriminator can never
/// deliver one message's payload as another's. Framing errors (bad magic,
/// oversized frame, CRC mismatch, EOF mid-frame) throw CheckError — on a
/// connected stream there is no resynchronization story worth having, so
/// the connection is simply dropped. A clean EOF *between* frames returns
/// nullopt from recv_frame() and means the peer hung up.
///
/// Payload encodings reuse the session codecs (serve/session.hpp); the
/// exact body of every message type is documented on MsgType.

#include <cstdint>
#include <filesystem>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "serve/session.hpp"
#include "util/binary_io.hpp"

namespace stormtrack {

/// "STMF" little-endian.
inline constexpr std::uint32_t kFrameMagic = 0x464D'5453u;
/// v2: SessionSpec gained the tenant label, kRejectedBusy reports the
/// estimated queue wait, and kStats/kStatsReply expose per-tenant
/// accounting and daemon health. The handshake rejects a version
/// mismatch in either direction — there are no mixed-version deployments
/// of a daemon and its ctl on one machine worth supporting.
inline constexpr std::uint32_t kProtocolVersion = 2;
/// Upper bound on one frame's payload (16 MiB) — admission control for
/// the codec itself: a garbage length can never make the receiver
/// allocate unbounded memory.
inline constexpr std::uint32_t kMaxFramePayload = 16u << 20;

/// Message discriminators. Client → server types are < 64, server →
/// client types >= 64. Payloads (all BinaryWriter-encoded):
///
///   kHello        u32 protocol version
///   kSubmit       SessionSpec
///   kAttach       u64 session id, u64 from_seq
///   kList         (empty)
///   kStatus       u64 session id
///   kCancel       u64 session id
///   kShutdown     (empty)
///   kStats        (empty)
///
///   kHelloOk      u32 version, u64 active, u64 queued
///   kAccepted     u64 session id
///   kRejectedBusy string reason, u64 active, u64 queued,
///                 f64 estimated_wait_seconds (backpressure hint: how long
///                 a queued slot is expected to take to open up)
///   kStatusReply  SessionStatus
///   kListReply    count, then SessionStatus each
///   kEvent        SessionEvent
///   kDone         SessionStatus (terminal; ends an attach stream)
///   kError        string message
///   kShutdownOk   (empty)
///   kStatsReply   ServerStats
enum class MsgType : std::uint8_t {
  kHello = 1,
  kSubmit = 2,
  kAttach = 3,
  kList = 4,
  kStatus = 5,
  kCancel = 6,
  kShutdown = 7,
  kStats = 8,

  kHelloOk = 64,
  kAccepted = 65,
  kRejectedBusy = 66,
  kStatusReply = 67,
  kListReply = 68,
  kEvent = 69,
  kDone = 70,
  kError = 71,
  kShutdownOk = 72,
  kStatsReply = 73,
};

[[nodiscard]] const char* to_string(MsgType type);

/// Per-tenant accounting row in a kStatsReply (see SessionSpec::tenant).
struct TenantStats {
  std::string tenant;            ///< Empty = the default tenant.
  std::uint64_t submitted = 0;   ///< Submits that passed validation.
  std::uint64_t admitted = 0;    ///< Accepted into the queue or a lane.
  std::uint64_t rejected = 0;    ///< Turned away at admission (busy).
  std::uint64_t shed = 0;        ///< Displaced from the queue by overload.
  std::uint64_t completed = 0;   ///< Reached the done state.
  double cpu_seconds = 0.0;      ///< Wall seconds of lane time consumed.
};

/// Daemon-level snapshot carried by kStatsReply.
struct ServerStats {
  std::uint64_t active = 0;
  std::uint64_t queued = 0;
  /// False while journal appends are failing and records sit buffered in
  /// memory (degraded mode); the daemon keeps serving either way.
  bool healthy = true;
  std::uint64_t journal_pending = 0;         ///< Buffered journal records.
  std::uint64_t journal_write_failures = 0;  ///< Cumulative failed appends.
  /// Expected seconds until a queued submit would start (EWMA of recent
  /// session durations scaled by the queue ahead of it).
  double estimated_wait_seconds = 0.0;
  std::vector<TenantStats> tenants;  ///< Sorted by tenant name.
  // Shared-pool + pricing-cache block, appended after the tenant list so
  // old decoders (which stop at the tenants) still parse new payloads and
  // new decoders read zeros from old payloads (get_server_stats stops at
  // an exhausted reader). Still protocol v2 — extension, not a break.
  std::uint64_t pool_threads = 0;    ///< 0 = lane-per-session scheduling.
  std::uint64_t pool_executing = 0;  ///< Sessions mid-slice on a worker.
  std::uint64_t pool_runnable = 0;   ///< Admitted, awaiting their next slice.
  std::uint64_t pool_delayed = 0;    ///< Parked in retry backoff.
  std::uint64_t pool_batches = 0;    ///< Executor batches completed.
  std::uint64_t pricing_shared_hits = 0;    ///< Shared-cache pricing hits.
  std::uint64_t pricing_shared_misses = 0;  ///< Shared-cache pricing misses.

  /// Fraction of shared-cache pricings served without recomputation.
  [[nodiscard]] double pricing_shared_hit_rate() const {
    const std::uint64_t total = pricing_shared_hits + pricing_shared_misses;
    return total > 0
               ? static_cast<double>(pricing_shared_hits) /
                     static_cast<double>(total)
               : 0.0;
  }
};

void put_server_stats(BinaryWriter& w, const ServerStats& stats);
[[nodiscard]] ServerStats get_server_stats(BinaryReader& r);

/// One decoded frame.
struct Frame {
  MsgType type = MsgType::kError;
  std::vector<std::byte> payload;

  /// Bounds-checked reader over the payload.
  [[nodiscard]] BinaryReader reader() const {
    return BinaryReader(payload);
  }
};

/// Write one frame to \p fd, handling short writes and EINTR; throws
/// CheckError when the peer is gone (EPIPE/ECONNRESET) or on any other
/// write failure. A positive \p deadline_seconds bounds the *whole frame*:
/// if the peer does not drain its socket fast enough for the frame to be
/// handed to the kernel within the budget, the send throws — this is what
/// lets the daemon drop a stalled attach reader instead of blocking a
/// handler thread forever.
void send_frame(int fd, MsgType type, std::span<const std::byte> payload,
                double deadline_seconds = 0.0);
void send_frame(int fd, MsgType type, const BinaryWriter& payload,
                double deadline_seconds = 0.0);
inline void send_frame(int fd, MsgType type) {
  send_frame(fd, type, std::span<const std::byte>{});
}

/// Read one frame from \p fd. Returns nullopt on clean EOF at a frame
/// boundary; throws CheckError on garbage, CRC mismatch, or EOF
/// mid-frame. A positive \p deadline_seconds arms when the frame's FIRST
/// byte arrives: the rest of the frame must follow within the budget or
/// the read throws (anti-slowloris — a client may idle between frames
/// forever, but once it starts a frame it must finish it).
[[nodiscard]] std::optional<Frame> recv_frame(int fd,
                                              double deadline_seconds = 0.0);

/// Bind + listen on a Unix-domain stream socket at \p path (an existing
/// socket file is removed first — stale sockets from a killed daemon must
/// not block restart). Returns the listening fd; throws CheckError.
[[nodiscard]] int listen_unix(const std::filesystem::path& path,
                              int backlog);

/// Connect to the daemon at \p path. Returns the connected fd; throws
/// CheckError (mentioning the path) when nothing listens there.
[[nodiscard]] int connect_unix(const std::filesystem::path& path);

/// close() ignoring errors — destructor-safe.
void close_fd(int fd) noexcept;

/// Owns a connected client socket and speaks the request/reply half of
/// the protocol — the convenience layer stormtrackctl and the tests use.
/// Not thread-safe (one outstanding request at a time, like the wire).
class ClientConnection {
 public:
  struct SubmitReply {
    bool accepted = false;
    std::uint64_t id = 0;       ///< Valid when accepted.
    std::string reason;         ///< Valid when rejected.
    std::uint64_t active = 0;   ///< Server load at rejection time.
    std::uint64_t queued = 0;
    /// Backpressure hint on rejection: expected seconds until a slot
    /// opens. Retry-after guidance, not a promise.
    double estimated_wait_seconds = 0.0;
  };

  /// Connects and performs the kHello handshake (version check).
  explicit ClientConnection(const std::filesystem::path& socket_path);
  ~ClientConnection();

  ClientConnection(const ClientConnection&) = delete;
  ClientConnection& operator=(const ClientConnection&) = delete;

  [[nodiscard]] SubmitReply submit(const SessionSpec& spec);
  [[nodiscard]] std::vector<SessionStatus> list();
  [[nodiscard]] SessionStatus status(std::uint64_t id);
  /// Daemon health + per-tenant accounting snapshot.
  [[nodiscard]] ServerStats stats();
  /// Returns the post-cancel status.
  SessionStatus cancel(std::uint64_t id);
  /// Ask the daemon to shut down gracefully.
  void shutdown_server();

  /// Stream events for \p id starting at \p from_seq, invoking
  /// \p on_event per event, until the session reaches a terminal state;
  /// returns the terminal status.
  SessionStatus attach(
      std::uint64_t id, std::uint64_t from_seq,
      const std::function<void(const SessionEvent&)>& on_event);

  [[nodiscard]] int fd() const { return fd_; }

 private:
  /// Send \p request, receive the reply; throws CheckError when the reply
  /// is kError (with the server's message) or an unexpected type.
  Frame round_trip(MsgType request, const BinaryWriter& payload,
                   MsgType expected);

  int fd_ = -1;
};

}  // namespace stormtrack
