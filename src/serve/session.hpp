#pragma once

/// \file session.hpp
/// Session vocabulary of the stormtrackd service layer.
///
/// A *session* is one tracking scenario owned by the daemon on behalf of a
/// client: a SessionSpec names what to run (machine, strategy, workload,
/// seed, intervals) plus how the scheduler should treat it (priority,
/// deadline); the daemon assigns it a stable numeric id that survives
/// daemon restarts (it is journaled), runs it through the existing
/// CoupledSimulation + checkpoint machinery in a per-session directory,
/// and reports progress as a monotonically numbered stream of
/// SessionEvents ending in a terminal SessionStatus.
///
/// The lifecycle state machine (docs/ARCHITECTURE.md "Service layer"):
///
///     queued -> running -> done
///                 |    \-> failed       (deadline, unrecoverable error)
///                 |    \-> quarantined  (every retry attempt failed)
///                 |    \-> interrupted  (daemon stopped; requeued by the
///                 |                      next daemon's recover())
///     queued/running -> cancelled       (client request)
///     queued -> shed                    (overload: displaced by a
///                                        higher-priority submit)
///
/// Everything here is codec'd with the shared BinaryWriter/Reader, so the
/// same put_/get_ pair serves the wire protocol (serve/protocol.hpp) and
/// the session journal (serve/session_journal.hpp).

#include <cstdint>
#include <string>
#include <vector>

#include "util/binary_io.hpp"

namespace stormtrack {

/// What a client asks the daemon to run, plus its scheduling class.
struct SessionSpec {
  /// Accounting label: which client/team the session is billed to. Free
  /// text; the daemon aggregates admitted/shed/completed counts and CPU
  /// seconds per tenant (STATS message). Empty means "default".
  std::string tenant;
  std::string machine = "bgl";      ///< Machine::by_name name.
  int cores = 256;                  ///< Simulated core count.
  std::string strategy = "diffusion";  ///< StrategyRegistry name.
  std::string workload = "field";   ///< WorkloadRegistry name.
  int intervals = 10;               ///< Adaptation intervals to run.
  std::uint64_t seed = 2013;        ///< Scenario seed.
  /// Scheduling priority; higher runs first, and under overload a
  /// higher-priority submit may shed the lowest-priority *queued* session.
  int priority = 0;
  /// Per-session wall-clock budget (covers retries and their backoff);
  /// 0 = the server's default.
  double deadline_seconds = 0.0;
};

/// See the file-comment state machine.
enum class SessionState : std::uint8_t {
  kQueued = 0,
  kRunning = 1,
  kDone = 2,
  kFailed = 3,
  kQuarantined = 4,
  kCancelled = 5,
  kShed = 6,
  kInterrupted = 7,
};

[[nodiscard]] const char* to_string(SessionState state);

/// True for states a session can never leave (interrupted is *not*
/// terminal: the next daemon's recovery requeues it).
[[nodiscard]] bool is_terminal(SessionState state);

/// One completed adaptation interval, streamed to attached clients.
/// `seq` increases monotonically over the session's lifetime in this
/// daemon process; after an in-process retry resumes from a checkpoint,
/// intervals may repeat under fresh seq numbers (the stream is an honest
/// transcript of execution, not of logical intervals).
struct SessionEvent {
  std::uint64_t seq = 0;
  int interval = 0;
  std::string chosen;            ///< Committed candidate name.
  double exec_seconds = 0.0;     ///< Committed simulated exec time.
  double redist_seconds = 0.0;   ///< Committed simulated redist time.
  std::int64_t moved_bytes = 0;  ///< Workload payload bytes moved.
  int inserted = 0;
  int deleted = 0;
  int retained = 0;
};

/// Everything observable about one session.
struct SessionStatus {
  std::uint64_t id = 0;
  SessionSpec spec;
  SessionState state = SessionState::kQueued;
  int attempts = 0;
  int intervals_done = 0;
  /// Next event sequence number (== events emitted so far this process).
  std::uint64_t next_event_seq = 0;
  /// Final state fingerprint; valid when state == kDone. A session that
  /// was interrupted and recovered lands on the same value as an
  /// uninterrupted run (the kill-and-reattach CI job diffs them).
  std::uint64_t fingerprint = 0;
  /// True when this run of the session resumed from a checkpoint written
  /// by a previous daemon process.
  bool resumed = false;
  std::string error;  ///< Terminal failure reason, empty otherwise.
};

/// Every problem with \p spec, one message each: unknown machine /
/// strategy / workload names, non-positive cores or intervals, negative
/// deadline. Empty when valid.
[[nodiscard]] std::vector<std::string> session_spec_problems(
    const SessionSpec& spec);

void put_session_spec(BinaryWriter& w, const SessionSpec& spec);
[[nodiscard]] SessionSpec get_session_spec(BinaryReader& r);

void put_session_event(BinaryWriter& w, const SessionEvent& event);
[[nodiscard]] SessionEvent get_session_event(BinaryReader& r);

void put_session_status(BinaryWriter& w, const SessionStatus& status);
[[nodiscard]] SessionStatus get_session_status(BinaryReader& r);

}  // namespace stormtrack
