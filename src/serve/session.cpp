#include "serve/session.hpp"

#include <algorithm>
#include <sstream>

#include "core/machine.hpp"
#include "core/strategy.hpp"
#include "util/check.hpp"
#include "wsim/workload.hpp"

namespace stormtrack {

const char* to_string(SessionState state) {
  switch (state) {
    case SessionState::kQueued: return "queued";
    case SessionState::kRunning: return "running";
    case SessionState::kDone: return "done";
    case SessionState::kFailed: return "failed";
    case SessionState::kQuarantined: return "quarantined";
    case SessionState::kCancelled: return "cancelled";
    case SessionState::kShed: return "shed";
    case SessionState::kInterrupted: return "interrupted";
  }
  return "unknown";
}

bool is_terminal(SessionState state) {
  switch (state) {
    case SessionState::kDone:
    case SessionState::kFailed:
    case SessionState::kQuarantined:
    case SessionState::kCancelled:
    case SessionState::kShed:
      return true;
    case SessionState::kQueued:
    case SessionState::kRunning:
    case SessionState::kInterrupted:
      return false;
  }
  return false;
}

namespace {

bool known_name(const std::vector<std::string>& names,
                const std::string& name) {
  return std::find(names.begin(), names.end(), name) != names.end();
}

std::string unknown_name_message(const char* what, const std::string& got,
                                 const std::vector<std::string>& known) {
  std::ostringstream out;
  out << "unknown " << what << " \"" << got << "\" (known:";
  for (const auto& name : known) out << ' ' << name;
  out << ')';
  return out.str();
}

}  // namespace

std::vector<std::string> session_spec_problems(const SessionSpec& spec) {
  std::vector<std::string> problems;
  if (!known_name(Machine::names(), spec.machine)) {
    problems.push_back(
        unknown_name_message("machine", spec.machine, Machine::names()));
  }
  if (!known_name(StrategyRegistry::global().names(), spec.strategy)) {
    problems.push_back(unknown_name_message(
        "strategy", spec.strategy, StrategyRegistry::global().names()));
  }
  if (!known_name(WorkloadRegistry::global().names(), spec.workload)) {
    problems.push_back(unknown_name_message(
        "workload", spec.workload, WorkloadRegistry::global().names()));
  }
  if (spec.cores <= 0) problems.push_back("cores must be positive");
  if (spec.intervals <= 0) problems.push_back("intervals must be positive");
  if (spec.deadline_seconds < 0.0) {
    problems.push_back("deadline_seconds must not be negative");
  }
  return problems;
}

void put_session_spec(BinaryWriter& w, const SessionSpec& spec) {
  w.put_string(spec.tenant);
  w.put_string(spec.machine);
  w.put_i32(spec.cores);
  w.put_string(spec.strategy);
  w.put_string(spec.workload);
  w.put_i32(spec.intervals);
  w.put_u64(spec.seed);
  w.put_i32(spec.priority);
  w.put_f64(spec.deadline_seconds);
}

SessionSpec get_session_spec(BinaryReader& r) {
  SessionSpec spec;
  spec.tenant = r.get_string("session tenant");
  spec.machine = r.get_string("session machine");
  spec.cores = r.get_i32("session cores");
  spec.strategy = r.get_string("session strategy");
  spec.workload = r.get_string("session workload");
  spec.intervals = r.get_i32("session intervals");
  spec.seed = r.get_u64("session seed");
  spec.priority = r.get_i32("session priority");
  spec.deadline_seconds = r.get_f64("session deadline");
  return spec;
}

void put_session_event(BinaryWriter& w, const SessionEvent& event) {
  w.put_u64(event.seq);
  w.put_i32(event.interval);
  w.put_string(event.chosen);
  w.put_f64(event.exec_seconds);
  w.put_f64(event.redist_seconds);
  w.put_i64(event.moved_bytes);
  w.put_i32(event.inserted);
  w.put_i32(event.deleted);
  w.put_i32(event.retained);
}

SessionEvent get_session_event(BinaryReader& r) {
  SessionEvent event;
  event.seq = r.get_u64("event seq");
  event.interval = r.get_i32("event interval");
  event.chosen = r.get_string("event chosen");
  event.exec_seconds = r.get_f64("event exec seconds");
  event.redist_seconds = r.get_f64("event redist seconds");
  event.moved_bytes = r.get_i64("event moved bytes");
  event.inserted = r.get_i32("event inserted");
  event.deleted = r.get_i32("event deleted");
  event.retained = r.get_i32("event retained");
  return event;
}

void put_session_status(BinaryWriter& w, const SessionStatus& status) {
  w.put_u64(status.id);
  put_session_spec(w, status.spec);
  w.put_u8(static_cast<std::uint8_t>(status.state));
  w.put_i32(status.attempts);
  w.put_i32(status.intervals_done);
  w.put_u64(status.next_event_seq);
  w.put_u64(status.fingerprint);
  w.put_u8(status.resumed ? 1 : 0);
  w.put_string(status.error);
}

SessionStatus get_session_status(BinaryReader& r) {
  SessionStatus status;
  status.id = r.get_u64("status id");
  status.spec = get_session_spec(r);
  const auto state = r.get_u8("status state");
  ST_CHECK_MSG(state <= static_cast<std::uint8_t>(SessionState::kInterrupted),
               "session status names unknown state " << int{state});
  status.state = static_cast<SessionState>(state);
  status.attempts = r.get_i32("status attempts");
  status.intervals_done = r.get_i32("status intervals done");
  status.next_event_seq = r.get_u64("status next event seq");
  status.fingerprint = r.get_u64("status fingerprint");
  status.resumed = r.get_u8("status resumed") != 0;
  status.error = r.get_string("status error");
  return status;
}

}  // namespace stormtrack
