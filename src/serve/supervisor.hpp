#pragma once

/// \file supervisor.hpp
/// The stormtrackd session scheduler: bounded admission, worker lanes or a
/// shared cooperative pool, per-session deadlines, supervised retries, and
/// crash recovery.
///
/// SessionSupervisor lifts SweepRunner::run_supervised's semantics —
/// deadline, bounded retries with exponential backoff, quarantine — from a
/// batch runner into a long-lived multi-tenant service:
///
///   * **Admission control.** At most `max_active` sessions run at once
///     and at most `max_queued` wait. A submit beyond both bounds is
///     REJECTED_BUSY — the daemon's memory use is bounded by
///     configuration, never by client behaviour.
///   * **Two scheduling models.** With `pool_threads == 0` each running
///     session owns a worker lane (a dedicated thread) until it is
///     terminal — simple, but throughput is lane-bound: hundreds of light
///     sessions serialize behind `max_active` threads. With
///     `pool_threads > 0` sessions become *cooperative tasks*: a fixed
///     pool of workers advances them one adaptation interval per slice,
///     yielding between slices, so `max_active` becomes an admission
///     bound (live session state in memory) rather than a thread count
///     and hundreds of light sessions multiplex onto a few cores. Retry
///     backoffs park the session (no thread sleeps on it); the watchdog
///     promotes parked sessions when their backoff elapses or their token
///     trips. Every session's pipeline submits its data-parallel batches
///     into one SharedPoolExecutor — never a private pool, asserted at
///     construction — and the executor's determinism contract keeps
///     per-session results byte-identical to serial execution regardless
///     of pool width or co-scheduled sessions.
///   * **Cross-session pricing reuse.** Sessions sharing a machine model
///     price candidates through a supervisor-wide SharedPricingCache
///     scoped by Machine::fingerprint() (bit-identical to private
///     caching; `server.pricing_shared_hits` proves the sharing).
///   * **Fair scheduling.** The queue is a FairQueue (serve/fair_queue.hpp):
///     per-priority lanes with an aging credit, so a low-priority session's
///     effective priority rises the longer it waits and no session starves
///     under sustained high-priority load (the load-gen bench asserts
///     zero starvation). Rejections carry the queue depth and an estimated
///     wait (EWMA of recent session durations) as retry-after guidance.
///   * **Graceful degradation under overload.** When the queue is full, a
///     submit with strictly higher priority sheds the queued session with
///     the lowest *effective* priority — ties displace the newest entry,
///     so work that has waited longest is the last to go (terminal state
///     `shed`, counted as `server.shed_sessions` and per tenant as
///     `server.shed_by_tenant.<tenant>`) — rather than rejecting important
///     work because of unimportant work.
///   * **Degraded I/O mode.** A failing journal disk (ENOSPC, EIO — real
///     or injected via util/fs_fault.hpp) never wedges the daemon: records
///     buffer in memory, health flips to degraded (stats()), the watchdog
///     retries the flush each sweep, and health returns once writes
///     succeed. Acknowledged sessions are journaled before the accept is
///     sent, so anything the client saw accepted survives a restart.
///   * **Deadlines.** Each session gets a wall-clock budget (its spec's,
///     else the server default) spanning all attempts and backoff sleeps.
///     The budget is enforced twice over: the session's CancelToken is
///     armed per attempt, and a watchdog thread sweeps running sessions to
///     cancel any that outlived their budget.
///   * **Supervised retries.** An attempt that throws is retried after
///     cancellable exponential backoff, resuming from the session's latest
///     checkpoint; `max_attempts` failures quarantine the session.
///   * **Crash recovery.** Every lifecycle transition is journaled
///     (serve/session_journal.hpp) and every session checkpoints into its
///     own directory, so a daemon killed at any instant can be restarted:
///     recover() requeues sessions the dead daemon left queued or running,
///     and their resumed runs land on the same state fingerprint as
///     uninterrupted ones.
///
/// Threading: public methods are safe from any thread. One mutex guards
/// all session state; the simulation itself runs outside the lock (lanes
/// and pool workers only take it to publish events and state changes).

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/experiment.hpp"
#include "exec/cancel.hpp"
#include "exec/shared_pool.hpp"
#include "redist/shared_pricing.hpp"
#include "serve/fair_queue.hpp"
#include "serve/protocol.hpp"
#include "serve/session.hpp"
#include "serve/session_journal.hpp"
#include "util/metrics.hpp"

namespace stormtrack {

/// Service limits; every bound has a safe default.
struct ServeLimits {
  /// Concurrent running sessions. With pool_threads == 0 this is also the
  /// worker-lane (thread) count; with a shared pool it is purely an
  /// admission bound on live session state.
  int max_active = 2;
  int max_queued = 8;      ///< Waiting sessions before REJECTED_BUSY.
  int max_attempts = 3;    ///< Attempts before quarantine.
  double backoff_seconds = 0.05;  ///< First retry sleep; doubles after.
  /// Default per-session wall-clock budget; 0 = unlimited. A spec's own
  /// deadline_seconds (when > 0) takes precedence.
  double session_deadline_seconds = 0.0;
  int checkpoint_every = 1;  ///< Checkpoint cadence (intervals).
  int checkpoint_keep = 3;   ///< Checkpoints retained per session.
  double watchdog_period_seconds = 0.05;  ///< Deadline sweep cadence.
  /// Queue-wait seconds per +1 effective priority in the fair queue;
  /// <= 0 disables aging (see serve/fair_queue.hpp).
  double aging_seconds = 0.5;
  /// Threads for each running session's *private* executor (candidate
  /// evaluation + workload integration); 0 = serial. Only meaningful in
  /// lane mode — lanes are the primary parallelism, so the default keeps
  /// one core per session. Combining it with pool_threads > 0 is rejected
  /// at construction: N sessions each spawning a private ThreadPoolExecutor
  /// next to a shared pool oversubscribes the cores the pool was sized
  /// for, which is exactly the hazard the shared pool removes.
  int executor_threads = 0;
  /// Shared cooperative scheduling: 0 keeps the lane-per-session model;
  /// > 0 spawns this many pool workers that advance admitted sessions one
  /// adaptation interval per slice (see the file comment). Sessions'
  /// pipelines submit their parallel batches into the same pool.
  int pool_threads = 0;
  /// Serve candidate pricing from the supervisor-wide SharedPricingCache
  /// so sessions sharing a machine model reuse each other's summaries.
  /// Bit-identical results either way; hits surface as
  /// server.pricing_shared_hits. Applies to both scheduling models.
  bool shared_pricing = true;
};

class SessionSupervisor {
 public:
  enum class Admission : std::uint8_t {
    kAccepted = 0,
    kRejectedBusy = 1,  ///< Bounds hit and nothing to shed.
    kInvalid = 2,       ///< Spec failed validation; reason says why.
  };

  struct SubmitResult {
    Admission admission = Admission::kRejectedBusy;
    std::uint64_t id = 0;  ///< Valid when accepted.
    std::string reason;    ///< Valid when not accepted.
    int active = 0;        ///< Running sessions at decision time.
    int queued = 0;        ///< Queued sessions at decision time.
    /// Backpressure hint on rejection: expected seconds until a queue
    /// slot opens (EWMA of recent session durations; 0 before any
    /// session has finished).
    double estimated_wait_seconds = 0.0;
  };

  struct RecoveryReport {
    int terminal = 0;  ///< Finished sessions recovered for reporting.
    int requeued = 0;  ///< Queued/running sessions requeued to run again.
  };

  /// What wait_events() hands back.
  struct EventBatch {
    std::vector<SessionEvent> events;  ///< seq >= the requested from_seq.
    bool terminal = false;             ///< Session reached a final state.
    SessionStatus status;
  };

  /// Opens (or creates) the state directory: the lifecycle journal lives
  /// at state_dir/sessions.stjl, per-session checkpoints under
  /// state_dir/sessions/<id>/ck. Replays an existing journal; sessions
  /// the previous daemon left unfinished surface as `interrupted` until
  /// recover() requeues them.
  SessionSupervisor(std::filesystem::path state_dir, ServeLimits limits);
  ~SessionSupervisor();

  SessionSupervisor(const SessionSupervisor&) = delete;
  SessionSupervisor& operator=(const SessionSupervisor&) = delete;

  /// Requeue every session the journal shows as unfinished (call before
  /// start()). Safe on a fresh state directory (reports zeros).
  RecoveryReport recover();

  /// Spawn the worker lanes and the watchdog. Idempotent.
  void start();

  /// Graceful stop: cancels running sessions (they stop at the next
  /// adaptation point, keeping their checkpoints and journal entries but
  /// receiving *no* terminal journal record — the next daemon's recover()
  /// requeues them exactly as after a crash), drains nothing, joins all
  /// threads. Idempotent.
  void stop();

  /// Admission-controlled submission; see the class comment. Accepted
  /// sessions are journaled before this returns.
  [[nodiscard]] SubmitResult submit(const SessionSpec& spec);

  /// Cancel a queued or running session (no-op past terminal). Returns
  /// the status as of the request — a running session stops at its next
  /// adaptation point, so the returned state may still be `running`.
  /// Throws CheckError for unknown ids.
  SessionStatus cancel(std::uint64_t id, const std::string& reason);

  /// Throws CheckError for unknown ids.
  [[nodiscard]] SessionStatus status(std::uint64_t id) const;

  /// All sessions, ascending by id.
  [[nodiscard]] std::vector<SessionStatus> list() const;

  /// Block up to \p timeout_seconds for events of session \p id with
  /// seq >= \p from_seq (or for the session to go terminal); returns
  /// whatever is available. Throws CheckError for unknown ids.
  [[nodiscard]] EventBatch wait_events(std::uint64_t id,
                                       std::uint64_t from_seq,
                                       double timeout_seconds) const;

  /// Convenience for tests: block until \p id is terminal.
  [[nodiscard]] SessionStatus wait_terminal(std::uint64_t id) const;

  /// `server.*` counters (submitted, accepted, rejected_busy,
  /// shed_sessions, shed_by_tenant.<tenant>, completed, failed,
  /// quarantined, cancelled, retries, deadline_failures, watchdog_cancels,
  /// recovered_sessions, requeued_sessions, resumes, degraded_transitions,
  /// health_recoveries). Snapshot copy.
  [[nodiscard]] MetricsRegistry metrics() const;

  /// Load, health, and per-tenant accounting snapshot (the kStatsReply
  /// payload).
  [[nodiscard]] ServerStats stats() const;

  /// False while journal records sit buffered in memory because appends
  /// are failing (degraded mode; see the class comment).
  [[nodiscard]] bool healthy() const { return journal_.healthy(); }

  [[nodiscard]] int active_count() const;
  [[nodiscard]] int queued_count() const;
  [[nodiscard]] const std::filesystem::path& state_dir() const {
    return state_dir_;
  }
  [[nodiscard]] const ServeLimits& limits() const { return limits_; }

 private:
  /// Why a session's CancelToken tripped (guarded by mutex_); the lane
  /// maps it to the terminal state.
  enum class CancelKind : std::uint8_t {
    kNone = 0,      ///< Token tripped by its own deadline.
    kClient = 1,    ///< cancel() request → `cancelled`.
    kShutdown = 2,  ///< stop() → `interrupted`, no journal record.
  };

  /// A session's live simulation between cooperative slices (machine,
  /// config, checkpointer, CoupledSimulation — everything run_attempt
  /// used to keep on a lane's stack). Defined in supervisor.cpp.
  struct SessionTask;

  struct Session {
    SessionStatus status;
    std::vector<SessionEvent> events;  ///< events[i].seq == i.
    CancelToken token;
    CancelKind cancel_kind = CancelKind::kNone;
    /// Wall-clock budget end, armed when the session first starts.
    std::chrono::steady_clock::time_point deadline_at{};
    bool deadline_armed = false;
    /// Live simulation state across slices/attempts; null when no attempt
    /// is in flight. Touched only by the thread driving the session
    /// (mutex_ not required) and by stop()'s post-join sweep.
    std::unique_ptr<SessionTask> task;
    /// status.attempts at admission; retry arithmetic is relative to it.
    int start_attempt = 0;
    /// Pool mode: a worker is inside run_slice right now.
    bool slicing = false;
    /// Pool mode: queued in run_queue_ awaiting its next slice.
    bool queued_runnable = false;
    /// Pool mode: earliest next slice (retry backoff parks the session
    /// here instead of sleeping a thread; the watchdog promotes it).
    std::chrono::steady_clock::time_point runnable_at{};
    /// Carried across retry slices for the quarantine record.
    std::string last_error;
    /// Summed slice wall time, folded into tenant accounting + the EWMA
    /// when the session goes terminal (the pool-mode analog of lane
    /// occupancy).
    double task_seconds = 0.0;
  };

  /// Disposition of one cooperative slice.
  enum class SliceOutcome : std::uint8_t {
    kYield = 0,       ///< More intervals remain; requeue for another slice.
    kTerminal = 1,    ///< Session reached a terminal state.
    kRetryLater = 2,  ///< Attempt failed; park until runnable_at.
  };

  void lane_loop();
  void worker_loop();
  void watchdog_loop();
  /// Run one session to a terminal (or interrupted) state. Called by a
  /// lane with mutex_ *not* held.
  void run_session(Session& session);
  /// One simulation attempt; returns the final fingerprint. Throws
  /// CancelledError / CheckError like the underlying machinery.
  /// \p first_in_process distinguishes a cross-daemon checkpoint resume
  /// (reported as status.resumed) from an in-process retry resume.
  std::uint64_t run_attempt(Session& session, bool first_in_process);
  /// Build the session's simulation for a new attempt (machine, config,
  /// checkpointer, resume-from-checkpoint). mutex_ not held.
  [[nodiscard]] std::unique_ptr<SessionTask> build_task(Session& session,
                                                        bool first_in_process);
  /// Advance one adaptation interval and publish its event; false when
  /// every interval is done. mutex_ not held.
  bool step_task(Session& session);
  /// Final checkpoint + state fingerprint. mutex_ not held.
  [[nodiscard]] std::uint64_t finish_task(Session& session);
  /// One cooperative slice: first call of an attempt builds the task,
  /// later calls advance one interval; maps exceptions to terminal states
  /// or a parked retry exactly like run_session. mutex_ not held.
  [[nodiscard]] SliceOutcome run_slice(Session& session);
  /// Queue a running session for its next slice (pool mode; no-op when it
  /// is already queued or mid-slice). mutex_ held.
  void promote_locked(Session& session);

  [[nodiscard]] std::filesystem::path checkpoint_dir(std::uint64_t id) const;
  void bump_locked(std::string_view counter, std::int64_t amount = 1);
  /// EWMA duration scaled by the queue ahead of a hypothetical new entry.
  /// mutex_ held.
  [[nodiscard]] double estimated_wait_locked() const;
  /// Fold a finished lane occupancy into the tenant account and the EWMA
  /// duration estimate. mutex_ held.
  void account_lane_time_locked(const std::string& tenant, double seconds);

  std::filesystem::path state_dir_;
  ServeLimits limits_;
  const ModelStack models_;  ///< Shared, const — thread-safe memo inside.
  /// Shared executor every pool-mode session submits into (null in lane
  /// mode). Constructed before any session and outlives them all.
  std::unique_ptr<SharedPoolExecutor> pool_;
  /// Cross-session pricing cache (scoped by machine fingerprint); wired
  /// into every session when limits_.shared_pricing. Internally
  /// synchronized — not guarded by mutex_.
  SharedPricingCache pricing_;

  mutable std::mutex mutex_;
  /// Signals lanes only (queue/stop). The watchdog sleeps on its own
  /// condition variable so a submit's notify_one always wakes a lane.
  mutable std::condition_variable work_cv_;
  /// Signals event waiters (events/terminal).
  mutable std::condition_variable events_cv_;
  /// Paces the watchdog sweep; notified only by stop().
  mutable std::condition_variable watchdog_cv_;
  std::map<std::uint64_t, std::unique_ptr<Session>> sessions_;
  /// Queued session ids: per-priority lanes with aging (class comment).
  FairQueue queue_;
  /// Pool mode: admitted sessions awaiting their next slice, round-robin
  /// (a yielded session goes to the back, so no session starves).
  std::deque<std::uint64_t> run_queue_;
  /// Pool mode: sessions in kRunning (admitted, not yet terminal) — the
  /// admission bound max_active compares against this.
  int live_sessions_ = 0;
  std::uint64_t next_id_ = 1;
  bool stopping_ = false;
  bool started_ = false;
  MetricsRegistry metrics_;
  /// Per-tenant accounting (key = SessionSpec::tenant, "" = default).
  std::map<std::string, TenantStats> tenants_;
  /// EWMA of lane-occupancy seconds per session; 0 until the first
  /// session finishes. Drives estimated_wait_seconds.
  double ewma_session_seconds_ = 0.0;
  /// Last health observed by the watchdog, for transition counters.
  bool was_healthy_ = true;

  SessionJournal journal_;
  std::vector<std::thread> lanes_;
  std::thread watchdog_;
};

}  // namespace stormtrack
