#include "serve/supervisor.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <sstream>
#include <utility>

#include "ckpt/checkpoint.hpp"
#include "core/coupled.hpp"
#include "core/machine.hpp"
#include "exec/executor.hpp"
#include "util/check.hpp"

namespace stormtrack {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_until(Clock::time_point when) {
  return std::chrono::duration<double>(when - Clock::now()).count();
}

}  // namespace

SessionSupervisor::SessionSupervisor(std::filesystem::path state_dir,
                                     ServeLimits limits)
    : state_dir_(std::move(state_dir)),
      limits_(limits),
      queue_(FairQueueConfig{limits.aging_seconds}),
      journal_((std::filesystem::create_directories(state_dir_),
                state_dir_ / "sessions.stjl"),
               std::filesystem::exists(state_dir_ / "sessions.stjl")) {
  ST_CHECK_MSG(limits_.max_active > 0, "max_active must be positive");
  ST_CHECK_MSG(limits_.max_queued >= 0, "max_queued must not be negative");
  ST_CHECK_MSG(limits_.max_attempts > 0, "max_attempts must be positive");
  next_id_ = journal_.max_id() + 1;
  for (const auto& [id, replayed] : journal_.replayed()) {
    auto session = std::make_unique<Session>();
    session->status.id = id;
    session->status.spec = replayed.spec;
    session->status.attempts = replayed.attempts;
    session->status.fingerprint = replayed.fingerprint;
    session->status.intervals_done = replayed.intervals_done;
    session->status.error = replayed.error;
    // A session the dead daemon left running surfaces as `interrupted`
    // until recover() requeues it; a never-started one stays `queued`
    // (also requeued by recover() — it is not in queue_ yet).
    session->status.state = replayed.state == SessionState::kRunning
                                ? SessionState::kInterrupted
                                : replayed.state;
    sessions_[id] = std::move(session);
  }
}

SessionSupervisor::~SessionSupervisor() { stop(); }

SessionSupervisor::RecoveryReport SessionSupervisor::recover() {
  const std::lock_guard<std::mutex> lock(mutex_);
  RecoveryReport report;
  for (auto& [id, session] : sessions_) {
    const SessionState state = session->status.state;
    if (is_terminal(state)) {
      ++report.terminal;
      continue;
    }
    // Interrupted mid-run or still queued when the previous daemon died:
    // run it (again). A previously started session resumes from its
    // checkpoint directory. sessions_ iterates in id order, so recovered
    // sessions re-enter their lanes FIFO by original submit order.
    session->status.state = SessionState::kQueued;
    queue_.push(id, session->status.spec.priority, Clock::now());
    ++report.requeued;
  }
  metrics_.add_count("server.recovered_sessions", report.terminal);
  metrics_.add_count("server.requeued_sessions", report.requeued);
  work_cv_.notify_all();
  return report;
}

void SessionSupervisor::start() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (started_) return;
  started_ = true;
  stopping_ = false;
  lanes_.reserve(static_cast<std::size_t>(limits_.max_active));
  for (int i = 0; i < limits_.max_active; ++i) {
    lanes_.emplace_back([this] { lane_loop(); });
  }
  watchdog_ = std::thread([this] { watchdog_loop(); });
}

void SessionSupervisor::stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ && !started_) return;
    stopping_ = true;
    // Trip every running session's token; lanes observe CancelledError at
    // the next adaptation point and mark the session interrupted. No
    // terminal journal record is written, so recovery after a graceful
    // stop and after SIGKILL are the same code path.
    for (auto& [id, session] : sessions_) {
      if (session->status.state == SessionState::kRunning) {
        session->cancel_kind = CancelKind::kShutdown;
        session->token.cancel("daemon stopping");
      }
    }
    work_cv_.notify_all();
    events_cv_.notify_all();
    watchdog_cv_.notify_all();
  }
  for (auto& lane : lanes_) {
    if (lane.joinable()) lane.join();
  }
  lanes_.clear();
  if (watchdog_.joinable()) watchdog_.join();
  const std::lock_guard<std::mutex> lock(mutex_);
  started_ = false;
}

SessionSupervisor::SubmitResult SessionSupervisor::submit(
    const SessionSpec& spec) {
  SubmitResult result;
  const std::vector<std::string> problems = session_spec_problems(spec);
  if (!problems.empty()) {
    std::ostringstream reason;
    for (std::size_t i = 0; i < problems.size(); ++i) {
      reason << (i ? "; " : "") << problems[i];
    }
    result.admission = Admission::kInvalid;
    result.reason = reason.str();
    return result;
  }

  const std::lock_guard<std::mutex> lock(mutex_);
  const auto now = Clock::now();
  bump_locked("server.submitted");
  TenantStats& tenant = tenants_[spec.tenant];
  tenant.tenant = spec.tenant;
  ++tenant.submitted;
  int active = 0;
  for (const auto& [id, session] : sessions_) {
    if (session->status.state == SessionState::kRunning) ++active;
  }
  result.active = active;
  result.queued = static_cast<int>(queue_.size());
  result.estimated_wait_seconds = estimated_wait_locked();

  if (stopping_) {
    result.admission = Admission::kRejectedBusy;
    result.reason = "daemon is shutting down";
    bump_locked("server.rejected_busy");
    ++tenant.rejected;
    return result;
  }

  if (result.queued >= limits_.max_queued) {
    // Queue full. Shed the queued session with the lowest effective
    // priority if the incoming one strictly outranks it (aging counts:
    // an old low-priority session may have earned enough credit to be
    // unsheddable); otherwise reject the submit with retry-after hints.
    const std::optional<FairQueue::Entry> victim = queue_.shed_victim(now);
    if (!victim.has_value() ||
        queue_.effective_priority(*victim, now) >= spec.priority) {
      result.admission = Admission::kRejectedBusy;
      std::ostringstream reason;
      reason << "at capacity: " << active << " running, " << result.queued
             << " queued (max_queued " << limits_.max_queued
             << "), and no queued session has lower priority than "
             << spec.priority;
      result.reason = reason.str();
      bump_locked("server.rejected_busy");
      ++tenant.rejected;
      return result;
    }
    Session& shed = *sessions_.at(victim->id);
    journal_.shed(shed.status.id);
    shed.status.state = SessionState::kShed;
    shed.status.error = "shed for a priority-" + std::to_string(spec.priority) +
                        " submission under full queue";
    queue_.remove(victim->id);
    bump_locked("server.shed_sessions");
    TenantStats& shed_tenant = tenants_[shed.status.spec.tenant];
    shed_tenant.tenant = shed.status.spec.tenant;
    ++shed_tenant.shed;
    bump_locked("server.shed_by_tenant." +
                (shed.status.spec.tenant.empty() ? "default"
                                                 : shed.status.spec.tenant));
    events_cv_.notify_all();
  }

  const std::uint64_t id = next_id_++;
  // Journal before acknowledging: an accepted session survives any crash
  // from here on. (In degraded mode the record is buffered and flushed by
  // the watchdog — only a crash while still degraded can lose it.)
  journal_.submitted(id, spec);
  auto session = std::make_unique<Session>();
  session->status.id = id;
  session->status.spec = spec;
  session->status.state = SessionState::kQueued;
  sessions_[id] = std::move(session);
  queue_.push(id, spec.priority, now);
  bump_locked("server.accepted");
  ++tenant.admitted;
  result.admission = Admission::kAccepted;
  result.id = id;
  result.queued = static_cast<int>(queue_.size());
  work_cv_.notify_one();
  return result;
}

SessionStatus SessionSupervisor::cancel(std::uint64_t id,
                                        const std::string& reason) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sessions_.find(id);
  ST_CHECK_MSG(it != sessions_.end(), "no session with id " << id);
  Session& session = *it->second;
  switch (session.status.state) {
    case SessionState::kQueued: {
      queue_.remove(id);
      journal_.cancelled(id, reason);
      session.status.state = SessionState::kCancelled;
      session.status.error = reason;
      bump_locked("server.cancelled");
      events_cv_.notify_all();
      break;
    }
    case SessionState::kRunning:
      session.cancel_kind = CancelKind::kClient;
      session.token.cancel(reason);
      break;
    default:
      break;  // terminal or interrupted: nothing to do
  }
  return session.status;
}

SessionStatus SessionSupervisor::status(std::uint64_t id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sessions_.find(id);
  ST_CHECK_MSG(it != sessions_.end(), "no session with id " << id);
  return it->second->status;
}

std::vector<SessionStatus> SessionSupervisor::list() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SessionStatus> out;
  out.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) {
    out.push_back(session->status);
  }
  return out;
}

SessionSupervisor::EventBatch SessionSupervisor::wait_events(
    std::uint64_t id, std::uint64_t from_seq, double timeout_seconds) const {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = sessions_.find(id);
  ST_CHECK_MSG(it != sessions_.end(), "no session with id " << id);
  const Session& session = *it->second;
  const auto ready = [&] {
    return stopping_ || is_terminal(session.status.state) ||
           session.events.size() > from_seq;
  };
  if (timeout_seconds > 0.0 && !ready()) {
    events_cv_.wait_for(
        lock, std::chrono::duration<double>(timeout_seconds), ready);
  }
  EventBatch batch;
  for (std::size_t i = from_seq; i < session.events.size(); ++i) {
    batch.events.push_back(session.events[i]);
  }
  batch.terminal = is_terminal(session.status.state);
  batch.status = session.status;
  return batch;
}

SessionStatus SessionSupervisor::wait_terminal(std::uint64_t id) const {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = sessions_.find(id);
  ST_CHECK_MSG(it != sessions_.end(), "no session with id " << id);
  const Session& session = *it->second;
  events_cv_.wait(lock, [&] {
    return stopping_ || is_terminal(session.status.state);
  });
  return session.status;
}

MetricsRegistry SessionSupervisor::metrics() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return metrics_;
}

ServerStats SessionSupervisor::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  ServerStats stats;
  for (const auto& [id, session] : sessions_) {
    if (session->status.state == SessionState::kRunning) ++stats.active;
  }
  stats.queued = queue_.size();
  stats.healthy = journal_.healthy();
  stats.journal_pending = journal_.pending_records();
  stats.journal_write_failures =
      static_cast<std::uint64_t>(journal_.write_failures());
  stats.estimated_wait_seconds = estimated_wait_locked();
  stats.tenants.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) stats.tenants.push_back(tenant);
  return stats;
}

double SessionSupervisor::estimated_wait_locked() const {
  if (ewma_session_seconds_ <= 0.0) return 0.0;
  // A new arrival waits behind the whole queue, spread over the lanes.
  return ewma_session_seconds_ *
         (static_cast<double>(queue_.size()) + 1.0) /
         static_cast<double>(limits_.max_active);
}

void SessionSupervisor::account_lane_time_locked(const std::string& tenant,
                                                 double seconds) {
  TenantStats& t = tenants_[tenant];
  t.tenant = tenant;
  t.cpu_seconds += seconds;
  // EWMA with a 1/5 step: stable enough to survive one outlier session,
  // fresh enough to track a workload shift within a few sessions.
  ewma_session_seconds_ = ewma_session_seconds_ <= 0.0
                              ? seconds
                              : 0.8 * ewma_session_seconds_ + 0.2 * seconds;
}

int SessionSupervisor::active_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  int active = 0;
  for (const auto& [id, session] : sessions_) {
    if (session->status.state == SessionState::kRunning) ++active;
  }
  return active;
}

int SessionSupervisor::queued_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(queue_.size());
}

std::filesystem::path SessionSupervisor::checkpoint_dir(
    std::uint64_t id) const {
  return state_dir_ / "sessions" / std::to_string(id) / "ck";
}

void SessionSupervisor::bump_locked(std::string_view counter,
                                    std::int64_t amount) {
  metrics_.add_count(counter, amount);
}

void SessionSupervisor::lane_loop() {
  while (true) {
    Session* session = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;
      const std::optional<std::uint64_t> next = queue_.pop_best(Clock::now());
      if (!next.has_value()) continue;
      session = sessions_.at(*next).get();
      session->status.state = SessionState::kRunning;
      // Arm the wall-clock budget once, spanning every attempt and
      // backoff of this session (recovery re-arms in the new process: the
      // budget is per daemon life, not cumulative across crashes).
      const double deadline =
          session->status.spec.deadline_seconds > 0.0
              ? session->status.spec.deadline_seconds
              : limits_.session_deadline_seconds;
      if (deadline > 0.0 && !session->deadline_armed) {
        session->deadline_at =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(deadline));
        session->deadline_armed = true;
      }
    }
    const auto lane_started = Clock::now();
    run_session(*session);
    const double lane_seconds =
        std::chrono::duration<double>(Clock::now() - lane_started).count();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      account_lane_time_locked(session->status.spec.tenant, lane_seconds);
      if (session->status.state == SessionState::kDone) {
        TenantStats& tenant = tenants_[session->status.spec.tenant];
        tenant.tenant = session->status.spec.tenant;
        ++tenant.completed;
      }
    }
  }
}

void SessionSupervisor::watchdog_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    const auto now = Clock::now();
    for (auto& [id, session] : sessions_) {
      if (session->status.state != SessionState::kRunning) continue;
      if (!session->deadline_armed || session->deadline_at > now) continue;
      if (session->token.cancelled()) continue;
      // The per-attempt token deadline usually fires first; the watchdog
      // is the backstop that catches sessions sleeping in backoff or
      // wedged between polls.
      session->token.cancel("session deadline exceeded (watchdog)");
      bump_locked("server.watchdog_cancels");
    }

    // Degraded-mode recovery: retry buffered journal records each sweep
    // (off the session lock — the flush does disk I/O) and account health
    // transitions in both directions.
    if (!journal_.healthy()) {
      lock.unlock();
      (void)journal_.flush_pending();
      lock.lock();
      if (stopping_) break;
    }
    const bool healthy_now = journal_.healthy();
    if (was_healthy_ && !healthy_now) {
      bump_locked("server.degraded_transitions");
    } else if (!was_healthy_ && healthy_now) {
      bump_locked("server.health_recoveries");
    }
    was_healthy_ = healthy_now;

    watchdog_cv_.wait_for(
        lock, std::chrono::duration<double>(limits_.watchdog_period_seconds));
  }
}

std::uint64_t SessionSupervisor::run_attempt(Session& session,
                                             bool first_in_process) {
  SessionSpec spec;
  std::uint64_t id = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    spec = session.status.spec;
    id = session.status.id;
    // A cancel that raced in between the previous attempt's failure and
    // this one (client cancel, shutdown, or the watchdog) must be honored,
    // not cleared: only an untripped token is reset for the new attempt.
    // The check() below then surfaces any pending cancellation, and
    // run_session maps it through the still-valid cancel_kind.
    if (session.cancel_kind == CancelKind::kNone &&
        !session.token.cancelled()) {
      session.token.reset();
    }
    if (session.deadline_armed) {
      const double remaining = seconds_until(session.deadline_at);
      session.token.set_deadline_after(remaining);
    }
  }
  session.token.check();  // budget may already be gone

  Machine machine = Machine::by_name(spec.machine, spec.cores);
  CoupledConfig cfg;
  cfg.scenario.num_intervals = spec.intervals;
  cfg.scenario.seed = spec.seed;
  cfg.manager.strategy = spec.strategy;
  cfg.manager.cancel = &session.token;
  cfg.workload = spec.workload;

  std::unique_ptr<ThreadPoolExecutor> pool;
  if (limits_.executor_threads > 0) {
    pool = std::make_unique<ThreadPoolExecutor>(limits_.executor_threads);
    cfg.manager.executor = pool.get();
    cfg.executor = pool.get();
  }

  const std::filesystem::path dir = checkpoint_dir(id);
  std::filesystem::create_directories(dir);
  const std::uint64_t config_fp = coupled_config_fingerprint(machine, cfg);
  CheckpointPolicy policy;
  policy.dir = dir;
  policy.every = limits_.checkpoint_every;
  policy.keep = limits_.checkpoint_keep;
  CoupledCheckpointer checkpointer(policy, config_fp);
  cfg.hook = &checkpointer;

  CoupledSimulation sim(machine, models_.model, models_.truth, cfg);
  const ResumeReport resume = resume_coupled(sim, dir, config_fp);
  if (resume.resumed) {
    const std::lock_guard<std::mutex> lock(mutex_);
    // On the first attempt of this process the checkpoint must have come
    // from a previous daemon (crash recovery); later attempts resume
    // in-process retries.
    if (first_in_process) session.status.resumed = true;
    session.status.intervals_done = static_cast<int>(resume.step);
    bump_locked("server.resumes");
  }

  for (int i = sim.interval(); i < spec.intervals; ++i) {
    const IntervalReport report = sim.advance();
    const std::lock_guard<std::mutex> lock(mutex_);
    SessionEvent event;
    event.seq = session.events.size();
    event.interval = report.interval;
    event.chosen = report.realloc.chosen;
    event.exec_seconds = report.realloc.committed.actual_exec;
    event.redist_seconds = report.realloc.committed.actual_redist;
    event.moved_bytes = report.workload_traffic.total_bytes;
    event.inserted = static_cast<int>(report.diff.inserted.size());
    event.deleted = static_cast<int>(report.diff.deleted.size());
    event.retained = static_cast<int>(report.diff.retained.size());
    session.events.push_back(std::move(event));
    session.status.intervals_done = sim.interval();
    session.status.next_event_seq = session.events.size();
    events_cv_.notify_all();
  }
  checkpointer.checkpoint_now(sim);
  return sim.state_fingerprint();
}

void SessionSupervisor::run_session(Session& session) {
  std::uint64_t id = 0;
  int start_attempt = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    id = session.status.id;
    start_attempt = session.status.attempts;
  }
  std::string last_error;
  for (int attempt = start_attempt + 1;; ++attempt) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      session.status.attempts = attempt;
    }
    journal_.started(id, attempt);
    try {
      const std::uint64_t fingerprint =
          run_attempt(session, attempt == start_attempt + 1);
      int intervals_done = 0;
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        intervals_done = session.status.intervals_done;
      }
      journal_.finished(id, fingerprint, intervals_done);
      const std::lock_guard<std::mutex> lock(mutex_);
      session.status.state = SessionState::kDone;
      session.status.fingerprint = fingerprint;
      bump_locked("server.completed");
      events_cv_.notify_all();
      return;
    } catch (const CancelledError& e) {
      const std::lock_guard<std::mutex> lock(mutex_);
      switch (session.cancel_kind) {
        case CancelKind::kClient:
          journal_.cancelled(id, e.what());
          session.status.state = SessionState::kCancelled;
          session.status.error = e.what();
          bump_locked("server.cancelled");
          break;
        case CancelKind::kShutdown:
          // Deliberately no journal record: the next daemon's recovery
          // requeues this session exactly as after a crash.
          session.status.state = SessionState::kInterrupted;
          break;
        case CancelKind::kNone:  // the session's own deadline
          journal_.failed(id, e.what());
          session.status.state = SessionState::kFailed;
          session.status.error = e.what();
          bump_locked("server.deadline_failures");
          break;
      }
      events_cv_.notify_all();
      return;
    } catch (const std::exception& e) {
      last_error = e.what();
    }

    if (attempt - start_attempt >= limits_.max_attempts) {
      journal_.quarantined(id, last_error);
      const std::lock_guard<std::mutex> lock(mutex_);
      session.status.state = SessionState::kQuarantined;
      session.status.error = last_error;
      bump_locked("server.quarantined");
      events_cv_.notify_all();
      return;
    }

    {
      const std::lock_guard<std::mutex> lock(mutex_);
      bump_locked("server.retries");
    }
    // Cancellable exponential backoff (the same shape as
    // SweepRunner::run_supervised): first retry sleeps backoff_seconds,
    // doubling after. A deadline or cancel during the sleep wakes early.
    const double backoff =
        std::ldexp(limits_.backoff_seconds, attempt - start_attempt - 1);
    if (backoff > 0.0 && !session.token.wait_for(backoff)) {
      const std::lock_guard<std::mutex> lock(mutex_);
      switch (session.cancel_kind) {
        case CancelKind::kClient:
          journal_.cancelled(id, "cancelled during retry backoff");
          session.status.state = SessionState::kCancelled;
          session.status.error = "cancelled during retry backoff";
          bump_locked("server.cancelled");
          break;
        case CancelKind::kShutdown:
          session.status.state = SessionState::kInterrupted;
          break;
        case CancelKind::kNone: {
          const std::string error =
              "session deadline expired during retry backoff (last error: " +
              last_error + ")";
          journal_.failed(id, error);
          session.status.state = SessionState::kFailed;
          session.status.error = error;
          bump_locked("server.deadline_failures");
          break;
        }
      }
      events_cv_.notify_all();
      return;
    }
  }
}

}  // namespace stormtrack
