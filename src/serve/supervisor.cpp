#include "serve/supervisor.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <sstream>
#include <utility>

#include "ckpt/checkpoint.hpp"
#include "core/coupled.hpp"
#include "core/machine.hpp"
#include "exec/executor.hpp"
#include "util/check.hpp"

namespace stormtrack {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_until(Clock::time_point when) {
  return std::chrono::duration<double>(when - Clock::now()).count();
}

}  // namespace

SessionSupervisor::SessionSupervisor(std::filesystem::path state_dir,
                                     ServeLimits limits)
    : state_dir_(std::move(state_dir)),
      limits_(limits),
      queue_(FairQueueConfig{limits.aging_seconds}),
      journal_((std::filesystem::create_directories(state_dir_),
                state_dir_ / "sessions.stjl"),
               std::filesystem::exists(state_dir_ / "sessions.stjl")) {
  ST_CHECK_MSG(limits_.max_active > 0, "max_active must be positive");
  ST_CHECK_MSG(limits_.max_queued >= 0, "max_queued must not be negative");
  ST_CHECK_MSG(limits_.max_attempts > 0, "max_attempts must be positive");
  ST_CHECK_MSG(limits_.pool_threads >= 0, "pool_threads must not be negative");
  // The executor nesting hazard: with a shared pool, every session's
  // pipeline must submit into it. executor_threads would hand each of the
  // max_active admitted sessions its own private ThreadPoolExecutor on
  // top of the pool's workers — oversubscribing the cores the pool was
  // sized for — so the combination is a configuration error, not a
  // silently-ignored knob.
  ST_CHECK_MSG(!(limits_.pool_threads > 0 && limits_.executor_threads > 0),
               "executor_threads (private per-session pools) cannot be "
               "combined with pool_threads (shared executor pool): sessions "
               "must submit into the shared pool; set executor_threads to 0");
  if (limits_.pool_threads > 0) {
    pool_ = std::make_unique<SharedPoolExecutor>(limits_.pool_threads);
  }
  next_id_ = journal_.max_id() + 1;
  for (const auto& [id, replayed] : journal_.replayed()) {
    auto session = std::make_unique<Session>();
    session->status.id = id;
    session->status.spec = replayed.spec;
    session->status.attempts = replayed.attempts;
    session->status.fingerprint = replayed.fingerprint;
    session->status.intervals_done = replayed.intervals_done;
    session->status.error = replayed.error;
    // A session the dead daemon left running surfaces as `interrupted`
    // until recover() requeues it; a never-started one stays `queued`
    // (also requeued by recover() — it is not in queue_ yet).
    session->status.state = replayed.state == SessionState::kRunning
                                ? SessionState::kInterrupted
                                : replayed.state;
    sessions_[id] = std::move(session);
  }
}

SessionSupervisor::~SessionSupervisor() { stop(); }

SessionSupervisor::RecoveryReport SessionSupervisor::recover() {
  const std::lock_guard<std::mutex> lock(mutex_);
  RecoveryReport report;
  for (auto& [id, session] : sessions_) {
    const SessionState state = session->status.state;
    if (is_terminal(state)) {
      ++report.terminal;
      continue;
    }
    // Interrupted mid-run or still queued when the previous daemon died:
    // run it (again). A previously started session resumes from its
    // checkpoint directory. sessions_ iterates in id order, so recovered
    // sessions re-enter their lanes FIFO by original submit order.
    session->status.state = SessionState::kQueued;
    queue_.push(id, session->status.spec.priority, Clock::now());
    ++report.requeued;
  }
  metrics_.add_count("server.recovered_sessions", report.terminal);
  metrics_.add_count("server.requeued_sessions", report.requeued);
  work_cv_.notify_all();
  return report;
}

void SessionSupervisor::start() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (started_) return;
  started_ = true;
  stopping_ = false;
  // Lane mode: one dedicated thread per concurrently running session.
  // Pool mode: pool_threads cooperative workers, however many sessions
  // are admitted.
  const int threads =
      pool_ != nullptr ? limits_.pool_threads : limits_.max_active;
  lanes_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    lanes_.emplace_back([this] {
      if (pool_ != nullptr) {
        worker_loop();
      } else {
        lane_loop();
      }
    });
  }
  watchdog_ = std::thread([this] { watchdog_loop(); });
}

void SessionSupervisor::stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ && !started_) return;
    stopping_ = true;
    // Trip every running session's token; lanes observe CancelledError at
    // the next adaptation point and mark the session interrupted. No
    // terminal journal record is written, so recovery after a graceful
    // stop and after SIGKILL are the same code path.
    for (auto& [id, session] : sessions_) {
      if (session->status.state == SessionState::kRunning) {
        session->cancel_kind = CancelKind::kShutdown;
        session->token.cancel("daemon stopping");
      }
    }
    work_cv_.notify_all();
    events_cv_.notify_all();
    watchdog_cv_.notify_all();
  }
  for (auto& lane : lanes_) {
    if (lane.joinable()) lane.join();
  }
  lanes_.clear();
  if (watchdog_.joinable()) watchdog_.join();
  const std::lock_guard<std::mutex> lock(mutex_);
  // Pool mode: sessions parked in the run queue (or in retry backoff)
  // when the workers exited never observed their cancelled token. Mark
  // them interrupted here — like the lane path, deliberately without a
  // terminal journal record, so recovery after a graceful stop and after
  // SIGKILL stay the same code path. Their checkpoints survive; their
  // live simulations are dropped.
  for (auto& [id, session] : sessions_) {
    if (session->status.state != SessionState::kRunning) continue;
    session->task.reset();
    session->status.state = SessionState::kInterrupted;
    session->queued_runnable = false;
    session->slicing = false;
  }
  run_queue_.clear();
  live_sessions_ = 0;
  events_cv_.notify_all();
  started_ = false;
}

SessionSupervisor::SubmitResult SessionSupervisor::submit(
    const SessionSpec& spec) {
  SubmitResult result;
  const std::vector<std::string> problems = session_spec_problems(spec);
  if (!problems.empty()) {
    std::ostringstream reason;
    for (std::size_t i = 0; i < problems.size(); ++i) {
      reason << (i ? "; " : "") << problems[i];
    }
    result.admission = Admission::kInvalid;
    result.reason = reason.str();
    return result;
  }

  const std::lock_guard<std::mutex> lock(mutex_);
  const auto now = Clock::now();
  bump_locked("server.submitted");
  TenantStats& tenant = tenants_[spec.tenant];
  tenant.tenant = spec.tenant;
  ++tenant.submitted;
  int active = 0;
  for (const auto& [id, session] : sessions_) {
    if (session->status.state == SessionState::kRunning) ++active;
  }
  result.active = active;
  result.queued = static_cast<int>(queue_.size());
  result.estimated_wait_seconds = estimated_wait_locked();

  if (stopping_) {
    result.admission = Admission::kRejectedBusy;
    result.reason = "daemon is shutting down";
    bump_locked("server.rejected_busy");
    ++tenant.rejected;
    return result;
  }

  if (result.queued >= limits_.max_queued) {
    // Queue full. Shed the queued session with the lowest effective
    // priority if the incoming one strictly outranks it (aging counts:
    // an old low-priority session may have earned enough credit to be
    // unsheddable); otherwise reject the submit with retry-after hints.
    const std::optional<FairQueue::Entry> victim = queue_.shed_victim(now);
    if (!victim.has_value() ||
        queue_.effective_priority(*victim, now) >= spec.priority) {
      result.admission = Admission::kRejectedBusy;
      std::ostringstream reason;
      reason << "at capacity: " << active << " running, " << result.queued
             << " queued (max_queued " << limits_.max_queued
             << "), and no queued session has lower priority than "
             << spec.priority;
      result.reason = reason.str();
      bump_locked("server.rejected_busy");
      ++tenant.rejected;
      return result;
    }
    Session& shed = *sessions_.at(victim->id);
    journal_.shed(shed.status.id);
    shed.status.state = SessionState::kShed;
    shed.status.error = "shed for a priority-" + std::to_string(spec.priority) +
                        " submission under full queue";
    queue_.remove(victim->id);
    bump_locked("server.shed_sessions");
    TenantStats& shed_tenant = tenants_[shed.status.spec.tenant];
    shed_tenant.tenant = shed.status.spec.tenant;
    ++shed_tenant.shed;
    bump_locked("server.shed_by_tenant." +
                (shed.status.spec.tenant.empty() ? "default"
                                                 : shed.status.spec.tenant));
    events_cv_.notify_all();
  }

  const std::uint64_t id = next_id_++;
  // Journal before acknowledging: an accepted session survives any crash
  // from here on. (In degraded mode the record is buffered and flushed by
  // the watchdog — only a crash while still degraded can lose it.)
  journal_.submitted(id, spec);
  auto session = std::make_unique<Session>();
  session->status.id = id;
  session->status.spec = spec;
  session->status.state = SessionState::kQueued;
  sessions_[id] = std::move(session);
  queue_.push(id, spec.priority, now);
  bump_locked("server.accepted");
  ++tenant.admitted;
  result.admission = Admission::kAccepted;
  result.id = id;
  result.queued = static_cast<int>(queue_.size());
  work_cv_.notify_one();
  return result;
}

SessionStatus SessionSupervisor::cancel(std::uint64_t id,
                                        const std::string& reason) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sessions_.find(id);
  ST_CHECK_MSG(it != sessions_.end(), "no session with id " << id);
  Session& session = *it->second;
  switch (session.status.state) {
    case SessionState::kQueued: {
      queue_.remove(id);
      journal_.cancelled(id, reason);
      session.status.state = SessionState::kCancelled;
      session.status.error = reason;
      bump_locked("server.cancelled");
      events_cv_.notify_all();
      break;
    }
    case SessionState::kRunning:
      session.cancel_kind = CancelKind::kClient;
      session.token.cancel(reason);
      // A pool-mode session parked between slices (yield queue is FIFO,
      // or it is sitting out a retry backoff) gets its cancellation slice
      // promptly instead of waiting for the backoff to elapse.
      promote_locked(session);
      break;
    default:
      break;  // terminal or interrupted: nothing to do
  }
  return session.status;
}

SessionStatus SessionSupervisor::status(std::uint64_t id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sessions_.find(id);
  ST_CHECK_MSG(it != sessions_.end(), "no session with id " << id);
  return it->second->status;
}

std::vector<SessionStatus> SessionSupervisor::list() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SessionStatus> out;
  out.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) {
    out.push_back(session->status);
  }
  return out;
}

SessionSupervisor::EventBatch SessionSupervisor::wait_events(
    std::uint64_t id, std::uint64_t from_seq, double timeout_seconds) const {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = sessions_.find(id);
  ST_CHECK_MSG(it != sessions_.end(), "no session with id " << id);
  const Session& session = *it->second;
  const auto ready = [&] {
    return stopping_ || is_terminal(session.status.state) ||
           session.events.size() > from_seq;
  };
  if (timeout_seconds > 0.0 && !ready()) {
    events_cv_.wait_for(
        lock, std::chrono::duration<double>(timeout_seconds), ready);
  }
  EventBatch batch;
  for (std::size_t i = from_seq; i < session.events.size(); ++i) {
    batch.events.push_back(session.events[i]);
  }
  batch.terminal = is_terminal(session.status.state);
  batch.status = session.status;
  return batch;
}

SessionStatus SessionSupervisor::wait_terminal(std::uint64_t id) const {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = sessions_.find(id);
  ST_CHECK_MSG(it != sessions_.end(), "no session with id " << id);
  const Session& session = *it->second;
  events_cv_.wait(lock, [&] {
    return stopping_ || is_terminal(session.status.state);
  });
  return session.status;
}

MetricsRegistry SessionSupervisor::metrics() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsRegistry snapshot = metrics_;
  // Cross-session sharing counters accrue inside the caches (internally
  // synchronized), not under mutex_; fold current totals into the
  // snapshot so they read like any other server.* counter.
  const SharedPricingCache::Stats pricing = pricing_.stats();
  snapshot.add_count("server.pricing_shared_hits", pricing.hits);
  snapshot.add_count("server.pricing_shared_misses", pricing.misses);
  if (pool_ != nullptr) {
    snapshot.add_count("server.pool_batches",
                       pool_->occupancy().completed_batches);
  }
  return snapshot;
}

ServerStats SessionSupervisor::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  ServerStats stats;
  for (const auto& [id, session] : sessions_) {
    if (session->status.state == SessionState::kRunning) ++stats.active;
  }
  stats.queued = queue_.size();
  stats.healthy = journal_.healthy();
  stats.journal_pending = journal_.pending_records();
  stats.journal_write_failures =
      static_cast<std::uint64_t>(journal_.write_failures());
  stats.estimated_wait_seconds = estimated_wait_locked();
  stats.tenants.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) stats.tenants.push_back(tenant);
  if (pool_ != nullptr) {
    const PoolOccupancy occ = pool_->occupancy();
    stats.pool_threads = static_cast<std::uint64_t>(occ.threads);
    stats.pool_batches = static_cast<std::uint64_t>(occ.completed_batches);
    for (const auto& [id, session] : sessions_) {
      if (session->status.state != SessionState::kRunning) continue;
      if (session->slicing) {
        ++stats.pool_executing;
      } else if (session->queued_runnable) {
        ++stats.pool_runnable;
      } else {
        ++stats.pool_delayed;
      }
    }
  }
  const SharedPricingCache::Stats pricing = pricing_.stats();
  stats.pricing_shared_hits = static_cast<std::uint64_t>(pricing.hits);
  stats.pricing_shared_misses = static_cast<std::uint64_t>(pricing.misses);
  return stats;
}

double SessionSupervisor::estimated_wait_locked() const {
  if (ewma_session_seconds_ <= 0.0) return 0.0;
  // A new arrival waits behind the whole queue, spread over the scheduler
  // width: lanes in lane mode, pool workers in pool mode.
  const int width =
      pool_ != nullptr ? limits_.pool_threads : limits_.max_active;
  return ewma_session_seconds_ *
         (static_cast<double>(queue_.size()) + 1.0) /
         static_cast<double>(width);
}

void SessionSupervisor::account_lane_time_locked(const std::string& tenant,
                                                 double seconds) {
  TenantStats& t = tenants_[tenant];
  t.tenant = tenant;
  t.cpu_seconds += seconds;
  // EWMA with a 1/5 step: stable enough to survive one outlier session,
  // fresh enough to track a workload shift within a few sessions.
  ewma_session_seconds_ = ewma_session_seconds_ <= 0.0
                              ? seconds
                              : 0.8 * ewma_session_seconds_ + 0.2 * seconds;
}

int SessionSupervisor::active_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  int active = 0;
  for (const auto& [id, session] : sessions_) {
    if (session->status.state == SessionState::kRunning) ++active;
  }
  return active;
}

int SessionSupervisor::queued_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(queue_.size());
}

std::filesystem::path SessionSupervisor::checkpoint_dir(
    std::uint64_t id) const {
  return state_dir_ / "sessions" / std::to_string(id) / "ck";
}

void SessionSupervisor::bump_locked(std::string_view counter,
                                    std::int64_t amount) {
  metrics_.add_count(counter, amount);
}

void SessionSupervisor::lane_loop() {
  while (true) {
    Session* session = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;
      const std::optional<std::uint64_t> next = queue_.pop_best(Clock::now());
      if (!next.has_value()) continue;
      session = sessions_.at(*next).get();
      session->status.state = SessionState::kRunning;
      // Arm the wall-clock budget once, spanning every attempt and
      // backoff of this session (recovery re-arms in the new process: the
      // budget is per daemon life, not cumulative across crashes).
      const double deadline =
          session->status.spec.deadline_seconds > 0.0
              ? session->status.spec.deadline_seconds
              : limits_.session_deadline_seconds;
      if (deadline > 0.0 && !session->deadline_armed) {
        session->deadline_at =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(deadline));
        session->deadline_armed = true;
      }
    }
    const auto lane_started = Clock::now();
    run_session(*session);
    const double lane_seconds =
        std::chrono::duration<double>(Clock::now() - lane_started).count();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      account_lane_time_locked(session->status.spec.tenant, lane_seconds);
      if (session->status.state == SessionState::kDone) {
        TenantStats& tenant = tenants_[session->status.spec.tenant];
        tenant.tenant = session->status.spec.tenant;
        ++tenant.completed;
      }
    }
  }
}

void SessionSupervisor::watchdog_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    const auto now = Clock::now();
    for (auto& [id, session] : sessions_) {
      if (session->status.state != SessionState::kRunning) continue;
      if (!session->deadline_armed || session->deadline_at > now) continue;
      if (session->token.cancelled()) continue;
      // The per-attempt token deadline usually fires first; the watchdog
      // is the backstop that catches sessions sleeping in backoff or
      // wedged between polls.
      session->token.cancel("session deadline exceeded (watchdog)");
      bump_locked("server.watchdog_cancels");
      promote_locked(*session);
    }

    // Pool mode: promote parked sessions — retry backoffs that have
    // elapsed, and any cancelled session waiting between slices — so no
    // thread ever sleeps on a session's behalf.
    if (pool_ != nullptr) {
      for (auto& [id, session] : sessions_) {
        if (session->status.state != SessionState::kRunning ||
            session->slicing || session->queued_runnable) {
          continue;
        }
        if (session->runnable_at <= now || session->token.cancelled()) {
          promote_locked(*session);
        }
      }
    }

    // Degraded-mode recovery: retry buffered journal records each sweep
    // (off the session lock — the flush does disk I/O) and account health
    // transitions in both directions.
    if (!journal_.healthy()) {
      lock.unlock();
      (void)journal_.flush_pending();
      lock.lock();
      if (stopping_) break;
    }
    const bool healthy_now = journal_.healthy();
    if (was_healthy_ && !healthy_now) {
      bump_locked("server.degraded_transitions");
    } else if (!was_healthy_ && healthy_now) {
      bump_locked("server.health_recoveries");
    }
    was_healthy_ = healthy_now;

    watchdog_cv_.wait_for(
        lock, std::chrono::duration<double>(limits_.watchdog_period_seconds));
  }
}

/// Everything a running attempt keeps alive between cooperative slices.
/// Member order is lifetime order: the simulation holds pointers into the
/// machine, the config, and the checkpointer, so it is declared (and
/// destroyed) last (first).
struct SessionSupervisor::SessionTask {
  Machine machine;
  CoupledConfig cfg;
  std::uint64_t config_fp = 0;
  int target_intervals = 0;
  /// Lane mode only (see ServeLimits::executor_threads).
  std::unique_ptr<ThreadPoolExecutor> private_pool;
  std::unique_ptr<CoupledCheckpointer> checkpointer;
  std::unique_ptr<CoupledSimulation> sim;

  explicit SessionTask(Machine m) : machine(std::move(m)) {}
};

std::unique_ptr<SessionSupervisor::SessionTask> SessionSupervisor::build_task(
    Session& session, bool first_in_process) {
  SessionSpec spec;
  std::uint64_t id = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    spec = session.status.spec;
    id = session.status.id;
    // A cancel that raced in between the previous attempt's failure and
    // this one (client cancel, shutdown, or the watchdog) must be honored,
    // not cleared: only an untripped token is reset for the new attempt.
    // The check() below then surfaces any pending cancellation, and the
    // caller maps it through the still-valid cancel_kind.
    if (session.cancel_kind == CancelKind::kNone &&
        !session.token.cancelled()) {
      session.token.reset();
    }
    if (session.deadline_armed) {
      const double remaining = seconds_until(session.deadline_at);
      session.token.set_deadline_after(remaining);
    }
  }
  session.token.check();  // budget may already be gone

  auto task =
      std::make_unique<SessionTask>(Machine::by_name(spec.machine, spec.cores));
  task->target_intervals = spec.intervals;
  CoupledConfig& cfg = task->cfg;
  cfg.scenario.num_intervals = spec.intervals;
  cfg.scenario.seed = spec.seed;
  cfg.manager.strategy = spec.strategy;
  cfg.manager.cancel = &session.token;
  cfg.workload = spec.workload;
  if (limits_.shared_pricing) cfg.manager.shared_pricing = &pricing_;

  if (pool_ != nullptr) {
    // Shared-pool mode: the session's pipeline submits its data-parallel
    // batches into the supervisor's pool — never a private executor (the
    // constructor rejects executor_threads > 0 alongside pool_threads).
    cfg.manager.executor = pool_.get();
    cfg.executor = pool_.get();
  } else if (limits_.executor_threads > 0) {
    task->private_pool =
        std::make_unique<ThreadPoolExecutor>(limits_.executor_threads);
    cfg.manager.executor = task->private_pool.get();
    cfg.executor = task->private_pool.get();
  }

  const std::filesystem::path dir = checkpoint_dir(id);
  std::filesystem::create_directories(dir);
  task->config_fp = coupled_config_fingerprint(task->machine, cfg);
  CheckpointPolicy policy;
  policy.dir = dir;
  policy.every = limits_.checkpoint_every;
  policy.keep = limits_.checkpoint_keep;
  task->checkpointer =
      std::make_unique<CoupledCheckpointer>(policy, task->config_fp);
  cfg.hook = task->checkpointer.get();

  task->sim = std::make_unique<CoupledSimulation>(task->machine, models_.model,
                                                  models_.truth, cfg);
  const ResumeReport resume = resume_coupled(*task->sim, dir, task->config_fp);
  if (resume.resumed) {
    const std::lock_guard<std::mutex> lock(mutex_);
    // On the first attempt of this process the checkpoint must have come
    // from a previous daemon (crash recovery); later attempts resume
    // in-process retries.
    if (first_in_process) session.status.resumed = true;
    session.status.intervals_done = static_cast<int>(resume.step);
    bump_locked("server.resumes");
  }
  return task;
}

bool SessionSupervisor::step_task(Session& session) {
  SessionTask& task = *session.task;
  if (task.sim->interval() >= task.target_intervals) return false;
  const IntervalReport report = task.sim->advance();
  const std::lock_guard<std::mutex> lock(mutex_);
  SessionEvent event;
  event.seq = session.events.size();
  event.interval = report.interval;
  event.chosen = report.realloc.chosen;
  event.exec_seconds = report.realloc.committed.actual_exec;
  event.redist_seconds = report.realloc.committed.actual_redist;
  event.moved_bytes = report.workload_traffic.total_bytes;
  event.inserted = static_cast<int>(report.diff.inserted.size());
  event.deleted = static_cast<int>(report.diff.deleted.size());
  event.retained = static_cast<int>(report.diff.retained.size());
  session.events.push_back(std::move(event));
  session.status.intervals_done = task.sim->interval();
  session.status.next_event_seq = session.events.size();
  events_cv_.notify_all();
  return task.sim->interval() < task.target_intervals;
}

std::uint64_t SessionSupervisor::finish_task(Session& session) {
  SessionTask& task = *session.task;
  task.checkpointer->checkpoint_now(*task.sim);
  return task.sim->state_fingerprint();
}

std::uint64_t SessionSupervisor::run_attempt(Session& session,
                                             bool first_in_process) {
  session.task = build_task(session, first_in_process);
  while (step_task(session)) {
  }
  const std::uint64_t fingerprint = finish_task(session);
  session.task.reset();
  return fingerprint;
}

void SessionSupervisor::run_session(Session& session) {
  std::uint64_t id = 0;
  int start_attempt = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    id = session.status.id;
    start_attempt = session.status.attempts;
  }
  std::string last_error;
  for (int attempt = start_attempt + 1;; ++attempt) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      session.status.attempts = attempt;
    }
    journal_.started(id, attempt);
    try {
      const std::uint64_t fingerprint =
          run_attempt(session, attempt == start_attempt + 1);
      int intervals_done = 0;
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        intervals_done = session.status.intervals_done;
      }
      journal_.finished(id, fingerprint, intervals_done);
      const std::lock_guard<std::mutex> lock(mutex_);
      session.status.state = SessionState::kDone;
      session.status.fingerprint = fingerprint;
      bump_locked("server.completed");
      events_cv_.notify_all();
      return;
    } catch (const CancelledError& e) {
      session.task.reset();
      const std::lock_guard<std::mutex> lock(mutex_);
      switch (session.cancel_kind) {
        case CancelKind::kClient:
          journal_.cancelled(id, e.what());
          session.status.state = SessionState::kCancelled;
          session.status.error = e.what();
          bump_locked("server.cancelled");
          break;
        case CancelKind::kShutdown:
          // Deliberately no journal record: the next daemon's recovery
          // requeues this session exactly as after a crash.
          session.status.state = SessionState::kInterrupted;
          break;
        case CancelKind::kNone:  // the session's own deadline
          journal_.failed(id, e.what());
          session.status.state = SessionState::kFailed;
          session.status.error = e.what();
          bump_locked("server.deadline_failures");
          break;
      }
      events_cv_.notify_all();
      return;
    } catch (const std::exception& e) {
      session.task.reset();
      last_error = e.what();
    }

    if (attempt - start_attempt >= limits_.max_attempts) {
      journal_.quarantined(id, last_error);
      const std::lock_guard<std::mutex> lock(mutex_);
      session.status.state = SessionState::kQuarantined;
      session.status.error = last_error;
      bump_locked("server.quarantined");
      events_cv_.notify_all();
      return;
    }

    {
      const std::lock_guard<std::mutex> lock(mutex_);
      bump_locked("server.retries");
    }
    // Cancellable exponential backoff (the same shape as
    // SweepRunner::run_supervised): first retry sleeps backoff_seconds,
    // doubling after. A deadline or cancel during the sleep wakes early.
    const double backoff =
        std::ldexp(limits_.backoff_seconds, attempt - start_attempt - 1);
    if (backoff > 0.0 && !session.token.wait_for(backoff)) {
      const std::lock_guard<std::mutex> lock(mutex_);
      switch (session.cancel_kind) {
        case CancelKind::kClient:
          journal_.cancelled(id, "cancelled during retry backoff");
          session.status.state = SessionState::kCancelled;
          session.status.error = "cancelled during retry backoff";
          bump_locked("server.cancelled");
          break;
        case CancelKind::kShutdown:
          session.status.state = SessionState::kInterrupted;
          break;
        case CancelKind::kNone: {
          const std::string error =
              "session deadline expired during retry backoff (last error: " +
              last_error + ")";
          journal_.failed(id, error);
          session.status.state = SessionState::kFailed;
          session.status.error = error;
          bump_locked("server.deadline_failures");
          break;
        }
      }
      events_cv_.notify_all();
      return;
    }
  }
}

// ----------------------------------------------------- cooperative pool mode

void SessionSupervisor::promote_locked(Session& session) {
  if (pool_ == nullptr) return;
  if (session.status.state != SessionState::kRunning) return;
  if (session.slicing || session.queued_runnable) return;
  session.queued_runnable = true;
  run_queue_.push_back(session.status.id);
  work_cv_.notify_one();
}

SessionSupervisor::SliceOutcome SessionSupervisor::run_slice(
    Session& session) {
  std::uint64_t id = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    id = session.status.id;
  }
  try {
    if (session.task == nullptr) {
      int attempt = 0;
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        attempt = ++session.status.attempts;
      }
      journal_.started(id, attempt);
      session.task = build_task(session, attempt == session.start_attempt + 1);
    }
    // Cancellation between slices surfaces inside sim.advance() (the
    // pipeline polls the token at every adaptation point), the same yield
    // points lane mode relies on.
    if (step_task(session)) return SliceOutcome::kYield;
    const std::uint64_t fingerprint = finish_task(session);
    session.task.reset();
    int intervals_done = 0;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      intervals_done = session.status.intervals_done;
    }
    journal_.finished(id, fingerprint, intervals_done);
    const std::lock_guard<std::mutex> lock(mutex_);
    session.status.state = SessionState::kDone;
    session.status.fingerprint = fingerprint;
    bump_locked("server.completed");
    events_cv_.notify_all();
    return SliceOutcome::kTerminal;
  } catch (const CancelledError& e) {
    session.task.reset();
    const std::lock_guard<std::mutex> lock(mutex_);
    switch (session.cancel_kind) {
      case CancelKind::kClient:
        journal_.cancelled(id, e.what());
        session.status.state = SessionState::kCancelled;
        session.status.error = e.what();
        bump_locked("server.cancelled");
        break;
      case CancelKind::kShutdown:
        // Deliberately no journal record: the next daemon's recovery
        // requeues this session exactly as after a crash.
        session.status.state = SessionState::kInterrupted;
        break;
      case CancelKind::kNone:  // the session's own deadline
        journal_.failed(id, e.what());
        session.status.state = SessionState::kFailed;
        session.status.error = e.what();
        bump_locked("server.deadline_failures");
        break;
    }
    events_cv_.notify_all();
    return SliceOutcome::kTerminal;
  } catch (const std::exception& e) {
    session.task.reset();
    const std::string error = e.what();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      session.last_error = error;
      if (session.status.attempts - session.start_attempt <
          limits_.max_attempts) {
        bump_locked("server.retries");
        // The exponential backoff run_session sleeps on becomes a parked
        // wake-up time: no thread waits on the session, the watchdog
        // promotes it once runnable_at passes (or its token trips).
        const double backoff = std::ldexp(
            limits_.backoff_seconds,
            session.status.attempts - session.start_attempt - 1);
        session.runnable_at =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(
                                   backoff > 0.0 ? backoff : 0.0));
        return SliceOutcome::kRetryLater;
      }
    }
    journal_.quarantined(id, error);
    const std::lock_guard<std::mutex> lock(mutex_);
    session.status.state = SessionState::kQuarantined;
    session.status.error = error;
    bump_locked("server.quarantined");
    events_cv_.notify_all();
    return SliceOutcome::kTerminal;
  }
}

void SessionSupervisor::worker_loop() {
  while (true) {
    Session* session = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return stopping_ || !run_queue_.empty() ||
               (!queue_.empty() && live_sessions_ < limits_.max_active);
      });
      if (stopping_) return;
      // Admit under capacity before slicing: admission is cheap (state
      // transition + deadline arming; the simulation is built lazily on
      // the first slice), and a full admitted set is what keeps every
      // worker busy.
      while (live_sessions_ < limits_.max_active) {
        const std::optional<std::uint64_t> next =
            queue_.pop_best(Clock::now());
        if (!next.has_value()) break;
        Session& admitted = *sessions_.at(*next);
        admitted.status.state = SessionState::kRunning;
        admitted.start_attempt = admitted.status.attempts;
        ++live_sessions_;
        const double deadline =
            admitted.status.spec.deadline_seconds > 0.0
                ? admitted.status.spec.deadline_seconds
                : limits_.session_deadline_seconds;
        if (deadline > 0.0 && !admitted.deadline_armed) {
          admitted.deadline_at =
              Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(deadline));
          admitted.deadline_armed = true;
        }
        admitted.queued_runnable = true;
        run_queue_.push_back(*next);
      }
      if (run_queue_.empty()) continue;
      session = sessions_.at(run_queue_.front()).get();
      run_queue_.pop_front();
      session->queued_runnable = false;
      session->slicing = true;
    }
    const auto slice_started = Clock::now();
    const SliceOutcome outcome = run_slice(*session);
    const double slice_seconds =
        std::chrono::duration<double>(Clock::now() - slice_started).count();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      session->slicing = false;
      session->task_seconds += slice_seconds;
      switch (outcome) {
        case SliceOutcome::kYield:
          // Round-robin: to the back of the runnable queue, so N light
          // sessions interleave instead of the first admitted running to
          // completion — and no session starves.
          if (!stopping_) {
            session->queued_runnable = true;
            run_queue_.push_back(session->status.id);
            work_cv_.notify_one();
          }
          break;
        case SliceOutcome::kRetryLater:
          break;  // parked; the watchdog promotes at runnable_at
        case SliceOutcome::kTerminal: {
          --live_sessions_;
          account_lane_time_locked(session->status.spec.tenant,
                                   session->task_seconds);
          if (session->status.state == SessionState::kDone) {
            TenantStats& tenant = tenants_[session->status.spec.tenant];
            tenant.tenant = session->status.spec.tenant;
            ++tenant.completed;
          }
          // Freed admission capacity: wake a worker to admit from the
          // fair queue.
          work_cv_.notify_one();
          break;
        }
      }
    }
  }
}

}  // namespace stormtrack
