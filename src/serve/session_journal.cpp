#include "serve/session_journal.hpp"

#include <utility>

#include "util/check.hpp"

namespace stormtrack {

namespace {

/// Journal record discriminators (wire-stable; append-only).
enum class Record : std::uint8_t {
  kSubmitted = 1,
  kStarted = 2,
  kFinished = 3,
  kFailed = 4,
  kQuarantined = 5,
  kCancelled = 6,
  kShed = 7,
};

}  // namespace

SessionJournal::SessionJournal(std::filesystem::path path, bool resume)
    : log_(std::move(path),
           FramedLog::Format{kSessionLogMagic, kSessionLogVersion,
                             /*fingerprint=*/0, "session journal"},
           resume, [this](BinaryReader& rec) { replay_record(rec); }) {}

void SessionJournal::replay_record(BinaryReader& rec) {
  const auto type = rec.get_u8("session record type");
  ST_CHECK_MSG(type >= static_cast<std::uint8_t>(Record::kSubmitted) &&
                   type <= static_cast<std::uint8_t>(Record::kShed),
               "session journal record has unknown type " << int{type});
  const std::uint64_t id = rec.get_u64("session record id");
  if (id > max_id_) max_id_ = id;

  if (static_cast<Record>(type) == Record::kSubmitted) {
    ReplayedSession session;
    session.id = id;
    session.spec = get_session_spec(rec);
    session.state = SessionState::kQueued;
    replayed_[id] = std::move(session);
    return;
  }

  const auto it = replayed_.find(id);
  ST_CHECK_MSG(it != replayed_.end(),
               "session journal records a transition for session "
                   << id << " that was never submitted — journal corrupt "
                   << "or mixed with another daemon's state directory");
  ReplayedSession& session = it->second;
  switch (static_cast<Record>(type)) {
    case Record::kSubmitted:
      break;  // handled above
    case Record::kStarted:
      session.state = SessionState::kRunning;
      session.attempts = rec.get_i32("session record attempt");
      break;
    case Record::kFinished:
      session.state = SessionState::kDone;
      session.fingerprint = rec.get_u64("session record fingerprint");
      session.intervals_done = rec.get_i32("session record intervals");
      break;
    case Record::kFailed:
      session.state = SessionState::kFailed;
      session.error = rec.get_string("session record error");
      break;
    case Record::kQuarantined:
      session.state = SessionState::kQuarantined;
      session.error = rec.get_string("session record error");
      break;
    case Record::kCancelled:
      session.state = SessionState::kCancelled;
      session.error = rec.get_string("session record reason");
      break;
    case Record::kShed:
      session.state = SessionState::kShed;
      break;
  }
}

namespace {

BinaryWriter record_head(Record type, std::uint64_t id) {
  BinaryWriter w;
  w.put_u8(static_cast<std::uint8_t>(type));
  w.put_u64(id);
  return w;
}

}  // namespace

bool SessionJournal::append_or_buffer(std::vector<std::byte> record) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!pending_.empty() && !flush_pending_locked()) {
    // Older records still stuck: this one must wait behind them so the
    // on-disk order always matches the logical order.
    pending_.push_back(std::move(record));
    return false;
  }
  if (log_.try_append(record)) return true;
  pending_.push_back(std::move(record));
  return false;
}

bool SessionJournal::flush_pending_locked() {
  while (!pending_.empty()) {
    if (!log_.try_append(pending_.front())) return false;
    pending_.pop_front();
  }
  return true;
}

bool SessionJournal::flush_pending() {
  const std::lock_guard<std::mutex> lock(mutex_);
  return flush_pending_locked();
}

std::size_t SessionJournal::pending_records() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return pending_.size();
}

bool SessionJournal::submitted(std::uint64_t id, const SessionSpec& spec) {
  BinaryWriter w = record_head(Record::kSubmitted, id);
  put_session_spec(w, spec);
  if (id > max_id_) max_id_ = id;
  return append_or_buffer(w.bytes());
}

bool SessionJournal::started(std::uint64_t id, int attempt) {
  BinaryWriter w = record_head(Record::kStarted, id);
  w.put_i32(attempt);
  return append_or_buffer(w.bytes());
}

bool SessionJournal::finished(std::uint64_t id, std::uint64_t fingerprint,
                              int intervals_done) {
  BinaryWriter w = record_head(Record::kFinished, id);
  w.put_u64(fingerprint);
  w.put_i32(intervals_done);
  return append_or_buffer(w.bytes());
}

bool SessionJournal::failed(std::uint64_t id, const std::string& error) {
  BinaryWriter w = record_head(Record::kFailed, id);
  w.put_string(error);
  return append_or_buffer(w.bytes());
}

bool SessionJournal::quarantined(std::uint64_t id, const std::string& error) {
  BinaryWriter w = record_head(Record::kQuarantined, id);
  w.put_string(error);
  return append_or_buffer(w.bytes());
}

bool SessionJournal::cancelled(std::uint64_t id, const std::string& reason) {
  BinaryWriter w = record_head(Record::kCancelled, id);
  w.put_string(reason);
  return append_or_buffer(w.bytes());
}

bool SessionJournal::shed(std::uint64_t id) {
  return append_or_buffer(record_head(Record::kShed, id).bytes());
}

}  // namespace stormtrack
