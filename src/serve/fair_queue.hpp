#pragma once

/// \file fair_queue.hpp
/// The stormtrackd admission queue: weighted priority lanes with aging.
///
/// PR 8's queue was a single vector popped by raw priority — under
/// sustained high-priority load a low-priority session could wait forever
/// (the ROADMAP's explicit fairness gap). FairQueue replaces it:
///
///   * **Lanes.** Queued sessions are grouped into per-priority lanes,
///     FIFO within a lane, so dispatch and shed decisions are O(lanes)
///     instead of O(sessions).
///   * **Aging credit.** A lane's *effective* priority is its nominal
///     priority plus one credit per `aging_seconds` its oldest entry has
///     waited. Any finite priority gap is therefore closed in bounded
///     time: a priority-0 session beats a steady stream of priority-9
///     submits after at most 9 x aging_seconds of waiting. Zero starvation
///     is a property of the queue, not of workload luck — the load bench
///     asserts it.
///   * **Shed order.** Under a full queue a strictly-higher-priority
///     submit sheds the entry with the lowest effective priority; ties
///     break toward the *newest* entry (largest id), so work that has
///     already waited longest is the last to be displaced.
///
/// All decisions take an explicit `now` so tests drive time directly; the
/// queue itself never reads the clock.

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

namespace stormtrack {

struct FairQueueConfig {
  /// Seconds of queue wait per +1 effective priority; <= 0 disables
  /// aging (raw-priority scheduling, starvation and all).
  double aging_seconds = 0.5;
};

/// See file comment. Not thread-safe — the supervisor guards it with its
/// session mutex like the rest of the scheduler state.
class FairQueue {
 public:
  using Clock = std::chrono::steady_clock;

  struct Entry {
    std::uint64_t id = 0;
    int priority = 0;
    Clock::time_point enqueued{};
  };

  explicit FairQueue(FairQueueConfig config = {}) : config_(config) {}

  void push(std::uint64_t id, int priority, Clock::time_point now);

  /// Remove and return the id with the highest effective priority; within
  /// a lane, FIFO. Ties across lanes go to the lane whose front entry has
  /// waited longest (then the lower id). Empty queue returns nullopt.
  std::optional<std::uint64_t> pop_best(Clock::time_point now);

  /// The entry a strictly-higher-priority submit would displace: lowest
  /// effective priority; within that lane the *newest* entry. Does not
  /// remove it. Empty queue returns nullopt.
  [[nodiscard]] std::optional<Entry> shed_victim(Clock::time_point now) const;

  /// Remove a specific id (cancel, shed). False when not queued.
  bool remove(std::uint64_t id);

  /// Nominal priority + aging credit at \p now.
  [[nodiscard]] int effective_priority(const Entry& entry,
                                       Clock::time_point now) const;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  /// Snapshot of every queued entry (lane order, FIFO within lanes).
  [[nodiscard]] std::vector<Entry> entries() const;

 private:
  FairQueueConfig config_;
  /// Lanes keyed by nominal priority, FIFO within each.
  std::map<int, std::deque<Entry>> lanes_;
  std::size_t size_ = 0;
};

}  // namespace stormtrack
