#pragma once

/// \file server.hpp
/// The stormtrackd socket front end: accepts Unix-domain connections and
/// translates protocol frames (serve/protocol.hpp) into SessionSupervisor
/// calls.
///
/// One thread accepts connections; each connection gets its own handler
/// thread (connections are few — this is an operator tool, not a web
/// server — and a blocking attach stream per client makes the handler
/// trivially correct). A protocol violation on one connection drops that
/// connection only. stop() closes the listening socket and shuts down
/// every open connection, so no handler blocks shutdown.
///
/// The server itself holds no session state: detach/reattach works
/// because sessions live in the supervisor keyed by id, and a client that
/// reconnects simply attaches to the id again (from any event seq).

#include <condition_variable>
#include <filesystem>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/supervisor.hpp"

namespace stormtrack {

struct ServerConfig {
  std::filesystem::path socket_path;
  int backlog = 16;
};

/// See file comment. start()/stop() are not thread-safe against each
/// other; everything else is internally synchronized.
class SessionServer {
 public:
  /// \p supervisor must outlive the server.
  SessionServer(SessionSupervisor& supervisor, ServerConfig config);
  ~SessionServer();

  SessionServer(const SessionServer&) = delete;
  SessionServer& operator=(const SessionServer&) = delete;

  /// Bind the socket and start accepting. Throws CheckError when the
  /// socket cannot be bound.
  void start();

  /// Close the listening socket and every connection, join all threads,
  /// remove the socket file. Idempotent.
  void stop();

  /// True once a client has requested shutdown (kShutdown) or stop() ran.
  [[nodiscard]] bool shutdown_requested() const;
  /// Block until shutdown_requested().
  void wait_shutdown_requested();

  [[nodiscard]] const std::filesystem::path& socket_path() const {
    return config_.socket_path;
  }
  /// Connections accepted over the server's lifetime.
  [[nodiscard]] int connections_handled() const;

 private:
  void accept_loop();
  /// One connection's request loop. The wrapping handler thread owns
  /// \p fd: it deregisters the connection and closes the fd afterwards.
  void handle_connection(int fd);
  void handle_attach(int fd, BinaryReader& request);
  /// Join handler threads whose connections have finished, so a long-
  /// lived daemon does not accumulate one dead thread per connection.
  /// Called from accept_loop between accepts; stop() joins the rest.
  void reap_finished_handlers();

  SessionSupervisor& supervisor_;
  ServerConfig config_;

  mutable std::mutex mutex_;
  mutable std::condition_variable shutdown_cv_;
  int listen_fd_ = -1;
  bool running_ = false;
  bool shutdown_requested_ = false;
  int connections_ = 0;
  /// Live connection fds by handler id, so stop() can unblock handlers.
  /// An entry is erased (under mutex_) *before* its fd is closed, so
  /// stop() never shuts down a closed — possibly reused — descriptor.
  std::map<int, int> open_fds_;
  int next_handler_ = 0;
  std::thread accept_thread_;
  /// Handler threads by handler id; finished ones queue their id in
  /// finished_handlers_ for reaping.
  std::map<int, std::thread> handlers_;
  std::vector<int> finished_handlers_;
};

}  // namespace stormtrack
