#pragma once

/// \file server.hpp
/// The stormtrackd socket front end: accepts Unix-domain connections and
/// translates protocol frames (serve/protocol.hpp) into SessionSupervisor
/// calls.
///
/// One thread accepts connections; each connection gets its own handler
/// thread (connections are few — this is an operator tool, not a web
/// server — and a blocking attach stream per client makes the handler
/// trivially correct). A protocol violation on one connection drops that
/// connection only. stop() closes the listening socket and shuts down
/// every open connection, so no handler blocks shutdown.
///
/// The server itself holds no session state: detach/reattach works
/// because sessions live in the supervisor keyed by id, and a client that
/// reconnects simply attaches to the id again (from any event seq).
///
/// Hostile-client hardening: a client that starts a frame must finish it
/// within read_deadline_seconds (slowloris byte-dripping drops the
/// connection, idling between frames does not); a peer that stops reading
/// must drain each reply within write_deadline_seconds (a stalled attach
/// reader is dropped instead of pinning a handler thread); an attach
/// reader that falls behind max_event_backlog events gets the newest
/// events only (drop-oldest, visible as a seq gap). Malformed frames —
/// bad magic, oversized length, CRC mismatch, truncation — already drop
/// the connection via recv_frame; the protocol fuzz test keeps that path
/// honest under ASan.

#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/supervisor.hpp"

namespace stormtrack {

struct ServerConfig {
  std::filesystem::path socket_path;
  int backlog = 16;
  /// Once a client starts a frame it must finish it within this budget or
  /// the connection is dropped (anti-slowloris); <= 0 disables. Idling
  /// *between* frames is always legal.
  double read_deadline_seconds = 10.0;
  /// A reply or event frame must be accepted by the peer's socket within
  /// this budget or the connection is dropped (a stalled attach reader
  /// must not pin a handler thread); <= 0 disables.
  double write_deadline_seconds = 10.0;
  /// Most events an attach stream sends from one wait_events() batch; a
  /// reader that fell further behind gets only the newest
  /// max_event_backlog events (oldest dropped — seq numbers expose the
  /// gap). <= 0 disables the bound.
  int max_event_backlog = 1024;
  /// SO_SNDBUF for accepted connections; 0 keeps the OS default. Tests
  /// shrink it so a stalled reader fills the socket quickly.
  int send_buffer_bytes = 0;
};

/// See file comment. start()/stop() are not thread-safe against each
/// other; everything else is internally synchronized.
class SessionServer {
 public:
  /// \p supervisor must outlive the server.
  SessionServer(SessionSupervisor& supervisor, ServerConfig config);
  ~SessionServer();

  SessionServer(const SessionServer&) = delete;
  SessionServer& operator=(const SessionServer&) = delete;

  /// Bind the socket and start accepting. Throws CheckError when the
  /// socket cannot be bound.
  void start();

  /// Close the listening socket and every connection, join all threads,
  /// remove the socket file. Idempotent.
  void stop();

  /// True once a client has requested shutdown (kShutdown) or stop() ran.
  [[nodiscard]] bool shutdown_requested() const;
  /// Block until shutdown_requested().
  void wait_shutdown_requested();

  [[nodiscard]] const std::filesystem::path& socket_path() const {
    return config_.socket_path;
  }
  /// Connections accepted over the server's lifetime.
  [[nodiscard]] int connections_handled() const;
  /// Connections dropped for violating a read or write deadline.
  [[nodiscard]] int deadline_drops() const;
  /// Attach-stream events dropped because a reader fell behind
  /// max_event_backlog (drop-oldest).
  [[nodiscard]] std::int64_t events_dropped() const;

 private:
  void accept_loop();
  /// One connection's request loop. The wrapping handler thread owns
  /// \p fd: it deregisters the connection and closes the fd afterwards.
  void handle_connection(int fd);
  void handle_attach(int fd, BinaryReader& request);
  /// Join handler threads whose connections have finished, so a long-
  /// lived daemon does not accumulate one dead thread per connection.
  /// Called from accept_loop between accepts; stop() joins the rest.
  void reap_finished_handlers();

  SessionSupervisor& supervisor_;
  ServerConfig config_;

  mutable std::mutex mutex_;
  mutable std::condition_variable shutdown_cv_;
  int listen_fd_ = -1;
  bool running_ = false;
  bool shutdown_requested_ = false;
  int connections_ = 0;
  int deadline_drops_ = 0;
  std::int64_t events_dropped_ = 0;
  /// Live connection fds by handler id, so stop() can unblock handlers.
  /// An entry is erased (under mutex_) *before* its fd is closed, so
  /// stop() never shuts down a closed — possibly reused — descriptor.
  std::map<int, int> open_fds_;
  int next_handler_ = 0;
  std::thread accept_thread_;
  /// Handler threads by handler id; finished ones queue their id in
  /// finished_handlers_ for reaping.
  std::map<int, std::thread> handlers_;
  std::vector<int> finished_handlers_;
};

}  // namespace stormtrack
