#pragma once

/// \file session_journal.hpp
/// Crash-safe lifecycle journal for stormtrackd sessions.
///
/// The daemon appends one record per lifecycle transition — submitted,
/// started, finished, failed, quarantined, cancelled, shed — to a
/// FramedLog ("STSL" magic) under its state directory. Because every
/// append is fsynced and CRC-framed, a daemon killed at *any* instant
/// (SIGKILL included) leaves a journal whose replay tells the next daemon
/// exactly how far each session got:
///
///   - last record kFinished/kFailed/kQuarantined/kCancelled/kShed: the
///     session is terminal; recovery only reports it.
///   - last record kSubmitted or kStarted: the daemon died with the
///     session queued or mid-run. Recovery requeues it; a started session
///     resumes from its per-session checkpoint directory and lands on the
///     same state fingerprint as an uninterrupted run.
///
/// A graceful stop() deliberately writes no terminal record for sessions
/// still queued or running, so SIGTERM, SIGKILL, and a pulled power cord
/// all recover through one code path.
///
/// **Degraded mode.** A journal append can fail — disk full, dying device,
/// or an injected fault (util/fs_fault.hpp). Instead of wedging the daemon
/// or losing the transition, the journal buffers the encoded record in
/// memory (FIFO) and reports the failure to the caller; every later append
/// first drains the buffer so the on-disk record order always matches the
/// logical order. The supervisor surfaces a non-empty buffer as the
/// `degraded` health state, retries the flush from its watchdog, and flips
/// back to `healthy` once writes succeed again. Only a crash *while
/// degraded* can lose the buffered transitions — and then recovery merely
/// re-runs the affected sessions, it never invents or corrupts state.

#include <cstdint>
#include <deque>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "ckpt/framed_log.hpp"
#include "serve/session.hpp"

namespace stormtrack {

/// "STSL" little-endian.
inline constexpr std::uint32_t kSessionLogMagic = 0x4C53'5453u;
/// v2: SessionSpec gained the tenant accounting label (wire and journal
/// share the spec codec). FramedLog refuses a v1 journal on resume — the
/// operator must start a fresh state directory after upgrading.
inline constexpr std::uint32_t kSessionLogVersion = 2;

/// One session's journal history folded to its outcome.
struct ReplayedSession {
  std::uint64_t id = 0;
  SessionSpec spec;
  /// Folded state. kQueued / kRunning here mean the previous daemon died
  /// before the session finished — recovery requeues such sessions.
  SessionState state = SessionState::kQueued;
  int attempts = 0;
  std::uint64_t fingerprint = 0;  ///< Valid when state == kDone.
  int intervals_done = 0;         ///< Valid when state == kDone.
  std::string error;
};

/// See file comment. Appends are thread-safe (FramedLog locks); replay
/// happens in the constructor.
class SessionJournal {
 public:
  /// Opens (resume = replay an existing journal, tolerating a torn tail)
  /// or creates the journal at \p path.
  SessionJournal(std::filesystem::path path, bool resume);

  /// Sessions reconstructed from the journal, by id. Populated only when
  /// constructed with resume = true on an existing file.
  [[nodiscard]] const std::map<std::uint64_t, ReplayedSession>& replayed()
      const {
    return replayed_;
  }

  /// Largest session id ever journaled (0 when none) — the next daemon
  /// continues the id sequence from here so ids never collide across
  /// restarts.
  [[nodiscard]] std::uint64_t max_id() const { return max_id_; }

  /// Lifecycle appends. Each returns true when the record is durable on
  /// disk, false when it was buffered because the write failed (degraded
  /// mode; see the file comment). Callers may ignore the result — the
  /// record is never dropped either way.
  bool submitted(std::uint64_t id, const SessionSpec& spec);
  bool started(std::uint64_t id, int attempt);
  bool finished(std::uint64_t id, std::uint64_t fingerprint,
                int intervals_done);
  bool failed(std::uint64_t id, const std::string& error);
  bool quarantined(std::uint64_t id, const std::string& error);
  bool cancelled(std::uint64_t id, const std::string& reason);
  bool shed(std::uint64_t id);

  /// Retry writing buffered records, oldest first; stops at the first
  /// failure. Returns true when the buffer is empty afterwards (healthy).
  bool flush_pending();

  /// Buffered (not yet durable) records.
  [[nodiscard]] std::size_t pending_records() const;
  /// True when every appended record is durable (no pending buffer).
  [[nodiscard]] bool healthy() const { return pending_records() == 0; }
  /// Append attempts that failed (cumulative, incl. flush retries).
  [[nodiscard]] int write_failures() const { return log_.write_failures(); }
  [[nodiscard]] std::string last_write_error() const {
    return log_.last_write_error();
  }

  [[nodiscard]] int torn_records_dropped() const {
    return log_.torn_records_dropped();
  }
  [[nodiscard]] int appends() const { return log_.appends(); }
  [[nodiscard]] const std::filesystem::path& path() const {
    return log_.path();
  }

 private:
  void replay_record(BinaryReader& rec);
  /// Drain the pending buffer then append \p record (or buffer it).
  bool append_or_buffer(std::vector<std::byte> record);
  /// mutex_ held.
  bool flush_pending_locked();

  /// Declared before log_: FramedLog's constructor replays into them.
  std::map<std::uint64_t, ReplayedSession> replayed_;
  std::uint64_t max_id_ = 0;
  FramedLog log_;
  /// Guards pending_ — NOT the log itself (FramedLog locks internally),
  /// but the FIFO-order invariant: no record may reach the log while an
  /// older one still waits in the buffer.
  mutable std::mutex mutex_;
  std::deque<std::vector<std::byte>> pending_;
};

}  // namespace stormtrack
