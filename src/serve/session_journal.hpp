#pragma once

/// \file session_journal.hpp
/// Crash-safe lifecycle journal for stormtrackd sessions.
///
/// The daemon appends one record per lifecycle transition — submitted,
/// started, finished, failed, quarantined, cancelled, shed — to a
/// FramedLog ("STSL" magic) under its state directory. Because every
/// append is fsynced and CRC-framed, a daemon killed at *any* instant
/// (SIGKILL included) leaves a journal whose replay tells the next daemon
/// exactly how far each session got:
///
///   - last record kFinished/kFailed/kQuarantined/kCancelled/kShed: the
///     session is terminal; recovery only reports it.
///   - last record kSubmitted or kStarted: the daemon died with the
///     session queued or mid-run. Recovery requeues it; a started session
///     resumes from its per-session checkpoint directory and lands on the
///     same state fingerprint as an uninterrupted run.
///
/// A graceful stop() deliberately writes no terminal record for sessions
/// still queued or running, so SIGTERM, SIGKILL, and a pulled power cord
/// all recover through one code path.

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>

#include "ckpt/framed_log.hpp"
#include "serve/session.hpp"

namespace stormtrack {

/// "STSL" little-endian.
inline constexpr std::uint32_t kSessionLogMagic = 0x4C53'5453u;
inline constexpr std::uint32_t kSessionLogVersion = 1;

/// One session's journal history folded to its outcome.
struct ReplayedSession {
  std::uint64_t id = 0;
  SessionSpec spec;
  /// Folded state. kQueued / kRunning here mean the previous daemon died
  /// before the session finished — recovery requeues such sessions.
  SessionState state = SessionState::kQueued;
  int attempts = 0;
  std::uint64_t fingerprint = 0;  ///< Valid when state == kDone.
  int intervals_done = 0;         ///< Valid when state == kDone.
  std::string error;
};

/// See file comment. Appends are thread-safe (FramedLog locks); replay
/// happens in the constructor.
class SessionJournal {
 public:
  /// Opens (resume = replay an existing journal, tolerating a torn tail)
  /// or creates the journal at \p path.
  SessionJournal(std::filesystem::path path, bool resume);

  /// Sessions reconstructed from the journal, by id. Populated only when
  /// constructed with resume = true on an existing file.
  [[nodiscard]] const std::map<std::uint64_t, ReplayedSession>& replayed()
      const {
    return replayed_;
  }

  /// Largest session id ever journaled (0 when none) — the next daemon
  /// continues the id sequence from here so ids never collide across
  /// restarts.
  [[nodiscard]] std::uint64_t max_id() const { return max_id_; }

  void submitted(std::uint64_t id, const SessionSpec& spec);
  void started(std::uint64_t id, int attempt);
  void finished(std::uint64_t id, std::uint64_t fingerprint,
                int intervals_done);
  void failed(std::uint64_t id, const std::string& error);
  void quarantined(std::uint64_t id, const std::string& error);
  void cancelled(std::uint64_t id, const std::string& reason);
  void shed(std::uint64_t id);

  [[nodiscard]] int torn_records_dropped() const {
    return log_.torn_records_dropped();
  }
  [[nodiscard]] int appends() const { return log_.appends(); }
  [[nodiscard]] const std::filesystem::path& path() const {
    return log_.path();
  }

 private:
  void replay_record(BinaryReader& rec);

  /// Declared before log_: FramedLog's constructor replays into them.
  std::map<std::uint64_t, ReplayedSession> replayed_;
  std::uint64_t max_id_ = 0;
  FramedLog log_;
};

}  // namespace stormtrack
