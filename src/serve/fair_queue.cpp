#include "serve/fair_queue.hpp"

#include <limits>

namespace stormtrack {

void FairQueue::push(std::uint64_t id, int priority, Clock::time_point now) {
  lanes_[priority].push_back(Entry{id, priority, now});
  ++size_;
}

int FairQueue::effective_priority(const Entry& entry,
                                  Clock::time_point now) const {
  if (config_.aging_seconds <= 0.0) return entry.priority;
  const double waited =
      std::chrono::duration<double>(now - entry.enqueued).count();
  if (waited <= 0.0) return entry.priority;
  const double credit = waited / config_.aging_seconds;
  // Cap the credit so a pathological wait cannot overflow int arithmetic;
  // 1e6 levels is already far beyond any real priority gap.
  constexpr double kMaxCredit = 1e6;
  return entry.priority +
         static_cast<int>(credit < kMaxCredit ? credit : kMaxCredit);
}

std::optional<std::uint64_t> FairQueue::pop_best(Clock::time_point now) {
  std::map<int, std::deque<Entry>>::iterator best = lanes_.end();
  int best_effective = std::numeric_limits<int>::min();
  for (auto it = lanes_.begin(); it != lanes_.end(); ++it) {
    if (it->second.empty()) continue;
    // FIFO within a lane means the front entry always has the lane's
    // highest aging credit — it decides for the whole lane.
    const Entry& front = it->second.front();
    const int effective = effective_priority(front, now);
    const bool wins =
        best == lanes_.end() || effective > best_effective ||
        (effective == best_effective &&
         (front.enqueued < best->second.front().enqueued ||
          (front.enqueued == best->second.front().enqueued &&
           front.id < best->second.front().id)));
    if (wins) {
      best = it;
      best_effective = effective;
    }
  }
  if (best == lanes_.end()) return std::nullopt;
  const std::uint64_t id = best->second.front().id;
  best->second.pop_front();
  if (best->second.empty()) lanes_.erase(best);
  --size_;
  return id;
}

std::optional<FairQueue::Entry> FairQueue::shed_victim(
    Clock::time_point now) const {
  const Entry* victim = nullptr;
  int victim_effective = 0;
  for (const auto& [priority, lane] : lanes_) {
    if (lane.empty()) continue;
    // The lane's newest entry (back) has the least aging credit, so it is
    // both the lane's lowest effective priority and the preferred victim
    // under the newest-first tie-break.
    const Entry& back = lane.back();
    const int effective = effective_priority(back, now);
    const bool loses =
        victim == nullptr || effective < victim_effective ||
        (effective == victim_effective &&
         (back.enqueued > victim->enqueued ||
          (back.enqueued == victim->enqueued && back.id > victim->id)));
    if (loses) {
      victim = &back;
      victim_effective = effective;
    }
  }
  if (victim == nullptr) return std::nullopt;
  return *victim;
}

bool FairQueue::remove(std::uint64_t id) {
  for (auto it = lanes_.begin(); it != lanes_.end(); ++it) {
    std::deque<Entry>& lane = it->second;
    for (auto e = lane.begin(); e != lane.end(); ++e) {
      if (e->id != id) continue;
      lane.erase(e);
      if (lane.empty()) lanes_.erase(it);
      --size_;
      return true;
    }
  }
  return false;
}

std::vector<FairQueue::Entry> FairQueue::entries() const {
  std::vector<Entry> out;
  out.reserve(size_);
  for (const auto& [priority, lane] : lanes_)
    out.insert(out.end(), lane.begin(), lane.end());
  return out;
}

}  // namespace stormtrack
