#pragma once

/// \file ground_truth.hpp
/// Synthetic "actual" nest execution cost.
///
/// The reproduction has no WRF and no Blue Gene/L, so something must play
/// the role of reality for the execution-time experiments: this analytic
/// cost function is the simulator's hidden truth. It captures the two
/// effects the paper's model and discussion rely on:
///
///  * work scales with the nest's grid points and divides over processors;
///  * halo exchange scales with the per-processor block perimeter, so
///    *skewed processor rectangles run slower than square-like ones*
///    (the root cause of the diffusion method's ~4% execution-time penalty,
///    §V-D, and of the Huffman tree's square-like splits, §IV-A).
///
/// The performance model (exec_model.hpp) never sees these coefficients; it
/// only observes noisy profiled samples, like the real system.

#include "util/check.hpp"

namespace stormtrack {

/// Nest domain extent in fine-grid points.
struct NestShape {
  int nx = 0;
  int ny = 0;
};

/// Coefficients of the hidden cost model; defaults are calibrated to the
/// Blue Gene/L era (700 MHz cores, full WRF physics ≈ 10⁴ flops per grid
/// point-level): a ~300×300 nest on ~300 processors costs ~0.5 s per 4 km
/// time step, putting a 2-minute adaptation interval (~5 nest steps) in
/// the regime of the paper's Fig. 12 totals.
struct GroundTruthParams {
  double per_point_seconds = 2.2e-5;   ///< Compute cost per grid point-step.
  int vertical_levels = 27;            ///< WRF-like vertical column depth.
  double halo_point_seconds = 5.5e-5;  ///< Cost per halo perimeter point.
  double fixed_overhead = 5.0e-2;      ///< Per-step fixed cost (s).
};

/// Deterministic hidden cost oracle.
class GroundTruthCost {
 public:
  explicit GroundTruthCost(GroundTruthParams params = {}) : p_(params) {}

  /// Actual per-step execution time of a nest of \p shape on a pw×ph
  /// processor rectangle.
  [[nodiscard]] double execution_time(const NestShape& shape, int pw,
                                      int ph) const {
    ST_CHECK_MSG(shape.nx > 0 && shape.ny > 0,
                 "nest shape must be positive, got " << shape.nx << "x"
                                                     << shape.ny);
    ST_CHECK_MSG(pw > 0 && ph > 0,
                 "processor rect must be positive, got " << pw << "x" << ph);
    const double points =
        static_cast<double>(shape.nx) * shape.ny * p_.vertical_levels;
    const double procs = static_cast<double>(pw) * ph;
    // Per-processor block dimensions (fractional is fine for a cost model).
    const double bx = static_cast<double>(shape.nx) / pw;
    const double by = static_cast<double>(shape.ny) / ph;
    const double compute = p_.per_point_seconds * points / procs;
    const double halo =
        p_.halo_point_seconds * 2.0 * (bx + by) * p_.vertical_levels;
    return compute + halo + p_.fixed_overhead;
  }

  /// Convenience overload for a square-ish processor count (used when only
  /// a count, not a rectangle, is known — the situation of the paper's
  /// prediction model).
  [[nodiscard]] double execution_time(const NestShape& shape,
                                      int procs) const;

  [[nodiscard]] const GroundTruthParams& params() const { return p_; }

 private:
  GroundTruthParams p_;
};

}  // namespace stormtrack
