#pragma once

/// \file delaunay.hpp
/// 2D Delaunay triangulation (Bowyer–Watson) and scattered-data linear
/// interpolation.
///
/// The paper's execution-time model (§IV-C-2) profiles 13 domain sizes and
/// "interpolates the execution times of the nests formed in our simulation
/// using Delaunay triangulation". This is that machinery, built from
/// scratch: triangulate the profiled (nx, ny) sample sites once, then
/// evaluate queries by barycentric interpolation within the containing
/// triangle. Queries outside the convex hull clamp to the nearest sample
/// site (documented deviation: the paper does not specify extrapolation).

#include <array>
#include <atomic>
#include <cstddef>
#include <span>
#include <vector>

namespace stormtrack {

/// 2D point (for the execution model: x = nest nx, y = nest ny).
struct Point2 {
  double x = 0.0;
  double y = 0.0;
  friend constexpr bool operator==(const Point2&, const Point2&) = default;
};

/// Triangle as indices into the site array.
using Triangle = std::array<int, 3>;

/// Delaunay triangulation of a set of (distinct, non-collinear) sites.
class Delaunay2D {
 public:
  /// Triangulate \p sites. Requires >= 3 sites, at least three of them
  /// non-collinear, and no duplicates (checked).
  explicit Delaunay2D(std::vector<Point2> sites);

  // Copies/moves drop the locate hint (it is only a cache; carrying it
  // over would be correct too, but resetting keeps the semantics obvious).
  Delaunay2D(const Delaunay2D& other)
      : sites_(other.sites_), triangles_(other.triangles_) {}
  Delaunay2D(Delaunay2D&& other) noexcept
      : sites_(std::move(other.sites_)),
        triangles_(std::move(other.triangles_)) {}
  Delaunay2D& operator=(const Delaunay2D& other) {
    sites_ = other.sites_;
    triangles_ = other.triangles_;
    locate_hint_.store(-1, std::memory_order_relaxed);
    return *this;
  }
  Delaunay2D& operator=(Delaunay2D&& other) noexcept {
    sites_ = std::move(other.sites_);
    triangles_ = std::move(other.triangles_);
    locate_hint_.store(-1, std::memory_order_relaxed);
    return *this;
  }

  [[nodiscard]] const std::vector<Point2>& sites() const { return sites_; }
  [[nodiscard]] const std::vector<Triangle>& triangles() const {
    return triangles_;
  }

  /// Index of a triangle containing \p p (boundary counts as inside),
  /// or -1 when p lies outside the convex hull.
  ///
  /// Seeded with a last-hit hint: the previous successful locate's triangle
  /// is tried first and short-circuits the scan — but only when \p p is
  /// *strictly* interior to it (every edge cross-product above a positive
  /// tolerance). Strict interiority makes the containing triangle unique
  /// (triangle interiors are disjoint and the scan's boundary tolerance is
  /// orders of magnitude smaller than the query lattice — model queries are
  /// integer (nx, ny) shapes), so the hinted answer always equals the scan
  /// answer and results stay independent of query order and thread
  /// schedule. The hint is a relaxed atomic: safe for concurrent queries,
  /// at worst a wasted shortcut attempt.
  [[nodiscard]] int locate(const Point2& p) const;

  /// Barycentric coordinates of \p p with respect to triangle \p t.
  [[nodiscard]] std::array<double, 3> barycentric(int t,
                                                  const Point2& p) const;

  /// Index of the site nearest to \p p.
  [[nodiscard]] int nearest_site(const Point2& p) const;

 private:
  /// True when \p p is strictly interior to triangle \p t (positive
  /// tolerance on every edge) — the acceptance test for the locate hint.
  [[nodiscard]] bool strictly_inside(int t, const Point2& p) const;

  std::vector<Point2> sites_;
  std::vector<Triangle> triangles_;
  /// Last successfully located triangle, or -1; pure cache.
  mutable std::atomic<int> locate_hint_{-1};
};

/// Piecewise-linear interpolant over scattered sites: Delaunay + barycentric
/// inside the hull, nearest-site value outside.
class ScatteredInterpolant {
 public:
  /// One value per site.
  ScatteredInterpolant(std::vector<Point2> sites, std::vector<double> values);

  [[nodiscard]] double operator()(const Point2& p) const;

  [[nodiscard]] const Delaunay2D& triangulation() const { return tri_; }

 private:
  Delaunay2D tri_;
  std::vector<double> values_;
};

}  // namespace stormtrack
