#include "perfmodel/ground_truth.hpp"

#include <cmath>

namespace stormtrack {

double GroundTruthCost::execution_time(const NestShape& shape,
                                       int procs) const {
  ST_CHECK_MSG(procs > 0, "processor count must be positive, got " << procs);
  // Most-square rectangle for the given count.
  int pw = 1;
  for (int w = 1; w * w <= procs; ++w)
    if (procs % w == 0) pw = w;
  return execution_time(shape, pw, procs / pw);
}

}  // namespace stormtrack
