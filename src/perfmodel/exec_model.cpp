#include "perfmodel/exec_model.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace stormtrack {

ProfileConfig ProfileConfig::paper_default() {
  ProfileConfig c;
  // 13 domain sizes spanning the paper's nest range (175–361 points per
  // side) with margin on both ends; deliberately not axis-aligned so the
  // Delaunay triangulation is non-degenerate.
  c.domains = {
      NestShape{120, 120}, NestShape{160, 200}, NestShape{200, 160},
      NestShape{180, 320}, NestShape{320, 180}, NestShape{240, 240},
      NestShape{200, 349}, NestShape{280, 320}, NestShape{360, 240},
      NestShape{361, 361}, NestShape{300, 420}, NestShape{420, 300},
      NestShape{440, 440},
  };
  // 10 processor counts: the sub-rectangle sizes seen at 256–1024 cores.
  c.proc_counts = {32, 64, 96, 128, 192, 256, 384, 512, 768, 1024};
  return c;
}

ExecTimeModel::ExecTimeModel(const GroundTruthCost& truth,
                             ProfileConfig config)
    : config_(std::move(config)) {
  ST_CHECK_MSG(config_.domains.size() >= 3,
               "need at least 3 profiled domains for triangulation");
  ST_CHECK_MSG(!config_.proc_counts.empty(),
               "need at least one profiled processor count");
  std::sort(config_.proc_counts.begin(), config_.proc_counts.end());
  ST_CHECK_MSG(config_.proc_counts.front() >= 1,
               "processor counts must be positive");

  std::vector<Point2> sites;
  sites.reserve(config_.domains.size());
  for (const NestShape& d : config_.domains)
    sites.push_back(Point2{static_cast<double>(d.nx),
                           static_cast<double>(d.ny)});

  Xoshiro256 rng(config_.noise_seed);
  per_proc_count_.reserve(config_.proc_counts.size());
  for (int p : config_.proc_counts) {
    std::vector<double> values;
    values.reserve(config_.domains.size());
    for (const NestShape& d : config_.domains) {
      const double t = truth.execution_time(d, p);
      // Multiplicative measurement noise, floored so a wild draw cannot
      // produce a non-positive "measured" time.
      const double measured =
          t * std::max(0.2, 1.0 + config_.noise_rel_stdev * rng.normal());
      values.push_back(measured);
    }
    per_proc_count_.emplace_back(sites, std::move(values));
  }
}

double ExecTimeModel::predict(const NestShape& shape, int procs) const {
  ST_CHECK_MSG(shape.nx > 0 && shape.ny > 0, "nest shape must be positive");
  ST_CHECK_MSG(procs > 0, "processor count must be positive");
  cache_lookups_.fetch_add(1, std::memory_order_relaxed);
  const CacheKey key{shape.nx, shape.ny, procs};
  {
    std::shared_lock lock(cache_mutex_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
  }
  cache_misses_.fetch_add(1, std::memory_order_relaxed);
  // The interpolation is a pure deterministic function of (shape, procs),
  // so a racing duplicate computation stores the identical double — cached
  // and cold predictions are bit-for-bit the same regardless of thread
  // interleaving.
  const double t = predict_uncached(shape, procs);
  {
    std::unique_lock lock(cache_mutex_);
    cache_.emplace(key, t);
  }
  return t;
}

ExecModelCacheStats ExecTimeModel::cache_stats() const {
  ExecModelCacheStats s;
  s.lookups = cache_lookups_.load(std::memory_order_relaxed);
  s.misses = cache_misses_.load(std::memory_order_relaxed);
  return s;
}

void ExecTimeModel::clear_cache_stats() const {
  cache_lookups_.store(0, std::memory_order_relaxed);
  cache_misses_.store(0, std::memory_order_relaxed);
}

double ExecTimeModel::predict_uncached(const NestShape& shape,
                                       int procs) const {
  const Point2 q{static_cast<double>(shape.nx),
                 static_cast<double>(shape.ny)};
  const auto& pcs = config_.proc_counts;

  // Clamp outside the profiled processor range.
  if (procs <= pcs.front()) return per_proc_count_.front()(q);
  if (procs >= pcs.back()) return per_proc_count_.back()(q);

  // Linear interpolation between the two bracketing profiled counts
  // (§IV-C-2: "we perform linear interpolation to predict the execution
  // time on desired number of processors").
  const auto hi =
      std::lower_bound(pcs.begin(), pcs.end(), procs) - pcs.begin();
  const auto lo = hi - 1;
  const double t_lo = per_proc_count_[static_cast<std::size_t>(lo)](q);
  const double t_hi = per_proc_count_[static_cast<std::size_t>(hi)](q);
  const double frac = static_cast<double>(procs - pcs[lo]) /
                      static_cast<double>(pcs[hi] - pcs[lo]);
  return t_lo + frac * (t_hi - t_lo);
}

std::vector<double> weight_ratios(const ExecTimeModel& model,
                                  std::span<const NestShape> shapes,
                                  int total_procs) {
  std::vector<double> w;
  w.reserve(shapes.size());
  double sum = 0.0;
  for (const NestShape& s : shapes) {
    // Weights are execution-time ratios at a common reference processor
    // count: a nest that runs longer deserves proportionally more
    // processors. Using the full machine as the fixed reference makes a
    // nest's weight a pure function of its shape, so the ratios among
    // retained nests — and therefore their rectangles — stay stable across
    // adaptation points (the paper's diffusion hinges on this).
    const double t = model.predict(s, total_procs);
    w.push_back(t);
    sum += t;
  }
  for (double& x : w) x /= sum;
  return w;
}

}  // namespace stormtrack
