#pragma once

/// \file exec_model.hpp
/// Execution-time prediction model (§IV-C-2).
///
/// The paper profiles a small set (13) of domain sizes on a few (10)
/// processor counts, interpolates over domain dimensions with Delaunay
/// triangulation, and linearly interpolates over the processor count. The
/// model's predictions feed two consumers:
///  * the nest *weights* (execution-time ratios) for tree construction;
///  * the dynamic strategy's execution-time term (§IV-C).
///
/// Profiled samples carry measurement noise, so predictions correlate with
/// — but do not equal — the ground truth (the paper reports Pearson r≈0.9).

#include <cstdint>
#include <span>
#include <vector>

#include "perfmodel/delaunay.hpp"
#include "perfmodel/ground_truth.hpp"

namespace stormtrack {

/// Configuration of the profiling campaign.
struct ProfileConfig {
  /// Domain sizes to profile; defaults (13 sites) cover the paper's nest
  /// size range (175×175 … 361×361) with margin.
  std::vector<NestShape> domains;
  /// Processor counts to profile; defaults are 10 counts up to 1024.
  std::vector<int> proc_counts;
  /// Relative measurement noise (stdev as a fraction of the true time).
  /// Calibrated so predicted-vs-actual execution times correlate at the
  /// paper's reported Pearson r ≈ 0.9 (§V-F).
  double noise_rel_stdev = 0.12;
  std::uint64_t noise_seed = 0xb10c5eedULL;

  /// The paper's campaign: 13 domains, 10 processor counts.
  [[nodiscard]] static ProfileConfig paper_default();
};

/// Delaunay-plus-linear execution-time predictor.
class ExecTimeModel {
 public:
  /// Run the profiling campaign against the hidden \p truth and fit.
  ExecTimeModel(const GroundTruthCost& truth, ProfileConfig config);

  /// Predicted per-step execution time of \p shape on \p procs processors.
  /// Processor counts outside the profiled range clamp to its ends.
  [[nodiscard]] double predict(const NestShape& shape, int procs) const;

  /// Profiled processor counts (ascending).
  [[nodiscard]] std::span<const int> proc_counts() const {
    return config_.proc_counts;
  }

  [[nodiscard]] const ProfileConfig& config() const { return config_; }

 private:
  ProfileConfig config_;
  /// One scattered interpolant over (nx, ny) per profiled processor count.
  std::vector<ScatteredInterpolant> per_proc_count_;
};

/// Normalized execution-time ratios for a set of nests on \p procs total
/// processors (the tree weights of §IV): predicted times scaled to sum 1.
[[nodiscard]] std::vector<double> weight_ratios(const ExecTimeModel& model,
                                                std::span<const NestShape>
                                                    shapes,
                                                int total_procs);

}  // namespace stormtrack
