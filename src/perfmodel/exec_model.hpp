#pragma once

/// \file exec_model.hpp
/// Execution-time prediction model (§IV-C-2).
///
/// The paper profiles a small set (13) of domain sizes on a few (10)
/// processor counts, interpolates over domain dimensions with Delaunay
/// triangulation, and linearly interpolates over the processor count. The
/// model's predictions feed two consumers:
///  * the nest *weights* (execution-time ratios) for tree construction;
///  * the dynamic strategy's execution-time term (§IV-C).
///
/// Profiled samples carry measurement noise, so predictions correlate with
/// — but do not equal — the ground truth (the paper reports Pearson r≈0.9).

#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "perfmodel/delaunay.hpp"
#include "perfmodel/ground_truth.hpp"

namespace stormtrack {

/// Configuration of the profiling campaign.
struct ProfileConfig {
  /// Domain sizes to profile; defaults (13 sites) cover the paper's nest
  /// size range (175×175 … 361×361) with margin.
  std::vector<NestShape> domains;
  /// Processor counts to profile; defaults are 10 counts up to 1024.
  std::vector<int> proc_counts;
  /// Relative measurement noise (stdev as a fraction of the true time).
  /// Calibrated so predicted-vs-actual execution times correlate at the
  /// paper's reported Pearson r ≈ 0.9 (§V-F).
  double noise_rel_stdev = 0.12;
  std::uint64_t noise_seed = 0xb10c5eedULL;

  /// The paper's campaign: 13 domains, 10 processor counts.
  [[nodiscard]] static ProfileConfig paper_default();
};

/// Hit/miss accounting of the prediction memo cache (process lifetime of
/// the model). Relaxed atomics — observability only.
struct ExecModelCacheStats {
  std::int64_t lookups = 0;  ///< predict() calls.
  std::int64_t misses = 0;   ///< Calls that ran the full interpolation.

  [[nodiscard]] std::int64_t hits() const { return lookups - misses; }
  [[nodiscard]] double hit_rate() const {
    if (lookups == 0) return 0.0;
    return static_cast<double>(hits()) / static_cast<double>(lookups);
  }
};

/// Delaunay-plus-linear execution-time predictor.
///
/// predict() memoizes on (nx, ny, procs): the same few nest shapes and
/// processor counts recur across both candidates, every adaptation point,
/// and every sweep case, so after warm-up a prediction is one shared-lock
/// hash lookup instead of two Delaunay point locations. Cached and cold
/// predictions are bit-identical (the interpolation is deterministic), and
/// the cache is thread-safe — candidate stages query the shared model
/// concurrently.
class ExecTimeModel {
 public:
  /// Run the profiling campaign against the hidden \p truth and fit.
  ExecTimeModel(const GroundTruthCost& truth, ProfileConfig config);

  /// Predicted per-step execution time of \p shape on \p procs processors.
  /// Processor counts outside the profiled range clamp to its ends.
  [[nodiscard]] double predict(const NestShape& shape, int procs) const;

  /// Profiled processor counts (ascending).
  [[nodiscard]] std::span<const int> proc_counts() const {
    return config_.proc_counts;
  }

  [[nodiscard]] const ProfileConfig& config() const { return config_; }

  /// Memo-cache accounting since construction (or the last
  /// clear_cache_stats()).
  [[nodiscard]] ExecModelCacheStats cache_stats() const;
  void clear_cache_stats() const;

 private:
  /// Memo key; shapes and processor counts are small ints, so a mixed
  /// 64-bit key is collision-free in practice and cheap to hash.
  struct CacheKey {
    int nx, ny, procs;
    friend bool operator==(const CacheKey&, const CacheKey&) = default;
  };
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& k) const {
      std::uint64_t h = static_cast<std::uint32_t>(k.nx);
      h = h * 0x9e3779b97f4a7c15ULL + static_cast<std::uint32_t>(k.ny);
      h = h * 0x9e3779b97f4a7c15ULL + static_cast<std::uint32_t>(k.procs);
      return static_cast<std::size_t>(h ^ (h >> 32));
    }
  };

  [[nodiscard]] double predict_uncached(const NestShape& shape,
                                        int procs) const;

  ProfileConfig config_;
  /// One scattered interpolant over (nx, ny) per profiled processor count.
  std::vector<ScatteredInterpolant> per_proc_count_;
  mutable std::shared_mutex cache_mutex_;
  mutable std::unordered_map<CacheKey, double, CacheKeyHash> cache_;
  mutable std::atomic<std::int64_t> cache_lookups_{0};
  mutable std::atomic<std::int64_t> cache_misses_{0};
};

/// Normalized execution-time ratios for a set of nests on \p procs total
/// processors (the tree weights of §IV): predicted times scaled to sum 1.
[[nodiscard]] std::vector<double> weight_ratios(const ExecTimeModel& model,
                                                std::span<const NestShape>
                                                    shapes,
                                                int total_procs);

}  // namespace stormtrack
