#pragma once

/// \file redist_model.hpp
/// Redistribution-time prediction (§IV-C-1), implemented verbatim from the
/// paper:
///
///   "We assume direct algorithm for MPI_Alltoallv between the processors
///    in mesh and torus based networks. … we find the communication time
///    for every sender-receiver pair. The maximum of these communication
///    times is predicted as the time for MPI_Alltoallv. For non-mesh
///    networks like switched networks, the times taken for sender to send
///    messages to all receivers can be added."
///
/// The simulated network (SimComm) charges a richer single-port+contention
/// model, so — as on the paper's real machines — the prediction is
/// correlated with but not equal to the observed time; it never exceeds
/// the simulated actual (pair max ≤ per-rank serial max ≤ phase time).

#include <algorithm>
#include <map>
#include <span>

#include "redist/redistributor.hpp"
#include "simmpi/simcomm.hpp"

namespace stormtrack {

/// Predictor over a bound communicator (topology + mapping).
class RedistTimeModel {
 public:
  /// \p comm must outlive the model.
  explicit RedistTimeModel(const SimComm& comm) : comm_(&comm) {}

  /// Allocation-free §IV-C-1 prediction from streaming aggregates: the
  /// summary must have been computed by redistribution_cost() against this
  /// model's communicator, which accumulates the worst pair time (direct
  /// networks) and the worst per-sender serial time (switched networks) in
  /// the exact order the message-list overload below would visit them —
  /// the two overloads return bit-identical predictions.
  [[nodiscard]] double predict(const RedistCostSummary& cost) const {
    return comm_->topology().is_direct_network() ? cost.worst_pair_time
                                                 : cost.worst_sender_time;
  }

  /// Predicted Alltoallv completion time for a redistribution phase
  /// described by its sparse message list (§IV-C-1 formula).
  [[nodiscard]] double predict(std::span<const Message> msgs) const {
    const Topology& topo = comm_->topology();
    if (topo.is_direct_network()) {
      double worst_pair = 0.0;
      for (const Message& m : msgs) {
        if (m.bytes == 0 || m.src == m.dst) continue;
        worst_pair = std::max(
            worst_pair, topo.pair_time(comm_->hops(m.src, m.dst), m.bytes));
      }
      return worst_pair;
    }
    // Switched network: per-sender sums, completion with the busiest sender.
    std::map<int, double> sender_time;
    for (const Message& m : msgs) {
      if (m.bytes == 0 || m.src == m.dst) continue;
      sender_time[m.src] +=
          topo.pair_time(comm_->hops(m.src, m.dst), m.bytes);
    }
    double worst = 0.0;
    for (const auto& [src, t] : sender_time) worst = std::max(worst, t);
    return worst;
  }

  [[nodiscard]] const SimComm& comm() const { return *comm_; }

 private:
  const SimComm* comm_;
};

}  // namespace stormtrack
