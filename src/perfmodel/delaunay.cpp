#include "perfmodel/delaunay.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "util/check.hpp"

namespace stormtrack {

namespace {

/// Twice the signed area of triangle (a, b, c); positive when CCW.
double cross2(const Point2& a, const Point2& b, const Point2& c) {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

/// Strictly-inside-circumcircle predicate for CCW triangle (a, b, c).
bool in_circumcircle(const Point2& a, const Point2& b, const Point2& c,
                     const Point2& p) {
  const double ax = a.x - p.x, ay = a.y - p.y;
  const double bx = b.x - p.x, by = b.y - p.y;
  const double cx = c.x - p.x, cy = c.y - p.y;
  const double det = (ax * ax + ay * ay) * (bx * cy - cx * by) -
                     (bx * bx + by * by) * (ax * cy - cx * ay) +
                     (cx * cx + cy * cy) * (ax * by - bx * ay);
  return det > 1e-12;
}

struct Edge {
  int a, b;
  friend bool operator<(const Edge& x, const Edge& y) {
    return std::pair{x.a, x.b} < std::pair{y.a, y.b};
  }
};

Edge canonical(int a, int b) { return a < b ? Edge{a, b} : Edge{b, a}; }

}  // namespace

Delaunay2D::Delaunay2D(std::vector<Point2> sites) : sites_(std::move(sites)) {
  const auto n = static_cast<int>(sites_.size());
  ST_CHECK_MSG(n >= 3, "Delaunay needs at least 3 sites, got " << n);
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j)
      ST_CHECK_MSG(!(sites_[i] == sites_[j]),
                   "duplicate Delaunay sites at index " << i << " and " << j);

  // Super-triangle comfortably containing all sites.
  double min_x = sites_[0].x, max_x = sites_[0].x;
  double min_y = sites_[0].y, max_y = sites_[0].y;
  for (const Point2& s : sites_) {
    min_x = std::min(min_x, s.x);
    max_x = std::max(max_x, s.x);
    min_y = std::min(min_y, s.y);
    max_y = std::max(max_y, s.y);
  }
  const double span = std::max({max_x - min_x, max_y - min_y, 1.0});
  const double cx = 0.5 * (min_x + max_x);
  const double cy = 0.5 * (min_y + max_y);
  // Work array includes the three synthetic super-triangle vertices at
  // indices n, n+1, n+2.
  std::vector<Point2> pts = sites_;
  pts.push_back(Point2{cx - 20.0 * span, cy - 10.0 * span});
  pts.push_back(Point2{cx + 20.0 * span, cy - 10.0 * span});
  pts.push_back(Point2{cx, cy + 20.0 * span});

  std::vector<Triangle> tris{{n, n + 1, n + 2}};
  auto ccw = [&](Triangle& t) {
    if (cross2(pts[t[0]], pts[t[1]], pts[t[2]]) < 0.0) std::swap(t[1], t[2]);
  };
  ccw(tris[0]);

  // Bowyer–Watson incremental insertion.
  for (int i = 0; i < n; ++i) {
    const Point2& p = pts[i];
    std::vector<Triangle> keep;
    std::map<Edge, int> boundary_count;
    for (const Triangle& t : tris) {
      if (in_circumcircle(pts[t[0]], pts[t[1]], pts[t[2]], p)) {
        boundary_count[canonical(t[0], t[1])]++;
        boundary_count[canonical(t[1], t[2])]++;
        boundary_count[canonical(t[2], t[0])]++;
      } else {
        keep.push_back(t);
      }
    }
    tris = std::move(keep);
    for (const auto& [e, count] : boundary_count) {
      if (count != 1) continue;  // interior edge of the cavity
      Triangle t{e.a, e.b, i};
      ccw(t);
      // Degenerate (collinear) triangles can appear when the new site lies
      // exactly on a cavity edge; drop them.
      if (std::abs(cross2(pts[t[0]], pts[t[1]], pts[t[2]])) > 1e-12)
        tris.push_back(t);
    }
  }

  // Strip triangles touching the super-triangle.
  for (const Triangle& t : tris)
    if (t[0] < n && t[1] < n && t[2] < n) triangles_.push_back(t);
  ST_CHECK_MSG(!triangles_.empty(),
               "degenerate site set (all collinear?) — no triangles");
}

bool Delaunay2D::strictly_inside(int t, const Point2& p) const {
  const Triangle& tri = triangles_[static_cast<std::size_t>(t)];
  const Point2& a = sites_[static_cast<std::size_t>(tri[0])];
  const Point2& b = sites_[static_cast<std::size_t>(tri[1])];
  const Point2& c = sites_[static_cast<std::size_t>(tri[2])];
  // Positive counterpart of locate()'s lenient tolerance: a point passing
  // this test is inside every triangle edge by a margin at least as large
  // as the scan's boundary band, so no other (interior-disjoint) triangle
  // can claim it.
  const double eps = 1e-9 * std::max(1.0, std::abs(cross2(a, b, c)));
  return cross2(a, b, p) > eps && cross2(b, c, p) > eps &&
         cross2(c, a, p) > eps;
}

int Delaunay2D::locate(const Point2& p) const {
  const int hint = locate_hint_.load(std::memory_order_relaxed);
  if (hint >= 0 && hint < static_cast<int>(triangles_.size()) &&
      strictly_inside(hint, p))
    return hint;
  // Linear scan: the model triangulates ~13 sites, so this is already fast.
  for (std::size_t i = 0; i < triangles_.size(); ++i) {
    const Triangle& t = triangles_[i];
    const Point2& a = sites_[static_cast<std::size_t>(t[0])];
    const Point2& b = sites_[static_cast<std::size_t>(t[1])];
    const Point2& c = sites_[static_cast<std::size_t>(t[2])];
    const double eps = -1e-9 * std::max(1.0, std::abs(cross2(a, b, c)));
    if (cross2(a, b, p) >= eps && cross2(b, c, p) >= eps &&
        cross2(c, a, p) >= eps) {
      locate_hint_.store(static_cast<int>(i), std::memory_order_relaxed);
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::array<double, 3> Delaunay2D::barycentric(int t, const Point2& p) const {
  ST_CHECK_MSG(t >= 0 && t < static_cast<int>(triangles_.size()),
               "triangle index " << t << " out of range");
  const Triangle& tri = triangles_[static_cast<std::size_t>(t)];
  const Point2& a = sites_[static_cast<std::size_t>(tri[0])];
  const Point2& b = sites_[static_cast<std::size_t>(tri[1])];
  const Point2& c = sites_[static_cast<std::size_t>(tri[2])];
  const double area = cross2(a, b, c);
  ST_CHECK_MSG(std::abs(area) > 1e-15, "degenerate triangle");
  return {cross2(b, c, p) / area, cross2(c, a, p) / area,
          cross2(a, b, p) / area};
}

int Delaunay2D::nearest_site(const Point2& p) const {
  int best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    const double dx = sites_[i].x - p.x;
    const double dy = sites_[i].y - p.y;
    const double d = dx * dx + dy * dy;
    if (d < best_d) {
      best_d = d;
      best = static_cast<int>(i);
    }
  }
  return best;
}

ScatteredInterpolant::ScatteredInterpolant(std::vector<Point2> sites,
                                           std::vector<double> values)
    : tri_(std::move(sites)), values_(std::move(values)) {
  ST_CHECK_MSG(tri_.sites().size() == values_.size(),
               "need exactly one value per site");
}

double ScatteredInterpolant::operator()(const Point2& p) const {
  const int t = tri_.locate(p);
  if (t < 0)
    return values_[static_cast<std::size_t>(tri_.nearest_site(p))];
  const auto bc = tri_.barycentric(t, p);
  const Triangle& tr = tri_.triangles()[static_cast<std::size_t>(t)];
  return bc[0] * values_[static_cast<std::size_t>(tr[0])] +
         bc[1] * values_[static_cast<std::size_t>(tr[1])] +
         bc[2] * values_[static_cast<std::size_t>(tr[2])];
}

}  // namespace stormtrack
