#include "core/nest_tracker.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/fnv.hpp"

namespace stormtrack {

NestTracker::NestTracker(double match_threshold, int refinement_ratio)
    : match_threshold_(match_threshold), ratio_(refinement_ratio) {
  ST_CHECK_MSG(match_threshold > 0.0 && match_threshold <= 1.0,
               "match threshold must be in (0, 1], got " << match_threshold);
  ST_CHECK_MSG(refinement_ratio >= 1, "refinement ratio must be >= 1");
}

NestDiff NestTracker::update(std::span<const Rect> rois) {
  // Greedy best-first matching by Jaccard overlap between active nest
  // regions and new ROIs.
  struct Candidate {
    double score;
    std::size_t nest_idx;
    std::size_t roi_idx;
  };
  std::vector<Candidate> candidates;
  for (std::size_t n = 0; n < active_.size(); ++n) {
    for (std::size_t r = 0; r < rois.size(); ++r) {
      const double score = jaccard(active_[n].region, rois[r]);
      if (score >= match_threshold_)
        candidates.push_back(Candidate{score, n, r});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.score != b.score) return a.score > b.score;
              return std::pair{a.nest_idx, a.roi_idx} <
                     std::pair{b.nest_idx, b.roi_idx};
            });

  std::vector<char> nest_used(active_.size(), 0);
  std::vector<char> roi_used(rois.size(), 0);
  NestDiff diff;
  for (const Candidate& c : candidates) {
    if (nest_used[c.nest_idx] || roi_used[c.roi_idx]) continue;
    nest_used[c.nest_idx] = 1;
    roi_used[c.roi_idx] = 1;
    NestSpec updated = active_[c.nest_idx];
    updated.region = rois[c.roi_idx];
    updated.shape = nest_shape_for(updated.region, ratio_);
    diff.retained.push_back(updated);
  }
  for (std::size_t n = 0; n < active_.size(); ++n)
    if (!nest_used[n]) diff.deleted.push_back(active_[n].id);
  for (std::size_t r = 0; r < rois.size(); ++r) {
    if (roi_used[r]) continue;
    NestSpec fresh;
    fresh.id = next_id_++;
    fresh.region = rois[r];
    fresh.shape = nest_shape_for(fresh.region, ratio_);
    diff.inserted.push_back(fresh);
  }

  active_.clear();
  active_.insert(active_.end(), diff.retained.begin(), diff.retained.end());
  active_.insert(active_.end(), diff.inserted.begin(), diff.inserted.end());
  std::sort(active_.begin(), active_.end(),
            [](const NestSpec& a, const NestSpec& b) { return a.id < b.id; });
  return diff;
}

void NestTracker::restore(State state) {
  next_id_ = state.next_id;
  active_ = std::move(state.active);
}

std::uint64_t NestTracker::state_fingerprint() const {
  Fingerprint fp;
  fp.add(next_id_);
  fp.add(static_cast<std::int64_t>(active_.size()));
  for (const NestSpec& n : active_) {
    fp.add(n.id);
    fp.add(n.region.x);
    fp.add(n.region.y);
    fp.add(n.region.w);
    fp.add(n.region.h);
    fp.add(n.shape.nx);
    fp.add(n.shape.ny);
  }
  return fp.value();
}

}  // namespace stormtrack
