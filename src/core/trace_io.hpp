#pragma once

/// \file trace_io.hpp
/// Plain-text serialization of nest-configuration traces.
///
/// Traces are the unit of experiment reproducibility: the real-mode trace
/// takes seconds of weather simulation + PDA to generate, and downstream
/// users may want to re-run a strategy comparison on the *same* adaptation
/// history, ship a trace to a colleague, or hand-edit one. Format (text,
/// line-oriented, '#' comments):
///
///   stormtrack-trace 1
///   event <k>
///   nest <id> <region.x> <region.y> <region.w> <region.h> <nx> <ny>
///   ...
///
/// Events appear in order; each lists its full active nest set.

#include <filesystem>
#include <iosfwd>

#include "core/traces.hpp"

namespace stormtrack {

/// Serialize \p trace to a stream (see format above).
void save_trace(const Trace& trace, std::ostream& os);
/// Serialize to a file, creating parent directories.
void save_trace(const Trace& trace, const std::filesystem::path& path);

/// Parse a trace; throws CheckError on malformed input.
[[nodiscard]] Trace load_trace(std::istream& is);
[[nodiscard]] Trace load_trace(const std::filesystem::path& path);

}  // namespace stormtrack
