#include "core/pipeline.hpp"

#include <algorithm>
#include <array>
#include <functional>

#include "exec/cancel.hpp"
#include "exec/executor.hpp"
#include "fault/invariants.hpp"
#include "fault/snapshot.hpp"
#include "tree/tree_delta.hpp"
#include "util/check.hpp"

namespace stormtrack {

namespace {

constexpr std::string_view kStageNames[kNumPipelineStages] = {
    "diff_nests",    "derive_weights", "build_candidates",
    "predict_costs", "commit",         "redistribute"};

constexpr std::string_view kStageMetricNames[kNumPipelineStages] = {
    "stage.1_diff_nests",    "stage.2_derive_weights",
    "stage.3_build_candidates", "stage.4_predict_costs",
    "stage.5_commit",        "stage.6_redistribute"};

}  // namespace

std::string_view to_string(PipelineStage stage) {
  return kStageNames[static_cast<int>(stage)];
}

std::string_view stage_metric_name(PipelineStage stage) {
  return kStageMetricNames[static_cast<int>(stage)];
}

const PipelineCandidate* PipelineContext::find(std::string_view name) const {
  for (const PipelineCandidate& c : candidates)
    if (c.name == name) return &c;
  return nullptr;
}

void PipelineCandidate::reset() {
  name.clear();
  tree = AllocTree{};
  alloc = Allocation{};
  costs.clear();  // keeps capacity
  metrics = CandidateMetrics{};
  traffic = TrafficReport{};
  overlap_points = 0;
  total_points = 0;
}

void PipelineContext::reset() {
  active.clear();
  retained.clear();
  inserted.clear();
  deleted.clear();
  request.deleted.clear();
  request.retained.clear();
  request.inserted.clear();
  // Candidate slots are kept (and re-reset by BuildCandidates after it
  // sizes the vector) so their cost vectors keep capacity too.
  for (PipelineCandidate& c : candidates) c.reset();
  committed_index = 0;
}

AdaptationPipeline::AdaptationPipeline(const Machine& machine,
                                       const ExecTimeModel& model,
                                       const GroundTruthCost& truth,
                                       ManagerConfig config)
    : machine_(&machine),
      model_(&model),
      truth_(&truth),
      config_(std::move(config)),
      strategy_(StrategyRegistry::global().create(config_.strategy,
                                                  config_.strategy_options)),
      view_px_(machine.grid_px()),
      view_py_(machine.grid_py()) {
  ST_CHECK_MSG(config_.steps_per_interval >= 1,
               "steps_per_interval must be >= 1");
  ST_CHECK_MSG((config_.initial_view_px == 0) ==
                   (config_.initial_view_py == 0),
               "initial view must set both dimensions (or neither), got "
                   << config_.initial_view_px << "x"
                   << config_.initial_view_py);
  if (config_.initial_view_px != 0) {
    ST_CHECK_MSG(config_.initial_view_px >= 1 &&
                     config_.initial_view_px <= machine.grid_px() &&
                     config_.initial_view_py >= 1 &&
                     config_.initial_view_py <= machine.grid_py(),
                 "initial view " << config_.initial_view_px << "x"
                                 << config_.initial_view_py
                                 << " does not fit the machine grid "
                                 << machine.grid_px() << "x"
                                 << machine.grid_py());
    view_px_ = config_.initial_view_px;
    view_py_ = config_.initial_view_py;
  }
  for (const ResizeEvent& e : config_.resize_schedule)
    ST_CHECK_MSG(e.point >= 0 && e.px >= 1 && e.px <= machine.grid_px() &&
                     e.py >= 1 && e.py <= machine.grid_py(),
                 "resize event at point " << e.point << " to " << e.px << "x"
                                          << e.py
                                          << " does not fit the machine grid "
                                          << machine.grid_px() << "x"
                                          << machine.grid_py());
}

std::uint64_t AdaptationPipeline::state_fingerprint() const {
  Fingerprint fp;
  add_fingerprint(fp, tree_);
  add_fingerprint(fp, allocation_);
  fp.add(static_cast<std::int64_t>(current_.size()));
  for (const auto& [id, spec] : current_) {
    fp.add(id);
    add_fingerprint(fp, spec.region);
    fp.add(spec.shape.nx);
    fp.add(spec.shape.ny);
  }
  fp.add(view_px_);
  fp.add(view_py_);
  return fp.value();
}

AdaptationPipeline::PipelineState AdaptationPipeline::export_state() const {
  PipelineState state;
  state.tree = tree_;
  state.allocation = allocation_;
  state.current.reserve(current_.size());
  for (const auto& [id, spec] : current_) state.current.push_back(spec);
  state.point_index = point_index_;
  state.view_px = view_px_;
  state.view_py = view_py_;
  state.seen_faults = seen_faults_;
  state.metrics = metrics_;
  state.strategy_state = strategy_->export_state();
  state.resize_events_applied = resize_events_applied_;
  return state;
}

void AdaptationPipeline::import_state(const PipelineState& state) {
  ST_CHECK_MSG(state.point_index >= 0, "pipeline state has negative "
                                       "adaptation-point index "
                                           << state.point_index);
  ST_CHECK_MSG(state.view_px >= 1 && state.view_px <= machine_->grid_px() &&
                   state.view_py >= 1 && state.view_py <= machine_->grid_py(),
               "pipeline state view " << state.view_px << "x" << state.view_py
                                      << " does not fit the machine grid "
                                      << machine_->grid_px() << "x"
                                      << machine_->grid_py());
  ST_CHECK_MSG(state.allocation.rects().empty() ||
                   (state.allocation.grid_px() == machine_->grid_px() &&
                    state.allocation.grid_py() == machine_->grid_py()),
               "pipeline state allocation is on a "
                   << state.allocation.grid_px() << "x"
                   << state.allocation.grid_py()
                   << " grid but the machine is " << machine_->grid_px() << "x"
                   << machine_->grid_py());
  std::map<int, NestSpec> current;
  for (const NestSpec& spec : state.current) {
    ST_CHECK_MSG(current.emplace(spec.id, spec).second,
                 "pipeline state repeats nest id " << spec.id);
    ST_CHECK_MSG(state.allocation.find(spec.id).has_value(),
                 "pipeline state nest " << spec.id
                                        << " has no allocation rectangle");
  }
  ST_CHECK_MSG(current.size() == state.allocation.rects().size(),
               "pipeline state has " << current.size() << " nests but "
                                     << state.allocation.rects().size()
                                     << " allocation rectangles");
  // The same gate every commit passes through: a checkpoint can never
  // install an allocation the pipeline itself would have refused.
  if (!state.tree.empty() || !state.allocation.rects().empty())
    validate_allocation(state.tree, state.allocation,
                        Rect{0, 0, state.view_px, state.view_py});
  // Resize-schedule consistency: the checkpoint must have consumed exactly
  // the events this pipeline's schedule places before its point_index — a
  // state saved under a different schedule is refused here.
  int expected_resizes = 0;
  for (const ResizeEvent& e : config_.resize_schedule)
    if (e.point < state.point_index) ++expected_resizes;
  ST_CHECK_MSG(state.resize_events_applied == expected_resizes,
               "pipeline state consumed " << state.resize_events_applied
                                          << " resize events but the "
                                             "configured schedule has "
                                          << expected_resizes
                                          << " before point "
                                          << state.point_index);

  tree_ = state.tree;
  allocation_ = state.allocation;
  current_ = std::move(current);
  point_index_ = state.point_index;
  view_px_ = state.view_px;
  view_py_ = state.view_py;
  seen_faults_ = state.seen_faults;
  metrics_ = state.metrics;
  strategy_->import_state(state.strategy_state);
  resize_events_applied_ = state.resize_events_applied;
}

// --------------------------------------------------------------- DiffNests

void AdaptationPipeline::stage_diff_nests(PipelineContext& ctx,
                                          std::span<const NestSpec> active) {
  std::map<int, NestSpec> next;
  for (const NestSpec& n : active) {
    ST_CHECK_MSG(next.emplace(n.id, n).second,
                 "duplicate nest id " << n.id << " in active set");
    ST_CHECK_MSG(n.shape.nx > 0 && n.shape.ny > 0,
                 "nest " << n.id << " has empty shape");
  }
  for (const auto& [id, spec] : current_) {
    if (auto it = next.find(id); it != next.end())
      ctx.retained.push_back(it->second);
    else
      ctx.deleted.push_back(id);
  }
  for (const auto& [id, spec] : next)
    if (!current_.count(id)) ctx.inserted.push_back(spec);
  ctx.active.assign(active.begin(), active.end());
  std::sort(ctx.active.begin(), ctx.active.end(),
            [](const NestSpec& a, const NestSpec& b) { return a.id < b.id; });
  current_ = std::move(next);
}

// ----------------------------------------------------------- DeriveWeights

void AdaptationPipeline::stage_derive_weights(PipelineContext& ctx) const {
  // Weights are predicted execution-time ratios over the whole active set
  // (identical for both candidate methods, §IV-C).
  std::vector<NestShape> shapes;
  shapes.reserve(ctx.active.size());
  for (const NestSpec& n : ctx.active) shapes.push_back(n.shape);
  const std::vector<double> ratios =
      ctx.active.empty() ? std::vector<double>{}
                         : weight_ratios(*model_, shapes, machine_->cores());

  ctx.request.deleted = ctx.deleted;
  for (std::size_t i = 0; i < ctx.active.size(); ++i) {
    const NestWeight nw{ctx.active[i].id, ratios[i]};
    const bool is_new = std::any_of(
        ctx.inserted.begin(), ctx.inserted.end(),
        [&](const NestSpec& s) { return s.id == ctx.active[i].id; });
    (is_new ? ctx.request.inserted : ctx.request.retained).push_back(nw);
  }
}

// --------------------------------------------------------- BuildCandidates

void AdaptationPipeline::stage_build_candidates(PipelineContext& ctx,
                                                AttemptMode mode) const {
  const ScratchPartitioner scratch_p;
  const DiffusionPartitioner diffusion_p;
  std::vector<const Partitioner*> partitioners{
      static_cast<const Partitioner*>(&scratch_p)};
  // The scratch-only ladder rung drops the diffusion candidate: a fault
  // pinned to its task index (or a genuine diffusion bug) cannot fire.
  if (mode == AttemptMode::kFull) partitioners.push_back(&diffusion_p);
  // The proposals are independent: each reads the committed tree /
  // allocation (immutable here) and writes only its own candidate slot.
  // Slots (and their cost-vector capacity) survive across points; reset
  // here so a reused slot never leaks the previous point's state.
  ctx.candidates.resize(partitioners.size());
  for (PipelineCandidate& c : ctx.candidates) c.reset();
  const std::function<void(std::size_t)> guard =
      config_.injector == nullptr
          ? std::function<void(std::size_t)>{}
          : [&](std::size_t pi) {
              config_.injector->guard_task("build_candidates", pi);
            };
  // Pricing backend, in priority order: the process-wide shared cache
  // (scoped by machine fingerprint, warmed across pipelines), the
  // pipeline-private cache, or a direct computation when caching is off.
  // All three are bit-identical; only hit rates differ.
  const std::uint64_t scope =
      config_.shared_pricing != nullptr ? machine_->fingerprint() : 0;
  const auto price = [&](const NestShape& shape, const Rect& old_rect,
                         const Rect& new_rect) {
    if (!config_.pricing_cache) {
      return redistribution_cost(shape, old_rect, new_rect,
                                 machine_->grid_px(), config_.bytes_per_point,
                                 &machine_->comm());
    }
    if (config_.shared_pricing != nullptr) {
      return config_.shared_pricing->price(
          scope, shape, old_rect, new_rect, machine_->grid_px(),
          config_.bytes_per_point, &machine_->comm());
    }
    return cost_cache_.price(shape, old_rect, new_rect, machine_->grid_px(),
                             config_.bytes_per_point, &machine_->comm());
  };
  const std::function<void(std::size_t)> body = [&](std::size_t pi) {
    const Partitioner* p = partitioners[pi];
    PipelineCandidate& c = ctx.candidates[pi];
    c.name = p->name();
    c.tree = p->propose(tree_, ctx.request);
    c.alloc = allocate(c.tree, machine_->grid_px(), machine_->grid_py(),
                       view_rect());
    // Redistribution pricing: one streaming cost summary per retained nest
    // (§IV: "MPI_Alltoallv to redistribute data for each nest"), moving
    // from the committed allocation to this candidate's. Aggregates only —
    // the message matrices are materialized in the Redistribute stage, so
    // candidate pricing never allocates a Message vector.
    c.costs.reserve(ctx.retained.size());
    for (const NestSpec& nest : ctx.retained) {
      const auto old_rect = allocation_.find(nest.id);
      const auto new_rect = c.alloc.find(nest.id);
      ST_CHECK_MSG(old_rect && new_rect,
                   "retained nest " << nest.id << " missing an allocation");
      c.costs.push_back(price(nest.shape, *old_rect, *new_rect));
      c.overlap_points += c.costs.back().overlap_points;
      c.total_points += c.costs.back().total_points;
    }
  };
  resolve_executor(config_.executor)
      .parallel_for(partitioners.size(), body, guard);
}

// ------------------------------------------------------------ PredictCosts

void AdaptationPipeline::stage_predict_costs(PipelineContext& ctx) const {
  const RedistTimeModel redist_model(machine_->comm());
  const std::function<void(std::size_t)> guard =
      config_.injector == nullptr
          ? std::function<void(std::size_t)>{}
          : [&](std::size_t ci) {
              config_.injector->guard_task("predict_costs", ci);
            };
  // Candidates are priced concurrently; each candidate's accumulation stays
  // in the serial loop's floating-point order within its own slot.
  resolve_executor(config_.executor)
      .parallel_for(
          ctx.candidates.size(),
          [&](std::size_t ci) {
        PipelineCandidate& c = ctx.candidates[ci];
        // §IV-C-1: predict each retained nest's phase; phases run
        // sequentially. The streaming summaries carry the prediction terms
        // pre-accumulated in the message-list overload's exact order, so
        // this sum is bit-identical to pricing materialized plans.
        for (const RedistCostSummary& cost : c.costs)
          c.metrics.predicted_redist += redist_model.predict(cost);
        // §IV-C-2: nests run concurrently on disjoint processor rectangles,
        // so the coupled interval advances with the slowest nest. The model
        // predicts from the processor *count* — it cannot see the
        // rectangle's aspect ratio, which is precisely why dynamic
        // selection can occasionally pick the wrong method (§V-F).
        double predicted_max = 0.0;
        for (const NestSpec& nest : ctx.active) {
          const auto rect = c.alloc.find(nest.id);
          ST_CHECK_MSG(rect.has_value(),
                       "active nest " << nest.id << " missing allocation");
          predicted_max = std::max(
              predicted_max,
              model_->predict(nest.shape, static_cast<int>(rect->area())));
        }
        c.metrics.predicted_exec = config_.steps_per_interval * predicted_max;
          },
          guard);
}

// ------------------------------------------------------------------ Commit

void AdaptationPipeline::stage_commit(PipelineContext& ctx, AttemptMode mode) {
  if (config_.injector != nullptr) config_.injector->guard_task("commit", 0);
  // Scratch-only attempts commit their single candidate unconditionally:
  // the strategy's preference is moot when diffusion was not built.
  ctx.committed_index =
      mode == AttemptMode::kScratchOnly ? 0 : strategy_->decide(ctx);
  ST_CHECK_MSG(ctx.committed_index < ctx.candidates.size(),
               "strategy '" << strategy_->name()
                            << "' chose candidate index "
                            << ctx.committed_index << " of "
                            << ctx.candidates.size());
}

// ------------------------------------------------------------ Redistribute

StepOutcome AdaptationPipeline::stage_redistribute(PipelineContext& ctx) {
  const std::function<void(std::size_t)> guard =
      config_.injector == nullptr
          ? std::function<void(std::size_t)>{}
          : [&](std::size_t ci) {
              config_.injector->guard_task("redistribute", ci);
            };
  // Every candidate's phases run on the simulated network and its interval
  // is charged at ground truth — not just the committed one — so §V-F
  // experiments can judge each decision against the road not taken. The
  // candidates score concurrently (simulated network and ground truth are
  // const); committing below stays on the calling thread.
  resolve_executor(config_.executor)
      .parallel_for(
          ctx.candidates.size(),
          [&](std::size_t ci) {
        PipelineCandidate& c = ctx.candidates[ci];
        // The message matrices are materialized here — the only stage that
        // actually moves data — from the still-committed allocation_ (it is
        // not replaced until after this stage), so the plans are exactly
        // the moves the pricing stages summarized.
        for (const NestSpec& nest : ctx.retained) {
          const auto old_rect = allocation_.find(nest.id);
          const auto new_rect = c.alloc.find(nest.id);
          ST_CHECK_MSG(old_rect && new_rect,
                       "retained nest " << nest.id
                                        << " missing an allocation");
          const RedistPlan plan = plan_redistribution(
              nest.shape, *old_rect, *new_rect, machine_->grid_px(),
              config_.bytes_per_point);
          c.traffic += machine_->comm().alltoallv(plan.messages);
        }
        c.metrics.actual_redist = c.traffic.modeled_time;
        double actual_max = 0.0;
        for (const NestSpec& nest : ctx.active) {
          const auto rect = c.alloc.find(nest.id);
          ST_CHECK_MSG(rect.has_value(),
                       "active nest " << nest.id << " missing allocation");
          actual_max = std::max(actual_max, truth_->execution_time(
                                                nest.shape, rect->w, rect->h));
        }
        c.metrics.actual_exec = config_.steps_per_interval * actual_max;
          },
          guard);

  StepOutcome out;
  if (const PipelineCandidate* s = ctx.find("scratch")) out.scratch = s->metrics;
  if (const PipelineCandidate* d = ctx.find("diffusion"))
    out.diffusion = d->metrics;
  PipelineCandidate& committed = ctx.candidates[ctx.committed_index];
  out.chosen = committed.name;
  out.committed = committed.metrics;
  out.traffic = committed.traffic;
  out.overlap_fraction =
      committed.total_points == 0
          ? 0.0
          : static_cast<double>(committed.overlap_points) /
                static_cast<double>(committed.total_points);
  out.num_deleted = static_cast<int>(ctx.deleted.size());
  out.num_retained = static_cast<int>(ctx.retained.size());
  out.num_inserted = static_cast<int>(ctx.inserted.size());
  out.allocation = committed.alloc;

  // Invariant validator gates every commit: a recovery path (or a buggy
  // partitioner) must never install a broken allocation.
  validate_allocation(committed.tree, committed.alloc, view_rect());
  metrics_.add_count("recovery.validations");

  tree_ = std::move(committed.tree);
  allocation_ = std::move(committed.alloc);
  return out;
}

// ----------------------------------------------------- rank-loss recovery

void AdaptationPipeline::recover_rank_loss(int rank) {
  metrics_.add_count("fault.rank_deaths");
  const int x = rank % machine_->grid_px();
  const int y = rank / machine_->grid_px();
  if (x >= view_px_ || y >= view_py_) {
    // Already outside the usable view (e.g. retired by an earlier death).
    metrics_.add_count("fault.rank_deaths_outside_view");
    return;
  }
  // Shrink the view to the largest origin-anchored rectangle that excludes
  // the dead rank: cut either the columns from x on, or the rows from y on,
  // whichever retires fewer processors. Rank numbering stays on the full
  // machine grid — survivors are never renumbered (the diffusion tree's
  // whole point: retained nests keep their processors).
  const std::int64_t area_keep_rows =
      static_cast<std::int64_t>(x) * view_py_;
  const std::int64_t area_keep_cols =
      static_cast<std::int64_t>(view_px_) * y;
  const Rect old_view = view_rect();
  if (area_keep_rows >= area_keep_cols)
    view_px_ = x;
  else
    view_py_ = y;
  ST_CHECK_MSG(view_px_ >= 1 && view_py_ >= 1,
               "rank-loss recovery: no usable processor view remains after "
               "rank " << rank << " died");
  ST_CHECK_MSG(view_rect().area() >=
                   static_cast<std::int64_t>(tree_.num_nests()),
               "rank-loss recovery: view " << view_rect() << " too small for "
                                           << tree_.num_nests() << " nests");
  metrics_.add_count("recovery.procs_retired",
                     old_view.area() - view_rect().area());
  // Re-subdivide the existing tree on the smaller view — structure (and
  // with it, retained nests' relative placement) is preserved, weights
  // renormalize implicitly through proportional subdivision — then move
  // only the displaced blocks.
  reallocate_on_view("recovery.rank_loss");
}

void AdaptationPipeline::reallocate_on_view(const std::string& metric_prefix) {
  if (tree_.empty()) return;
  const std::string timer_name = metric_prefix + "_redist";
  ScopedTimer t(&metrics_, timer_name);
  const Allocation old_alloc = allocation_;
  Allocation new_alloc =
      allocate(tree_, machine_->grid_px(), machine_->grid_py(), view_rect());
  validate_allocation(tree_, new_alloc, view_rect());
  // "recovery.rank_loss" -> recovery.validations (the historical counter);
  // "elastic.resize" -> elastic.validations.
  metrics_.add_count(metric_prefix.substr(0, metric_prefix.find('.')) +
                     ".validations");
  std::int64_t total_points = 0;
  std::int64_t overlap_points = 0;
  TrafficReport traffic;
  for (const auto& [nest_id, new_rect] : new_alloc.rects()) {
    const auto old_rect = old_alloc.find(nest_id);
    ST_CHECK_MSG(old_rect.has_value(),
                 "nest " << nest_id << " missing from the old allocation");
    const auto spec = current_.find(nest_id);
    ST_CHECK_MSG(spec != current_.end(),
                 "nest " << nest_id << " missing from the active map");
    const RedistPlan plan = plan_redistribution(
        spec->second.shape, *old_rect, new_rect, machine_->grid_px(),
        config_.bytes_per_point);
    traffic += machine_->comm().alltoallv(plan.messages);
    total_points += plan.total_points;
    overlap_points += plan.overlap_points;
  }
  metrics_.add_count(metric_prefix + "_total_points", total_points);
  metrics_.add_count(metric_prefix + "_overlap_points", overlap_points);
  metrics_.add_count(metric_prefix + "_moved_points",
                     total_points - overlap_points);
  allocation_ = std::move(new_alloc);
}

// ----------------------------------------------------------- malleability

void AdaptationPipeline::resize_view(int px, int py) {
  ST_CHECK_MSG(px >= 1 && px <= machine_->grid_px() && py >= 1 &&
                   py <= machine_->grid_py(),
               "resize to " << px << "x" << py
                            << " does not fit the machine grid "
                            << machine_->grid_px() << "x"
                            << machine_->grid_py());
  ST_CHECK_MSG(static_cast<std::int64_t>(px) * py >=
                   static_cast<std::int64_t>(tree_.num_nests()),
               "resize to " << px << "x" << py << " too small for "
                            << tree_.num_nests() << " committed nests");
  if (px == view_px_ && py == view_py_) return;
  const std::int64_t old_area = view_rect().area();
  const std::int64_t new_area = static_cast<std::int64_t>(px) * py;
  view_px_ = px;
  view_py_ = py;
  if (new_area > old_area) {
    metrics_.add_count("elastic.grow_events");
    metrics_.add_count("elastic.procs_added", new_area - old_area);
  } else if (new_area < old_area) {
    metrics_.add_count("elastic.shrink_events");
    metrics_.add_count("elastic.procs_retired", old_area - new_area);
  } else {
    metrics_.add_count("elastic.reshape_events");
  }
  reallocate_on_view("elastic.resize");
}

// ------------------------------------------------------------------- apply

StepOutcome AdaptationPipeline::apply_attempt(PipelineContext& ctx,
                                              std::span<const NestSpec> active,
                                              AttemptMode mode) {
  {
    ScopedTimer t(&metrics_, stage_metric_name(PipelineStage::kDiffNests));
    if (config_.injector != nullptr)
      config_.injector->guard_task("diff_nests", 0);
    stage_diff_nests(ctx, active);
  }
  {
    ScopedTimer t(&metrics_,
                  stage_metric_name(PipelineStage::kDeriveWeights));
    if (config_.injector != nullptr)
      config_.injector->guard_task("derive_weights", 0);
    stage_derive_weights(ctx);
  }
  {
    ScopedTimer t(&metrics_,
                  stage_metric_name(PipelineStage::kBuildCandidates));
    stage_build_candidates(ctx, mode);
  }
  // Incremental-pricing observability: retained nests whose root-to-leaf
  // path signature survived into a candidate tree keep their rectangles,
  // so their pricing was an identity move (and a cost-cache hit after the
  // first point). Derived purely from committed + candidate trees, so the
  // count is deterministic and resume-invariant.
  {
    std::int64_t stable = 0;
    for (const PipelineCandidate& c : ctx.candidates) {
      const std::vector<NestId> perturbed = perturbed_leaves(tree_, c.tree);
      for (const NestSpec& nest : ctx.retained)
        if (!std::binary_search(perturbed.begin(), perturbed.end(), nest.id))
          ++stable;
    }
    metrics_.add_count("pipeline.stable_subtrees", stable);
  }
  {
    ScopedTimer t(&metrics_, stage_metric_name(PipelineStage::kPredictCosts));
    stage_predict_costs(ctx);
  }
  {
    ScopedTimer t(&metrics_, stage_metric_name(PipelineStage::kCommit));
    stage_commit(ctx, mode);
  }
  StepOutcome out;
  {
    ScopedTimer t(&metrics_, stage_metric_name(PipelineStage::kRedistribute));
    out = stage_redistribute(ctx);
  }
  metrics_.add_count("pipeline.candidates_built",
                     static_cast<std::int64_t>(ctx.candidates.size()));
  metrics_.add_count("pipeline.redist_plans",
                     static_cast<std::int64_t>(ctx.retained.size()) *
                         static_cast<std::int64_t>(ctx.candidates.size()));
  metrics_.add_count("pipeline.cost_queries",
                     static_cast<std::int64_t>(ctx.retained.size()) *
                         static_cast<std::int64_t>(ctx.candidates.size()));
  return out;
}

StepOutcome AdaptationPipeline::apply(std::span<const NestSpec> active) {
  // Cancellation is polled here, outside the transaction and the ladder:
  // a cancelled run aborts between committed adaptation points and the
  // pipeline state stays exactly the last committed one (resumable from
  // the newest checkpoint).
  if (config_.cancel != nullptr) config_.cancel->check();
  Executor& exec = resolve_executor(config_.executor);
  const ExecutorStats exec_before = exec.stats();
  FaultInjector* const injector = config_.injector;
  const int point = point_index_++;

  // Scheduled malleability runs before anything else at this point (in
  // particular before fault injection, so a death lands on the resized
  // view). Events replay identically after a checkpoint resume: the
  // restored point_index skips exactly the events already consumed.
  for (const ResizeEvent& e : config_.resize_schedule)
    if (e.point == point) {
      resize_view(e.px, e.py);
      ++resize_events_applied_;
    }

  StepOutcome out;
  if (injector == nullptr) {
    // No fault schedule: exactly the pre-fault behavior — one attempt,
    // exceptions propagate to the caller. The context is reused scratch:
    // reset() keeps its buffers' capacity across adaptation points.
    ctx_.reset();
    out = apply_attempt(ctx_, active, AttemptMode::kFull);
  } else {
    injector->begin_point(point);
    for (const int rank : injector->ranks_dying_at(point)) {
      recover_rank_loss(rank);
      ++out.ranks_lost;
    }
    const int ranks_lost = out.ranks_lost;

    // Transactional snapshot: any failed attempt restores it, so a rolled-
    // back point is byte-identical to the pre-adaptation state.
    const AllocTree tree_snapshot = tree_;
    const Allocation alloc_snapshot = allocation_;
    const std::map<int, NestSpec> current_snapshot = current_;

    // Degradation ladder: full attempt; full retry (transient fault
    // budgets drain between attempts); scratch-only; retain + skip.
    struct Rung {
      AttemptMode mode;
      const char* label;   // StepOutcome::degradation; "" = clean
      const char* metric;  // recovery.* counter; nullptr = none
    };
    constexpr Rung kLadder[] = {
        {AttemptMode::kFull, "", nullptr},
        {AttemptMode::kFull, "retried", "recovery.retried_points"},
        {AttemptMode::kScratchOnly, "scratch_only",
         "recovery.scratch_fallbacks"},
    };
    bool committed = false;
    for (const Rung& rung : kLadder) {
      ctx_.reset();
      try {
        out = apply_attempt(ctx_, active, rung.mode);
        out.ranks_lost = ranks_lost;
        if (rung.label[0] != '\0') {
          out.degraded = true;
          out.degradation = rung.label;
        }
        if (rung.metric != nullptr) metrics_.add_count(rung.metric);
        committed = true;
        break;
      } catch (const std::exception&) {
        tree_ = tree_snapshot;
        allocation_ = alloc_snapshot;
        current_ = current_snapshot;
        metrics_.add_count("recovery.rollbacks");
      }
    }
    if (!committed) {
      // Bottom of the ladder: keep the previous allocation, skip the point.
      out = StepOutcome{};
      out.chosen = "retained";
      out.degraded = true;
      out.degradation = "retained_previous";
      out.ranks_lost = ranks_lost;
      out.allocation = allocation_;
      metrics_.add_count("recovery.skipped_points");
    }

    // Injection observability: counter deltas since the last apply().
    const FaultInjectorStats now = injector->stats();
    metrics_.add_count("fault.split_read_faults",
                       now.split_read_faults - seen_faults_.split_read_faults);
    metrics_.add_count("fault.payload_drops",
                       now.payload_drops - seen_faults_.payload_drops);
    metrics_.add_count(
        "fault.payload_corruptions",
        now.payload_corruptions - seen_faults_.payload_corruptions);
    metrics_.add_count("fault.task_faults",
                       now.task_faults - seen_faults_.task_faults);
    seen_faults_ = now;
  }

  metrics_.add_count("pipeline.adaptation_points");
  // Executor observability: batches/tasks the pool completed and the wall
  // time its threads spent inside task bodies while this adaptation point
  // ran. On a pipeline-private executor these are exactly this point's
  // submissions; on a shared pool (a sweep) they are pool-wide — occupancy
  // of the machine, not of this case. Timings/counters are reported, never
  // fed back, so results stay deterministic either way.
  const ExecutorStats exec_after = exec.stats();
  metrics_.add_count("exec.pool_batches",
                     exec_after.batches - exec_before.batches);
  metrics_.add_count("exec.pool_tasks", exec_after.tasks - exec_before.tasks);
  metrics_.add_time("exec.pool_busy",
                    exec_after.busy_seconds - exec_before.busy_seconds);
  return out;
}

}  // namespace stormtrack
