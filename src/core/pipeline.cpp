#include "core/pipeline.hpp"

#include <algorithm>
#include <array>

#include "exec/executor.hpp"
#include "util/check.hpp"

namespace stormtrack {

namespace {

constexpr std::string_view kStageNames[kNumPipelineStages] = {
    "diff_nests",    "derive_weights", "build_candidates",
    "predict_costs", "commit",         "redistribute"};

constexpr std::string_view kStageMetricNames[kNumPipelineStages] = {
    "stage.1_diff_nests",    "stage.2_derive_weights",
    "stage.3_build_candidates", "stage.4_predict_costs",
    "stage.5_commit",        "stage.6_redistribute"};

}  // namespace

std::string_view to_string(PipelineStage stage) {
  return kStageNames[static_cast<int>(stage)];
}

std::string_view stage_metric_name(PipelineStage stage) {
  return kStageMetricNames[static_cast<int>(stage)];
}

const PipelineCandidate* PipelineContext::find(std::string_view name) const {
  for (const PipelineCandidate& c : candidates)
    if (c.name == name) return &c;
  return nullptr;
}

AdaptationPipeline::AdaptationPipeline(const Machine& machine,
                                       const ExecTimeModel& model,
                                       const GroundTruthCost& truth,
                                       ManagerConfig config)
    : machine_(&machine),
      model_(&model),
      truth_(&truth),
      config_(std::move(config)),
      strategy_(StrategyRegistry::global().create(config_.strategy,
                                                  config_.strategy_options)) {
  ST_CHECK_MSG(config_.steps_per_interval >= 1,
               "steps_per_interval must be >= 1");
}

// --------------------------------------------------------------- DiffNests

void AdaptationPipeline::stage_diff_nests(PipelineContext& ctx,
                                          std::span<const NestSpec> active) {
  std::map<int, NestSpec> next;
  for (const NestSpec& n : active) {
    ST_CHECK_MSG(next.emplace(n.id, n).second,
                 "duplicate nest id " << n.id << " in active set");
    ST_CHECK_MSG(n.shape.nx > 0 && n.shape.ny > 0,
                 "nest " << n.id << " has empty shape");
  }
  for (const auto& [id, spec] : current_) {
    if (auto it = next.find(id); it != next.end())
      ctx.retained.push_back(it->second);
    else
      ctx.deleted.push_back(id);
  }
  for (const auto& [id, spec] : next)
    if (!current_.count(id)) ctx.inserted.push_back(spec);
  ctx.active.assign(active.begin(), active.end());
  std::sort(ctx.active.begin(), ctx.active.end(),
            [](const NestSpec& a, const NestSpec& b) { return a.id < b.id; });
  current_ = std::move(next);
}

// ----------------------------------------------------------- DeriveWeights

void AdaptationPipeline::stage_derive_weights(PipelineContext& ctx) const {
  // Weights are predicted execution-time ratios over the whole active set
  // (identical for both candidate methods, §IV-C).
  std::vector<NestShape> shapes;
  shapes.reserve(ctx.active.size());
  for (const NestSpec& n : ctx.active) shapes.push_back(n.shape);
  const std::vector<double> ratios =
      ctx.active.empty() ? std::vector<double>{}
                         : weight_ratios(*model_, shapes, machine_->cores());

  ctx.request.deleted = ctx.deleted;
  for (std::size_t i = 0; i < ctx.active.size(); ++i) {
    const NestWeight nw{ctx.active[i].id, ratios[i]};
    const bool is_new = std::any_of(
        ctx.inserted.begin(), ctx.inserted.end(),
        [&](const NestSpec& s) { return s.id == ctx.active[i].id; });
    (is_new ? ctx.request.inserted : ctx.request.retained).push_back(nw);
  }
}

// --------------------------------------------------------- BuildCandidates

void AdaptationPipeline::stage_build_candidates(PipelineContext& ctx) const {
  const ScratchPartitioner scratch_p;
  const DiffusionPartitioner diffusion_p;
  const std::array<const Partitioner*, 2> partitioners{
      static_cast<const Partitioner*>(&scratch_p),
      static_cast<const Partitioner*>(&diffusion_p)};
  // The two proposals are independent: each reads the committed tree /
  // allocation (immutable here) and writes only its own candidate slot.
  ctx.candidates.resize(partitioners.size());
  resolve_executor(config_.executor)
      .parallel_for(partitioners.size(), [&](std::size_t pi) {
        const Partitioner* p = partitioners[pi];
        PipelineCandidate& c = ctx.candidates[pi];
        c.name = p->name();
        c.tree = p->propose(tree_, ctx.request);
        c.alloc = allocate(c.tree, machine_->grid_px(), machine_->grid_py());
        // Redistribution planning: one Alltoallv message matrix per
        // retained nest (§IV: "MPI_Alltoallv to redistribute data for each
        // nest"), moving from the committed allocation to this candidate's.
        c.plans.reserve(ctx.retained.size());
        for (const NestSpec& nest : ctx.retained) {
          const auto old_rect = allocation_.find(nest.id);
          const auto new_rect = c.alloc.find(nest.id);
          ST_CHECK_MSG(old_rect && new_rect,
                       "retained nest " << nest.id
                                        << " missing an allocation");
          c.plans.push_back(
              plan_redistribution(nest.shape, *old_rect, *new_rect,
                                  machine_->grid_px(),
                                  config_.bytes_per_point));
          c.overlap_points += c.plans.back().overlap_points;
          c.total_points += c.plans.back().total_points;
        }
      });
}

// ------------------------------------------------------------ PredictCosts

void AdaptationPipeline::stage_predict_costs(PipelineContext& ctx) const {
  const RedistTimeModel redist_model(machine_->comm());
  // Candidates are priced concurrently; each candidate's accumulation stays
  // in the serial loop's floating-point order within its own slot.
  resolve_executor(config_.executor)
      .parallel_for(ctx.candidates.size(), [&](std::size_t ci) {
        PipelineCandidate& c = ctx.candidates[ci];
        // §IV-C-1: predict each retained nest's phase; phases run
        // sequentially.
        for (const RedistPlan& plan : c.plans)
          c.metrics.predicted_redist += redist_model.predict(plan.messages);
        // §IV-C-2: nests run concurrently on disjoint processor rectangles,
        // so the coupled interval advances with the slowest nest. The model
        // predicts from the processor *count* — it cannot see the
        // rectangle's aspect ratio, which is precisely why dynamic
        // selection can occasionally pick the wrong method (§V-F).
        double predicted_max = 0.0;
        for (const NestSpec& nest : ctx.active) {
          const auto rect = c.alloc.find(nest.id);
          ST_CHECK_MSG(rect.has_value(),
                       "active nest " << nest.id << " missing allocation");
          predicted_max = std::max(
              predicted_max,
              model_->predict(nest.shape, static_cast<int>(rect->area())));
        }
        c.metrics.predicted_exec = config_.steps_per_interval * predicted_max;
      });
}

// ------------------------------------------------------------------ Commit

void AdaptationPipeline::stage_commit(PipelineContext& ctx) {
  ctx.committed_index = strategy_->decide(ctx);
  ST_CHECK_MSG(ctx.committed_index < ctx.candidates.size(),
               "strategy '" << strategy_->name()
                            << "' chose candidate index "
                            << ctx.committed_index << " of "
                            << ctx.candidates.size());
}

// ------------------------------------------------------------ Redistribute

StepOutcome AdaptationPipeline::stage_redistribute(PipelineContext& ctx) {
  // Every candidate's phases run on the simulated network and its interval
  // is charged at ground truth — not just the committed one — so §V-F
  // experiments can judge each decision against the road not taken. The
  // candidates score concurrently (simulated network and ground truth are
  // const); committing below stays on the calling thread.
  resolve_executor(config_.executor)
      .parallel_for(ctx.candidates.size(), [&](std::size_t ci) {
        PipelineCandidate& c = ctx.candidates[ci];
        for (const RedistPlan& plan : c.plans)
          c.traffic += machine_->comm().alltoallv(plan.messages);
        c.metrics.actual_redist = c.traffic.modeled_time;
        double actual_max = 0.0;
        for (const NestSpec& nest : ctx.active) {
          const auto rect = c.alloc.find(nest.id);
          ST_CHECK_MSG(rect.has_value(),
                       "active nest " << nest.id << " missing allocation");
          actual_max = std::max(actual_max, truth_->execution_time(
                                                nest.shape, rect->w, rect->h));
        }
        c.metrics.actual_exec = config_.steps_per_interval * actual_max;
      });

  StepOutcome out;
  if (const PipelineCandidate* s = ctx.find("scratch")) out.scratch = s->metrics;
  if (const PipelineCandidate* d = ctx.find("diffusion"))
    out.diffusion = d->metrics;
  PipelineCandidate& committed = ctx.candidates[ctx.committed_index];
  out.chosen = committed.name;
  out.committed = committed.metrics;
  out.traffic = committed.traffic;
  out.overlap_fraction =
      committed.total_points == 0
          ? 0.0
          : static_cast<double>(committed.overlap_points) /
                static_cast<double>(committed.total_points);
  out.num_deleted = static_cast<int>(ctx.deleted.size());
  out.num_retained = static_cast<int>(ctx.retained.size());
  out.num_inserted = static_cast<int>(ctx.inserted.size());
  out.allocation = committed.alloc;

  tree_ = std::move(committed.tree);
  allocation_ = std::move(committed.alloc);
  return out;
}

// ------------------------------------------------------------------- apply

StepOutcome AdaptationPipeline::apply(std::span<const NestSpec> active) {
  Executor& exec = resolve_executor(config_.executor);
  const ExecutorStats exec_before = exec.stats();
  PipelineContext ctx;
  {
    ScopedTimer t(&metrics_, stage_metric_name(PipelineStage::kDiffNests));
    stage_diff_nests(ctx, active);
  }
  {
    ScopedTimer t(&metrics_,
                  stage_metric_name(PipelineStage::kDeriveWeights));
    stage_derive_weights(ctx);
  }
  {
    ScopedTimer t(&metrics_,
                  stage_metric_name(PipelineStage::kBuildCandidates));
    stage_build_candidates(ctx);
  }
  {
    ScopedTimer t(&metrics_, stage_metric_name(PipelineStage::kPredictCosts));
    stage_predict_costs(ctx);
  }
  {
    ScopedTimer t(&metrics_, stage_metric_name(PipelineStage::kCommit));
    stage_commit(ctx);
  }
  StepOutcome out;
  {
    ScopedTimer t(&metrics_, stage_metric_name(PipelineStage::kRedistribute));
    out = stage_redistribute(ctx);
  }
  metrics_.add_count("pipeline.adaptation_points");
  metrics_.add_count("pipeline.candidates_built",
                     static_cast<std::int64_t>(ctx.candidates.size()));
  metrics_.add_count("pipeline.redist_plans",
                     static_cast<std::int64_t>(ctx.retained.size()) *
                         static_cast<std::int64_t>(ctx.candidates.size()));
  // Executor observability: batches/tasks the pool completed and the wall
  // time its threads spent inside task bodies while this adaptation point
  // ran. On a pipeline-private executor these are exactly this point's
  // submissions (3 batches, one per candidate-parallel stage); on a shared
  // pool (a sweep) they are pool-wide — occupancy of the machine, not of
  // this case. Timings/counters are reported, never fed back, so results
  // stay deterministic either way.
  const ExecutorStats exec_after = exec.stats();
  metrics_.add_count("exec.pool_batches",
                     exec_after.batches - exec_before.batches);
  metrics_.add_count("exec.pool_tasks", exec_after.tasks - exec_before.tasks);
  metrics_.add_time("exec.pool_busy",
                    exec_after.busy_seconds - exec_before.busy_seconds);
  return out;
}

}  // namespace stormtrack
