#include "core/experiment.hpp"

namespace stormtrack {

double TraceRunResult::total_redist() const {
  double s = 0.0;
  for (const StepOutcome& o : outcomes) s += o.committed.actual_redist;
  return s;
}

double TraceRunResult::total_exec() const {
  double s = 0.0;
  for (const StepOutcome& o : outcomes) s += o.committed.actual_exec;
  return s;
}

double TraceRunResult::mean_avg_hop_bytes() const {
  double s = 0.0;
  int n = 0;
  for (const StepOutcome& o : outcomes) {
    if (o.traffic.total_bytes == 0) continue;
    s += o.traffic.avg_hops_per_byte();
    ++n;
  }
  return n == 0 ? 0.0 : s / n;
}

double TraceRunResult::mean_overlap_fraction() const {
  double s = 0.0;
  int n = 0;
  for (const StepOutcome& o : outcomes) {
    if (o.num_retained == 0) continue;
    s += o.overlap_fraction;
    ++n;
  }
  return n == 0 ? 0.0 : s / n;
}

std::int64_t TraceRunResult::total_hop_bytes() const {
  std::int64_t s = 0;
  for (const StepOutcome& o : outcomes) s += o.traffic.hop_bytes;
  return s;
}

int TraceRunResult::diffusion_picks() const {
  int n = 0;
  for (const StepOutcome& o : outcomes)
    if (o.chosen == "diffusion") ++n;
  return n;
}

TraceRunResult run_trace(const Machine& machine, const ExecTimeModel& model,
                         const GroundTruthCost& truth,
                         std::string_view strategy, const Trace& trace,
                         ManagerConfig config) {
  config.strategy = std::string(strategy);
  AdaptationPipeline pipeline(machine, model, truth, std::move(config));
  TraceRunResult result;
  result.outcomes.reserve(trace.size());
  for (const std::vector<NestSpec>& active : trace)
    result.outcomes.push_back(pipeline.apply(active));
  result.metrics = pipeline.metrics();
  result.final_state_fingerprint = pipeline.state_fingerprint();
  return result;
}

}  // namespace stormtrack
