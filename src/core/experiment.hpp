#pragma once

/// \file experiment.hpp
/// Experiment harness shared by the bench binaries: run one trace under one
/// strategy on one machine, collect per-adaptation-point outcomes and the
/// aggregates the paper reports.

#include <span>
#include <string_view>
#include <vector>

#include "core/pipeline.hpp"
#include "core/traces.hpp"
#include "perfmodel/exec_model.hpp"
#include "util/metrics.hpp"

namespace stormtrack {

/// Per-trace aggregate of StepOutcomes.
struct TraceRunResult {
  std::vector<StepOutcome> outcomes;
  /// Pipeline per-stage wall times and counters over the whole run.
  MetricsRegistry metrics;
  /// AdaptationPipeline::state_fingerprint() after the last adaptation
  /// point — the kill-and-resume determinism witness: a resumed run must
  /// land on the same value as the uninterrupted one.
  std::uint64_t final_state_fingerprint = 0;

  /// Total committed redistribution time over the trace (s).
  [[nodiscard]] double total_redist() const;
  /// Total committed execution time over the trace (s).
  [[nodiscard]] double total_exec() const;
  [[nodiscard]] double total() const { return total_redist() + total_exec(); }

  /// Mean of the per-adaptation-point average hops-per-byte (Fig. 10);
  /// points with no off-rank traffic are skipped.
  [[nodiscard]] double mean_avg_hop_bytes() const;
  /// Mean of the per-adaptation-point overlap fractions over points with
  /// retained nests (Fig. 11).
  [[nodiscard]] double mean_overlap_fraction() const;
  /// Total hop-bytes over the trace.
  [[nodiscard]] std::int64_t total_hop_bytes() const;
  /// How many adaptation points committed the diffusion candidate.
  [[nodiscard]] int diffusion_picks() const;
};

/// Run \p trace under the strategy registered as \p strategy on \p machine
/// (overrides config.strategy).
[[nodiscard]] TraceRunResult run_trace(const Machine& machine,
                                       const ExecTimeModel& model,
                                       const GroundTruthCost& truth,
                                       std::string_view strategy,
                                       const Trace& trace,
                                       ManagerConfig config = {});

/// The paper's standard model stack: one hidden truth and one profiled
/// execution-time model shared by every strategy/machine of an experiment.
struct ModelStack {
  GroundTruthCost truth;
  ExecTimeModel model;

  explicit ModelStack(ProfileConfig profile = ProfileConfig::paper_default())
      : truth(), model(truth, std::move(profile)) {}
};

}  // namespace stormtrack
