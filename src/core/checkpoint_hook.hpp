#pragma once

/// \file checkpoint_hook.hpp
/// Core-side seam for the checkpoint subsystem.
///
/// The dependency arrow between core and ckpt points one way: ckpt (like
/// sweep) is layered *above* core and serializes its state. Core therefore
/// cannot name a concrete checkpointer — instead the run loops
/// (CoupledSimulation::advance, ckpt's trace runner) invoke this abstract
/// hook after every *committed* adaptation point, and ckpt implements it.
/// Committed is the operative word: the hook fires only once the point's
/// transaction has fully landed, so anything it persists is a consistent
/// cut of the run — never mid-ladder, never mid-rollback.

namespace stormtrack {

class AdaptationPipeline;
class CoupledSimulation;
struct StepOutcome;

/// See file comment. Default implementations are no-ops so embedders
/// override only the run shape they drive.
class CheckpointHook {
 public:
  virtual ~CheckpointHook() = default;

  /// One committed adaptation point of a bare trace run. \p point is the
  /// 0-based index of the point that just committed. The pipeline reference
  /// is mutable so implementations can account their work in its metrics
  /// registry (part of the serialized state).
  virtual void on_adaptation_point(AdaptationPipeline& /*pipeline*/,
                                   int /*point*/,
                                   const StepOutcome& /*outcome*/) {}

  /// One committed interval of a coupled run (weather + PDA + tracker +
  /// pipeline + live nest fields). \p interval is the 0-based index of the
  /// interval that just completed. Mutable for the same reason as above.
  virtual void on_interval(CoupledSimulation& /*sim*/, int /*interval*/) {}
};

}  // namespace stormtrack
