#pragma once

/// \file traces.hpp
/// Nest-configuration traces (§V-B).
///
/// Two trace classes drive the experiments, mirroring the paper:
///  * Synthetic — random insertions/deletions of 2–9 nests of 181–361
///    fine-grid points per side, up to 70 reconfigurations ("nests were
///    randomly inserted and deleted").
///  * Real — the full pipeline: the synthetic-monsoon WeatherModel is
///    stepped, split files written, PDA invoked, and the NestTracker
///    classifies the resulting ROIs. Nest counts (≤7) and churn then come
///    from the weather itself.

#include <cstdint>
#include <vector>

#include "core/nest_tracker.hpp"
#include "pda/pda.hpp"
#include "wsim/weather.hpp"

namespace stormtrack {

/// One trace = the full active nest set at each adaptation point.
using Trace = std::vector<std::vector<NestSpec>>;

/// §V-B synthetic test-case generator.
struct SyntheticTraceConfig {
  int num_events = 70;       ///< Reconfigurations ("70 random nest
                             ///< configuration changes").
  int min_nests = 2;         ///< Bounds on concurrent nests ("2 – 9").
  int max_nests = 9;
  int min_size = 181;        ///< Fine-grid nest side bounds
  int max_size = 361;        ///< ("181×181 … 361×361").
  double delete_probability = 0.35;  ///< Per-nest deletion chance per event.
  /// Retained-nest size drift per event. The paper's synthetic cases only
  /// insert and delete nests (retained nests keep their size), so the
  /// default is 0; the real-mode traces get size drift from the clouds
  /// themselves. Non-zero values stress-test the redistribution path.
  double resize_jitter = 0.0;
  int domain_nx = 512;       ///< Parent-grid extent for nest placement.
  int domain_ny = 324;
  std::uint64_t seed = 2013;
};

[[nodiscard]] Trace generate_synthetic_trace(const SyntheticTraceConfig& cfg);

/// Real-mode scenario: weather model + PDA + tracker.
struct RealScenarioConfig {
  WeatherConfig weather = WeatherConfig::mumbai_2005();
  int num_intervals = 100;   ///< Adaptation points (≈100 in the real runs).
  int sim_px = 32;           ///< WRF process grid writing split files.
  int sim_py = 32;
  PdaConfig pda;
  std::uint64_t seed = 0x2005'07'26;  ///< Mumbai event date flavour.
};

/// One adaptation point of the real scenario.
struct RealScenarioStep {
  int interval = 0;
  PdaResult pda;
  NestDiff diff;
  std::vector<NestSpec> active;
  /// True when fault injection lost so much data that PDA found nothing at
  /// all: the tracker was NOT updated (nests would be spuriously deleted)
  /// and `active` repeats the previous interval's set.
  bool data_blackout = false;
};

/// Stepwise driver (keeps the model and tracker alive between intervals).
class RealScenarioDriver {
 public:
  explicit RealScenarioDriver(RealScenarioConfig cfg);

  /// Advance one interval: step weather, write split files, run PDA, diff.
  /// When cfg.pda.injector is set, the injector is advanced to this
  /// interval first (begin_point) so split-read faults line up with the
  /// pipeline's adaptation points.
  RealScenarioStep next();

  [[nodiscard]] const WeatherModel& weather() const { return model_; }
  [[nodiscard]] const RealScenarioConfig& config() const { return cfg_; }

  /// Complete driver state for checkpoint/restart: weather model position,
  /// tracker state, and the interval counter. import_state() resumes the
  /// exact interval sequence of the original run (same config required).
  struct State {
    WeatherModel::State weather;
    NestTracker::State tracker;
    int interval = 0;
  };
  [[nodiscard]] State export_state() const {
    return State{model_.export_state(), tracker_.snapshot(), interval_};
  }
  void import_state(State state) {
    ST_CHECK_MSG(state.interval >= 0, "scenario-driver state has negative "
                                      "interval "
                                          << state.interval);
    model_.import_state(state.weather);
    tracker_.restore(std::move(state.tracker));
    interval_ = state.interval;
  }

  /// Tracker state access for interval-level rollback (CoupledSimulation
  /// restores the tracker when an adaptation point is skipped).
  [[nodiscard]] NestTracker::State tracker_snapshot() const {
    return tracker_.snapshot();
  }
  void restore_tracker(NestTracker::State state) {
    tracker_.restore(std::move(state));
  }
  [[nodiscard]] std::uint64_t tracker_fingerprint() const {
    return tracker_.state_fingerprint();
  }

 private:
  RealScenarioConfig cfg_;
  WeatherModel model_;
  NestTracker tracker_;
  int interval_ = 0;
};

/// Convenience: run the whole real scenario and return just the trace.
[[nodiscard]] Trace generate_real_trace(const RealScenarioConfig& cfg);

}  // namespace stormtrack
