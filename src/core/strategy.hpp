#pragma once

/// \file strategy.hpp
/// Pluggable commit strategies for the adaptation pipeline (§IV).
///
/// The paper's three schemes — always partition-from-scratch (§IV-A),
/// always tree-based hierarchical diffusion (§IV-B), and the dynamic
/// predicted-cost selection (§IV-C) — are instances of one narrow decision:
/// *given the fully built and cost-predicted candidate allocations of this
/// adaptation point, which one do we commit?* IStrategy captures exactly
/// that decision, and a name-keyed StrategyRegistry makes the set open:
/// registering a new scheme requires no change to the pipeline, the
/// experiment harness, or the sweep runner.
///
/// Beyond the paper's three, a `hysteresis` strategy ships as proof the
/// seam is real: it behaves like `dynamic` but only switches away from the
/// previously committed candidate when the predicted gain exceeds a
/// configurable fraction of the incumbent's cost — damping the
/// prediction-noise-driven flip-flopping §V-F observes.

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/check.hpp"

namespace stormtrack {

struct PipelineContext;  // pipeline.hpp

/// Tunables consumed by strategy factories. A plain options bag so newly
/// registered strategies can grow knobs without touching call sites.
struct StrategyOptions {
  /// `hysteresis`: relative predicted gain (fraction of the incumbent
  /// candidate's predicted total) required before switching candidates.
  double hysteresis_threshold = 0.10;
};

/// Commit decision of one adaptation point. Implementations may keep state
/// across calls (one instance lives for the whole run of one pipeline);
/// they see predicted costs only — actual costs are not known at commit
/// time (§IV-C commits on predictions).
class IStrategy {
 public:
  virtual ~IStrategy() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Index into PipelineContext::candidates of the candidate to commit.
  [[nodiscard]] virtual std::size_t decide(const PipelineContext& ctx) = 0;

  /// Opaque serialized internal state for checkpoint/restart. Stateless
  /// strategies return "" (the default); stateful ones must round-trip
  /// export_state() → import_state() so a resumed run decides identically
  /// to the uninterrupted one. import_state() throws CheckError on
  /// unparseable input.
  [[nodiscard]] virtual std::string export_state() const { return {}; }
  virtual void import_state(std::string_view state) {
    ST_CHECK_MSG(state.empty(), "strategy '" << name()
                                             << "' is stateless but got "
                                             << state.size()
                                             << " bytes of saved state");
  }
};

/// §IV-A: always commit the partition-from-scratch candidate.
class ScratchStrategy final : public IStrategy {
 public:
  [[nodiscard]] std::string name() const override { return "scratch"; }
  [[nodiscard]] std::size_t decide(const PipelineContext& ctx) override;
};

/// §IV-B: always commit the tree-based hierarchical diffusion candidate.
class DiffusionStrategy final : public IStrategy {
 public:
  [[nodiscard]] std::string name() const override { return "diffusion"; }
  [[nodiscard]] std::size_t decide(const PipelineContext& ctx) override;
};

/// §IV-C: commit the candidate with the smaller predicted execution +
/// redistribution sum (ties go to diffusion, matching the paper's
/// preference for the overlap-preserving method).
class DynamicStrategy final : public IStrategy {
 public:
  [[nodiscard]] std::string name() const override { return "dynamic"; }
  [[nodiscard]] std::size_t decide(const PipelineContext& ctx) override;
};

/// Damped dynamic selection: stick with the previously committed
/// candidate's method unless the predicted gain of switching exceeds
/// `threshold` × (incumbent predicted total).
class HysteresisStrategy final : public IStrategy {
 public:
  explicit HysteresisStrategy(double threshold = 0.10);

  [[nodiscard]] std::string name() const override { return "hysteresis"; }
  [[nodiscard]] std::size_t decide(const PipelineContext& ctx) override;

  /// The incumbent candidate name survives checkpoint/restart: a resumed
  /// run damps switches against the same incumbent as the original.
  [[nodiscard]] std::string export_state() const override {
    return incumbent_;
  }
  void import_state(std::string_view state) override {
    incumbent_ = std::string(state);
  }

  [[nodiscard]] double threshold() const { return threshold_; }

 private:
  double threshold_;
  std::string incumbent_;  ///< Candidate name committed last point; empty
                           ///< before the first decision.
};

/// Name-keyed strategy factory registry. The process-wide instance
/// (global()) comes pre-seeded with the paper's `scratch` / `diffusion` /
/// `dynamic` plus `hysteresis`; libraries and experiments may register
/// additional schemes at startup. All methods are thread-safe.
class StrategyRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<IStrategy>(const StrategyOptions&)>;

  /// The process-wide registry, pre-seeded with the built-in strategies.
  [[nodiscard]] static StrategyRegistry& global();

  /// Empty registry (tests; isolated experiment setups).
  StrategyRegistry() = default;

  /// Register \p factory under \p name; throws CheckError on duplicates.
  void add(std::string name, Factory factory);

  /// Instantiate the strategy registered under \p name; throws CheckError
  /// for unknown names (the message lists the registered ones).
  [[nodiscard]] std::unique_ptr<IStrategy> create(
      std::string_view name, const StrategyOptions& options = {}) const;

  [[nodiscard]] bool contains(std::string_view name) const;

  /// Registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Factory, std::less<>> factories_;
};

}  // namespace stormtrack
