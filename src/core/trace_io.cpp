#include "core/trace_io.hpp"

#include <fstream>
#include <sstream>
#include <string>

#include "util/atomic_file.hpp"
#include "util/check.hpp"

namespace stormtrack {

namespace {
constexpr const char* kMagic = "stormtrack-trace";
constexpr int kVersion = 1;
}  // namespace

void save_trace(const Trace& trace, std::ostream& os) {
  os << kMagic << ' ' << kVersion << '\n';
  for (std::size_t e = 0; e < trace.size(); ++e) {
    os << "event " << e << '\n';
    for (const NestSpec& n : trace[e]) {
      os << "nest " << n.id << ' ' << n.region.x << ' ' << n.region.y << ' '
         << n.region.w << ' ' << n.region.h << ' ' << n.shape.nx << ' '
         << n.shape.ny << '\n';
    }
  }
  ST_CHECK_MSG(os.good(), "failed writing trace");
}

void save_trace(const Trace& trace, const std::filesystem::path& path) {
  // Atomic replace: a crash mid-save never leaves a truncated trace file.
  std::ostringstream os;
  save_trace(trace, os);
  write_file_atomic(path, os.str());
}

namespace {

/// Parse one whitespace-delimited integer field from \p ls, naming the
/// record's \p field in the error so a truncated or garbled line says
/// exactly what is missing ("nest record missing/invalid field 'region.w'").
int read_field(std::istringstream& ls, int line_no, const char* record,
               const char* field) {
  int value = 0;
  ST_CHECK_MSG(static_cast<bool>(ls >> value),
               "line " << line_no << ": " << record
                       << " record missing/invalid field '" << field << "'");
  return value;
}

/// Reject trailing tokens after a complete record — a truncated line that
/// lost its newline, or a hand-edit gone wrong, silently misparses
/// otherwise.
void expect_end(std::istringstream& ls, int line_no, const char* record) {
  std::string extra;
  ST_CHECK_MSG(!(ls >> extra), "line " << line_no << ": trailing token '"
                                       << extra << "' after " << record
                                       << " record");
}

}  // namespace

Trace load_trace(std::istream& is) {
  std::string magic;
  int version = 0;
  is >> magic >> version;
  ST_CHECK_MSG(!magic.empty(), "empty or unreadable trace (no header)");
  ST_CHECK_MSG(is.good() && magic == kMagic,
               "not a stormtrack trace (bad magic '" << magic << "')");
  ST_CHECK_MSG(version == kVersion, "unsupported trace version " << version);

  Trace trace;
  std::string line;
  std::getline(is, line);  // consume the header's newline
  int line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    // Strip comments and whitespace-only lines.
    if (const auto hash = line.find('#'); hash != std::string::npos)
      line.erase(hash);
    std::istringstream ls(line);
    std::string keyword;
    if (!(ls >> keyword)) continue;
    if (keyword == "event") {
      const int index = read_field(ls, line_no, "event", "index");
      ST_CHECK_MSG(index >= 0 && static_cast<std::size_t>(index) ==
                                     trace.size(),
                   "line " << line_no << ": events must be dense and in "
                           << "order (expected event " << trace.size()
                           << ", got " << index << ")");
      expect_end(ls, line_no, "event");
      trace.emplace_back();
    } else if (keyword == "nest") {
      ST_CHECK_MSG(!trace.empty(),
                   "line " << line_no << ": nest before any event");
      NestSpec n;
      n.id = read_field(ls, line_no, "nest", "id");
      n.region.x = read_field(ls, line_no, "nest", "region.x");
      n.region.y = read_field(ls, line_no, "nest", "region.y");
      n.region.w = read_field(ls, line_no, "nest", "region.w");
      n.region.h = read_field(ls, line_no, "nest", "region.h");
      n.shape.nx = read_field(ls, line_no, "nest", "shape.nx");
      n.shape.ny = read_field(ls, line_no, "nest", "shape.ny");
      expect_end(ls, line_no, "nest");
      ST_CHECK_MSG(n.region.w > 0 && n.region.h > 0 && n.shape.nx > 0 &&
                       n.shape.ny > 0,
                   "line " << line_no << ": non-positive nest extent");
      for (const NestSpec& other : trace.back())
        ST_CHECK_MSG(other.id != n.id,
                     "line " << line_no << ": duplicate nest id " << n.id);
      trace.back().push_back(n);
    } else {
      ST_CHECK_MSG(false, "line " << line_no << ": unknown keyword '"
                                  << keyword << "'");
    }
  }
  return trace;
}

Trace load_trace(const std::filesystem::path& path) {
  std::ifstream is(path);
  ST_CHECK_MSG(is.is_open(), "cannot open trace file " << path);
  try {
    return load_trace(is);
  } catch (const CheckError& e) {
    // Re-throw with the filename so batch loaders report which file broke.
    throw CheckError(std::string(e.what()) + " [in " + path.string() + "]");
  }
}

}  // namespace stormtrack
