#include "core/trace_io.hpp"

#include <fstream>
#include <sstream>
#include <string>

#include "util/check.hpp"

namespace stormtrack {

namespace {
constexpr const char* kMagic = "stormtrack-trace";
constexpr int kVersion = 1;
}  // namespace

void save_trace(const Trace& trace, std::ostream& os) {
  os << kMagic << ' ' << kVersion << '\n';
  for (std::size_t e = 0; e < trace.size(); ++e) {
    os << "event " << e << '\n';
    for (const NestSpec& n : trace[e]) {
      os << "nest " << n.id << ' ' << n.region.x << ' ' << n.region.y << ' '
         << n.region.w << ' ' << n.region.h << ' ' << n.shape.nx << ' '
         << n.shape.ny << '\n';
    }
  }
  ST_CHECK_MSG(os.good(), "failed writing trace");
}

void save_trace(const Trace& trace, const std::filesystem::path& path) {
  if (path.has_parent_path())
    std::filesystem::create_directories(path.parent_path());
  std::ofstream os(path);
  ST_CHECK_MSG(os.is_open(), "cannot open trace file " << path);
  save_trace(trace, os);
}

Trace load_trace(std::istream& is) {
  std::string magic;
  int version = 0;
  is >> magic >> version;
  ST_CHECK_MSG(is.good() && magic == kMagic,
               "not a stormtrack trace (bad magic)");
  ST_CHECK_MSG(version == kVersion, "unsupported trace version " << version);

  Trace trace;
  std::string line;
  std::getline(is, line);  // consume the header's newline
  int line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    // Strip comments and whitespace-only lines.
    if (const auto hash = line.find('#'); hash != std::string::npos)
      line.erase(hash);
    std::istringstream ls(line);
    std::string keyword;
    if (!(ls >> keyword)) continue;
    if (keyword == "event") {
      std::size_t index = 0;
      ST_CHECK_MSG(static_cast<bool>(ls >> index) && index == trace.size(),
                   "line " << line_no << ": events must be dense and "
                           << "in order");
      trace.emplace_back();
    } else if (keyword == "nest") {
      ST_CHECK_MSG(!trace.empty(),
                   "line " << line_no << ": nest before any event");
      NestSpec n;
      ST_CHECK_MSG(static_cast<bool>(ls >> n.id >> n.region.x >> n.region.y >>
                                     n.region.w >> n.region.h >> n.shape.nx >>
                                     n.shape.ny),
                   "line " << line_no << ": malformed nest record");
      ST_CHECK_MSG(n.region.w > 0 && n.region.h > 0 && n.shape.nx > 0 &&
                       n.shape.ny > 0,
                   "line " << line_no << ": non-positive nest extent");
      for (const NestSpec& other : trace.back())
        ST_CHECK_MSG(other.id != n.id,
                     "line " << line_no << ": duplicate nest id " << n.id);
      trace.back().push_back(n);
    } else {
      ST_CHECK_MSG(false, "line " << line_no << ": unknown keyword '"
                                  << keyword << "'");
    }
  }
  return trace;
}

Trace load_trace(const std::filesystem::path& path) {
  std::ifstream is(path);
  ST_CHECK_MSG(is.is_open(), "cannot open trace file " << path);
  return load_trace(is);
}

}  // namespace stormtrack
