#include "core/coupled.hpp"

#include <algorithm>
#include <vector>

#include "util/check.hpp"

namespace stormtrack {

CoupledSimulation::CoupledSimulation(const Machine& machine,
                                     const ExecTimeModel& model,
                                     const GroundTruthCost& truth,
                                     CoupledConfig config)
    : machine_(&machine),
      config_(std::move(config)),
      driver_(config_.scenario),
      manager_(machine, model, truth, config_.manager),
      redistributor_(machine.comm(), config_.manager.bytes_per_point) {}

IntervalReport CoupledSimulation::advance() {
  IntervalReport report;
  report.interval = interval_++;

  // ---- 1–3. Weather step, PDA, lifecycle classification.
  const RealScenarioStep step = driver_.next();
  report.rois_detected = step.pda.rectangles.size();
  report.diff = step.diff;

  // Active set with *frozen* regions: retained nests keep the region and
  // shape they were spawned with (see header).
  std::vector<NestSpec> active;
  for (const NestSpec& spec : step.active) {
    const auto live = nests_.find(spec.id);
    active.push_back(live != nests_.end() ? live->second.spec : spec);
  }

  // Remember the committed rectangles before the reallocation so retained
  // nests' data can be moved afterwards.
  previous_rects_.clear();
  for (const auto& [id, rect] : manager_.allocation().rects())
    previous_rects_.emplace(id, rect);

  // ---- 4. Processor reallocation.
  report.realloc = manager_.apply(active);

  // ---- 5. Nest field lifecycle.
  for (const int id : report.diff.deleted) nests_.erase(id);
  for (const NestSpec& spec : report.diff.inserted) {
    LiveNest nest;
    nest.spec = spec;
    nest.field =
        NestField(driver_.weather().qcloud(), spec.region).data();
    ST_CHECK(nest.field.width() == spec.shape.nx &&
             nest.field.height() == spec.shape.ny);
    nests_.emplace(spec.id, std::move(nest));
  }
  for (const NestSpec& spec : active) {
    const auto prev = previous_rects_.find(spec.id);
    if (prev == previous_rects_.end()) continue;  // just inserted
    const auto now = manager_.allocation().find(spec.id);
    ST_CHECK_MSG(now.has_value(), "active nest " << spec.id
                                                 << " lost its allocation");
    if (*now == prev->second) continue;  // nothing moved
    LiveNest& nest = nests_.at(spec.id);
    // redistribute_field verifies conservation internally.
    nest.field = redistributor_.redistribute_field(
        nest.field, prev->second, *now, machine_->grid_px());
  }

  // ---- 6. Integrate every nest on its processor rectangle.
  for (auto& [id, nest] : nests_) {
    const auto rect = manager_.allocation().find(id);
    ST_CHECK_MSG(rect.has_value(), "live nest " << id
                                                << " has no allocation");
    const DistributedNestStepper stepper(machine_->comm(), nest.spec.shape,
                                         *rect, machine_->grid_px(),
                                         config_.nest_dynamics);
    for (int s = 0; s < config_.manager.steps_per_interval; ++s)
      report.halo_traffic += stepper.step(nest.field);
  }
  report.integration_time = report.realloc.committed.actual_exec;
  return report;
}

}  // namespace stormtrack
