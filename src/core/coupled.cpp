#include "core/coupled.hpp"

#include <algorithm>
#include <vector>

#include "util/check.hpp"

namespace stormtrack {

namespace {

/// The fault injector is configured once on the manager; the scenario's PDA
/// shares it so split-read faults line up with the adaptation points.
CoupledConfig with_shared_injector(CoupledConfig config) {
  if (config.scenario.pda.injector == nullptr)
    config.scenario.pda.injector = config.manager.injector;
  return config;
}

}  // namespace

CoupledSimulation::CoupledSimulation(const Machine& machine,
                                     const ExecTimeModel& model,
                                     const GroundTruthCost& truth,
                                     CoupledConfig config)
    : machine_(&machine),
      config_(with_shared_injector(std::move(config))),
      driver_(config_.scenario),
      manager_(machine, model, truth, config_.manager),
      redistributor_(machine.comm(), config_.manager.bytes_per_point,
                     config_.manager.injector) {}

IntervalReport CoupledSimulation::advance() {
  IntervalReport report;
  report.interval = interval_++;

  // ---- 1–3. Weather step, PDA, lifecycle classification. The tracker is
  // snapshotted first so a skipped adaptation point (degradation ladder
  // bottom) can be rolled back: the replayed classification next interval
  // then assigns the same fresh nest ids it would have.
  const NestTracker::State tracker_before = driver_.tracker_snapshot();
  const RealScenarioStep step = driver_.next();
  report.rois_detected = step.pda.rectangles.size();
  report.diff = step.diff;
  if (step.data_blackout)
    manager_.metrics().add_count("recovery.blackout_intervals");

  // Active set with *frozen* regions: retained nests keep the region and
  // shape they were spawned with (see header).
  std::vector<NestSpec> active;
  for (const NestSpec& spec : step.active) {
    const auto live = nests_.find(spec.id);
    active.push_back(live != nests_.end() ? live->second.spec : spec);
  }

  // Remember the committed rectangles before the reallocation so retained
  // nests' data can be moved afterwards.
  previous_rects_.clear();
  for (const auto& [id, rect] : manager_.allocation().rects())
    previous_rects_.emplace(id, rect);

  // ---- 4. Processor reallocation.
  report.realloc = manager_.apply(active);

  if (report.realloc.degradation == "retained_previous") {
    // The pipeline skipped the point and rolled its own state back; undo
    // the tracker update too and keep the live nests exactly as they were,
    // so the whole interval is a no-op apart from integration.
    driver_.restore_tracker(tracker_before);
    manager_.metrics().add_count("recovery.interval_rollbacks");
    report.diff = NestDiff{};
    for (const auto& [id, nest] : nests_)
      report.diff.retained.push_back(nest.spec);
  } else {
    // ---- 5. Nest field lifecycle.
    for (const int id : report.diff.deleted) nests_.erase(id);
    for (const NestSpec& spec : active) {
      if (nests_.contains(spec.id)) continue;
      LiveNest nest;
      nest.spec = spec;
      nest.field =
          NestField(driver_.weather().qcloud(), spec.region).data();
      ST_CHECK(nest.field.width() == spec.shape.nx &&
               nest.field.height() == spec.shape.ny);
      nests_.emplace(spec.id, std::move(nest));
    }
    for (const NestSpec& spec : active) {
      const auto prev = previous_rects_.find(spec.id);
      if (prev == previous_rects_.end()) continue;  // just inserted
      const auto now = manager_.allocation().find(spec.id);
      ST_CHECK_MSG(now.has_value(), "active nest " << spec.id
                                                   << " lost its allocation");
      if (*now == prev->second) continue;  // nothing moved
      LiveNest& nest = nests_.at(spec.id);
      try {
        // redistribute_field verifies conservation internally.
        nest.field = redistributor_.redistribute_field(
            nest.field, prev->second, *now, machine_->grid_px());
      } catch (const CheckError&) {
        // Payload faults surface here as conservation / integrity check
        // failures: the moved data is gone or damaged. Rebuild the field
        // from the parent grid (same interpolation as a fresh spawn) —
        // lossy, but the nest keeps running.
        if (config_.manager.injector == nullptr) throw;
        nest.field = NestField(driver_.weather().qcloud(), spec.region).data();
        manager_.metrics().add_count("recovery.field_reinits");
      }
    }
  }

  // ---- 6. Integrate every nest on its processor rectangle.
  for (auto& [id, nest] : nests_) {
    const auto rect = manager_.allocation().find(id);
    ST_CHECK_MSG(rect.has_value(), "live nest " << id
                                                << " has no allocation");
    const DistributedNestStepper stepper(machine_->comm(), nest.spec.shape,
                                         *rect, machine_->grid_px(),
                                         config_.nest_dynamics);
    for (int s = 0; s < config_.manager.steps_per_interval; ++s)
      report.halo_traffic += stepper.step(nest.field);
  }
  report.integration_time = report.realloc.committed.actual_exec;
  return report;
}

}  // namespace stormtrack
