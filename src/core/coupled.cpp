#include "core/coupled.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/checkpoint_hook.hpp"
#include "fault/snapshot.hpp"
#include "util/check.hpp"
#include "util/fnv.hpp"

namespace stormtrack {

namespace {

/// The fault injector is configured once on the manager; the scenario's PDA
/// shares it so split-read faults line up with the adaptation points.
CoupledConfig with_shared_injector(CoupledConfig config) {
  if (config.scenario.pda.injector == nullptr)
    config.scenario.pda.injector = config.manager.injector;
  return config;
}

}  // namespace

CoupledSimulation::CoupledSimulation(const Machine& machine,
                                     const ExecTimeModel& model,
                                     const GroundTruthCost& truth,
                                     CoupledConfig config)
    : machine_(&machine),
      config_(with_shared_injector(std::move(config))),
      driver_(config_.scenario),
      manager_(machine, model, truth, config_.manager),
      redistributor_(machine.comm(), config_.manager.bytes_per_point,
                     config_.manager.injector) {}

IntervalReport CoupledSimulation::advance() {
  IntervalReport report;
  report.interval = interval_++;

  // ---- 1–3. Weather step, PDA, lifecycle classification. The tracker is
  // snapshotted first so a skipped adaptation point (degradation ladder
  // bottom) can be rolled back: the replayed classification next interval
  // then assigns the same fresh nest ids it would have.
  const NestTracker::State tracker_before = driver_.tracker_snapshot();
  const RealScenarioStep step = driver_.next();
  report.rois_detected = step.pda.rectangles.size();
  report.diff = step.diff;
  if (step.data_blackout)
    manager_.metrics().add_count("recovery.blackout_intervals");

  // Active set with *frozen* regions: retained nests keep the region and
  // shape they were spawned with (see header).
  std::vector<NestSpec> active;
  for (const NestSpec& spec : step.active) {
    const auto live = nests_.find(spec.id);
    active.push_back(live != nests_.end() ? live->second.spec : spec);
  }

  // Remember the committed rectangles before the reallocation so retained
  // nests' data can be moved afterwards.
  previous_rects_.clear();
  for (const auto& [id, rect] : manager_.allocation().rects())
    previous_rects_.emplace(id, rect);

  // ---- 4. Processor reallocation.
  report.realloc = manager_.apply(active);

  if (report.realloc.degradation == "retained_previous") {
    // The pipeline skipped the point and rolled its own state back; undo
    // the tracker update too and keep the live nests exactly as they were,
    // so the whole interval is a no-op apart from integration.
    driver_.restore_tracker(tracker_before);
    manager_.metrics().add_count("recovery.interval_rollbacks");
    report.diff = NestDiff{};
    for (const auto& [id, nest] : nests_)
      report.diff.retained.push_back(nest.spec);
  } else {
    // ---- 5. Nest field lifecycle.
    for (const int id : report.diff.deleted) nests_.erase(id);
    for (const NestSpec& spec : active) {
      if (nests_.contains(spec.id)) continue;
      LiveNest nest;
      nest.spec = spec;
      nest.field =
          NestField(driver_.weather().qcloud(), spec.region).data();
      ST_CHECK(nest.field.width() == spec.shape.nx &&
               nest.field.height() == spec.shape.ny);
      nests_.emplace(spec.id, std::move(nest));
    }
    for (const NestSpec& spec : active) {
      const auto prev = previous_rects_.find(spec.id);
      if (prev == previous_rects_.end()) continue;  // just inserted
      const auto now = manager_.allocation().find(spec.id);
      ST_CHECK_MSG(now.has_value(), "active nest " << spec.id
                                                   << " lost its allocation");
      if (*now == prev->second) continue;  // nothing moved
      LiveNest& nest = nests_.at(spec.id);
      try {
        // redistribute_field verifies conservation internally.
        nest.field = redistributor_.redistribute_field(
            nest.field, prev->second, *now, machine_->grid_px());
      } catch (const CheckError&) {
        // Payload faults surface here as conservation / integrity check
        // failures: the moved data is gone or damaged. Rebuild the field
        // from the parent grid (same interpolation as a fresh spawn) —
        // lossy, but the nest keeps running.
        if (config_.manager.injector == nullptr) throw;
        nest.field = NestField(driver_.weather().qcloud(), spec.region).data();
        manager_.metrics().add_count("recovery.field_reinits");
      }
    }
  }

  // ---- 6. Integrate every nest on its processor rectangle.
  for (auto& [id, nest] : nests_) {
    const auto rect = manager_.allocation().find(id);
    ST_CHECK_MSG(rect.has_value(), "live nest " << id
                                                << " has no allocation");
    const DistributedNestStepper stepper(machine_->comm(), nest.spec.shape,
                                         *rect, machine_->grid_px(),
                                         config_.nest_dynamics);
    for (int s = 0; s < config_.manager.steps_per_interval; ++s)
      report.halo_traffic += stepper.step(nest.field);
  }
  report.integration_time = report.realloc.committed.actual_exec;

  // The interval is fully committed at this point — weather, tracker,
  // pipeline, and nest fields are all consistent — so this is the one safe
  // cut for checkpointing.
  if (config_.hook != nullptr) config_.hook->on_interval(*this, report.interval);
  return report;
}

CoupledSimulation::State CoupledSimulation::export_state() const {
  State state;
  state.driver = driver_.export_state();
  state.pipeline = manager_.export_state();
  state.nests.reserve(nests_.size());
  for (const auto& [id, nest] : nests_) state.nests.push_back(nest);
  state.interval = interval_;
  return state;
}

void CoupledSimulation::import_state(State state) {
  ST_CHECK_MSG(state.interval >= 0, "coupled state has negative interval "
                                        << state.interval);
  std::map<int, LiveNest> nests;
  for (LiveNest& nest : state.nests) {
    ST_CHECK_MSG(nest.field.width() == nest.spec.shape.nx &&
                     nest.field.height() == nest.spec.shape.ny,
                 "live nest " << nest.spec.id << " carries a "
                              << nest.field.width() << "x"
                              << nest.field.height()
                              << " field but its spec says "
                              << nest.spec.shape.nx << "x"
                              << nest.spec.shape.ny);
    const int id = nest.spec.id;
    ST_CHECK_MSG(nests.emplace(id, std::move(nest)).second,
                 "coupled state repeats live nest id " << id);
  }
  // Pipeline import validates allocation invariants; do it before touching
  // members so a bad checkpoint leaves this simulation unchanged.
  manager_.import_state(state.pipeline);
  for (const auto& [id, nest] : nests)
    ST_CHECK_MSG(manager_.allocation().find(id).has_value(),
                 "live nest " << id << " has no allocation in the "
                                       "checkpointed pipeline state");
  driver_.import_state(std::move(state.driver));
  nests_ = std::move(nests);
  previous_rects_.clear();  // rebuilt at the top of every advance()
  interval_ = state.interval;
}

std::uint64_t CoupledSimulation::state_fingerprint() const {
  Fingerprint fp;
  fp.add(interval_);
  fp.add(manager_.state_fingerprint());
  fp.add(driver_.tracker_fingerprint());

  const WeatherModel::State weather = driver_.weather().export_state();
  fp.add(weather.step);
  for (const std::uint64_t word : weather.rng.s) fp.add(word);
  fp.add(weather.rng.spare);
  fp.add(static_cast<std::int64_t>(weather.rng.have_spare));
  fp.add(static_cast<std::int64_t>(weather.systems.size()));
  for (const CloudSystem& s : weather.systems) {
    fp.add(s.cx);
    fp.add(s.cy);
    fp.add(s.sigma_x);
    fp.add(s.sigma_y);
    fp.add(s.intensity);
    fp.add(s.vx);
    fp.add(s.vy);
    fp.add(s.growth);
    fp.add(s.age);
    fp.add(s.lifetime);
  }

  fp.add(static_cast<std::int64_t>(nests_.size()));
  for (const auto& [id, nest] : nests_) {
    fp.add(id);
    add_fingerprint(fp, nest.spec.region);
    fp.add(nest.spec.shape.nx);
    fp.add(nest.spec.shape.ny);
    for (const double v : nest.field.data()) fp.add(v);
  }
  return fp.value();
}

}  // namespace stormtrack
