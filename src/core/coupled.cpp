#include "core/coupled.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/checkpoint_hook.hpp"
#include "fault/snapshot.hpp"
#include "util/check.hpp"
#include "util/fnv.hpp"

namespace stormtrack {

namespace {

/// The fault injector is configured once on the manager; the scenario's PDA
/// shares it so split-read faults line up with the adaptation points.
CoupledConfig with_shared_injector(CoupledConfig config) {
  if (config.scenario.pda.injector == nullptr)
    config.scenario.pda.injector = config.manager.injector;
  return config;
}

}  // namespace

CoupledSimulation::CoupledSimulation(const Machine& machine,
                                     const ExecTimeModel& model,
                                     const GroundTruthCost& truth,
                                     CoupledConfig config)
    : machine_(&machine),
      config_(with_shared_injector(std::move(config))),
      driver_(config_.scenario),
      manager_(machine, model, truth, config_.manager),
      redistributor_(machine.comm(), config_.manager.bytes_per_point,
                     config_.manager.injector),
      workload_(WorkloadRegistry::global().create(
          config_.workload,
          WorkloadParams{config_.nest_dynamics, config_.particles})) {}

WorkloadEnv CoupledSimulation::workload_env(TrafficReport* data_movement) {
  WorkloadEnv env;
  env.comm = &machine_->comm();
  env.grid_px = machine_->grid_px();
  env.weather = &driver_.weather();
  env.redistributor = &redistributor_;
  env.metrics = &manager_.metrics();
  env.executor = config_.executor;
  env.data_movement = data_movement;
  return env;
}

IntervalReport CoupledSimulation::advance() {
  IntervalReport report;
  report.interval = interval_++;

  // ---- 1–3. Weather step, PDA, lifecycle classification. The tracker is
  // snapshotted first so a skipped adaptation point (degradation ladder
  // bottom) can be rolled back: the replayed classification next interval
  // then assigns the same fresh nest ids it would have.
  const NestTracker::State tracker_before = driver_.tracker_snapshot();
  const RealScenarioStep step = driver_.next();
  report.rois_detected = step.pda.rectangles.size();
  report.diff = step.diff;
  if (step.data_blackout)
    manager_.metrics().add_count("recovery.blackout_intervals");

  // Active set with *frozen* regions: retained nests keep the region and
  // shape they were spawned with (see header).
  std::vector<NestSpec> active;
  for (const NestSpec& spec : step.active) {
    active.push_back(workload_->has_nest(spec.id)
                         ? workload_->nest_spec(spec.id)
                         : spec);
  }

  // Remember the committed rectangles before the reallocation so retained
  // nests' data can be moved afterwards.
  previous_rects_.clear();
  for (const auto& [id, rect] : manager_.allocation().rects())
    previous_rects_.emplace(id, rect);

  // ---- 4. Processor reallocation.
  report.realloc = manager_.apply(active);

  const WorkloadEnv move_env = workload_env(&report.workload_traffic);
  if (report.realloc.degradation == "retained_previous") {
    // The pipeline skipped the point and rolled its own state back; undo
    // the tracker update too and keep the live nests exactly as they were,
    // so the whole interval is a no-op apart from integration.
    driver_.restore_tracker(tracker_before);
    manager_.metrics().add_count("recovery.interval_rollbacks");
    report.diff = NestDiff{};
    for (const int id : workload_->nest_ids())
      report.diff.retained.push_back(workload_->nest_spec(id));
  } else {
    // ---- 5. Nest payload lifecycle, through the workload layer.
    for (const int id : report.diff.deleted) workload_->delete_nest(id);
    for (const NestSpec& spec : active) {
      if (workload_->has_nest(spec.id)) continue;
      workload_->insert_nest(spec, move_env);
    }
    for (const NestSpec& spec : active) {
      const auto prev = previous_rects_.find(spec.id);
      if (prev == previous_rects_.end()) continue;  // just inserted
      const auto now = manager_.allocation().find(spec.id);
      ST_CHECK_MSG(now.has_value(), "active nest " << spec.id
                                                   << " lost its allocation");
      if (*now == prev->second) continue;  // nothing moved
      try {
        // The workload verifies conservation / integrity internally.
        workload_->move_nest(spec.id, prev->second, *now, move_env);
      } catch (const CheckError&) {
        // Payload faults surface here as conservation / integrity check
        // failures: the moved data is gone or damaged. Rebuild the nest's
        // state from the parent model (same initialization as a fresh
        // spawn) — lossy, but the nest keeps running.
        if (config_.manager.injector == nullptr) throw;
        workload_->reinit_nest(spec.id, move_env);
        manager_.metrics().add_count("recovery.field_reinits");
      }
    }
  }

  // ---- 6. Integrate every nest on its processor rectangle. Workloads
  // whose integration moves real payloads (particle handoffs) can hit
  // injected faults here too; the recovery answer is the same.
  const WorkloadEnv step_env = workload_env(nullptr);
  for (const int id : workload_->nest_ids()) {
    const auto rect = manager_.allocation().find(id);
    ST_CHECK_MSG(rect.has_value(), "live nest " << id
                                                << " has no allocation");
    try {
      report.halo_traffic += workload_->integrate(
          id, *rect, config_.manager.steps_per_interval, step_env);
    } catch (const CheckError&) {
      if (config_.manager.injector == nullptr) throw;
      workload_->reinit_nest(id, step_env);
      manager_.metrics().add_count("recovery.field_reinits");
    }
  }
  report.integration_time = report.realloc.committed.actual_exec;

  // The interval is fully committed at this point — weather, tracker,
  // pipeline, and nest payloads are all consistent — so this is the one
  // safe cut for checkpointing.
  if (config_.hook != nullptr) config_.hook->on_interval(*this, report.interval);
  return report;
}

const std::map<int, LiveNest>& CoupledSimulation::nests() const {
  const auto* field = dynamic_cast<const FieldWorkload*>(workload_.get());
  ST_CHECK_MSG(field != nullptr,
               "nests() is only available under the field workload (this "
               "run uses '"
                   << workload_->name() << "'); use workload() instead");
  return field->nests();
}

CoupledSimulation::State CoupledSimulation::export_state() const {
  State state;
  state.driver = driver_.export_state();
  state.pipeline = manager_.export_state();
  state.workload = std::string(workload_->name());
  state.workload_state = workload_->export_state();
  state.interval = interval_;
  return state;
}

void CoupledSimulation::import_state(State state) {
  ST_CHECK_MSG(state.interval >= 0, "coupled state has negative interval "
                                        << state.interval);
  ST_CHECK_MSG(state.workload == config_.workload,
               "coupled state carries workload '"
                   << state.workload << "' but this simulation runs '"
                   << config_.workload << "'");
  // Import the payload blob into a *fresh* workload instance first: a bad
  // blob then throws before any member is touched (transactionality).
  std::unique_ptr<INestWorkload> workload = WorkloadRegistry::global().create(
      config_.workload,
      WorkloadParams{config_.nest_dynamics, config_.particles});
  workload->import_state(state.workload_state);
  // Pipeline import validates allocation invariants; still before touching
  // members so a bad checkpoint leaves this simulation unchanged.
  manager_.import_state(state.pipeline);
  for (const int id : workload->nest_ids())
    ST_CHECK_MSG(manager_.allocation().find(id).has_value(),
                 "live nest " << id << " has no allocation in the "
                                       "checkpointed pipeline state");
  driver_.import_state(std::move(state.driver));
  workload_ = std::move(workload);
  previous_rects_.clear();  // rebuilt at the top of every advance()
  interval_ = state.interval;
}

std::uint64_t CoupledSimulation::state_fingerprint() const {
  Fingerprint fp;
  fp.add(interval_);
  fp.add(manager_.state_fingerprint());
  fp.add(driver_.tracker_fingerprint());

  const WeatherModel::State weather = driver_.weather().export_state();
  fp.add(weather.step);
  for (const std::uint64_t word : weather.rng.s) fp.add(word);
  fp.add(weather.rng.spare);
  fp.add(static_cast<std::int64_t>(weather.rng.have_spare));
  fp.add(static_cast<std::int64_t>(weather.systems.size()));
  for (const CloudSystem& s : weather.systems) {
    fp.add(s.cx);
    fp.add(s.cy);
    fp.add(s.sigma_x);
    fp.add(s.sigma_y);
    fp.add(s.intensity);
    fp.add(s.vx);
    fp.add(s.vy);
    fp.add(s.growth);
    fp.add(s.age);
    fp.add(s.lifetime);
  }

  // The workload name is deliberately NOT hashed: the field workload must
  // reproduce the pre-refactor fingerprints bit-for-bit (golden test), and
  // the name already gates import via the config fingerprint.
  workload_->add_state_fingerprint(fp);
  return fp.value();
}

}  // namespace stormtrack
