#pragma once

/// \file coupled.hpp
/// The full running system (paper contribution #2): "a framework that
/// supports dynamic nest formation and processor rescheduling within a
/// running simulation".
///
/// A CoupledSimulation owns every moving part and advances them together,
/// one adaptation interval at a time:
///
///  1. the parent weather model steps and writes split files;
///  2. the parallel data analysis (§III) detects regions of interest;
///  3. the nest tracker classifies inserts / deletes / retains;
///  4. the reallocation manager repartitions processors under the chosen
///     strategy (§IV) and prices the redistribution;
///  5. nest *fields* live through the events: inserted nests interpolate
///     their initial state from the parent (3× refinement), retained
///     nests' data is genuinely moved between the old and new processor
///     rectangles (conservation checked), deleted nests are dropped;
///  6. every nest then integrates `steps_per_interval` dynamics steps on
///     its processor rectangle, halo exchanges priced on the simulated
///     network.
///
/// Nests keep the region they were spawned over while they live (the
/// paper's redistribution operates on a fixed nest size; WRF nests do not
/// follow the cloud within a single lifetime) — the tracker's region
/// updates only affect matching.

#include <map>
#include <optional>

#include "core/pipeline.hpp"
#include "core/traces.hpp"
#include "wsim/dynamics.hpp"
#include "wsim/nest.hpp"

namespace stormtrack {

class CheckpointHook;

/// Configuration of the coupled run.
struct CoupledConfig {
  RealScenarioConfig scenario;    ///< Weather, PDA, simulation process grid.
  ManagerConfig manager;          ///< Strategy, steps per interval, bytes.
  DynamicsParams nest_dynamics;   ///< Nest integrator coefficients.
  /// Invoked (on_interval) after every completed interval — the ckpt
  /// subsystem hangs checkpointing off this seam. Null = no hook. Must
  /// outlive the simulation.
  CheckpointHook* hook = nullptr;
};

/// Everything observable about one adaptation interval.
struct IntervalReport {
  int interval = 0;
  std::size_t rois_detected = 0;    ///< PDA rectangles this interval.
  NestDiff diff;                    ///< Lifecycle classification.
  StepOutcome realloc;              ///< Allocation + redistribution metrics.
  TrafficReport halo_traffic;       ///< Nest-integration halo exchanges.
  double integration_time = 0.0;    ///< Ground-truth nest step time (s).
};

/// A live nested simulation domain.
struct LiveNest {
  NestSpec spec;            ///< Frozen at spawn (region does not follow).
  Grid2D<double> field;     ///< Integrated fine-resolution state.
};

/// See file comment.
class CoupledSimulation {
 public:
  /// All referents must outlive the simulation.
  CoupledSimulation(const Machine& machine, const ExecTimeModel& model,
                    const GroundTruthCost& truth, CoupledConfig config);

  /// Advance one adaptation interval (steps 1–6 of the file comment).
  IntervalReport advance();

  /// Live nests by id.
  [[nodiscard]] const std::map<int, LiveNest>& nests() const {
    return nests_;
  }
  [[nodiscard]] const WeatherModel& weather() const {
    return driver_.weather();
  }
  [[nodiscard]] const Allocation& allocation() const {
    return manager_.allocation();
  }
  [[nodiscard]] int interval() const { return interval_; }
  [[nodiscard]] const CoupledConfig& config() const { return config_; }
  [[nodiscard]] const AdaptationPipeline& pipeline() const { return manager_; }
  /// Mutable registry access so embedding code (the CLI, ckpt) can record
  /// its own counters alongside the pipeline's.
  [[nodiscard]] MetricsRegistry& metrics() { return manager_.metrics(); }

  /// Complete evolving state for checkpoint/restart: the scenario driver
  /// (weather RNG position + tracker), the pipeline's committed state, the
  /// interval counter, and every live nest's integrated field. A simulation
  /// built from the same Machine/models/config that import_state()s this
  /// advances through the exact interval sequence — and
  /// state_fingerprint() — of the original run.
  struct State {
    RealScenarioDriver::State driver;
    AdaptationPipeline::PipelineState pipeline;
    std::vector<LiveNest> nests;  ///< Ascending by id.
    int interval = 0;
  };
  [[nodiscard]] State export_state() const;
  /// Validates (unique ids, field shapes, pipeline invariants) before
  /// installing; throws CheckError on any mismatch.
  void import_state(State state);

  /// FNV-1a fingerprint over everything export_state() captures (weather
  /// RNG + systems, tracker, pipeline committed state, live nest fields,
  /// interval counter). A resumed run and the uninterrupted reference
  /// agreeing here means byte-identical doubles end to end.
  [[nodiscard]] std::uint64_t state_fingerprint() const;

 private:
  const Machine* machine_;
  CoupledConfig config_;
  RealScenarioDriver driver_;
  AdaptationPipeline manager_;
  Redistributor redistributor_;
  std::map<int, LiveNest> nests_;
  std::map<int, Rect> previous_rects_;  ///< Processor rects before realloc.
  int interval_ = 0;
};

}  // namespace stormtrack
