#pragma once

/// \file coupled.hpp
/// The full running system (paper contribution #2): "a framework that
/// supports dynamic nest formation and processor rescheduling within a
/// running simulation".
///
/// A CoupledSimulation owns every moving part and advances them together,
/// one adaptation interval at a time:
///
///  1. the parent weather model steps and writes split files;
///  2. the parallel data analysis (§III) detects regions of interest;
///  3. the nest tracker classifies inserts / deletes / retains;
///  4. the reallocation manager repartitions processors under the chosen
///     strategy (§IV) and prices the redistribution;
///  5. nest *payloads* live through the events via the pluggable workload
///     layer (wsim/workload.hpp): inserted nests initialize their state
///     from the parent model, retained nests' data is genuinely moved
///     between the old and new processor rectangles (integrity checked by
///     the workload), deleted nests are dropped;
///  6. every nest then integrates `steps_per_interval` workload sub-steps
///     on its processor rectangle, neighbour traffic priced on the
///     simulated network.
///
/// The engine never sees payload bytes: CoupledConfig::workload names the
/// INestWorkload implementation ("field" reproduces the original
/// advection–diffusion nests bit-identically; "particles" advects
/// Lagrangian trajectories with rank handoffs). Payload damage under fault
/// injection surfaces from the workload as CheckError and is answered by
/// reinitializing that nest from the parent model.
///
/// Nests keep the region they were spawned over while they live (the
/// paper's redistribution operates on a fixed nest size; WRF nests do not
/// follow the cloud within a single lifetime) — the tracker's region
/// updates only affect matching.

#include <cstddef>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "core/traces.hpp"
#include "wsim/dynamics.hpp"
#include "wsim/nest.hpp"
#include "wsim/workload.hpp"
#include "wsim/workload_field.hpp"

namespace stormtrack {

class CheckpointHook;

/// Configuration of the coupled run.
struct CoupledConfig {
  RealScenarioConfig scenario;    ///< Weather, PDA, simulation process grid.
  ManagerConfig manager;          ///< Strategy, steps per interval, bytes.
  DynamicsParams nest_dynamics;   ///< Nest integrator coefficients.
  /// Registered name of the nest payload implementation (see
  /// WorkloadRegistry: "field", "particles").
  std::string workload = "field";
  ParticleParams particles;       ///< Tunables for workload = "particles".
  /// When set, workloads that can parallelize integration (particle
  /// advection) use it; results are byte-identical to serial. Must outlive
  /// the simulation.
  Executor* executor = nullptr;
  /// Invoked (on_interval) after every completed interval — the ckpt
  /// subsystem hangs checkpointing off this seam. Null = no hook. Must
  /// outlive the simulation.
  CheckpointHook* hook = nullptr;
};

/// Everything observable about one adaptation interval.
struct IntervalReport {
  int interval = 0;
  std::size_t rois_detected = 0;    ///< PDA rectangles this interval.
  NestDiff diff;                    ///< Lifecycle classification.
  StepOutcome realloc;              ///< Allocation + redistribution metrics.
  TrafficReport halo_traffic;       ///< Integration neighbour traffic.
  /// Payload bytes genuinely moved by the workload when retained nests
  /// changed processor rectangles this interval (field blocks or particle
  /// records — the realloc data-movement cost made concrete).
  TrafficReport workload_traffic;
  double integration_time = 0.0;    ///< Ground-truth nest step time (s).
};

/// See file comment.
class CoupledSimulation {
 public:
  /// All referents must outlive the simulation.
  CoupledSimulation(const Machine& machine, const ExecTimeModel& model,
                    const GroundTruthCost& truth, CoupledConfig config);

  /// Advance one adaptation interval (steps 1–6 of the file comment).
  IntervalReport advance();

  /// The live payload layer (named by CoupledConfig::workload).
  [[nodiscard]] const INestWorkload& workload() const { return *workload_; }

  /// Live nests by id — compatibility accessor for field-workload runs
  /// (throws CheckError under any other workload; new code should go
  /// through workload()).
  [[nodiscard]] const std::map<int, LiveNest>& nests() const;
  [[nodiscard]] const WeatherModel& weather() const {
    return driver_.weather();
  }
  [[nodiscard]] const Allocation& allocation() const {
    return manager_.allocation();
  }
  [[nodiscard]] int interval() const { return interval_; }
  [[nodiscard]] const CoupledConfig& config() const { return config_; }
  [[nodiscard]] const AdaptationPipeline& pipeline() const { return manager_; }
  /// Mutable registry access so embedding code (the CLI, ckpt) can record
  /// its own counters alongside the pipeline's.
  [[nodiscard]] MetricsRegistry& metrics() { return manager_.metrics(); }

  /// Complete evolving state for checkpoint/restart: the scenario driver
  /// (weather RNG position + tracker), the pipeline's committed state, the
  /// interval counter, and the workload's opaque payload blob. A simulation
  /// built from the same Machine/models/config that import_state()s this
  /// advances through the exact interval sequence — and
  /// state_fingerprint() — of the original run.
  struct State {
    RealScenarioDriver::State driver;
    AdaptationPipeline::PipelineState pipeline;
    std::string workload;                   ///< Registry name.
    std::vector<std::byte> workload_state;  ///< INestWorkload blob.
    int interval = 0;
  };
  [[nodiscard]] State export_state() const;
  /// Validates (workload name, blob integrity, pipeline invariants,
  /// per-nest allocations) before installing; throws CheckError on any
  /// mismatch, leaving this simulation unchanged.
  void import_state(State state);

  /// FNV-1a fingerprint over everything export_state() captures (weather
  /// RNG + systems, tracker, pipeline committed state, workload payload
  /// state, interval counter). A resumed run and the uninterrupted
  /// reference agreeing here means byte-identical doubles end to end.
  [[nodiscard]] std::uint64_t state_fingerprint() const;

 private:
  [[nodiscard]] WorkloadEnv workload_env(TrafficReport* data_movement);

  const Machine* machine_;
  CoupledConfig config_;
  RealScenarioDriver driver_;
  AdaptationPipeline manager_;
  Redistributor redistributor_;
  std::unique_ptr<INestWorkload> workload_;
  std::map<int, Rect> previous_rects_;  ///< Processor rects before realloc.
  int interval_ = 0;
};

}  // namespace stormtrack
