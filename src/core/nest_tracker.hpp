#pragma once

/// \file nest_tracker.hpp
/// Nest lifecycle tracking across PDA invocations (§IV).
///
/// The PDA algorithm emits a fresh set of region-of-interest rectangles
/// every adaptation point. The tracker matches them against the currently
/// active nests by spatial overlap: a matched pair means the nest is
/// *retained* (its region updated), unmatched old nests are *deleted*, and
/// unmatched rectangles spawn *inserted* nests with fresh ids — exactly the
/// insert/delete/retain classification that drives Algorithm 3.

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "perfmodel/ground_truth.hpp"  // NestShape
#include "util/rect.hpp"
#include "wsim/nest.hpp"

namespace stormtrack {

// NestSpec lives in wsim/nest.hpp (included above) so the workload layer
// can use it; every previous includer of this header still sees it.

/// Diff of one adaptation point.
struct NestDiff {
  std::vector<int> deleted;      ///< Ids of vanished nests.
  std::vector<NestSpec> retained;  ///< Surviving nests, regions updated.
  std::vector<NestSpec> inserted; ///< Newly spawned nests.
};

/// Stateful tracker; feed it each PDA output in order.
class NestTracker {
 public:
  /// \param match_threshold minimum Jaccard overlap between an old nest's
  ///        region and a new ROI for the pair to count as the same nest.
  explicit NestTracker(double match_threshold = 0.05,
                       int refinement_ratio = kRefinementRatio);

  /// Ingest the ROIs of one adaptation point; returns the classification
  /// and updates the active set.
  NestDiff update(std::span<const Rect> rois);

  /// Currently active nests, ascending by id.
  [[nodiscard]] const std::vector<NestSpec>& active() const {
    return active_;
  }

  /// Copyable tracker state, for transactional adaptation: snapshot before
  /// an update, restore to undo it (including the id counter, so a replayed
  /// point assigns identical fresh ids).
  struct State {
    int next_id = 1;
    std::vector<NestSpec> active;
  };
  [[nodiscard]] State snapshot() const { return State{next_id_, active_}; }
  void restore(State state);

  /// FNV-1a fingerprint of (next_id, active set) — byte-identical state
  /// compares equal, for rollback tests.
  [[nodiscard]] std::uint64_t state_fingerprint() const;

 private:
  double match_threshold_;
  int ratio_;
  int next_id_ = 1;
  std::vector<NestSpec> active_;
};

}  // namespace stormtrack
