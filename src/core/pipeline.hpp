#pragma once

/// \file pipeline.hpp
/// Staged orchestration of processor reallocation at adaptation points
/// (§IV).
///
/// An AdaptationPipeline owns the committed allocation tree of one strategy
/// on one machine and advances it one adaptation point at a time through
/// six explicit stages that communicate via a PipelineContext:
///
///   DiffNests        classify the new active nest set against the
///                    committed one (insert / delete / retain);
///   DeriveWeights    predict execution-time ratios for the active nests
///                    with the §IV-C-2 model and assemble the
///                    ReconfigRequest;
///   BuildCandidates  propose both candidate trees — partition-from-scratch
///                    (§IV-A) and tree-based hierarchical diffusion
///                    (§IV-B) — allocate them, and plan the retained
///                    nests' redistribution message matrices;
///   PredictCosts     price every candidate with the §IV-C performance
///                    models (redistribution: §IV-C-1; execution:
///                    §IV-C-2);
///   Commit           ask the configured IStrategy which candidate to
///                    commit — on predictions only, like the real system;
///   Redistribute     run every candidate's redistribution phases on the
///                    simulated network and charge ground-truth execution
///                    (both candidates are scored so experiments can judge
///                    decisions against the road not taken, §V-F), then
///                    install the committed tree + allocation.
///
/// A MetricsRegistry threads through every stage: each adaptation point
/// accumulates per-stage wall time and counters alongside the paper's
/// redistribution/execution/hop-byte metrics.
///
/// Fault tolerance (ManagerConfig::injector): each adaptation point is
/// transactional — the committed tree, allocation, and nest map are
/// snapshotted up front and restored whenever a stage throws, then a
/// degradation ladder runs the point again: full retry (clears transient
/// faults), scratch-only (skips the diffusion candidate), and finally
/// retaining the previous allocation and skipping the point. Permanent
/// rank deaths shrink the usable grid view before the stages run
/// (rank-loss recovery), and every allocation is validated
/// (fault/invariants.hpp) before it is installed. Recovery surfaces as
/// fault.* / recovery.* metrics.

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "alloc/partitioner.hpp"
#include "core/machine.hpp"
#include "core/nest_tracker.hpp"
#include "core/strategy.hpp"
#include "fault/fault_injector.hpp"
#include "perfmodel/exec_model.hpp"
#include "perfmodel/ground_truth.hpp"
#include "perfmodel/redist_model.hpp"
#include "redist/cost_cache.hpp"
#include "redist/redistributor.hpp"
#include "redist/shared_pricing.hpp"
#include "util/metrics.hpp"

namespace stormtrack {

class CancelToken;
class Executor;

/// Pipeline stages in execution order.
enum class PipelineStage {
  kDiffNests = 0,
  kDeriveWeights,
  kBuildCandidates,
  kPredictCosts,
  kCommit,
  kRedistribute,
};

inline constexpr int kNumPipelineStages = 6;

/// Stage display name ("diff_nests", ...).
[[nodiscard]] std::string_view to_string(PipelineStage stage);

/// MetricsRegistry key of a stage's wall time; numbered so the registry's
/// sorted iteration reproduces execution order ("stage.1_diff_nests", ...).
[[nodiscard]] std::string_view stage_metric_name(PipelineStage stage);

/// Scheduled malleability event (ReSHAPE-style): before adaptation point
/// \p point runs, the usable processor view becomes \p px × \p py.
struct ResizeEvent {
  int point = 0;  ///< 0-based adaptation-point index the resize precedes.
  int px = 0;     ///< New view width, 1..machine grid_px.
  int py = 0;     ///< New view height, 1..machine grid_py.
};

/// Pipeline tunables.
struct ManagerConfig {
  /// Commit strategy, resolved by name in StrategyRegistry::global():
  /// "scratch", "diffusion", "dynamic", "hysteresis", or anything
  /// registered by the embedding application.
  std::string strategy = "diffusion";
  /// Knobs forwarded to the strategy factory.
  StrategyOptions strategy_options;
  /// Nest time steps simulated between consecutive adaptation points: the
  /// paper invokes PDA every 2 simulation minutes, and a 4 km nest steps
  /// ~24 simulated seconds at a time — 5 steps per interval.
  int steps_per_interval = 5;
  /// Nest state bytes per fine-grid point (see redistributor.hpp).
  int bytes_per_point = kDefaultBytesPerPoint;
  /// Serve repeated candidate pricings from the pipeline's RedistCostCache
  /// (cost_cache.hpp). In the diffusion steady state most retained nests
  /// keep their rectangles between points, so their summaries memoize;
  /// results are bit-identical either way (A/B-tested), this is purely a
  /// hot-path optimization. Off disables memoization for ablations.
  bool pricing_cache = true;
  /// Cross-session pricing reuse: when non-null, candidate pricings are
  /// served from this process-wide cache (scoped by the machine's
  /// fingerprint) *instead of* the pipeline-private RedistCostCache, so
  /// pipelines sharing a machine model warm each other. Results are
  /// bit-identical to the private cache and to no cache at all — entries
  /// are pure functions of (machine fingerprint, pricing key). Must
  /// outlive the pipeline; ignored when pricing_cache is false (ablations
  /// stay uncached). The daemon's supervisor hands one instance to every
  /// session (see ServeLimits::shared_pricing).
  SharedPricingCache* shared_pricing = nullptr;
  /// Initial usable view of the machine grid, origin-anchored; 0 (the
  /// default) means the full grid. A run can start on a sub-view and grow
  /// into the machine later via resize_schedule — the malleable-job shape.
  int initial_view_px = 0;
  int initial_view_py = 0;
  /// Grow/shrink events applied between adaptation points: every event
  /// with point == p runs (in schedule order) at the start of apply() for
  /// point p, before any fault injection. Deterministic and replayed
  /// identically across checkpoint resume.
  std::vector<ResizeEvent> resize_schedule;
  /// Runs the scratch and diffusion candidates concurrently through
  /// BuildCandidates / PredictCosts / Redistribute (the candidates are
  /// independent until Commit); null = serial. Each candidate accumulates
  /// into its own PipelineCandidate slot in the same floating-point order
  /// as the serial loop, so results are identical for any executor. Must
  /// outlive the pipeline; may be shared (SweepRunner hands its pool to
  /// every case).
  Executor* executor = nullptr;
  /// When set, adaptation points run transactionally under the injector's
  /// fault schedule (see the file comment). Null (the default) keeps the
  /// pre-fault behavior exactly: any stage exception propagates to the
  /// caller. Must outlive the pipeline.
  FaultInjector* injector = nullptr;
  /// Cooperative cancellation: polled once at the start of every apply(),
  /// *outside* the degradation ladder — a cancelled or timed-out run
  /// throws CancelledError between transactions and is never mistaken for
  /// a fault to degrade around. Null = never cancelled. Must outlive the
  /// pipeline.
  const CancelToken* cancel = nullptr;
};

/// Model-predicted and ground-truth costs of one candidate allocation.
struct CandidateMetrics {
  double predicted_redist = 0.0;  ///< §IV-C-1 model (s).
  double predicted_exec = 0.0;    ///< §IV-C-2 model (s per interval).
  double actual_redist = 0.0;     ///< Simulated network time (s).
  double actual_exec = 0.0;       ///< Ground-truth interval time (s).

  [[nodiscard]] double predicted_total() const {
    return predicted_redist + predicted_exec;
  }
  [[nodiscard]] double actual_total() const {
    return actual_redist + actual_exec;
  }
};

/// One candidate allocation flowing through the pipeline stages.
struct PipelineCandidate {
  std::string name;               ///< Proposing partitioner's name.
  AllocTree tree;                 ///< Proposed allocation tree.
  Allocation alloc;               ///< Subdivision of the process grid.
  /// Streaming redistribution cost aggregates, one per retained nest, in
  /// PipelineContext::retained order. Pricing only — no message matrices
  /// are materialized until the Redistribute stage builds its plans.
  std::vector<RedistCostSummary> costs;
  CandidateMetrics metrics;
  TrafficReport traffic;          ///< Simulated redistribution traffic.
  std::int64_t overlap_points = 0;
  std::int64_t total_points = 0;

  /// Return the slot to its freshly-constructed state while keeping vector
  /// capacity (scratch reuse across adaptation points).
  void reset();
};

/// Blackboard the stages communicate through. One instance lives in the
/// pipeline and is reset() — capacity kept — per attempt, so steady-state
/// adaptation points reuse every scratch buffer instead of reallocating.
struct PipelineContext {
  std::vector<NestSpec> active;    ///< New active set, ascending by id.
  std::vector<NestSpec> retained;  ///< Survivors (old-set iteration order).
  std::vector<NestSpec> inserted;
  std::vector<NestId> deleted;
  ReconfigRequest request;         ///< DeriveWeights output.
  std::vector<PipelineCandidate> candidates;  ///< BuildCandidates output.
  std::size_t committed_index = 0;            ///< Commit output.

  /// Clear all per-point state, retaining allocated capacity.
  void reset();

  /// Candidate named \p name, or nullptr.
  [[nodiscard]] const PipelineCandidate* find(std::string_view name) const;
  [[nodiscard]] const PipelineCandidate& committed() const {
    return candidates.at(committed_index);
  }
};

/// Everything observable about one adaptation point.
struct StepOutcome {
  std::string chosen;               ///< Committed candidate name.
  CandidateMetrics scratch;         ///< Both candidates always evaluated.
  CandidateMetrics diffusion;
  CandidateMetrics committed;       ///< Copy of the committed candidate's.
  TrafficReport traffic;            ///< Committed redistribution traffic.
  double overlap_fraction = 0.0;    ///< Fig. 11 metric (retained nests).
  int num_deleted = 0;
  int num_retained = 0;
  int num_inserted = 0;
  Allocation allocation;            ///< Committed allocation.
  /// Degradation-ladder outcome (fault injection only): false for a clean
  /// first-attempt commit; otherwise `degradation` is "retried",
  /// "scratch_only", or "retained_previous" (the point was skipped and
  /// `allocation` is the previous one).
  bool degraded = false;
  std::string degradation;
  int ranks_lost = 0;               ///< Rank deaths recovered at this point.
};

/// See file comment.
class AdaptationPipeline {
 public:
  /// All referents must outlive the pipeline. The strategy is resolved
  /// from StrategyRegistry::global() by config.strategy.
  AdaptationPipeline(const Machine& machine, const ExecTimeModel& model,
                     const GroundTruthCost& truth, ManagerConfig config);

  /// Apply one adaptation point: \p active is the complete new active nest
  /// set (stable ids across calls).
  StepOutcome apply(std::span<const NestSpec> active);

  [[nodiscard]] const Allocation& allocation() const { return allocation_; }
  [[nodiscard]] const AllocTree& tree() const { return tree_; }
  [[nodiscard]] const ManagerConfig& config() const { return config_; }
  [[nodiscard]] const Machine& machine() const { return *machine_; }
  [[nodiscard]] const IStrategy& strategy() const { return *strategy_; }

  /// Per-stage wall times and counters accumulated since construction (or
  /// the last clear_metrics()). The mutable overload lets the embedding
  /// system (CoupledSimulation) record its own recovery.* counters in the
  /// same registry.
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  void clear_metrics() { metrics_.clear(); }

  /// Usable process-grid view: the full machine grid (or
  /// config.initial_view) until rank-loss recovery or resize_view changes
  /// it.
  [[nodiscard]] int view_px() const { return view_px_; }
  [[nodiscard]] int view_py() const { return view_py_; }

  /// Malleability: grow or shrink the usable origin-anchored view to
  /// \p px × \p py (each within the machine grid) between adaptation
  /// points. The committed tree is re-subdivided on the new view and only
  /// displaced blocks move (same mechanics as rank-loss recovery, surfaced
  /// as elastic.* metrics). Growing re-includes retired columns/rows — do
  /// not schedule grows past ranks lost to faults. Throws CheckError when
  /// the view cannot hold the committed nests.
  void resize_view(int px, int py);

  /// FNV-1a fingerprint of the committed state (tree, allocation, nest
  /// map, grid view). Rollback tests assert a failed point leaves it
  /// unchanged; determinism tests assert serial == threaded.
  [[nodiscard]] std::uint64_t state_fingerprint() const;

  /// Complete committed state for checkpoint/restart. Everything apply()
  /// mutates is captured: the committed tree and allocation, the active
  /// nest map, the adaptation-point counter, the (possibly shrunk) grid
  /// view, the injector-stats watermark, accumulated metrics, and any
  /// cross-point strategy state (hysteresis incumbent). A pipeline built
  /// from the same Machine/models/config that import_state()s this
  /// produces the exact apply() sequence — and state_fingerprint() — of
  /// the original run.
  struct PipelineState {
    AllocTree tree;
    Allocation allocation;
    std::vector<NestSpec> current;    ///< Active nests, ascending by id.
    int point_index = 0;
    int view_px = 0;
    int view_py = 0;
    FaultInjectorStats seen_faults;
    MetricsRegistry metrics;
    std::string strategy_state;       ///< IStrategy::export_state() blob.
    /// Scheduled resize events consumed so far; import_state cross-checks
    /// it against the configured schedule so a checkpoint taken under a
    /// different resize plan is rejected instead of silently diverging.
    int resize_events_applied = 0;
  };
  [[nodiscard]] PipelineState export_state() const;
  /// Validates against this pipeline's machine (grid extents, allocation
  /// invariants) before installing; throws CheckError on any mismatch so a
  /// checkpoint from a different machine/config is rejected loudly.
  void import_state(const PipelineState& state);

 private:
  /// Degradation-ladder attempt shapes.
  enum class AttemptMode {
    kFull,         ///< Both candidates, strategy commit.
    kScratchOnly,  ///< Scratch candidate only, committed unconditionally.
  };

  StepOutcome apply_attempt(PipelineContext& ctx,
                            std::span<const NestSpec> active,
                            AttemptMode mode);
  void recover_rank_loss(int rank);
  /// Re-subdivide the committed tree on the current view and move the
  /// displaced blocks; metrics land under `<metric_prefix>_redist`,
  /// `<metric_prefix>_total_points`, `<metric_prefix>_overlap_points`,
  /// `<metric_prefix>_moved_points` (plus a `<family>.validations` bump,
  /// where family is the prefix up to its first dot).
  void reallocate_on_view(const std::string& metric_prefix);
  [[nodiscard]] Rect view_rect() const {
    return Rect{0, 0, view_px_, view_py_};
  }

  void stage_diff_nests(PipelineContext& ctx,
                        std::span<const NestSpec> active);
  void stage_derive_weights(PipelineContext& ctx) const;
  void stage_build_candidates(PipelineContext& ctx, AttemptMode mode) const;
  void stage_predict_costs(PipelineContext& ctx) const;
  void stage_commit(PipelineContext& ctx, AttemptMode mode);
  StepOutcome stage_redistribute(PipelineContext& ctx);

  const Machine* machine_;
  const ExecTimeModel* model_;
  const GroundTruthCost* truth_;
  ManagerConfig config_;
  std::unique_ptr<IStrategy> strategy_;
  MetricsRegistry metrics_;

  AllocTree tree_;
  Allocation allocation_;
  std::map<int, NestSpec> current_;  ///< Active nests by id.
  int point_index_ = 0;              ///< Adaptation points applied so far.
  int view_px_ = 0;                  ///< Usable grid view (rank death and
  int view_py_ = 0;                  ///< resizes; never renumbers ranks).
  int resize_events_applied_ = 0;    ///< Schedule entries consumed so far.
  FaultInjectorStats seen_faults_;   ///< Injector stats at last apply() end.
  PipelineContext ctx_;              ///< Reused scratch; reset() per attempt.
  /// Memoized pricing (config_.pricing_cache); contents are pure functions
  /// of their keys, so the cache is *not* part of the checkpointed state —
  /// a resumed run simply starts cold and recomputes.
  mutable RedistCostCache cost_cache_;
};

/// Historical name of the pipeline (pre-refactor API); kept as an alias so
/// embedding code reads either way.
using ReallocationManager = AdaptationPipeline;

}  // namespace stormtrack
