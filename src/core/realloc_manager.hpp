#pragma once

/// \file realloc_manager.hpp
/// Orchestration of processor reallocation at adaptation points (§IV).
///
/// A ReallocationManager owns the committed allocation tree of one strategy
/// on one machine. Each adaptation point it:
///  1. diffs the new active nest set against the committed one
///     (insert/delete/retain);
///  2. derives nest weights from the execution-time model (§IV-C-2);
///  3. builds both candidate trees — partition-from-scratch (§IV-A) and
///     tree-based hierarchical diffusion (§IV-B) — and evaluates each with
///     the performance models and with the simulator's ground truth;
///  4. commits the candidate its strategy dictates: kScratch / kDiffusion
///     commit their namesake; kDynamic commits the candidate with the
///     smaller *predicted* execution + redistribution sum (§IV-C);
///  5. runs the retained nests' redistribution phases on the simulated
///     network and reports time, hop-bytes and overlap (§V-D/E metrics).

#include <map>
#include <optional>
#include <span>
#include <string>

#include "alloc/partitioner.hpp"
#include "core/machine.hpp"
#include "core/nest_tracker.hpp"
#include "perfmodel/exec_model.hpp"
#include "perfmodel/ground_truth.hpp"
#include "perfmodel/redist_model.hpp"
#include "redist/redistributor.hpp"

namespace stormtrack {

/// Reallocation strategy of §IV.
enum class Strategy {
  kScratch,    ///< §IV-A: rebuild the Huffman tree every adaptation point.
  kDiffusion,  ///< §IV-B: reorganize the existing tree.
  kDynamic,    ///< §IV-C: pick per adaptation point by predicted cost.
};

[[nodiscard]] std::string to_string(Strategy s);

/// Manager tunables.
struct ManagerConfig {
  Strategy strategy = Strategy::kDiffusion;
  /// Nest time steps simulated between consecutive adaptation points: the
  /// paper invokes PDA every 2 simulation minutes, and a 4 km nest steps
  /// ~24 simulated seconds at a time — 5 steps per interval.
  int steps_per_interval = 5;
  /// Nest state bytes per fine-grid point (see redistributor.hpp).
  int bytes_per_point = kDefaultBytesPerPoint;
};

/// Model-predicted and ground-truth costs of one candidate allocation.
struct CandidateMetrics {
  double predicted_redist = 0.0;  ///< §IV-C-1 model (s).
  double predicted_exec = 0.0;    ///< §IV-C-2 model (s per interval).
  double actual_redist = 0.0;     ///< Simulated network time (s).
  double actual_exec = 0.0;       ///< Ground-truth interval time (s).

  [[nodiscard]] double predicted_total() const {
    return predicted_redist + predicted_exec;
  }
  [[nodiscard]] double actual_total() const {
    return actual_redist + actual_exec;
  }
};

/// Everything observable about one adaptation point.
struct StepOutcome {
  std::string chosen;               ///< Committed candidate name.
  CandidateMetrics scratch;         ///< Both candidates always evaluated.
  CandidateMetrics diffusion;
  CandidateMetrics committed;       ///< Copy of the committed candidate's.
  TrafficReport traffic;            ///< Committed redistribution traffic.
  double overlap_fraction = 0.0;    ///< Fig. 11 metric (retained nests).
  int num_deleted = 0;
  int num_retained = 0;
  int num_inserted = 0;
  Allocation allocation;            ///< Committed allocation.
};

/// See file comment.
class ReallocationManager {
 public:
  /// All referents must outlive the manager.
  ReallocationManager(const Machine& machine, const ExecTimeModel& model,
                      const GroundTruthCost& truth, ManagerConfig config);

  /// Apply one adaptation point: \p active is the complete new active nest
  /// set (stable ids across calls).
  StepOutcome apply(std::span<const NestSpec> active);

  [[nodiscard]] const Allocation& allocation() const { return allocation_; }
  [[nodiscard]] const AllocTree& tree() const { return tree_; }
  [[nodiscard]] const ManagerConfig& config() const { return config_; }
  [[nodiscard]] const Machine& machine() const { return *machine_; }

 private:
  struct Candidate {
    AllocTree tree;
    Allocation alloc;
    CandidateMetrics metrics;
    TrafficReport traffic;
    std::int64_t overlap_points = 0;
    std::int64_t total_points = 0;
  };

  Candidate evaluate(AllocTree tree,
                     std::span<const NestSpec> active,
                     std::span<const NestSpec> retained) const;

  const Machine* machine_;
  const ExecTimeModel* model_;
  const GroundTruthCost* truth_;
  ManagerConfig config_;
  Redistributor redistributor_;

  AllocTree tree_;
  Allocation allocation_;
  std::map<int, NestSpec> current_;  ///< Active nests by id.
};

}  // namespace stormtrack
