#pragma once

/// \file machine.hpp
/// Experimental platforms: topology + rank mapping + communicator bundled
/// as one object, mirroring the paper's two machines (§V-C, Table III).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "simmpi/simcomm.hpp"
#include "topo/mapping.hpp"
#include "topo/topology.hpp"

namespace stormtrack {

/// Owning bundle of a simulated machine: the interconnect model, the
/// process grid Px×Py (Px·Py == core count), the rank→node mapping, and a
/// communicator over all ranks.
class Machine {
 public:
  /// Blue Gene/L partition: 8×8×(cores/64) torus with the folding-based
  /// topology-aware mapping of §V-C (falls back to row-major if the
  /// process grid does not fold — never the case for 256/512/1024).
  [[nodiscard]] static Machine bluegene(int cores);

  /// fist cluster: Infiniband-like switched network, row-major placement.
  [[nodiscard]] static Machine fist_cluster(int cores);

  /// Dragonfly machine: 64-node groups (16 routers × 4 nodes), tiled
  /// group-locality mapping when one fits the process grid.
  [[nodiscard]] static Machine dragonfly(int cores);

  /// Fat-tree machine: 128-node pods (16 per leaf, 8 leaves per pod),
  /// tiled pod-locality mapping when one fits the process grid.
  [[nodiscard]] static Machine fattree(int cores);

  /// Strict name → factory registry: "bgl", "fist", "dragonfly",
  /// "fattree". Unknown names raise CheckError listing the valid set
  /// (callers like the CLI turn that into a usage error).
  [[nodiscard]] static Machine by_name(const std::string& name, int cores);

  /// The names by_name() accepts, ascending — the single source the CLI
  /// --help text and error messages enumerate.
  [[nodiscard]] static std::vector<std::string> names();

  /// Custom build (used for mapping ablations).
  Machine(std::unique_ptr<Topology> topo, std::unique_ptr<Mapping> mapping,
          int grid_px, int grid_py, std::string label);

  Machine(Machine&&) = default;
  Machine& operator=(Machine&&) = default;

  [[nodiscard]] const Topology& topology() const { return *topo_; }
  [[nodiscard]] const Mapping& mapping() const { return *mapping_; }
  [[nodiscard]] const SimComm& comm() const { return *comm_; }
  [[nodiscard]] int grid_px() const { return grid_px_; }
  [[nodiscard]] int grid_py() const { return grid_py_; }
  [[nodiscard]] int cores() const { return grid_px_ * grid_py_; }
  [[nodiscard]] const std::string& label() const { return label_; }

  /// Stable identity of the machine *model* (label + process grid): two
  /// Machine instances with equal fingerprints produce bit-identical cost
  /// summaries for equal pricing queries, because the label pins the
  /// topology + mapping construction and the grid pins the decomposition.
  /// Used to scope cross-session caches (see SharedPricingCache).
  [[nodiscard]] std::uint64_t fingerprint() const;

 private:
  std::unique_ptr<Topology> topo_;
  std::unique_ptr<Mapping> mapping_;
  std::unique_ptr<SimComm> comm_;
  int grid_px_ = 0;
  int grid_py_ = 0;
  std::string label_;
};

}  // namespace stormtrack
