#include "core/traces.hpp"

#include <algorithm>

#include "fault/fault_injector.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace stormtrack {

Trace generate_synthetic_trace(const SyntheticTraceConfig& cfg) {
  ST_CHECK_MSG(cfg.num_events >= 1, "need at least one event");
  ST_CHECK_MSG(cfg.min_nests >= 1 && cfg.max_nests >= cfg.min_nests,
               "bad nest count bounds");
  ST_CHECK_MSG(cfg.min_size >= kRefinementRatio &&
                   cfg.max_size >= cfg.min_size,
               "bad nest size bounds");

  Xoshiro256 rng(cfg.seed);
  int next_id = 1;

  auto random_nest = [&]() {
    NestSpec n;
    n.id = next_id++;
    // Paper sizes are fine-grid; the region is size/ratio parent points.
    const int w = static_cast<int>(
        rng.uniform_int(cfg.min_size, cfg.max_size)) / kRefinementRatio;
    const int h = static_cast<int>(
        rng.uniform_int(cfg.min_size, cfg.max_size)) / kRefinementRatio;
    const int rw = std::min(w, cfg.domain_nx);
    const int rh = std::min(h, cfg.domain_ny);
    n.region = Rect{
        static_cast<int>(rng.uniform_int(0, cfg.domain_nx - rw)),
        static_cast<int>(rng.uniform_int(0, cfg.domain_ny - rh)), rw, rh};
    n.shape = nest_shape_for(n.region);
    return n;
  };

  Trace trace;
  std::vector<NestSpec> active;
  for (int e = 0; e < cfg.num_events; ++e) {
    // Deletions (never below min when retained alone would drop under it:
    // insertions below restore the floor anyway).
    std::vector<NestSpec> survivors;
    for (const NestSpec& n : active) {
      if (rng.bernoulli(cfg.delete_probability)) continue;
      NestSpec kept = n;
      // Retained nests drift in size a little (clouds evolve), keeping the
      // redistribution non-trivial even without reallocation changes.
      const double jx = rng.uniform(1.0 - cfg.resize_jitter,
                                    1.0 + cfg.resize_jitter);
      const double jy = rng.uniform(1.0 - cfg.resize_jitter,
                                    1.0 + cfg.resize_jitter);
      kept.region.w = std::clamp(
          static_cast<int>(kept.region.w * jx), cfg.min_size / kRefinementRatio,
          std::min(cfg.max_size / kRefinementRatio,
                   cfg.domain_nx - kept.region.x));
      kept.region.h = std::clamp(
          static_cast<int>(kept.region.h * jy), cfg.min_size / kRefinementRatio,
          std::min(cfg.max_size / kRefinementRatio,
                   cfg.domain_ny - kept.region.y));
      kept.shape = nest_shape_for(kept.region);
      survivors.push_back(kept);
    }
    active = std::move(survivors);

    // Insertions: restore the floor, then add a random extra batch.
    while (static_cast<int>(active.size()) < cfg.min_nests)
      active.push_back(random_nest());
    const int room = cfg.max_nests - static_cast<int>(active.size());
    if (room > 0) {
      const int extra = static_cast<int>(rng.uniform_int(0, room));
      for (int i = 0; i < extra; ++i) active.push_back(random_nest());
    }

    trace.push_back(active);
  }
  return trace;
}

RealScenarioDriver::RealScenarioDriver(RealScenarioConfig cfg)
    : cfg_(cfg), model_(cfg.weather, cfg.seed) {
  ST_CHECK_MSG(cfg_.num_intervals >= 1, "need at least one interval");
  ST_CHECK_MSG(cfg_.sim_px >= 1 && cfg_.sim_py >= 1,
               "simulation process grid must be positive");
}

RealScenarioStep RealScenarioDriver::next() {
  model_.step();
  RealScenarioStep step;
  step.interval = interval_++;
  const std::vector<SplitFile> files =
      write_split_files(model_, cfg_.sim_px, cfg_.sim_py);
  if (cfg_.pda.injector != nullptr)
    cfg_.pda.injector->begin_point(step.interval);
  step.pda = parallel_data_analysis(files, cfg_.pda);
  if (step.pda.degraded() && step.pda.qcloudinfo.empty()) {
    // Total data blackout: every split file was lost. Updating the tracker
    // with zero ROIs would delete every nest over a read failure, so hold
    // the previous classification instead.
    step.data_blackout = true;
    step.active = tracker_.active();
    step.diff.retained = step.active;
    return step;
  }
  step.diff = tracker_.update(step.pda.rectangles);
  step.active = tracker_.active();
  return step;
}

Trace generate_real_trace(const RealScenarioConfig& cfg) {
  RealScenarioDriver driver(cfg);
  Trace trace;
  trace.reserve(static_cast<std::size_t>(cfg.num_intervals));
  for (int i = 0; i < cfg.num_intervals; ++i)
    trace.push_back(driver.next().active);
  return trace;
}

}  // namespace stormtrack
