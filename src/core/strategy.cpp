#include "core/strategy.hpp"

#include <sstream>

#include "core/pipeline.hpp"
#include "util/check.hpp"

namespace stormtrack {

namespace {

/// Index of the candidate named \p name; checks it exists.
std::size_t index_of(const PipelineContext& ctx, std::string_view name) {
  for (std::size_t i = 0; i < ctx.candidates.size(); ++i)
    if (ctx.candidates[i].name == name) return i;
  ST_CHECK_MSG(false, "no candidate named '" << name << "' in pipeline");
  return 0;  // unreachable
}

/// Index with the smallest predicted total; ties go to the later candidate
/// (diffusion follows scratch in build order, preserving the paper's §IV-C
/// tie-break toward the overlap-preserving method).
std::size_t cheapest_predicted(const PipelineContext& ctx) {
  ST_CHECK_MSG(!ctx.candidates.empty(), "no candidates to decide between");
  std::size_t best = 0;
  for (std::size_t i = 1; i < ctx.candidates.size(); ++i)
    if (ctx.candidates[i].metrics.predicted_total() <=
        ctx.candidates[best].metrics.predicted_total())
      best = i;
  return best;
}

}  // namespace

std::size_t ScratchStrategy::decide(const PipelineContext& ctx) {
  return index_of(ctx, "scratch");
}

std::size_t DiffusionStrategy::decide(const PipelineContext& ctx) {
  return index_of(ctx, "diffusion");
}

std::size_t DynamicStrategy::decide(const PipelineContext& ctx) {
  return cheapest_predicted(ctx);
}

HysteresisStrategy::HysteresisStrategy(double threshold)
    : threshold_(threshold) {
  ST_CHECK_MSG(threshold >= 0.0,
               "hysteresis threshold must be >= 0, got " << threshold);
}

std::size_t HysteresisStrategy::decide(const PipelineContext& ctx) {
  const std::size_t best = cheapest_predicted(ctx);
  const PipelineCandidate* incumbent =
      incumbent_.empty() ? nullptr : ctx.find(incumbent_);
  if (incumbent == nullptr) {
    // First decision (or the incumbent method vanished): behave like
    // dynamic.
    incumbent_ = ctx.candidates[best].name;
    return best;
  }
  const double incumbent_cost = incumbent->metrics.predicted_total();
  const double best_cost = ctx.candidates[best].metrics.predicted_total();
  // Switch only when the predicted gain clears the damping threshold.
  if (ctx.candidates[best].name != incumbent_ &&
      incumbent_cost - best_cost > threshold_ * incumbent_cost) {
    incumbent_ = ctx.candidates[best].name;
    return best;
  }
  return index_of(ctx, incumbent_);
}

StrategyRegistry& StrategyRegistry::global() {
  static StrategyRegistry* registry = [] {
    auto* r = new StrategyRegistry();
    r->add("scratch", [](const StrategyOptions&) {
      return std::make_unique<ScratchStrategy>();
    });
    r->add("diffusion", [](const StrategyOptions&) {
      return std::make_unique<DiffusionStrategy>();
    });
    r->add("dynamic", [](const StrategyOptions&) {
      return std::make_unique<DynamicStrategy>();
    });
    r->add("hysteresis", [](const StrategyOptions& opts) {
      return std::make_unique<HysteresisStrategy>(opts.hysteresis_threshold);
    });
    return r;
  }();
  return *registry;
}

void StrategyRegistry::add(std::string name, Factory factory) {
  ST_CHECK_MSG(!name.empty(), "strategy name must be non-empty");
  ST_CHECK_MSG(factory != nullptr,
               "null factory for strategy '" << name << "'");
  const std::lock_guard<std::mutex> lock(mutex_);
  ST_CHECK_MSG(factories_.emplace(std::move(name), std::move(factory)).second,
               "strategy already registered");
}

std::unique_ptr<IStrategy> StrategyRegistry::create(
    std::string_view name, const StrategyOptions& options) const {
  Factory factory;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = factories_.find(name);
    if (it != factories_.end()) factory = it->second;
  }
  if (!factory) {
    std::ostringstream known;
    for (const std::string& n : names()) known << " '" << n << "'";
    ST_CHECK_MSG(false, "unknown strategy '" << name << "'; registered:"
                                             << known.str());
  }
  auto strategy = factory(options);
  ST_CHECK_MSG(strategy != nullptr,
               "factory for strategy '" << name << "' returned null");
  return strategy;
}

bool StrategyRegistry::contains(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return factories_.find(name) != factories_.end();
}

std::vector<std::string> StrategyRegistry::names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

}  // namespace stormtrack
