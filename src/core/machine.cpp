#include "core/machine.hpp"

#include <sstream>

#include "util/check.hpp"
#include "util/fnv.hpp"

namespace stormtrack {

Machine::Machine(std::unique_ptr<Topology> topo,
                 std::unique_ptr<Mapping> mapping, int grid_px, int grid_py,
                 std::string label)
    : topo_(std::move(topo)),
      mapping_(std::move(mapping)),
      grid_px_(grid_px),
      grid_py_(grid_py),
      label_(std::move(label)) {
  ST_CHECK_MSG(topo_ != nullptr && mapping_ != nullptr,
               "machine needs topology and mapping");
  ST_CHECK_MSG(grid_px_ >= 1 && grid_py_ >= 1,
               "process grid must be positive");
  ST_CHECK_MSG(mapping_->num_ranks() == grid_px_ * grid_py_,
               "mapping rank count " << mapping_->num_ranks()
                                     << " != process grid "
                                     << grid_px_ * grid_py_);
  comm_ = std::make_unique<SimComm>(*topo_, *mapping_);
}

Machine Machine::bluegene(int cores) {
  auto torus = make_bluegene(cores);
  const ProcessGridShape g = choose_process_grid(cores);
  auto mapping = make_default_mapping(*torus, g.px, g.py);
  std::ostringstream label;
  label << "BG/L " << cores << " cores (" << torus->name() << ", "
        << mapping->name() << " mapping)";
  return Machine(std::move(torus), std::move(mapping), g.px, g.py,
                 label.str());
}

Machine Machine::fist_cluster(int cores) {
  auto net = make_fist(cores);
  const ProcessGridShape g = choose_process_grid(cores);
  auto mapping = std::make_unique<RowMajorMapping>(cores);
  std::ostringstream label;
  label << "fist " << cores << " cores (" << net->name() << ")";
  return Machine(std::move(net), std::move(mapping), g.px, g.py,
                 label.str());
}

Machine Machine::dragonfly(int cores) {
  auto net = make_dragonfly(cores);
  const ProcessGridShape g = choose_process_grid(cores);
  auto mapping = make_default_mapping(*net, g.px, g.py);
  std::ostringstream label;
  label << "dragonfly " << cores << " cores (" << net->name() << ", "
        << mapping->name() << " mapping)";
  return Machine(std::move(net), std::move(mapping), g.px, g.py,
                 label.str());
}

Machine Machine::fattree(int cores) {
  auto net = make_fattree(cores);
  const ProcessGridShape g = choose_process_grid(cores);
  auto mapping = make_default_mapping(*net, g.px, g.py);
  std::ostringstream label;
  label << "fattree " << cores << " cores (" << net->name() << ", "
        << mapping->name() << " mapping)";
  return Machine(std::move(net), std::move(mapping), g.px, g.py,
                 label.str());
}

Machine Machine::by_name(const std::string& name, int cores) {
  if (name == "bgl") return bluegene(cores);
  if (name == "fist") return fist_cluster(cores);
  if (name == "dragonfly") return dragonfly(cores);
  if (name == "fattree") return fattree(cores);
  std::string valid;
  for (const std::string& n : names()) {
    if (!valid.empty()) valid += ", ";
    valid += n;
  }
  ST_CHECK_MSG(false, "unknown machine '" << name << "' (valid: " << valid
                                          << ")");
}

std::uint64_t Machine::fingerprint() const {
  Fingerprint fp;
  fp.add(std::string_view(label_));
  fp.add(static_cast<std::int64_t>(grid_px_));
  fp.add(static_cast<std::int64_t>(grid_py_));
  return fp.value();
}

std::vector<std::string> Machine::names() {
  return {"bgl", "dragonfly", "fattree", "fist"};
}

}  // namespace stormtrack
