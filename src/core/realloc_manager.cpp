#include "core/realloc_manager.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace stormtrack {

std::string to_string(Strategy s) {
  switch (s) {
    case Strategy::kScratch:
      return "scratch";
    case Strategy::kDiffusion:
      return "diffusion";
    case Strategy::kDynamic:
      return "dynamic";
  }
  return "unknown";
}

ReallocationManager::ReallocationManager(const Machine& machine,
                                         const ExecTimeModel& model,
                                         const GroundTruthCost& truth,
                                         ManagerConfig config)
    : machine_(&machine),
      model_(&model),
      truth_(&truth),
      config_(config),
      redistributor_(machine.comm(), config.bytes_per_point) {
  ST_CHECK_MSG(config.steps_per_interval >= 1,
               "steps_per_interval must be >= 1");
}

ReallocationManager::Candidate ReallocationManager::evaluate(
    AllocTree tree, std::span<const NestSpec> active,
    std::span<const NestSpec> retained) const {
  Candidate c;
  c.tree = std::move(tree);
  c.alloc = allocate(c.tree, machine_->grid_px(), machine_->grid_py());

  // Redistribution: one Alltoallv phase per retained nest, executed
  // sequentially (§IV: "MPI_Alltoallv to redistribute data for each nest").
  // The §IV-C-1 model predicts each phase; the simulated network charges
  // the richer single-port+contention cost as the "actual".
  const RedistTimeModel redist_model(machine_->comm());
  for (const NestSpec& nest : retained) {
    const auto old_rect = allocation_.find(nest.id);
    const auto new_rect = c.alloc.find(nest.id);
    ST_CHECK_MSG(old_rect && new_rect,
                 "retained nest " << nest.id << " missing an allocation");
    const RedistPlan plan =
        plan_redistribution(nest.shape, *old_rect, *new_rect,
                            machine_->grid_px(), config_.bytes_per_point);
    c.metrics.predicted_redist += redist_model.predict(plan.messages);
    c.traffic += machine_->comm().alltoallv(plan.messages);
    c.overlap_points += plan.overlap_points;
    c.total_points += plan.total_points;
  }
  c.metrics.actual_redist = c.traffic.modeled_time;

  // Execution: nests run concurrently on disjoint processor rectangles;
  // the coupled interval advances with the slowest nest.
  double actual_max = 0.0;
  double predicted_max = 0.0;
  for (const NestSpec& nest : active) {
    const auto rect = c.alloc.find(nest.id);
    ST_CHECK_MSG(rect.has_value(), "active nest " << nest.id
                                                  << " missing allocation");
    actual_max = std::max(
        actual_max, truth_->execution_time(nest.shape, rect->w, rect->h));
    // The model predicts from the processor *count* (§IV-C-2) — it cannot
    // see the rectangle's aspect ratio, which is precisely why dynamic
    // selection can occasionally pick the wrong method (§V-F).
    predicted_max = std::max(
        predicted_max,
        model_->predict(nest.shape, static_cast<int>(rect->area())));
  }
  c.metrics.actual_exec = config_.steps_per_interval * actual_max;
  c.metrics.predicted_exec = config_.steps_per_interval * predicted_max;
  return c;
}

StepOutcome ReallocationManager::apply(std::span<const NestSpec> active) {
  // ------------------------------------------------------------- 1. diff
  std::vector<NestSpec> retained;
  std::vector<NestSpec> inserted;
  std::vector<NestId> deleted;
  {
    std::map<int, NestSpec> next;
    for (const NestSpec& n : active) {
      ST_CHECK_MSG(next.emplace(n.id, n).second,
                   "duplicate nest id " << n.id << " in active set");
      ST_CHECK_MSG(n.shape.nx > 0 && n.shape.ny > 0,
                   "nest " << n.id << " has empty shape");
    }
    for (const auto& [id, spec] : current_) {
      if (auto it = next.find(id); it != next.end())
        retained.push_back(it->second);
      else
        deleted.push_back(id);
    }
    for (const auto& [id, spec] : next)
      if (!current_.count(id)) inserted.push_back(spec);
    current_ = std::move(next);
  }

  // -------------------------------------------------------- 2. weights
  // Weights are predicted execution-time ratios over the whole active set
  // (identical for both candidate methods, §IV-C).
  std::vector<NestShape> shapes;
  shapes.reserve(active.size());
  std::vector<NestSpec> ordered(active.begin(), active.end());
  std::sort(ordered.begin(), ordered.end(),
            [](const NestSpec& a, const NestSpec& b) { return a.id < b.id; });
  for (const NestSpec& n : ordered) shapes.push_back(n.shape);
  const std::vector<double> ratios =
      ordered.empty() ? std::vector<double>{}
                      : weight_ratios(*model_, shapes, machine_->cores());

  ReconfigRequest req;
  req.deleted = deleted;
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    const NestWeight nw{ordered[i].id, ratios[i]};
    const bool is_new =
        std::any_of(inserted.begin(), inserted.end(),
                    [&](const NestSpec& s) { return s.id == ordered[i].id; });
    (is_new ? req.inserted : req.retained).push_back(nw);
  }

  // ----------------------------------------------- 3. candidates
  const ScratchPartitioner scratch_p;
  const DiffusionPartitioner diffusion_p;
  Candidate scratch_c =
      evaluate(scratch_p.propose(tree_, req), ordered, retained);
  Candidate diffusion_c =
      evaluate(diffusion_p.propose(tree_, req), ordered, retained);

  // ----------------------------------------------- 4. commit per strategy
  bool pick_diffusion = false;
  switch (config_.strategy) {
    case Strategy::kScratch:
      pick_diffusion = false;
      break;
    case Strategy::kDiffusion:
      pick_diffusion = true;
      break;
    case Strategy::kDynamic:
      pick_diffusion = diffusion_c.metrics.predicted_total() <=
                       scratch_c.metrics.predicted_total();
      break;
  }

  StepOutcome out;
  out.scratch = scratch_c.metrics;
  out.diffusion = diffusion_c.metrics;
  Candidate& committed = pick_diffusion ? diffusion_c : scratch_c;
  out.chosen = pick_diffusion ? "diffusion" : "scratch";
  out.committed = committed.metrics;
  out.traffic = committed.traffic;
  out.overlap_fraction =
      committed.total_points == 0
          ? 0.0
          : static_cast<double>(committed.overlap_points) /
                static_cast<double>(committed.total_points);
  out.num_deleted = static_cast<int>(deleted.size());
  out.num_retained = static_cast<int>(retained.size());
  out.num_inserted = static_cast<int>(inserted.size());
  out.allocation = committed.alloc;

  tree_ = std::move(committed.tree);
  allocation_ = std::move(committed.alloc);
  return out;
}

}  // namespace stormtrack
