#include "ckpt/crc32.hpp"

#include <array>

namespace stormtrack {

namespace {

constexpr std::uint32_t kPoly = 0xEDB88320u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? kPoly ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32_update(std::uint32_t crc,
                           std::span<const std::byte> bytes) {
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (const std::byte b : bytes)
    c = kTable[(c ^ static_cast<std::uint32_t>(b)) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(std::span<const std::byte> bytes) {
  return crc32_update(0, bytes);
}

}  // namespace stormtrack
