#pragma once

/// \file checkpoint.hpp
/// Durable checkpoint/restart for stormtrack runs.
///
/// A checkpoint is the *complete committed state* of a run at one
/// adaptation point — everything needed to rebuild the run and continue the
/// exact step sequence of the original: the pipeline's tree / allocation /
/// nest map / grid view / metrics / strategy state, plus (for coupled runs)
/// the weather RNG position, tracker, and every live nest field, plus (for
/// bare trace runs) the per-point outcomes so far, plus the fault
/// injector's interpreter position when one is attached. Resume is exact:
/// a resumed run reaches the same state_fingerprint() and metrics totals
/// as an uninterrupted one.
///
/// On disk a checkpoint is one little-endian binary file:
///
///     u32 magic "STCK" | u32 version | u64 payload size | payload | u32 CRC
///
/// The CRC-32 (IEEE) covers the payload, so a torn or bit-flipped file is
/// detected and rejected with a descriptive error rather than silently
/// resuming from garbage. Files are written via write_file_atomic (unique
/// temp sibling + fsync + rename), so a crash mid-write can never damage an
/// existing checkpoint: after SIGKILL the directory holds only complete,
/// valid files plus possibly one orphaned temp file that the scan ignores.
/// latest_valid_checkpoint() walks the directory newest-first and falls
/// back past invalid files, so resume always finds the newest state that
/// survived.
///
/// config_fingerprint binds a checkpoint to the run configuration that
/// produced it (machine, strategy, trace / scenario, fault plan): resuming
/// under a different configuration is refused up front instead of diverging
/// silently halfway through.

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/checkpoint_hook.hpp"
#include "core/coupled.hpp"
#include "core/pipeline.hpp"
#include "fault/fault_injector.hpp"

namespace stormtrack {

/// "STCK" when the little-endian u32 is viewed as bytes on disk.
inline constexpr std::uint32_t kCheckpointMagic = 0x4B435453u;
// Version 2 appended PipelineState.resize_events_applied (elastic resize
// support). Version 3 replaced the inline live-nest field grids with the
// workload registry name plus an opaque INestWorkload state blob, so any
// payload implementation checkpoints through the same framing. Older
// versions are refused rather than silently misread.
inline constexpr std::uint32_t kCheckpointVersion = 3;

/// What shape of run a checkpoint captures.
enum class CheckpointKind : std::uint8_t {
  kTraceRun = 1,    ///< Bare pipeline driven by a pre-built Trace.
  kCoupledRun = 2,  ///< Full CoupledSimulation (weather + PDA + nests).
};

[[nodiscard]] std::string_view to_string(CheckpointKind kind);

/// See file comment. Exactly one of the kind-specific sections is
/// meaningful, selected by `kind`.
struct RunCheckpoint {
  CheckpointKind kind = CheckpointKind::kTraceRun;
  /// Binds the checkpoint to its run configuration (see file comment).
  std::uint64_t config_fingerprint = 0;
  /// Adaptation points (trace) or intervals (coupled) completed when the
  /// checkpoint was taken; the run resumes at step `step`.
  std::int64_t step = 0;
  /// State fingerprint at capture time; verified after restore, so a
  /// checkpoint that decodes but restores wrong is still caught.
  std::uint64_t state_fingerprint = 0;

  // --- kTraceRun ---
  AdaptationPipeline::PipelineState pipeline;
  /// Per-point outcomes so far, so a resumed TraceRunResult aggregates the
  /// same totals as an uninterrupted run.
  std::vector<StepOutcome> outcomes;

  // --- kCoupledRun ---
  CoupledSimulation::State coupled;

  // --- either kind ---
  bool has_injector = false;
  FaultInjector::State injector;
};

/// Serialize to the framed format of the file comment.
[[nodiscard]] std::vector<std::byte> encode_checkpoint(
    const RunCheckpoint& ckpt);

/// Parse a framed checkpoint; throws CheckError with a descriptive message
/// on bad magic, unsupported version, truncation, CRC mismatch, trailing
/// bytes, or any malformed field.
[[nodiscard]] RunCheckpoint decode_checkpoint(std::span<const std::byte> bytes);

/// When and where to checkpoint.
struct CheckpointPolicy {
  std::filesystem::path dir;
  /// Write after every N-th committed step (absolute step numbers, so an
  /// interrupted and a fresh run checkpoint at the same steps).
  int every = 1;
  /// Retain only the newest N checkpoint files; <= 0 keeps all.
  int keep = 3;

  /// True when a checkpoint is due after completing 0-based step \p step.
  [[nodiscard]] bool due(std::int64_t step) const {
    return (step + 1) % every == 0;
  }
  /// Throws CheckError unless dir is non-empty and every >= 1.
  void validate() const;
};

/// `<dir>/ckpt-<8-digit step>.stck`.
[[nodiscard]] std::filesystem::path checkpoint_file_path(
    const std::filesystem::path& dir, std::int64_t step);

/// Encode + write atomically to checkpoint_file_path(dir, ckpt.step);
/// returns the byte size written.
std::size_t save_checkpoint(const std::filesystem::path& dir,
                            const RunCheckpoint& ckpt);

/// Read + decode one checkpoint file.
[[nodiscard]] RunCheckpoint load_checkpoint(const std::filesystem::path& file);

/// Result of the newest-first directory scan.
struct LatestCheckpoint {
  std::filesystem::path path;
  RunCheckpoint checkpoint;
  /// Newer checkpoint files that failed to load (torn, corrupt, wrong
  /// version, wrong config) and were passed over.
  int invalid_skipped = 0;
  /// One decode error per skipped file, for diagnostics.
  std::vector<std::string> errors;
};

/// Newest valid checkpoint in \p dir, falling back past invalid files.
/// When \p config_fingerprint is set, checkpoints bound to a different
/// configuration count as invalid. nullopt when the directory holds no
/// loadable checkpoint (or does not exist).
[[nodiscard]] std::optional<LatestCheckpoint> latest_valid_checkpoint(
    const std::filesystem::path& dir,
    std::optional<std::uint64_t> config_fingerprint = std::nullopt);

/// Delete all but the newest \p keep checkpoint files (by step number);
/// no-op when keep <= 0. Returns the number of files removed.
int prune_checkpoints(const std::filesystem::path& dir, int keep);

/// CheckpointHook for coupled runs: writes a checkpoint after every
/// policy-due interval, pruning per policy.keep. The `ckpt.writes` counter
/// is bumped in the simulation's registry *before* the state is serialized,
/// so the count inside checkpoint k already includes write k and a resumed
/// run's metrics totals equal the uninterrupted run's.
class CoupledCheckpointer final : public CheckpointHook {
 public:
  /// Validates the policy. \p config_fingerprint should come from
  /// coupled_config_fingerprint() on the same machine + config.
  CoupledCheckpointer(CheckpointPolicy policy,
                      std::uint64_t config_fingerprint);

  void on_interval(CoupledSimulation& sim, int interval) override;

  /// Unconditional checkpoint of the current state (idempotent per step):
  /// runners call this once after the loop so the final state is always
  /// captured even when the cadence does not divide the interval count.
  void checkpoint_now(CoupledSimulation& sim);

  [[nodiscard]] std::int64_t bytes_written() const { return bytes_written_; }
  [[nodiscard]] int writes() const { return writes_; }
  [[nodiscard]] int pruned() const { return pruned_; }

 private:
  CheckpointPolicy policy_;
  std::uint64_t config_fp_;
  std::int64_t last_step_ = -1;
  std::int64_t bytes_written_ = 0;
  int writes_ = 0;
  int pruned_ = 0;
};

/// Outcome of a resume attempt.
struct ResumeReport {
  bool resumed = false;
  /// Steps (intervals / adaptation points) already completed; the run
  /// continues at this step. -1 when not resumed.
  std::int64_t step = -1;
  int invalid_skipped = 0;
  std::filesystem::path path;  ///< Checkpoint file actually used.
};

/// Restore \p sim (and its attached fault injector, when both the
/// checkpoint and the simulation have one) from the newest valid checkpoint
/// in \p dir. Returns resumed=false when the directory holds none. Throws
/// CheckError when the newest valid checkpoint is not a coupled-run
/// checkpoint, when injector presence disagrees, or when the restored
/// state's fingerprint does not match the one recorded at capture.
[[nodiscard]] ResumeReport resume_coupled(CoupledSimulation& sim,
                                          const std::filesystem::path& dir,
                                          std::uint64_t config_fingerprint);

/// Fingerprint binding coupled-run checkpoints to their configuration:
/// machine label + grid, strategy + options, scenario seeds/extents, fault
/// plan shape.
[[nodiscard]] std::uint64_t coupled_config_fingerprint(
    const Machine& machine, const CoupledConfig& config);

}  // namespace stormtrack
