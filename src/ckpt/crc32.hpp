#pragma once

/// \file crc32.hpp
/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) integrity guard for
/// checkpoint files and sweep-journal records. Any single-bit flip, byte
/// swap or truncation inside a guarded payload changes the checksum, so a
/// resumed run can tell a damaged checkpoint from a valid one instead of
/// silently restoring corrupt state.

#include <cstddef>
#include <cstdint>
#include <span>

namespace stormtrack {

/// CRC-32 of \p bytes (initial value / final XOR 0xFFFFFFFF, as used by
/// zlib, PNG and Ethernet).
[[nodiscard]] std::uint32_t crc32(std::span<const std::byte> bytes);

/// Incremental form: feed chunks with the previous call's return value.
/// Start with \p crc = 0; the final value equals crc32() of the
/// concatenation.
[[nodiscard]] std::uint32_t crc32_update(std::uint32_t crc,
                                         std::span<const std::byte> bytes);

}  // namespace stormtrack
