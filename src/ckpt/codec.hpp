#pragma once

/// \file codec.hpp
/// Shared binary codecs for result structures, reused by every framed
/// format in the tree (checkpoint files, the sweep journal). Keeping one
/// put_/get_ pair per struct means a field added to StepOutcome is encoded
/// identically everywhere — or fails to compile everywhere.

#include "util/binary_io.hpp"
#include "core/experiment.hpp"

namespace stormtrack::ckptio {

void put_metrics(BinaryWriter& w, const MetricsRegistry& metrics);
[[nodiscard]] MetricsRegistry get_metrics(BinaryReader& r);

void put_outcome(BinaryWriter& w, const StepOutcome& o);
[[nodiscard]] StepOutcome get_outcome(BinaryReader& r);

void put_trace_result(BinaryWriter& w, const TraceRunResult& result);
[[nodiscard]] TraceRunResult get_trace_result(BinaryReader& r);

}  // namespace stormtrack::ckptio
