#include "ckpt/trace_run.hpp"

#include <utility>

#include "exec/cancel.hpp"
#include "util/check.hpp"
#include "fault/snapshot.hpp"
#include "util/fnv.hpp"

namespace stormtrack {

std::uint64_t trace_run_fingerprint(const Machine& machine,
                                    std::string_view strategy,
                                    const Trace& trace,
                                    const ManagerConfig& config) {
  Fingerprint fp;
  fp.add(std::string_view(machine.label()));
  fp.add(machine.grid_px());
  fp.add(machine.grid_py());
  fp.add(strategy);
  fp.add(config.strategy_options.hysteresis_threshold);
  fp.add(config.steps_per_interval);
  fp.add(config.bytes_per_point);
  fp.add(config.initial_view_px);
  fp.add(config.initial_view_py);
  fp.add(static_cast<std::int64_t>(config.resize_schedule.size()));
  for (const ResizeEvent& e : config.resize_schedule) {
    fp.add(e.point);
    fp.add(e.px);
    fp.add(e.py);
  }
  fp.add(static_cast<std::int64_t>(trace.size()));
  for (const std::vector<NestSpec>& event : trace) {
    fp.add(static_cast<std::int64_t>(event.size()));
    for (const NestSpec& spec : event) {
      fp.add(spec.id);
      add_fingerprint(fp, spec.region);
      fp.add(spec.shape.nx);
      fp.add(spec.shape.ny);
    }
  }
  if (config.injector != nullptr) {
    const FaultPlan& plan = config.injector->plan();
    fp.add(static_cast<std::int64_t>(plan.events.size()));
    for (const FaultEvent& e : plan.events) {
      fp.add(static_cast<int>(e.kind));
      fp.add(e.point);
      fp.add(e.rank);
      fp.add(e.peer);
      fp.add(e.index);
      fp.add(e.attempts);
      fp.add(std::string_view(e.site));
    }
  }
  return fp.value();
}

TraceRunResult run_trace_checkpointed(const Machine& machine,
                                      const ExecTimeModel& model,
                                      const GroundTruthCost& truth,
                                      std::string_view strategy,
                                      const Trace& trace,
                                      ManagerConfig config,
                                      const CheckpointPolicy& policy,
                                      ResumeReport* resume) {
  policy.validate();
  const std::uint64_t config_fp =
      trace_run_fingerprint(machine, strategy, trace, config);
  config.strategy = std::string(strategy);
  FaultInjector* const injector = config.injector;
  AdaptationPipeline pipeline(machine, model, truth, std::move(config));

  TraceRunResult result;
  result.outcomes.reserve(trace.size());
  std::size_t start = 0;
  ResumeReport report;
  if (std::optional<LatestCheckpoint> latest =
          latest_valid_checkpoint(policy.dir, config_fp);
      latest.has_value()) {
    RunCheckpoint& ckpt = latest->checkpoint;
    ST_CHECK_MSG(ckpt.kind == CheckpointKind::kTraceRun,
                 "checkpoint " << latest->path.filename().string() << " is a "
                               << to_string(ckpt.kind)
                               << " checkpoint, not a trace-run one");
    ST_CHECK_MSG(ckpt.has_injector == (injector != nullptr),
                 "checkpoint " << latest->path.filename().string()
                               << (ckpt.has_injector
                                       ? " carries fault-injector state but "
                                         "this run has no injector"
                                       : " has no fault-injector state but "
                                         "this run expects one"));
    ST_CHECK_MSG(static_cast<std::size_t>(ckpt.step) <= trace.size(),
                 "checkpoint is at step " << ckpt.step << " but the trace "
                                             "has only "
                                          << trace.size() << " events");
    ST_CHECK_MSG(ckpt.outcomes.size() ==
                     static_cast<std::size_t>(ckpt.step),
                 "checkpoint at step " << ckpt.step << " carries "
                                       << ckpt.outcomes.size()
                                       << " outcomes");
    pipeline.import_state(ckpt.pipeline);
    if (injector != nullptr) injector->import_state(ckpt.injector);
    const std::uint64_t restored = pipeline.state_fingerprint();
    ST_CHECK_MSG(restored == ckpt.state_fingerprint,
                 "restored state fingerprint "
                     << restored << " does not match the fingerprint "
                     << ckpt.state_fingerprint << " recorded in "
                     << latest->path.filename().string());
    result.outcomes = std::move(ckpt.outcomes);
    start = static_cast<std::size_t>(ckpt.step);
    report.resumed = true;
    report.step = ckpt.step;
    report.invalid_skipped = latest->invalid_skipped;
    report.path = latest->path;
  }

  // Step value (points completed) of the newest on-disk checkpoint: writes
  // are idempotent per step, so resuming at the final point or a cadence
  // landing on the last event never writes the same state twice.
  std::int64_t last_written = report.resumed ? report.step : -1;
  const auto write = [&](std::int64_t step) {
    if (step == last_written) return;
    // Pre-bump (see CoupledCheckpointer::checkpoint_now for the rationale).
    pipeline.metrics().add_count("ckpt.writes");
    RunCheckpoint ckpt;
    ckpt.kind = CheckpointKind::kTraceRun;
    ckpt.config_fingerprint = config_fp;
    ckpt.step = step;
    ckpt.state_fingerprint = pipeline.state_fingerprint();
    ckpt.pipeline = pipeline.export_state();
    ckpt.outcomes = result.outcomes;
    if (injector != nullptr) {
      ckpt.has_injector = true;
      ckpt.injector = injector->export_state();
    }
    save_checkpoint(policy.dir, ckpt);
    prune_checkpoints(policy.dir, policy.keep);
    last_written = step;
  };

  for (std::size_t i = start; i < trace.size(); ++i) {
    try {
      result.outcomes.push_back(pipeline.apply(trace[i]));
    } catch (const CancelledError&) {
      // Cancellation is polled at the top of apply(), before any mutation,
      // so the pipeline state still matches the outcomes gathered so far.
      // Capture that progress durably (a SIGTERM'd run resumes from here
      // with --resume), then let the caller pick the exit path.
      write(static_cast<std::int64_t>(result.outcomes.size()));
      throw;
    }
    if (policy.due(static_cast<std::int64_t>(i)))
      write(static_cast<std::int64_t>(i) + 1);
  }
  // Final state always captured, even when the cadence does not divide the
  // trace length (the idempotence guard skips the duplicate when it does).
  write(static_cast<std::int64_t>(trace.size()));

  result.metrics = pipeline.metrics();
  result.final_state_fingerprint = pipeline.state_fingerprint();
  if (resume != nullptr) *resume = report;
  return result;
}

}  // namespace stormtrack
