#include "ckpt/checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <system_error>
#include <utility>

#include "util/binary_io.hpp"
#include "ckpt/codec.hpp"
#include "ckpt/crc32.hpp"
#include "util/atomic_file.hpp"
#include "util/check.hpp"
#include "util/fnv.hpp"

namespace stormtrack {

namespace ckptio {

// ---------------------------------------------------------------- encoders
//
// One put_/get_ pair per struct, composed bottom-up. Every get_ validates
// through the target type's own checked constructors (Allocation,
// AllocTree::from_raw, ...), so a checkpoint that passes the CRC but
// carries inconsistent state is still rejected with a field-level error.
// The pairs declared in codec.hpp are shared with the sweep journal; the
// rest are internal to the checkpoint format.

void put_rect(BinaryWriter& w, const Rect& r) {
  w.put_i32(r.x);
  w.put_i32(r.y);
  w.put_i32(r.w);
  w.put_i32(r.h);
}

Rect get_rect(BinaryReader& r, const char* what) {
  Rect out;
  out.x = r.get_i32(what);
  out.y = r.get_i32(what);
  out.w = r.get_i32(what);
  out.h = r.get_i32(what);
  return out;
}

void put_nest_spec(BinaryWriter& w, const NestSpec& spec) {
  w.put_i32(spec.id);
  put_rect(w, spec.region);
  w.put_i32(spec.shape.nx);
  w.put_i32(spec.shape.ny);
}

NestSpec get_nest_spec(BinaryReader& r) {
  NestSpec spec;
  spec.id = r.get_i32("nest id");
  spec.region = get_rect(r, "nest region");
  spec.shape.nx = r.get_i32("nest shape nx");
  spec.shape.ny = r.get_i32("nest shape ny");
  return spec;
}

void put_allocation(BinaryWriter& w, const Allocation& alloc) {
  w.put_i32(alloc.grid_px());
  w.put_i32(alloc.grid_py());
  w.put_count(alloc.rects().size());
  for (const auto& [nest, rect] : alloc.rects()) {
    w.put_i32(nest);
    put_rect(w, rect);
  }
}

Allocation get_allocation(BinaryReader& r) {
  const int grid_px = r.get_i32("allocation grid_px");
  const int grid_py = r.get_i32("allocation grid_py");
  const std::size_t n = r.get_count("allocation rectangles");
  std::map<NestId, Rect> rects;
  for (std::size_t i = 0; i < n; ++i) {
    const int nest = r.get_i32("allocation nest id");
    const Rect rect = get_rect(r, "allocation rect");
    ST_CHECK_MSG(rects.emplace(nest, rect).second,
                 "checkpoint allocation repeats nest id " << nest);
  }
  if (grid_px == 0 && grid_py == 0 && rects.empty()) return Allocation{};
  return Allocation(grid_px, grid_py, std::move(rects));
}

void put_tree(BinaryWriter& w, const AllocTree& tree) {
  const std::vector<AllocTree::Node>& nodes = tree.raw_nodes();
  w.put_count(nodes.size());
  for (const AllocTree::Node& n : nodes) {
    w.put_f64(n.weight);
    w.put_i32(n.parent);
    w.put_i32(n.left);
    w.put_i32(n.right);
    w.put_i32(n.nest);
    w.put_bool(n.free_slot);
    w.put_bool(n.alive);
  }
  w.put_i32(tree.root());
}

AllocTree get_tree(BinaryReader& r) {
  const std::size_t n = r.get_count("tree nodes");
  std::vector<AllocTree::Node> nodes(n);
  for (AllocTree::Node& node : nodes) {
    node.weight = r.get_f64("tree node weight");
    node.parent = r.get_i32("tree node parent");
    node.left = r.get_i32("tree node left");
    node.right = r.get_i32("tree node right");
    node.nest = r.get_i32("tree node nest");
    node.free_slot = r.get_bool("tree node free_slot");
    node.alive = r.get_bool("tree node alive");
  }
  const int root = r.get_i32("tree root");
  return AllocTree::from_raw(std::move(nodes), root);
}

void put_metrics(BinaryWriter& w, const MetricsRegistry& metrics) {
  w.put_count(metrics.entries().size());
  for (const auto& [name, entry] : metrics.entries()) {
    w.put_string(name);
    w.put_f64(entry.seconds);
    w.put_i64(entry.count);
  }
}

MetricsRegistry get_metrics(BinaryReader& r) {
  MetricsRegistry metrics;
  const std::size_t n = r.get_count("metrics entries");
  for (std::size_t i = 0; i < n; ++i) {
    const std::string name = r.get_string("metric name");
    MetricsRegistry::Entry entry;
    entry.seconds = r.get_f64("metric seconds");
    entry.count = r.get_i64("metric count");
    metrics.add_entry(name, entry);
  }
  return metrics;
}

void put_injector_stats(BinaryWriter& w, const FaultInjectorStats& s) {
  w.put_i64(s.split_read_faults);
  w.put_i64(s.payload_drops);
  w.put_i64(s.payload_corruptions);
  w.put_i64(s.task_faults);
}

FaultInjectorStats get_injector_stats(BinaryReader& r) {
  FaultInjectorStats s;
  s.split_read_faults = r.get_i64("stats split_read_faults");
  s.payload_drops = r.get_i64("stats payload_drops");
  s.payload_corruptions = r.get_i64("stats payload_corruptions");
  s.task_faults = r.get_i64("stats task_faults");
  return s;
}

void put_candidate_metrics(BinaryWriter& w, const CandidateMetrics& m) {
  w.put_f64(m.predicted_redist);
  w.put_f64(m.predicted_exec);
  w.put_f64(m.actual_redist);
  w.put_f64(m.actual_exec);
}

CandidateMetrics get_candidate_metrics(BinaryReader& r) {
  CandidateMetrics m;
  m.predicted_redist = r.get_f64("candidate predicted_redist");
  m.predicted_exec = r.get_f64("candidate predicted_exec");
  m.actual_redist = r.get_f64("candidate actual_redist");
  m.actual_exec = r.get_f64("candidate actual_exec");
  return m;
}

void put_traffic(BinaryWriter& w, const TrafficReport& t) {
  w.put_f64(t.modeled_time);
  w.put_i64(t.total_bytes);
  w.put_i64(t.hop_bytes);
  w.put_i64(t.local_bytes);
  w.put_i64(t.num_messages);
  w.put_i32(t.max_hops);
}

TrafficReport get_traffic(BinaryReader& r) {
  TrafficReport t;
  t.modeled_time = r.get_f64("traffic modeled_time");
  t.total_bytes = r.get_i64("traffic total_bytes");
  t.hop_bytes = r.get_i64("traffic hop_bytes");
  t.local_bytes = r.get_i64("traffic local_bytes");
  t.num_messages = r.get_i64("traffic num_messages");
  t.max_hops = r.get_i32("traffic max_hops");
  return t;
}

void put_outcome(BinaryWriter& w, const StepOutcome& o) {
  w.put_string(o.chosen);
  put_candidate_metrics(w, o.scratch);
  put_candidate_metrics(w, o.diffusion);
  put_candidate_metrics(w, o.committed);
  put_traffic(w, o.traffic);
  w.put_f64(o.overlap_fraction);
  w.put_i32(o.num_deleted);
  w.put_i32(o.num_retained);
  w.put_i32(o.num_inserted);
  put_allocation(w, o.allocation);
  w.put_bool(o.degraded);
  w.put_string(o.degradation);
  w.put_i32(o.ranks_lost);
}

StepOutcome get_outcome(BinaryReader& r) {
  StepOutcome o;
  o.chosen = r.get_string("outcome chosen");
  o.scratch = get_candidate_metrics(r);
  o.diffusion = get_candidate_metrics(r);
  o.committed = get_candidate_metrics(r);
  o.traffic = get_traffic(r);
  o.overlap_fraction = r.get_f64("outcome overlap_fraction");
  o.num_deleted = r.get_i32("outcome num_deleted");
  o.num_retained = r.get_i32("outcome num_retained");
  o.num_inserted = r.get_i32("outcome num_inserted");
  o.allocation = get_allocation(r);
  o.degraded = r.get_bool("outcome degraded");
  o.degradation = r.get_string("outcome degradation");
  o.ranks_lost = r.get_i32("outcome ranks_lost");
  return o;
}

void put_pipeline_state(BinaryWriter& w,
                        const AdaptationPipeline::PipelineState& s) {
  put_tree(w, s.tree);
  put_allocation(w, s.allocation);
  w.put_count(s.current.size());
  for (const NestSpec& spec : s.current) put_nest_spec(w, spec);
  w.put_i32(s.point_index);
  w.put_i32(s.view_px);
  w.put_i32(s.view_py);
  put_injector_stats(w, s.seen_faults);
  put_metrics(w, s.metrics);
  w.put_string(s.strategy_state);
  w.put_i32(s.resize_events_applied);  // format v2
}

AdaptationPipeline::PipelineState get_pipeline_state(BinaryReader& r) {
  AdaptationPipeline::PipelineState s;
  s.tree = get_tree(r);
  s.allocation = get_allocation(r);
  const std::size_t n = r.get_count("pipeline nests");
  s.current.reserve(n);
  for (std::size_t i = 0; i < n; ++i) s.current.push_back(get_nest_spec(r));
  s.point_index = r.get_i32("pipeline point_index");
  s.view_px = r.get_i32("pipeline view_px");
  s.view_py = r.get_i32("pipeline view_py");
  s.seen_faults = get_injector_stats(r);
  s.metrics = get_metrics(r);
  s.strategy_state = r.get_string("pipeline strategy_state");
  s.resize_events_applied = r.get_i32("pipeline resize_events_applied");
  return s;
}

void put_rng(BinaryWriter& w, const Xoshiro256::State& s) {
  for (const std::uint64_t word : s.s) w.put_u64(word);
  w.put_f64(s.spare);
  w.put_bool(s.have_spare);
}

Xoshiro256::State get_rng(BinaryReader& r) {
  Xoshiro256::State s;
  for (std::uint64_t& word : s.s) word = r.get_u64("rng word");
  s.spare = r.get_f64("rng gaussian spare");
  s.have_spare = r.get_bool("rng have_spare");
  return s;
}

void put_weather(BinaryWriter& w, const WeatherModel::State& s) {
  w.put_i32(s.step);
  put_rng(w, s.rng);
  w.put_count(s.systems.size());
  for (const CloudSystem& c : s.systems) {
    w.put_f64(c.cx);
    w.put_f64(c.cy);
    w.put_f64(c.sigma_x);
    w.put_f64(c.sigma_y);
    w.put_f64(c.intensity);
    w.put_f64(c.vx);
    w.put_f64(c.vy);
    w.put_f64(c.growth);
    w.put_i32(c.age);
    w.put_i32(c.lifetime);
  }
}

WeatherModel::State get_weather(BinaryReader& r) {
  WeatherModel::State s;
  s.step = r.get_i32("weather step");
  s.rng = get_rng(r);
  const std::size_t n = r.get_count("cloud systems");
  s.systems.resize(n);
  for (CloudSystem& c : s.systems) {
    c.cx = r.get_f64("cloud cx");
    c.cy = r.get_f64("cloud cy");
    c.sigma_x = r.get_f64("cloud sigma_x");
    c.sigma_y = r.get_f64("cloud sigma_y");
    c.intensity = r.get_f64("cloud intensity");
    c.vx = r.get_f64("cloud vx");
    c.vy = r.get_f64("cloud vy");
    c.growth = r.get_f64("cloud growth");
    c.age = r.get_i32("cloud age");
    c.lifetime = r.get_i32("cloud lifetime");
  }
  return s;
}

void put_tracker(BinaryWriter& w, const NestTracker::State& s) {
  w.put_i32(s.next_id);
  w.put_count(s.active.size());
  for (const NestSpec& spec : s.active) put_nest_spec(w, spec);
}

NestTracker::State get_tracker(BinaryReader& r) {
  NestTracker::State s;
  s.next_id = r.get_i32("tracker next_id");
  const std::size_t n = r.get_count("tracker active nests");
  s.active.reserve(n);
  for (std::size_t i = 0; i < n; ++i) s.active.push_back(get_nest_spec(r));
  return s;
}

void put_grid(BinaryWriter& w, const Grid2D<double>& g) {
  w.put_i32(g.width());
  w.put_i32(g.height());
  for (const double v : g.data()) w.put_f64(v);
}

Grid2D<double> get_grid(BinaryReader& r) {
  const int width = r.get_i32("grid width");
  const int height = r.get_i32("grid height");
  ST_CHECK_MSG(width >= 0 && height >= 0, "checkpoint grid has negative "
                                          "extent "
                                              << width << "x" << height);
  Grid2D<double> g(width, height);
  for (double& v : g.data()) v = r.get_f64("grid cell");
  return g;
}

void put_coupled(BinaryWriter& w, const CoupledSimulation::State& s) {
  put_weather(w, s.driver.weather);
  put_tracker(w, s.driver.tracker);
  w.put_i32(s.driver.interval);
  put_pipeline_state(w, s.pipeline);
  // v3: the payload is an opaque workload blob — the codec never learns
  // whether it frames field grids or particle trajectories.
  w.put_string(s.workload);
  w.put_count(s.workload_state.size());
  w.put_bytes(s.workload_state);
  w.put_i32(s.interval);
}

CoupledSimulation::State get_coupled(BinaryReader& r) {
  CoupledSimulation::State s;
  s.driver.weather = get_weather(r);
  s.driver.tracker = get_tracker(r);
  s.driver.interval = r.get_i32("driver interval");
  s.pipeline = get_pipeline_state(r);
  s.workload = r.get_string("workload name");
  const std::size_t blob_size = r.get_count("workload state size");
  const std::span<const std::byte> blob =
      r.get_bytes(blob_size, "workload state blob");
  s.workload_state.assign(blob.begin(), blob.end());
  s.interval = r.get_i32("coupled interval");
  return s;
}

void put_injector(BinaryWriter& w, const FaultInjector::State& s) {
  w.put_i32(s.point);
  w.put_count(s.fired.size());
  for (const int count : s.fired) w.put_i32(count);
  put_injector_stats(w, s.stats);
}

FaultInjector::State get_injector(BinaryReader& r) {
  FaultInjector::State s;
  s.point = r.get_i32("injector point");
  const std::size_t n = r.get_count("injector firing counters");
  s.fired.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    s.fired.push_back(r.get_i32("injector firing count"));
  s.stats = get_injector_stats(r);
  return s;
}

void put_trace_result(BinaryWriter& w, const TraceRunResult& result) {
  w.put_count(result.outcomes.size());
  for (const StepOutcome& o : result.outcomes) put_outcome(w, o);
  put_metrics(w, result.metrics);
  w.put_u64(result.final_state_fingerprint);
}

TraceRunResult get_trace_result(BinaryReader& r) {
  TraceRunResult result;
  const std::size_t n = r.get_count("trace result outcomes");
  result.outcomes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) result.outcomes.push_back(get_outcome(r));
  result.metrics = get_metrics(r);
  result.final_state_fingerprint = r.get_u64("trace result fingerprint");
  return result;
}

}  // namespace ckptio

using namespace ckptio;

std::string_view to_string(CheckpointKind kind) {
  switch (kind) {
    case CheckpointKind::kTraceRun:
      return "trace_run";
    case CheckpointKind::kCoupledRun:
      return "coupled_run";
  }
  return "unknown";
}

std::vector<std::byte> encode_checkpoint(const RunCheckpoint& ckpt) {
  BinaryWriter payload;
  payload.put_u8(static_cast<std::uint8_t>(ckpt.kind));
  payload.put_u64(ckpt.config_fingerprint);
  payload.put_i64(ckpt.step);
  payload.put_u64(ckpt.state_fingerprint);
  switch (ckpt.kind) {
    case CheckpointKind::kTraceRun:
      put_pipeline_state(payload, ckpt.pipeline);
      payload.put_count(ckpt.outcomes.size());
      for (const StepOutcome& o : ckpt.outcomes) put_outcome(payload, o);
      break;
    case CheckpointKind::kCoupledRun:
      put_coupled(payload, ckpt.coupled);
      break;
  }
  payload.put_bool(ckpt.has_injector);
  if (ckpt.has_injector) put_injector(payload, ckpt.injector);

  BinaryWriter framed;
  framed.put_u32(kCheckpointMagic);
  framed.put_u32(kCheckpointVersion);
  framed.put_u64(payload.size());
  framed.put_bytes(payload.bytes());
  framed.put_u32(crc32(payload.bytes()));
  return framed.take();
}

RunCheckpoint decode_checkpoint(std::span<const std::byte> bytes) {
  BinaryReader framed(bytes);
  const std::uint32_t magic = framed.get_u32("checkpoint magic");
  ST_CHECK_MSG(magic == kCheckpointMagic,
               "not a stormtrack checkpoint: bad magic 0x" << std::hex << magic
                                                           << std::dec);
  const std::uint32_t version = framed.get_u32("checkpoint version");
  ST_CHECK_MSG(version == kCheckpointVersion,
               "unsupported checkpoint version "
                   << version << " (this build reads version "
                   << kCheckpointVersion
                   << (version < kCheckpointVersion
                           ? "; pre-v3 checkpoints stored nest fields "
                             "inline and predate the pluggable workload "
                             "layer — re-run to produce a fresh checkpoint"
                           : "")
                   << ")");
  const std::uint64_t payload_size = framed.get_u64("checkpoint payload size");
  ST_CHECK_MSG(framed.remaining() >= payload_size + sizeof(std::uint32_t),
               "truncated checkpoint: payload claims "
                   << payload_size << " bytes but only " << framed.remaining()
                   << " remain in the file (torn write?)");
  const std::span<const std::byte> payload_bytes =
      framed.get_bytes(payload_size, "checkpoint payload");
  const std::uint32_t stored_crc = framed.get_u32("checkpoint CRC");
  const std::uint32_t computed_crc = crc32(payload_bytes);
  ST_CHECK_MSG(stored_crc == computed_crc,
               "checkpoint CRC mismatch: stored 0x"
                   << std::hex << stored_crc << " but payload hashes to 0x"
                   << computed_crc << std::dec << " — file is corrupt");
  ST_CHECK_MSG(framed.exhausted(), "checkpoint has " << framed.remaining()
                                                     << " trailing bytes "
                                                        "after the CRC");

  BinaryReader r(payload_bytes);
  RunCheckpoint ckpt;
  const std::uint8_t kind = r.get_u8("checkpoint kind");
  ST_CHECK_MSG(kind == static_cast<std::uint8_t>(CheckpointKind::kTraceRun) ||
                   kind ==
                       static_cast<std::uint8_t>(CheckpointKind::kCoupledRun),
               "unknown checkpoint kind " << static_cast<int>(kind));
  ckpt.kind = static_cast<CheckpointKind>(kind);
  ckpt.config_fingerprint = r.get_u64("config fingerprint");
  ckpt.step = r.get_i64("checkpoint step");
  ST_CHECK_MSG(ckpt.step >= 0,
               "checkpoint has negative step " << ckpt.step);
  ckpt.state_fingerprint = r.get_u64("state fingerprint");
  switch (ckpt.kind) {
    case CheckpointKind::kTraceRun: {
      ckpt.pipeline = get_pipeline_state(r);
      const std::size_t n = r.get_count("trace outcomes");
      ckpt.outcomes.reserve(n);
      for (std::size_t i = 0; i < n; ++i)
        ckpt.outcomes.push_back(get_outcome(r));
      break;
    }
    case CheckpointKind::kCoupledRun:
      ckpt.coupled = get_coupled(r);
      break;
  }
  ckpt.has_injector = r.get_bool("injector presence flag");
  if (ckpt.has_injector) ckpt.injector = get_injector(r);
  ST_CHECK_MSG(r.exhausted(), "checkpoint payload has "
                                  << r.remaining()
                                  << " undecoded trailing bytes");
  return ckpt;
}

void CheckpointPolicy::validate() const {
  ST_CHECK_MSG(!dir.empty(), "checkpoint policy has no directory");
  ST_CHECK_MSG(every >= 1,
               "checkpoint cadence must be >= 1, got " << every);
}

std::filesystem::path checkpoint_file_path(const std::filesystem::path& dir,
                                           std::int64_t step) {
  ST_CHECK_MSG(step >= 0 && step <= 99'999'999,
               "checkpoint step " << step << " outside the 8-digit file-name "
                                             "range");
  char name[32];
  std::snprintf(name, sizeof(name), "ckpt-%08lld.stck",
                static_cast<long long>(step));
  return dir / name;
}

namespace {

/// Step number encoded in a checkpoint file name, or nullopt for files that
/// are not checkpoints (temp siblings, strays).
std::optional<std::int64_t> parse_checkpoint_name(const std::string& name) {
  constexpr std::string_view prefix = "ckpt-";
  constexpr std::string_view suffix = ".stck";
  if (name.size() != prefix.size() + 8 + suffix.size()) return std::nullopt;
  if (name.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0)
    return std::nullopt;
  std::int64_t step = 0;
  for (std::size_t i = prefix.size(); i < prefix.size() + 8; ++i) {
    if (name[i] < '0' || name[i] > '9') return std::nullopt;
    step = step * 10 + (name[i] - '0');
  }
  return step;
}

/// Checkpoint files in \p dir, newest (highest step) first.
std::vector<std::pair<std::int64_t, std::filesystem::path>>
list_checkpoints(const std::filesystem::path& dir) {
  std::vector<std::pair<std::int64_t, std::filesystem::path>> files;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const auto step = parse_checkpoint_name(entry.path().filename().string());
    if (step.has_value()) files.emplace_back(*step, entry.path());
  }
  std::sort(files.begin(), files.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return files;
}

}  // namespace

std::size_t save_checkpoint(const std::filesystem::path& dir,
                            const RunCheckpoint& ckpt) {
  const std::vector<std::byte> bytes = encode_checkpoint(ckpt);
  write_file_atomic(checkpoint_file_path(dir, ckpt.step),
                    std::span<const std::byte>(bytes));
  return bytes.size();
}

RunCheckpoint load_checkpoint(const std::filesystem::path& file) {
  return decode_checkpoint(read_file_bytes(file));
}

std::optional<LatestCheckpoint> latest_valid_checkpoint(
    const std::filesystem::path& dir,
    std::optional<std::uint64_t> config_fingerprint) {
  LatestCheckpoint result;
  for (const auto& [step, path] : list_checkpoints(dir)) {
    try {
      RunCheckpoint ckpt = load_checkpoint(path);
      if (config_fingerprint.has_value() &&
          ckpt.config_fingerprint != *config_fingerprint) {
        std::ostringstream os;
        os << path.filename().string()
           << ": checkpoint was taken under a different run configuration "
              "(config fingerprint mismatch)";
        throw CheckError(os.str());
      }
      result.path = path;
      result.checkpoint = std::move(ckpt);
      return result;
    } catch (const std::exception& e) {
      ++result.invalid_skipped;
      result.errors.push_back(path.filename().string() + ": " + e.what());
    }
  }
  return std::nullopt;
}

int prune_checkpoints(const std::filesystem::path& dir, int keep) {
  if (keep <= 0) return 0;
  const auto files = list_checkpoints(dir);
  int removed = 0;
  for (std::size_t i = static_cast<std::size_t>(keep); i < files.size(); ++i) {
    std::error_code ec;
    if (std::filesystem::remove(files[i].second, ec)) ++removed;
  }
  return removed;
}

// ------------------------------------------------------ CoupledCheckpointer

CoupledCheckpointer::CoupledCheckpointer(CheckpointPolicy policy,
                                         std::uint64_t config_fingerprint)
    : policy_(std::move(policy)), config_fp_(config_fingerprint) {
  policy_.validate();
}

void CoupledCheckpointer::on_interval(CoupledSimulation& sim, int interval) {
  if (policy_.due(interval)) checkpoint_now(sim);
}

void CoupledCheckpointer::checkpoint_now(CoupledSimulation& sim) {
  const std::int64_t step = sim.interval();  // intervals completed
  if (step == last_step_) return;            // final-step double-write guard
  // Bump *before* exporting: the registry inside checkpoint k then already
  // counts write k, so a run resumed from it finishes with the same
  // ckpt.writes total as the uninterrupted run.
  sim.metrics().add_count("ckpt.writes");
  RunCheckpoint ckpt;
  ckpt.kind = CheckpointKind::kCoupledRun;
  ckpt.config_fingerprint = config_fp_;
  ckpt.step = step;
  ckpt.state_fingerprint = sim.state_fingerprint();
  ckpt.coupled = sim.export_state();
  if (const FaultInjector* injector = sim.config().manager.injector;
      injector != nullptr) {
    ckpt.has_injector = true;
    ckpt.injector = injector->export_state();
  }
  bytes_written_ +=
      static_cast<std::int64_t>(save_checkpoint(policy_.dir, ckpt));
  ++writes_;
  last_step_ = step;
  pruned_ += prune_checkpoints(policy_.dir, policy_.keep);
}

ResumeReport resume_coupled(CoupledSimulation& sim,
                            const std::filesystem::path& dir,
                            std::uint64_t config_fingerprint) {
  std::optional<LatestCheckpoint> latest =
      latest_valid_checkpoint(dir, config_fingerprint);
  ResumeReport report;
  if (!latest.has_value()) return report;
  RunCheckpoint& ckpt = latest->checkpoint;
  ST_CHECK_MSG(ckpt.kind == CheckpointKind::kCoupledRun,
               "checkpoint " << latest->path.filename().string() << " is a "
                             << to_string(ckpt.kind)
                             << " checkpoint, not a coupled-run one");
  FaultInjector* const injector = sim.config().manager.injector;
  ST_CHECK_MSG(ckpt.has_injector == (injector != nullptr),
               "checkpoint " << latest->path.filename().string()
                             << (ckpt.has_injector
                                     ? " carries fault-injector state but "
                                       "this run has no injector"
                                     : " has no fault-injector state but "
                                       "this run expects one"));
  sim.import_state(std::move(ckpt.coupled));
  if (injector != nullptr) injector->import_state(ckpt.injector);
  const std::uint64_t restored = sim.state_fingerprint();
  ST_CHECK_MSG(restored == ckpt.state_fingerprint,
               "restored state fingerprint "
                   << restored << " does not match the fingerprint "
                   << ckpt.state_fingerprint << " recorded in "
                   << latest->path.filename().string());
  report.resumed = true;
  report.step = ckpt.step;
  report.invalid_skipped = latest->invalid_skipped;
  report.path = latest->path;
  return report;
}

std::uint64_t coupled_config_fingerprint(const Machine& machine,
                                         const CoupledConfig& config) {
  Fingerprint fp;
  fp.add(std::string_view(machine.label()));
  fp.add(machine.grid_px());
  fp.add(machine.grid_py());
  fp.add(std::string_view(config.manager.strategy));
  // The workload and its tunables shape every payload byte downstream; a
  // checkpoint from one payload implementation must not resume another.
  fp.add(std::string_view(config.workload));
  fp.add(config.particles.particles_per_nest);
  fp.add(config.particles.vortex_scale);
  fp.add(config.particles.drift_u);
  fp.add(config.particles.drift_v);
  fp.add(config.manager.strategy_options.hysteresis_threshold);
  fp.add(config.manager.steps_per_interval);
  fp.add(config.manager.bytes_per_point);
  fp.add(config.manager.initial_view_px);
  fp.add(config.manager.initial_view_py);
  fp.add(static_cast<std::int64_t>(config.manager.resize_schedule.size()));
  for (const ResizeEvent& e : config.manager.resize_schedule) {
    fp.add(e.point);
    fp.add(e.px);
    fp.add(e.py);
  }
  const RealScenarioConfig& sc = config.scenario;
  fp.add(sc.num_intervals);
  fp.add(sc.sim_px);
  fp.add(sc.sim_py);
  fp.add(static_cast<std::uint64_t>(sc.seed));
  fp.add(sc.weather.domain.lon_min);
  fp.add(sc.weather.domain.lon_max);
  fp.add(sc.weather.domain.lat_min);
  fp.add(sc.weather.domain.lat_max);
  fp.add(sc.weather.domain.resolution_km);
  fp.add(sc.weather.spawn_probability);
  fp.add(sc.weather.min_systems);
  fp.add(sc.weather.max_systems);
  fp.add(sc.weather.qcloud_clear);
  fp.add(sc.weather.olr_clear);
  fp.add(sc.weather.olr_depression);
  fp.add(sc.weather.qcloud_opaque);
  fp.add(sc.pda.olr_threshold);
  fp.add(sc.pda.analysis_procs);
  fp.add(sc.pda.root);
  fp.add(sc.pda.max_read_retries);
  if (config.manager.injector != nullptr) {
    const FaultPlan& plan = config.manager.injector->plan();
    fp.add(static_cast<std::int64_t>(plan.events.size()));
    for (const FaultEvent& e : plan.events) {
      fp.add(static_cast<int>(e.kind));
      fp.add(e.point);
      fp.add(e.rank);
      fp.add(e.peer);
      fp.add(e.index);
      fp.add(e.attempts);
      fp.add(std::string_view(e.site));
    }
  }
  return fp.value();
}

}  // namespace stormtrack
