#pragma once

/// \file framed_log.hpp
/// Crash-safe append-only record log, shared by every journal in the tree.
///
/// The sweep journal (sweep/sweep_journal.hpp) and the service session
/// journal (serve/session_journal.hpp) need the same durability discipline:
/// a header binding the file to its producer, length-prefixed
/// CRC-32-guarded records, flush + fsync after every append, and a resume
/// path that replays intact records and truncates the (at most one) torn
/// record a SIGKILL can leave at the tail. FramedLog is that discipline,
/// factored out once; the journals own only their record codecs.
///
/// On disk:
///
///     u32 magic | u32 version | u64 fingerprint
///     repeated: u32 payload size | payload | u32 CRC(payload)
///
/// Torn-tail detection is frame-level: a truncated frame or a CRC mismatch
/// ends the replay and truncates the file there. A record whose CRC matches
/// is handed to the caller's replay callback; exceptions it throws
/// propagate — a CRC-valid record that the caller cannot accept means the
/// wrong log was opened, not a torn tail, and must fail loudly.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <mutex>
#include <span>

#include "util/binary_io.hpp"

namespace stormtrack {

/// See file comment.
class FramedLog {
 public:
  /// Header fields; resume refuses a file whose magic, version or
  /// fingerprint differ (\p what names the log kind in error messages).
  struct Format {
    std::uint32_t magic = 0;
    std::uint32_t version = 0;
    std::uint64_t fingerprint = 0;
    const char* what = "log";
  };

  /// Replay callback: a reader positioned over one CRC-valid record
  /// payload. The log checks the payload is fully consumed afterwards.
  using ReplayFn = std::function<void(BinaryReader&)>;

  /// Open \p path for appending. With \p resume set and the file present,
  /// the header is validated, every intact record is fed to \p replay in
  /// order, and any torn tail is truncated; otherwise the file is started
  /// fresh (a file too short to hold the header counts as one torn
  /// record). Throws CheckError on a foreign log (bad magic / version /
  /// fingerprint).
  FramedLog(std::filesystem::path path, Format format, bool resume,
            const ReplayFn& replay);
  ~FramedLog();

  FramedLog(const FramedLog&) = delete;
  FramedLog& operator=(const FramedLog&) = delete;

  /// Append one framed record; flushed and fsync'd before returning.
  /// Thread-safe.
  void append(std::span<const std::byte> payload);

  /// Torn/corrupt records dropped from the tail at open (0 or 1 after a
  /// kill; more only for external corruption).
  [[nodiscard]] int torn_records_dropped() const { return torn_dropped_; }
  /// Intact records replayed at open.
  [[nodiscard]] int replayed_records() const { return replayed_; }
  [[nodiscard]] int appends() const { return appends_; }
  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

 private:
  void open_fresh();
  void open_resume(const ReplayFn& replay);

  std::filesystem::path path_;
  Format format_;
  std::FILE* file_ = nullptr;
  std::mutex mutex_;
  int torn_dropped_ = 0;
  int replayed_ = 0;
  int appends_ = 0;
};

}  // namespace stormtrack
