#pragma once

/// \file framed_log.hpp
/// Crash-safe append-only record log, shared by every journal in the tree.
///
/// The sweep journal (sweep/sweep_journal.hpp) and the service session
/// journal (serve/session_journal.hpp) need the same durability discipline:
/// a header binding the file to its producer, length-prefixed
/// CRC-32-guarded records, flush + fsync after every append, and a resume
/// path that replays intact records and truncates the (at most one) torn
/// record a SIGKILL can leave at the tail. FramedLog is that discipline,
/// factored out once; the journals own only their record codecs.
///
/// On disk:
///
///     u32 magic | u32 version | u64 fingerprint
///     repeated: u32 payload size | payload | u32 CRC(payload)
///
/// Torn-tail detection is frame-level: a truncated frame or a CRC mismatch
/// ends the replay and truncates the file there. A record whose CRC matches
/// is handed to the caller's replay callback; exceptions it throws
/// propagate — a CRC-valid record that the caller cannot accept means the
/// wrong log was opened, not a torn tail, and must fail loudly.
///
/// Appends can *fail* without corrupting the log: every write and fsync
/// runs through the injectable service-I/O fault seam (util/fs_fault.hpp),
/// and a real ENOSPC behaves the same way. A failed append marks the log
/// dirty — the file may carry a torn tail, exactly what a crash mid-append
/// leaves — and the next append first truncates back to the last
/// known-durable offset before writing. A process that dies while dirty
/// recovers through the ordinary torn-tail replay. try_append() reports
/// failure to callers (the session journal buffers and retries, flipping
/// the daemon's health to `degraded`); append() throws as before.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <mutex>
#include <span>

#include "util/binary_io.hpp"

namespace stormtrack {

/// See file comment.
class FramedLog {
 public:
  /// Header fields; resume refuses a file whose magic, version or
  /// fingerprint differ (\p what names the log kind in error messages).
  struct Format {
    std::uint32_t magic = 0;
    std::uint32_t version = 0;
    std::uint64_t fingerprint = 0;
    const char* what = "log";
  };

  /// Replay callback: a reader positioned over one CRC-valid record
  /// payload. The log checks the payload is fully consumed afterwards.
  using ReplayFn = std::function<void(BinaryReader&)>;

  /// Open \p path for appending. With \p resume set and the file present,
  /// the header is validated, every intact record is fed to \p replay in
  /// order, and any torn tail is truncated; otherwise the file is started
  /// fresh (a file too short to hold the header counts as one torn
  /// record). Throws CheckError on a foreign log (bad magic / version /
  /// fingerprint).
  FramedLog(std::filesystem::path path, Format format, bool resume,
            const ReplayFn& replay);
  ~FramedLog();

  FramedLog(const FramedLog&) = delete;
  FramedLog& operator=(const FramedLog&) = delete;

  /// Append one framed record; flushed and fsync'd before returning.
  /// Thread-safe. Throws CheckError when the write or sync fails (real or
  /// injected); the log stays usable — see try_append().
  void append(std::span<const std::byte> payload);

  /// Non-throwing append: returns false when the write or sync fails, in
  /// which case the record is NOT durable and the file may carry a torn
  /// tail until the next successful append truncates it away (or a
  /// restart replays past it). Thread-safe.
  [[nodiscard]] bool try_append(std::span<const std::byte> payload);

  /// Torn/corrupt records dropped from the tail at open (0 or 1 after a
  /// kill; more only for external corruption).
  [[nodiscard]] int torn_records_dropped() const { return torn_dropped_; }
  /// Intact records replayed at open.
  [[nodiscard]] int replayed_records() const { return replayed_; }
  [[nodiscard]] int appends() const { return appends_; }
  /// Failed append attempts (real or injected I/O errors).
  [[nodiscard]] int write_failures() const;
  /// Human-readable reason of the most recent append failure.
  [[nodiscard]] std::string last_write_error() const;
  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

 private:
  void open_fresh();
  void open_resume(const ReplayFn& replay);
  /// Truncate a torn tail back to the last known-durable offset.
  /// mutex_ held. Returns false when the truncate itself fails.
  bool restore_tail_locked();

  std::filesystem::path path_;
  Format format_;
  std::FILE* file_ = nullptr;
  mutable std::mutex mutex_;
  int torn_dropped_ = 0;
  int replayed_ = 0;
  int appends_ = 0;
  int write_failures_ = 0;
  std::string last_write_error_;
  /// Bytes of the file known flushed + fsynced (header + intact records).
  std::uint64_t good_offset_ = 0;
  /// True after a failed append: the on-disk tail past good_offset_ is
  /// suspect and must be truncated before the next record is written.
  bool dirty_ = false;
};

}  // namespace stormtrack
