#pragma once

/// \file trace_run.hpp
/// Checkpointed variant of the core experiment harness: run one trace
/// under one strategy, writing a durable checkpoint at a configurable
/// cadence, and transparently resuming from the newest valid checkpoint in
/// the policy directory when one exists.
///
/// A resumed run is exact: the pipeline state, accumulated metrics, and
/// per-point outcomes are restored from the checkpoint, so the returned
/// TraceRunResult — totals, metrics, final_state_fingerprint — is
/// byte-identical to an uninterrupted run's. A final checkpoint is always
/// written after the last adaptation point even when the cadence does not
/// divide the trace length.

#include <cstdint>
#include <string_view>

#include "ckpt/checkpoint.hpp"
#include "core/experiment.hpp"

namespace stormtrack {

/// Fingerprint binding trace-run checkpoints to their configuration:
/// machine label + grid, strategy + options, pipeline knobs, the full
/// trace content, and the fault plan when an injector is attached.
[[nodiscard]] std::uint64_t trace_run_fingerprint(const Machine& machine,
                                                  std::string_view strategy,
                                                  const Trace& trace,
                                                  const ManagerConfig& config);

/// run_trace with durable checkpoints (see file comment). \p resume, when
/// non-null, reports whether and from where the run resumed.
[[nodiscard]] TraceRunResult run_trace_checkpointed(
    const Machine& machine, const ExecTimeModel& model,
    const GroundTruthCost& truth, std::string_view strategy,
    const Trace& trace, ManagerConfig config, const CheckpointPolicy& policy,
    ResumeReport* resume = nullptr);

}  // namespace stormtrack
