#include "ckpt/framed_log.hpp"

#include <algorithm>
#include <cstring>
#include <utility>
#include <vector>

#include "ckpt/crc32.hpp"
#include "util/atomic_file.hpp"
#include "util/check.hpp"
#include "util/fs_fault.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define STORMTRACK_LOG_HAVE_FSYNC 1
#endif

namespace stormtrack {

namespace {

void sync_file(std::FILE* f, const char* what) {
  ST_CHECK_MSG(std::fflush(f) == 0, what << " flush failed");
#ifdef STORMTRACK_LOG_HAVE_FSYNC
  ST_CHECK_MSG(::fsync(::fileno(f)) == 0, what << " fsync failed");
#endif
}

}  // namespace

FramedLog::FramedLog(std::filesystem::path path, Format format, bool resume,
                     const ReplayFn& replay)
    : path_(std::move(path)), format_(format) {
  ST_CHECK_MSG(!path_.empty(), format_.what << " path is empty");
  if (path_.has_parent_path())
    std::filesystem::create_directories(path_.parent_path());
  if (resume && std::filesystem::exists(path_))
    open_resume(replay);
  else
    open_fresh();
}

FramedLog::~FramedLog() {
  if (file_ != nullptr) std::fclose(file_);
}

void FramedLog::open_fresh() {
  file_ = std::fopen(path_.string().c_str(), "wb");
  ST_CHECK_MSG(file_ != nullptr,
               "cannot create " << format_.what << " " << path_.string());
  BinaryWriter header;
  header.put_u32(format_.magic);
  header.put_u32(format_.version);
  header.put_u64(format_.fingerprint);
  const std::vector<std::byte>& bytes = header.bytes();
  ST_CHECK_MSG(
      std::fwrite(bytes.data(), 1, bytes.size(), file_) == bytes.size(),
      "cannot write " << format_.what << " header to " << path_.string());
  sync_file(file_, format_.what);
  good_offset_ = bytes.size();
}

void FramedLog::open_resume(const ReplayFn& replay) {
  const std::vector<std::byte> bytes = read_file_bytes(path_);
  constexpr std::size_t kHeaderSize = 4 + 4 + 8;
  if (bytes.size() < kHeaderSize) {
    // The process died before the very first header sync completed; there
    // is nothing to replay.
    ++torn_dropped_;
    open_fresh();
    return;
  }
  BinaryReader r({bytes.data(), bytes.size()});
  const std::uint32_t magic = r.get_u32("log magic");
  ST_CHECK_MSG(magic == format_.magic,
               path_.string() << " is not a " << format_.what
                              << " (bad magic 0x" << std::hex << magic
                              << std::dec << ")");
  const std::uint32_t version = r.get_u32("log version");
  ST_CHECK_MSG(version == format_.version,
               "unsupported " << format_.what << " version " << version
                              << " in " << path_.string());
  const std::uint64_t fingerprint = r.get_u64("log fingerprint");
  ST_CHECK_MSG(fingerprint == format_.fingerprint,
               format_.what << " " << path_.string()
                            << " was written by a different producer "
                               "(fingerprint mismatch) — refusing to resume "
                               "against the wrong state");

  // Replay records until the first torn one: a frame that runs past the
  // end of the file or whose CRC mismatches. Everything from there on is
  // dropped — after a SIGKILL only the final record can be torn, so this
  // loses at most the record that was mid-append.
  std::size_t valid_end = r.offset();
  while (!r.exhausted()) {
    std::span<const std::byte> payload;
    bool intact = false;
    try {
      const std::uint32_t size = r.get_u32("record size");
      payload = r.get_bytes(size, "record payload");
      const std::uint32_t stored_crc = r.get_u32("record CRC");
      intact = stored_crc == crc32(payload);
    } catch (const CheckError&) {
      intact = false;
    }
    if (!intact) {
      ++torn_dropped_;
      break;
    }
    // The record reached the disk whole; if the caller cannot decode it,
    // that is a schema/producer mismatch, not a torn tail — propagate.
    BinaryReader rec(payload);
    replay(rec);
    ST_CHECK_MSG(rec.exhausted(), format_.what
                                      << " record has trailing bytes");
    ++replayed_;
    valid_end = r.offset();
  }
  if (valid_end < bytes.size())
    std::filesystem::resize_file(path_, valid_end);

  file_ = std::fopen(path_.string().c_str(), "ab");
  ST_CHECK_MSG(file_ != nullptr, "cannot reopen " << format_.what << " "
                                                  << path_.string()
                                                  << " for appending");
  good_offset_ = valid_end;
}

bool FramedLog::restore_tail_locked() {
  // A failed append may have left part of a frame on disk (a torn tail);
  // cut back to the last offset known fully synced so the next record
  // starts at a frame boundary.
  std::clearerr(file_);
  (void)std::fflush(file_);
#ifdef STORMTRACK_LOG_HAVE_FSYNC
  if (::ftruncate(::fileno(file_), static_cast<off_t>(good_offset_)) != 0)
    return false;
#else
  return false;
#endif
  if (std::fseek(file_, 0, SEEK_END) != 0) return false;
  dirty_ = false;
  return true;
}

bool FramedLog::try_append(std::span<const std::byte> payload) {
  BinaryWriter framed;
  framed.put_u32(static_cast<std::uint32_t>(payload.size()));
  framed.put_bytes(payload);
  framed.put_u32(crc32(payload));
  const std::vector<std::byte>& bytes = framed.bytes();

  const std::lock_guard<std::mutex> lock(mutex_);
  ST_CHECK_MSG(file_ != nullptr, format_.what << " is not open");
  const auto fail = [&](const std::string& why) {
    dirty_ = true;
    ++write_failures_;
    last_write_error_ = why;
    return false;
  };
  if (dirty_ && !restore_tail_locked()) {
    return fail("cannot truncate torn tail of " + path_.string());
  }

  const FsFaultDecision fault = fs_fault_decide("write", path_);
  if (fault.fail) {
    // Persist the injected short prefix so the on-disk state is exactly
    // what a crash mid-write leaves: a torn record after the last good
    // one. Negative short_write_bytes fails before any byte lands.
    if (fault.short_write_bytes >= 0) {
      const std::size_t n = std::min(
          static_cast<std::size_t>(fault.short_write_bytes), bytes.size());
      (void)std::fwrite(bytes.data(), 1, n, file_);
      (void)std::fflush(file_);
    }
    return fail("cannot append to " + path_.string() + ": " +
                std::strerror(fault.error_no) + " (injected fault)");
  }
  if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
    return fail("cannot append to " + path_.string());
  }
  const FsFaultDecision sync_fault = fs_fault_decide("fsync", path_);
  if (sync_fault.fail) {
    (void)std::fflush(file_);
    return fail("cannot sync " + path_.string() + ": " +
                std::strerror(sync_fault.error_no) + " (injected fault)");
  }
  try {
    sync_file(file_, format_.what);
  } catch (const CheckError& e) {
    return fail(e.what());
  }
  good_offset_ += bytes.size();
  ++appends_;
  return true;
}

void FramedLog::append(std::span<const std::byte> payload) {
  if (!try_append(payload)) {
    ST_CHECK_MSG(false, last_write_error());
  }
}

int FramedLog::write_failures() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return write_failures_;
}

std::string FramedLog::last_write_error() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return last_write_error_;
}

}  // namespace stormtrack
