#pragma once

/// \file tree_delta.hpp
/// Structural diff between two allocation trees, for incremental candidate
/// pricing.
///
/// A leaf's processor rectangle under AllocTree::subdivide is fully
/// determined by its root-to-leaf *path signature*: at every internal node
/// on the path, which side the path takes and the two child weights (the
/// proportional split), in order. Two trees that give a nest the same
/// signature give it the same rectangle on the same grid view — so the move
/// from the committed allocation to the candidate's is an identity move,
/// priced in O(W + H) by the sparse pricer and served from the pipeline's
/// cost cache on repeat. perturbed_leaves() returns the complement: the
/// nests whose subtree actually changed, i.e. the only ones whose pricing
/// does real work. The pipeline reports the stable count as
/// "pipeline.stable_subtrees".

#include <vector>

#include "tree/alloc_tree.hpp"

namespace stormtrack {

/// Nest ids occupying \p after whose root-to-leaf path signature differs
/// from their signature in \p before (nests absent from \p before count as
/// perturbed). Sorted ascending. Nests only in \p before are not reported —
/// they have no rectangle to price in \p after.
[[nodiscard]] std::vector<NestId> perturbed_leaves(const AllocTree& before,
                                                   const AllocTree& after);

}  // namespace stormtrack
