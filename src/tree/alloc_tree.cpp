#include "tree/alloc_tree.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <set>
#include <sstream>

#include "util/check.hpp"

namespace stormtrack {

// ------------------------------------------------------------ construction

int AllocTree::add_node(Node n) {
  nodes_.push_back(n);
  return static_cast<int>(nodes_.size()) - 1;
}

AllocTree AllocTree::huffman(std::span<const NestWeight> nests) {
  AllocTree t;
  if (nests.empty()) return t;

  // Queue entry: (weight, is_leaf, seq) with internal nodes winning weight
  // ties (see header for why this reproduces the paper's worked example).
  struct Entry {
    double weight;
    bool is_leaf;
    int seq;
    int index;
  };
  auto cmp = [](const Entry& a, const Entry& b) {
    if (a.weight != b.weight) return a.weight > b.weight;  // min-heap
    if (a.is_leaf != b.is_leaf) return a.is_leaf;          // internal first
    return a.seq > b.seq;                                  // older first
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> pq(cmp);

  int seq = 0;
  std::set<NestId> ids;
  for (const NestWeight& nw : nests) {
    ST_CHECK_MSG(nw.weight > 0.0,
                 "nest " << nw.nest << " needs positive weight, got "
                         << nw.weight);
    ST_CHECK_MSG(nw.nest != kNoNest, "nest id must be valid");
    ST_CHECK_MSG(ids.insert(nw.nest).second,
                 "duplicate nest id " << nw.nest);
    Node n;
    n.weight = nw.weight;
    n.nest = nw.nest;
    const int idx = t.add_node(n);
    pq.push(Entry{nw.weight, true, seq++, idx});
  }

  while (pq.size() > 1) {
    const Entry a = pq.top();
    pq.pop();
    const Entry b = pq.top();
    pq.pop();
    Node parent;
    parent.weight = a.weight + b.weight;
    parent.left = a.index;   // first-popped child is left/top
    parent.right = b.index;
    const int pidx = t.add_node(parent);
    t.nodes_[static_cast<std::size_t>(a.index)].parent = pidx;
    t.nodes_[static_cast<std::size_t>(b.index)].parent = pidx;
    pq.push(Entry{parent.weight, false, seq++, pidx});
  }
  t.root_ = pq.top().index;
  t.validate();
  return t;
}

// ----------------------------------------------------------------- queries

int AllocTree::num_nests() const {
  int n = 0;
  for (const Node& nd : nodes_)
    if (nd.alive && nd.is_leaf() && nd.nest != kNoNest && !nd.free_slot) ++n;
  return n;
}

std::vector<NestWeight> AllocTree::leaves() const {
  std::vector<NestWeight> out;
  for (const Node& nd : nodes_)
    if (nd.alive && nd.is_leaf() && nd.nest != kNoNest && !nd.free_slot)
      out.push_back(NestWeight{nd.nest, nd.weight});
  std::sort(out.begin(), out.end(),
            [](const NestWeight& a, const NestWeight& b) {
              return a.nest < b.nest;
            });
  return out;
}

bool AllocTree::has_free_slots() const {
  for (const Node& nd : nodes_)
    if (nd.alive && nd.free_slot) return true;
  return false;
}

double AllocTree::total_weight() const {
  if (root_ < 0) return 0.0;
  return nodes_[static_cast<std::size_t>(root_)].weight;
}

const AllocTree::Node& AllocTree::node(int index) const {
  ST_CHECK_MSG(index >= 0 && index < static_cast<int>(nodes_.size()),
               "node index " << index << " out of range");
  const Node& n = nodes_[static_cast<std::size_t>(index)];
  ST_CHECK_MSG(n.alive, "node " << index << " is dead");
  return n;
}

// ----------------------------------------------------------------- weights

double AllocTree::recompute_weights_rec(int idx) {
  Node& n = nodes_[static_cast<std::size_t>(idx)];
  if (n.is_leaf()) {
    if (n.free_slot) n.weight = 0.0;
    return n.weight;
  }
  n.weight = recompute_weights_rec(n.left) + recompute_weights_rec(n.right);
  return n.weight;
}

void AllocTree::recompute_weights() {
  if (root_ >= 0) recompute_weights_rec(root_);
}

// -------------------------------------------------------------- subdivide

int AllocTree::count_leaves_rec(int idx) const {
  const Node& n = nodes_[static_cast<std::size_t>(idx)];
  if (n.is_leaf()) return 1;
  return count_leaves_rec(n.left) + count_leaves_rec(n.right);
}

void AllocTree::subdivide_rec(int idx, const Rect& rect,
                              std::map<NestId, Rect>& out) const {
  const Node& n = nodes_[static_cast<std::size_t>(idx)];
  if (n.is_leaf()) {
    ST_CHECK_MSG(!n.free_slot, "cannot subdivide a tree with free slots");
    out.emplace(n.nest, rect);
    return;
  }

  const Node& l = nodes_[static_cast<std::size_t>(n.left)];
  const Node& r = nodes_[static_cast<std::size_t>(n.right)];
  const double wsum = l.weight + r.weight;
  ST_CHECK_MSG(wsum > 0.0, "internal node with non-positive weight sum");
  const double share = l.weight / wsum;

  const int nl = count_leaves_rec(n.left);
  const int nr = count_leaves_rec(n.right);

  // Split along the longer dimension; ties split the width (the paper's
  // 32×32 root splits into left/right columns).
  const bool split_width = rect.w >= rect.h;
  const int dim = split_width ? rect.w : rect.h;
  const int other = split_width ? rect.h : rect.w;

  int cut = static_cast<int>(std::lround(share * dim));
  // Every leaf needs at least one processor: clamp the cut so both halves
  // can host their leaf counts.
  const int min_cut = (nl + other - 1) / other;
  const int max_cut = dim - (nr + other - 1) / other;
  ST_CHECK_MSG(min_cut <= max_cut,
               "rectangle " << rect << " too small for " << (nl + nr)
                            << " leaves");
  cut = std::clamp(cut, min_cut, max_cut);

  Rect first, second;
  if (split_width) {
    first = Rect{rect.x, rect.y, cut, rect.h};
    second = Rect{rect.x + cut, rect.y, rect.w - cut, rect.h};
  } else {
    first = Rect{rect.x, rect.y, rect.w, cut};
    second = Rect{rect.x, rect.y + cut, rect.w, rect.h - cut};
  }
  subdivide_rec(n.left, first, out);
  subdivide_rec(n.right, second, out);
}

std::map<NestId, Rect> AllocTree::subdivide(const Rect& grid) const {
  std::map<NestId, Rect> out;
  if (root_ < 0) return out;
  ST_CHECK_MSG(!grid.empty(), "cannot subdivide an empty grid");
  ST_CHECK_MSG(grid.area() >= num_nests(),
               "grid " << grid << " smaller than nest count " << num_nests());
  subdivide_rec(root_, grid, out);
  return out;
}

// ---------------------------------------------------------------- validate

AllocTree AllocTree::from_raw(std::vector<Node> nodes, int root) {
  const int n = static_cast<int>(nodes.size());
  ST_CHECK_MSG(root >= -1 && root < n,
               "tree root index " << root << " outside " << n << " nodes");
  ST_CHECK_MSG(root >= 0 || n == 0,
               "rootless tree must have no nodes, got " << n);
  const auto in_range = [n](int idx) { return idx >= -1 && idx < n; };
  for (int i = 0; i < n; ++i) {
    const Node& node = nodes[static_cast<std::size_t>(i)];
    ST_CHECK_MSG(in_range(node.parent) && in_range(node.left) &&
                     in_range(node.right),
                 "tree node " << i << " has an out-of-range link");
  }
  AllocTree tree;
  tree.nodes_ = std::move(nodes);
  tree.root_ = root;
  tree.validate();
  return tree;
}

void AllocTree::validate() const {
  if (root_ < 0) return;
  ST_CHECK(root_ < static_cast<int>(nodes_.size()));
  ST_CHECK(nodes_[static_cast<std::size_t>(root_)].alive);
  ST_CHECK(nodes_[static_cast<std::size_t>(root_)].parent == -1);

  std::set<NestId> ids;
  // Walk from the root so abandoned slots are ignored.
  std::vector<int> stack{root_};
  int visited = 0;
  while (!stack.empty()) {
    const int idx = stack.back();
    stack.pop_back();
    ++visited;
    const Node& n = nodes_[static_cast<std::size_t>(idx)];
    ST_CHECK_MSG(n.alive, "dead node reachable from root");
    ST_CHECK_MSG((n.left < 0) == (n.right < 0),
                 "internal node must have exactly two children");
    if (n.is_leaf()) {
      if (!n.free_slot) {
        ST_CHECK_MSG(n.nest != kNoNest, "occupied leaf without nest id");
        ST_CHECK_MSG(ids.insert(n.nest).second,
                     "duplicate nest id " << n.nest << " in tree");
        ST_CHECK_MSG(n.weight > 0.0, "occupied leaf with weight "
                                         << n.weight);
      }
    } else {
      const Node& l = nodes_[static_cast<std::size_t>(n.left)];
      const Node& r = nodes_[static_cast<std::size_t>(n.right)];
      ST_CHECK_MSG(l.parent == idx && r.parent == idx,
                   "parent/child link mismatch at node " << idx);
      const double sum = l.weight + r.weight;
      ST_CHECK_MSG(std::abs(n.weight - sum) <= 1e-9 * std::max(1.0, sum),
                   "internal weight " << n.weight << " != child sum " << sum);
      stack.push_back(n.left);
      stack.push_back(n.right);
    }
  }
  ST_CHECK_MSG(visited >= 1, "tree traversal visited no nodes");
}

// --------------------------------------------------------------------- dot

std::string AllocTree::to_dot() const {
  std::ostringstream os;
  os << "digraph alloctree {\n  node [shape=circle];\n";
  if (root_ >= 0) {
    std::vector<int> stack{root_};
    while (!stack.empty()) {
      const int idx = stack.back();
      stack.pop_back();
      const Node& n = nodes_[static_cast<std::size_t>(idx)];
      os << "  n" << idx << " [label=\"";
      if (n.is_leaf() && !n.free_slot)
        os << "nest " << n.nest << "\\n" << n.weight;
      else if (n.free_slot)
        os << "free";
      else
        os << n.weight;
      os << "\"";
      if (n.free_slot) os << ", style=dashed";
      os << "];\n";
      if (!n.is_leaf()) {
        os << "  n" << idx << " -> n" << n.left << ";\n";
        os << "  n" << idx << " -> n" << n.right << ";\n";
        stack.push_back(n.left);
        stack.push_back(n.right);
      }
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace stormtrack
