#include "tree/tree_delta.hpp"

#include <algorithm>
#include <map>

namespace stormtrack {

namespace {

/// One internal node on a root-to-leaf path: which child the path takes and
/// both child weights — exactly the data subdivide() consumes there.
struct PathStep {
  bool took_left = false;
  double left_weight = 0.0;
  double right_weight = 0.0;
  friend bool operator==(const PathStep&, const PathStep&) = default;
};

using PathSignature = std::vector<PathStep>;

void collect_signatures(const AllocTree& tree, int idx, PathSignature& path,
                        std::map<NestId, PathSignature>& out) {
  const AllocTree::Node& n = tree.node(idx);
  if (n.is_leaf()) {
    if (n.nest != kNoNest) out.emplace(n.nest, path);
    return;
  }
  const double lw = tree.node(n.left).weight;
  const double rw = tree.node(n.right).weight;
  path.push_back(PathStep{true, lw, rw});
  collect_signatures(tree, n.left, path, out);
  path.back().took_left = false;
  collect_signatures(tree, n.right, path, out);
  path.pop_back();
}

std::map<NestId, PathSignature> signatures_of(const AllocTree& tree) {
  std::map<NestId, PathSignature> out;
  if (!tree.empty()) {
    PathSignature path;
    collect_signatures(tree, tree.root(), path, out);
  }
  return out;
}

}  // namespace

std::vector<NestId> perturbed_leaves(const AllocTree& before,
                                     const AllocTree& after) {
  const std::map<NestId, PathSignature> old_sig = signatures_of(before);
  const std::map<NestId, PathSignature> new_sig = signatures_of(after);
  std::vector<NestId> perturbed;
  for (const auto& [nest, sig] : new_sig) {
    const auto it = old_sig.find(nest);
    if (it == old_sig.end() || it->second != sig) perturbed.push_back(nest);
  }
  return perturbed;  // std::map iteration is already ascending
}

}  // namespace stormtrack
