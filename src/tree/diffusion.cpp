/// \file diffusion.cpp
/// Algorithm 3 — tree-based hierarchical diffusion (§IV-B).

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "tree/alloc_tree.hpp"
#include "util/check.hpp"

namespace stormtrack {

/// Friend of AllocTree: mutating helpers for the diffusion reorganization.
class DiffusionOps {
 public:
  explicit DiffusionOps(AllocTree& t) : t_(t) {}

  AllocTree::Node& node(int idx) {
    return t_.nodes_[static_cast<std::size_t>(idx)];
  }

  int sibling_of(int idx) {
    const int p = node(idx).parent;
    if (p < 0) return -1;
    const AllocTree::Node& pn = node(p);
    return pn.left == idx ? pn.right : pn.left;
  }

  /// Find the live leaf carrying \p nest; -1 when absent.
  int find_leaf(NestId nest) {
    for (std::size_t i = 0; i < t_.nodes_.size(); ++i) {
      const AllocTree::Node& n = t_.nodes_[i];
      if (n.alive && n.is_leaf() && !n.free_slot && n.nest == nest)
        return static_cast<int>(i);
    }
    return -1;
  }

  /// Mark the leaf of \p nest as a free slot.
  void mark_free(NestId nest) {
    const int idx = find_leaf(nest);
    ST_CHECK_MSG(idx >= 0, "deleted nest " << nest << " not in tree");
    AllocTree::Node& n = node(idx);
    n.free_slot = true;
    n.nest = kNoNest;
    n.weight = 0.0;
  }

  /// Merge adjacent free rectangles: an internal node whose children are
  /// both free leaves becomes a single free leaf (Fig. 8(a): deleted
  /// siblings 1 and 2 combine into one empty node). Runs to fixpoint.
  void collapse_free_siblings() {
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t i = 0; i < t_.nodes_.size(); ++i) {
        AllocTree::Node& n = t_.nodes_[i];
        if (!n.alive || n.is_leaf()) continue;
        AllocTree::Node& l = node(n.left);
        AllocTree::Node& r = node(n.right);
        if (l.is_leaf() && l.free_slot && r.is_leaf() && r.free_slot) {
          l.alive = false;
          r.alive = false;
          n.left = -1;
          n.right = -1;
          n.free_slot = true;
          n.nest = kNoNest;
          n.weight = 0.0;
          changed = true;
        }
      }
    }
  }

  /// All live free-slot leaves.
  std::vector<int> free_slots() {
    std::vector<int> out;
    for (std::size_t i = 0; i < t_.nodes_.size(); ++i) {
      const AllocTree::Node& n = t_.nodes_[i];
      if (n.alive && n.is_leaf() && n.free_slot)
        out.push_back(static_cast<int>(i));
    }
    return out;
  }

  /// Occupy free leaf \p idx with a new nest.
  void occupy(int idx, const NestWeight& nw) {
    AllocTree::Node& n = node(idx);
    ST_CHECK(n.is_leaf() && n.free_slot);
    n.free_slot = false;
    n.nest = nw.nest;
    n.weight = nw.weight;
    t_.recompute_weights();
  }

  /// Split occupied leaf \p idx into an internal node with the old leaf and
  /// a new leaf for \p nw as children (the §IV-B no-deletion insertion rule,
  /// Fig. 6: the new node lands beside the existing node of closest weight).
  /// The heavier of the pair goes first (left/top) so the wider share hugs
  /// the rectangle's long side, mirroring Huffman child ordering.
  void split_leaf(int idx, const NestWeight& nw) {
    AllocTree::Node& old_leaf = node(idx);
    ST_CHECK(old_leaf.is_leaf() && !old_leaf.free_slot);

    AllocTree::Node moved = old_leaf;  // copy of the existing leaf
    AllocTree::Node fresh;
    fresh.nest = nw.nest;
    fresh.weight = nw.weight;

    const int moved_idx = t_.add_node(moved);
    const int fresh_idx = t_.add_node(fresh);
    // Re-acquire: add_node may reallocate the vector.
    AllocTree::Node& parent = node(idx);
    parent.nest = kNoNest;
    parent.free_slot = false;
    if (node(moved_idx).weight >= node(fresh_idx).weight) {
      parent.left = moved_idx;
      parent.right = fresh_idx;
    } else {
      parent.left = fresh_idx;
      parent.right = moved_idx;
    }
    node(moved_idx).parent = idx;
    node(fresh_idx).parent = idx;
    t_.recompute_weights();
  }

  /// Attach a Huffman subtree of \p nests at free leaf \p idx
  /// (Algorithm 3 lines 18–19).
  void attach_huffman(int idx, std::span<const NestWeight> nests) {
    ST_CHECK(!nests.empty());
    if (nests.size() == 1) {
      occupy(idx, nests.front());
      return;
    }
    const AllocTree sub = AllocTree::huffman(nests);
    // Graft: copy sub's nodes into our vector, remapping indices.
    std::vector<int> remap(sub.nodes_.size(), -1);
    for (std::size_t i = 0; i < sub.nodes_.size(); ++i) {
      ST_CHECK(sub.nodes_[i].alive);
      remap[i] = t_.add_node(sub.nodes_[i]);
    }
    for (std::size_t i = 0; i < sub.nodes_.size(); ++i) {
      AllocTree::Node& n = node(remap[i]);
      if (n.parent >= 0) n.parent = remap[static_cast<std::size_t>(n.parent)];
      if (n.left >= 0) n.left = remap[static_cast<std::size_t>(n.left)];
      if (n.right >= 0) n.right = remap[static_cast<std::size_t>(n.right)];
    }
    const int sub_root = remap[static_cast<std::size_t>(sub.root_)];
    // Replace the free leaf with the grafted root.
    AllocTree::Node& slot = node(idx);
    const int parent = slot.parent;
    slot.alive = false;
    if (parent < 0) {
      t_.root_ = sub_root;
      node(sub_root).parent = -1;
    } else {
      AllocTree::Node& pn = node(parent);
      (pn.left == idx ? pn.left : pn.right) = sub_root;
      node(sub_root).parent = parent;
    }
    t_.recompute_weights();
  }

  /// Remove free leaf \p idx: its sibling subtree takes the parent's place
  /// (Algorithm 3 line 21).
  void splice_out(int idx) {
    AllocTree::Node& n = node(idx);
    ST_CHECK(n.is_leaf() && n.free_slot);
    const int p = n.parent;
    if (p < 0) {
      // Free leaf is the whole tree: the tree becomes empty.
      n.alive = false;
      t_.root_ = -1;
      return;
    }
    const int sib = sibling_of(idx);
    const int g = node(p).parent;
    n.alive = false;
    node(p).alive = false;
    node(sib).parent = g;
    if (g < 0) {
      t_.root_ = sib;
    } else {
      AllocTree::Node& gn = node(g);
      (gn.left == p ? gn.left : gn.right) = sib;
    }
    t_.recompute_weights();
  }

 private:
  AllocTree& t_;
};

namespace {

void validate_request(const AllocTree& old_tree, const ReconfigRequest& req) {
  std::set<NestId> old_ids;
  for (const NestWeight& nw : old_tree.leaves()) old_ids.insert(nw.nest);

  std::set<NestId> mentioned;
  for (NestId d : req.deleted) {
    ST_CHECK_MSG(old_ids.count(d), "deleted nest " << d << " not in tree");
    ST_CHECK_MSG(mentioned.insert(d).second, "nest " << d
                                                     << " mentioned twice");
  }
  for (const NestWeight& r : req.retained) {
    ST_CHECK_MSG(old_ids.count(r.nest),
                 "retained nest " << r.nest << " not in tree");
    ST_CHECK_MSG(r.weight > 0.0, "retained nest " << r.nest
                                                  << " needs positive weight");
    ST_CHECK_MSG(mentioned.insert(r.nest).second,
                 "nest " << r.nest << " mentioned twice");
  }
  ST_CHECK_MSG(mentioned.size() == old_ids.size(),
               "every existing nest must be either deleted or retained");
  for (const NestWeight& i : req.inserted) {
    ST_CHECK_MSG(!old_ids.count(i.nest),
                 "inserted nest " << i.nest << " already in tree");
    ST_CHECK_MSG(i.weight > 0.0, "inserted nest " << i.nest
                                                  << " needs positive weight");
    ST_CHECK_MSG(mentioned.insert(i.nest).second,
                 "nest " << i.nest << " mentioned twice");
  }
}

}  // namespace

AllocTree AllocTree::diffuse(const ReconfigRequest& req) const {
  validate_request(*this, req);

  // Degenerate old states fall back to scratch construction: there is no
  // existing allocation to preserve.
  if (empty()) {
    std::vector<NestWeight> all(req.retained.begin(), req.retained.end());
    all.insert(all.end(), req.inserted.begin(), req.inserted.end());
    return huffman(all);
  }

  AllocTree t = *this;
  DiffusionOps ops(t);

  // 1. Mark deleted leaves free and merge adjacent free rectangles.
  for (NestId d : req.deleted) ops.mark_free(d);
  ops.collapse_free_siblings();

  // 2. New weights for retained nests; internal sums follow.
  for (const NestWeight& r : req.retained) {
    const int idx = ops.find_leaf(r.nest);
    ST_CHECK(idx >= 0);
    ops.node(idx).weight = r.weight;
  }
  t.recompute_weights();

  // 3. Insert new nests into free positions while more than one slot
  //    remains, each at the slot whose sibling's weight is closest to the
  //    new weight (Algorithm 3 line 13).
  std::vector<NestWeight> pending(req.inserted.begin(), req.inserted.end());
  std::vector<int> slots = ops.free_slots();
  std::size_t next = 0;
  while (next < pending.size() && slots.size() > 1) {
    const NestWeight& nw = pending[next];
    int best_slot = -1;
    double best_d = 0.0;
    for (int s : slots) {
      const int sib = ops.sibling_of(s);
      // A root-level free slot has no sibling; treat its distance as
      // infinite so positional matching prefers proper slots.
      const double d =
          sib < 0 ? std::numeric_limits<double>::infinity()
                  : std::abs(ops.node(sib).weight - nw.weight);
      if (best_slot < 0 || d < best_d ||
          (d == best_d && s < best_slot)) {
        best_slot = s;
        best_d = d;
      }
    }
    ops.occupy(best_slot, nw);
    slots.erase(std::find(slots.begin(), slots.end(), best_slot));
    ++next;
  }

  const std::span<const NestWeight> rest{pending.data() + next,
                                         pending.size() - next};
  if (!rest.empty()) {
    if (!slots.empty()) {
      // 4a. Surplus insertions: Huffman subtree rooted at the last free slot
      //     (Algorithm 3 lines 18–19).
      ops.attach_huffman(slots.front(), rest);
      slots.erase(slots.begin());
    } else {
      // 4b. No free slots (pure insertion): place each new nest beside the
      //     occupied leaf of closest weight (§IV-B, Fig. 6).
      for (const NestWeight& nw : rest) {
        int best_leaf = -1;
        double best_d = 0.0;
        for (const NestWeight& leaf : t.leaves()) {
          const double d = std::abs(leaf.weight - nw.weight);
          const int idx = ops.find_leaf(leaf.nest);
          if (best_leaf < 0 || d < best_d) {
            best_leaf = idx;
            best_d = d;
          }
        }
        ST_CHECK_MSG(best_leaf >= 0,
                     "insertion into a tree with no occupied leaves");
        ops.split_leaf(best_leaf, nw);
      }
    }
  }

  // 4c. Surplus free slots: splice them out (Algorithm 3 line 21).
  for (int s : slots) ops.splice_out(s);

  t.recompute_weights();
  t.validate();
  ST_CHECK(!t.has_free_slots());
  return t;
}

}  // namespace stormtrack
