#pragma once

/// \file alloc_tree.hpp
/// Weighted binary allocation trees (§IV of the paper).
///
/// Leaves carry nests with weights equal to the nests' predicted execution-
/// time ratios; internal nodes carry the sum of their subtree's weights. A
/// tree induces a partition of the 2D processor grid: each node owns a
/// rectangle, recursively split between its two children along the longer
/// dimension, proportionally to their weights (square-like partitions
/// minimize nest execution time, [Malakar et al., SC'12]).
///
/// Two construction paths:
///  * AllocTree::huffman — the partition-from-scratch tree (§IV-A);
///  * AllocTree::diffuse — tree-based hierarchical diffusion (§IV-B,
///    Algorithm 3): reorganize the existing tree in place of rebuilding,
///    keeping retained nests' positions (and hence their processor
///    rectangles) as intact as possible.
///
/// Trees are small (one leaf per nest, ≤ ~10 in the paper), so nodes live in
/// a flat vector with index links; dead indices are simply abandoned.

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "util/rect.hpp"

namespace stormtrack {

/// Identifier of a nested simulation domain.
using NestId = int;
inline constexpr NestId kNoNest = -1;

/// (nest, weight) pair used for tree construction; weights are predicted
/// execution-time ratios (any positive scale — subdivision uses ratios).
struct NestWeight {
  NestId nest = kNoNest;
  double weight = 0.0;
};

/// Reconfiguration of the active nest set at an adaptation point.
struct ReconfigRequest {
  std::vector<NestId> deleted;        ///< Nests gone since the last point.
  std::vector<NestWeight> retained;   ///< Surviving nests with new weights.
  std::vector<NestWeight> inserted;   ///< Newly formed nests.
};

/// Weighted binary tree over nests; see file comment.
class AllocTree {
 public:
  /// Tree node. Exposed read-only through node(); mutation goes through
  /// AllocTree's operations so invariants hold.
  struct Node {
    double weight = 0.0;
    int parent = -1;
    int left = -1;       ///< First child: gets the left/top sub-rectangle.
    int right = -1;
    NestId nest = kNoNest;  ///< Valid for occupied leaves.
    bool free_slot = false; ///< Leaf marking a deleted nest's position.
    bool alive = true;      ///< False for abandoned vector slots.

    [[nodiscard]] bool is_leaf() const { return left < 0 && right < 0; }
  };

  /// Empty tree (no nests).
  AllocTree() = default;

  /// Build the Huffman tree of \p nests (partition-from-scratch, §IV-A).
  ///
  /// Ties are broken deterministically: (weight, internal-before-leaf,
  /// creation sequence). With the paper's example weights
  /// 0.1:0.1:0.2:0.25:0.35 this reproduces the tree of Fig. 2(a) and, after
  /// subdivision of a 32×32 grid, Table I exactly.
  [[nodiscard]] static AllocTree huffman(std::span<const NestWeight> nests);

  /// Algorithm 3 — tree-based hierarchical diffusion. Returns the
  /// reorganized tree; *this is unchanged. Steps:
  ///  1. mark deleted nests' leaves free; collapse sibling free leaves;
  ///  2. update retained weights, recompute internal sums;
  ///  3. insert each new nest at the free position whose *sibling's* weight
  ///     is closest to the new weight (keeps rectangles square-like) while
  ///     more than one free slot remains;
  ///  4. surplus new nests: Huffman subtree rooted at the last free slot;
  ///     surplus free slots: spliced out of the tree.
  [[nodiscard]] AllocTree diffuse(const ReconfigRequest& req) const;

  /// Number of occupied (nest-carrying) leaves.
  [[nodiscard]] int num_nests() const;
  /// Occupied leaves as (nest, weight), ascending by nest id.
  [[nodiscard]] std::vector<NestWeight> leaves() const;
  /// True when the tree holds no nodes at all.
  [[nodiscard]] bool empty() const { return root_ < 0; }
  /// True when any free slot remains (only during diffusion's intermediate
  /// states; public for tests).
  [[nodiscard]] bool has_free_slots() const;

  /// Partition \p grid among the occupied leaves: recursive proportional
  /// split along the longer dimension (ties split the width), nearest-
  /// integer rounding clamped so every leaf can still receive at least one
  /// processor. Requires grid.area() >= num_nests() and no free slots.
  [[nodiscard]] std::map<NestId, Rect> subdivide(const Rect& grid) const;

  /// Root weight (sum of leaf weights); 0 for the empty tree.
  [[nodiscard]] double total_weight() const;

  /// Structural invariants: parent/child link symmetry, internal weights
  /// equal child sums, internal nodes have exactly two children, nest ids
  /// unique. Throws CheckError on violation.
  void validate() const;

  /// Graphviz rendering (used in docs and for debugging).
  [[nodiscard]] std::string to_dot() const;

  /// Read-only node access for tests/inspection.
  [[nodiscard]] const Node& node(int index) const;
  [[nodiscard]] int root() const { return root_; }

  /// Verbatim node storage, for checkpoint serialization: the full node
  /// vector *including* abandoned slots, so a restored tree reproduces the
  /// exact indices — and hence the exact behavior of future diffuse()
  /// calls — of the original.
  [[nodiscard]] const std::vector<Node>& raw_nodes() const { return nodes_; }

  /// Rebuild a tree from raw_nodes()/root() output. Bounds-checks every
  /// parent/child link before wiring the tree together, then runs
  /// validate(); throws CheckError on corrupt input.
  [[nodiscard]] static AllocTree from_raw(std::vector<Node> nodes, int root);

 private:
  friend class DiffusionOps;  // implementation helper in diffusion.cpp

  int add_node(Node n);
  void recompute_weights();
  double recompute_weights_rec(int idx);
  void subdivide_rec(int idx, const Rect& rect,
                     std::map<NestId, Rect>& out) const;
  int count_leaves_rec(int idx) const;

  std::vector<Node> nodes_;
  int root_ = -1;
};

}  // namespace stormtrack
