file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_overlap.dir/bench_fig11_overlap.cpp.o"
  "CMakeFiles/bench_fig11_overlap.dir/bench_fig11_overlap.cpp.o.d"
  "bench_fig11_overlap"
  "bench_fig11_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
