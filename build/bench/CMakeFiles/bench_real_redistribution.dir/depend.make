# Empty dependencies file for bench_real_redistribution.
# This may be replaced when dependencies are built.
