file(REMOVE_RECURSE
  "CMakeFiles/bench_real_redistribution.dir/bench_real_redistribution.cpp.o"
  "CMakeFiles/bench_real_redistribution.dir/bench_real_redistribution.cpp.o.d"
  "bench_real_redistribution"
  "bench_real_redistribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_real_redistribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
