file(REMOVE_RECURSE
  "CMakeFiles/bench_processor_scaling.dir/bench_processor_scaling.cpp.o"
  "CMakeFiles/bench_processor_scaling.dir/bench_processor_scaling.cpp.o.d"
  "bench_processor_scaling"
  "bench_processor_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_processor_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
