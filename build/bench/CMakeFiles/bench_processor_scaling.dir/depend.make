# Empty dependencies file for bench_processor_scaling.
# This may be replaced when dependencies are built.
