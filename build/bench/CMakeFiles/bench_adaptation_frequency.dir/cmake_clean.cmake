file(REMOVE_RECURSE
  "CMakeFiles/bench_adaptation_frequency.dir/bench_adaptation_frequency.cpp.o"
  "CMakeFiles/bench_adaptation_frequency.dir/bench_adaptation_frequency.cpp.o.d"
  "bench_adaptation_frequency"
  "bench_adaptation_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adaptation_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
