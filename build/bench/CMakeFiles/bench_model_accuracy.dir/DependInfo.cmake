
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_model_accuracy.cpp" "bench/CMakeFiles/bench_model_accuracy.dir/bench_model_accuracy.cpp.o" "gcc" "bench/CMakeFiles/bench_model_accuracy.dir/bench_model_accuracy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/stormtrack_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pda/CMakeFiles/stormtrack_pda.dir/DependInfo.cmake"
  "/root/repo/build/src/wsim/CMakeFiles/stormtrack_wsim.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/stormtrack_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/redist/CMakeFiles/stormtrack_redist.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/stormtrack_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/stormtrack_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/stormtrack_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/stormtrack_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stormtrack_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
