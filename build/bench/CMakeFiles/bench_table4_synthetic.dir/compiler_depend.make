# Empty compiler generated dependencies file for bench_table4_synthetic.
# This may be replaced when dependencies are built.
