file(REMOVE_RECURSE
  "CMakeFiles/bench_pda_scaling.dir/bench_pda_scaling.cpp.o"
  "CMakeFiles/bench_pda_scaling.dir/bench_pda_scaling.cpp.o.d"
  "bench_pda_scaling"
  "bench_pda_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pda_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
