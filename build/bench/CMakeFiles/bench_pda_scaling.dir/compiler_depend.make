# Empty compiler generated dependencies file for bench_pda_scaling.
# This may be replaced when dependencies are built.
