# Empty compiler generated dependencies file for bench_sfc_comparison.
# This may be replaced when dependencies are built.
