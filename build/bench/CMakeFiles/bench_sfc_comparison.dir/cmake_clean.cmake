file(REMOVE_RECURSE
  "CMakeFiles/bench_sfc_comparison.dir/bench_sfc_comparison.cpp.o"
  "CMakeFiles/bench_sfc_comparison.dir/bench_sfc_comparison.cpp.o.d"
  "bench_sfc_comparison"
  "bench_sfc_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sfc_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
