file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_hopbytes.dir/bench_fig10_hopbytes.cpp.o"
  "CMakeFiles/bench_fig10_hopbytes.dir/bench_fig10_hopbytes.cpp.o.d"
  "bench_fig10_hopbytes"
  "bench_fig10_hopbytes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_hopbytes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
