# Empty dependencies file for bench_fig10_hopbytes.
# This may be replaced when dependencies are built.
