# Empty compiler generated dependencies file for bench_table1_allocation.
# This may be replaced when dependencies are built.
