file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_allocation.dir/bench_table1_allocation.cpp.o"
  "CMakeFiles/bench_table1_allocation.dir/bench_table1_allocation.cpp.o.d"
  "bench_table1_allocation"
  "bench_table1_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
