file(REMOVE_RECURSE
  "CMakeFiles/stormtrack_perfmodel.dir/delaunay.cpp.o"
  "CMakeFiles/stormtrack_perfmodel.dir/delaunay.cpp.o.d"
  "CMakeFiles/stormtrack_perfmodel.dir/exec_model.cpp.o"
  "CMakeFiles/stormtrack_perfmodel.dir/exec_model.cpp.o.d"
  "CMakeFiles/stormtrack_perfmodel.dir/ground_truth.cpp.o"
  "CMakeFiles/stormtrack_perfmodel.dir/ground_truth.cpp.o.d"
  "libstormtrack_perfmodel.a"
  "libstormtrack_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stormtrack_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
