# Empty compiler generated dependencies file for stormtrack_perfmodel.
# This may be replaced when dependencies are built.
