file(REMOVE_RECURSE
  "libstormtrack_perfmodel.a"
)
