file(REMOVE_RECURSE
  "libstormtrack_alloc.a"
)
