file(REMOVE_RECURSE
  "CMakeFiles/stormtrack_alloc.dir/allocation.cpp.o"
  "CMakeFiles/stormtrack_alloc.dir/allocation.cpp.o.d"
  "CMakeFiles/stormtrack_alloc.dir/partitioner.cpp.o"
  "CMakeFiles/stormtrack_alloc.dir/partitioner.cpp.o.d"
  "CMakeFiles/stormtrack_alloc.dir/sfc_allocation.cpp.o"
  "CMakeFiles/stormtrack_alloc.dir/sfc_allocation.cpp.o.d"
  "libstormtrack_alloc.a"
  "libstormtrack_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stormtrack_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
