# Empty compiler generated dependencies file for stormtrack_alloc.
# This may be replaced when dependencies are built.
