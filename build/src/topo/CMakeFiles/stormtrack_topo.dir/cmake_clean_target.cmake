file(REMOVE_RECURSE
  "libstormtrack_topo.a"
)
