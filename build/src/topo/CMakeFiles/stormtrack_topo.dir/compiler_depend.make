# Empty compiler generated dependencies file for stormtrack_topo.
# This may be replaced when dependencies are built.
