file(REMOVE_RECURSE
  "CMakeFiles/stormtrack_topo.dir/mapping.cpp.o"
  "CMakeFiles/stormtrack_topo.dir/mapping.cpp.o.d"
  "CMakeFiles/stormtrack_topo.dir/topology.cpp.o"
  "CMakeFiles/stormtrack_topo.dir/topology.cpp.o.d"
  "libstormtrack_topo.a"
  "libstormtrack_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stormtrack_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
