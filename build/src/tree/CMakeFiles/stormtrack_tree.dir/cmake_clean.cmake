file(REMOVE_RECURSE
  "CMakeFiles/stormtrack_tree.dir/alloc_tree.cpp.o"
  "CMakeFiles/stormtrack_tree.dir/alloc_tree.cpp.o.d"
  "CMakeFiles/stormtrack_tree.dir/diffusion.cpp.o"
  "CMakeFiles/stormtrack_tree.dir/diffusion.cpp.o.d"
  "libstormtrack_tree.a"
  "libstormtrack_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stormtrack_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
