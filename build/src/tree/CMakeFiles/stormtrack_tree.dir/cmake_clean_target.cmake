file(REMOVE_RECURSE
  "libstormtrack_tree.a"
)
