# Empty compiler generated dependencies file for stormtrack_tree.
# This may be replaced when dependencies are built.
