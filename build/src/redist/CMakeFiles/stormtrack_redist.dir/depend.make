# Empty dependencies file for stormtrack_redist.
# This may be replaced when dependencies are built.
