file(REMOVE_RECURSE
  "CMakeFiles/stormtrack_redist.dir/block_decomp.cpp.o"
  "CMakeFiles/stormtrack_redist.dir/block_decomp.cpp.o.d"
  "CMakeFiles/stormtrack_redist.dir/redistributor.cpp.o"
  "CMakeFiles/stormtrack_redist.dir/redistributor.cpp.o.d"
  "libstormtrack_redist.a"
  "libstormtrack_redist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stormtrack_redist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
