
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/redist/block_decomp.cpp" "src/redist/CMakeFiles/stormtrack_redist.dir/block_decomp.cpp.o" "gcc" "src/redist/CMakeFiles/stormtrack_redist.dir/block_decomp.cpp.o.d"
  "/root/repo/src/redist/redistributor.cpp" "src/redist/CMakeFiles/stormtrack_redist.dir/redistributor.cpp.o" "gcc" "src/redist/CMakeFiles/stormtrack_redist.dir/redistributor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simmpi/CMakeFiles/stormtrack_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/stormtrack_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stormtrack_util.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/stormtrack_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
