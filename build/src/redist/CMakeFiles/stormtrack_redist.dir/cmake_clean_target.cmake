file(REMOVE_RECURSE
  "libstormtrack_redist.a"
)
