# CMake generated Testfile for 
# Source directory: /root/repo/src/wsim
# Build directory: /root/repo/build/src/wsim
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
