file(REMOVE_RECURSE
  "CMakeFiles/stormtrack_wsim.dir/dynamics.cpp.o"
  "CMakeFiles/stormtrack_wsim.dir/dynamics.cpp.o.d"
  "CMakeFiles/stormtrack_wsim.dir/nest.cpp.o"
  "CMakeFiles/stormtrack_wsim.dir/nest.cpp.o.d"
  "CMakeFiles/stormtrack_wsim.dir/split_file.cpp.o"
  "CMakeFiles/stormtrack_wsim.dir/split_file.cpp.o.d"
  "CMakeFiles/stormtrack_wsim.dir/weather.cpp.o"
  "CMakeFiles/stormtrack_wsim.dir/weather.cpp.o.d"
  "libstormtrack_wsim.a"
  "libstormtrack_wsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stormtrack_wsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
