file(REMOVE_RECURSE
  "libstormtrack_wsim.a"
)
