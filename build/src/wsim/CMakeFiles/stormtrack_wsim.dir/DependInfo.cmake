
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wsim/dynamics.cpp" "src/wsim/CMakeFiles/stormtrack_wsim.dir/dynamics.cpp.o" "gcc" "src/wsim/CMakeFiles/stormtrack_wsim.dir/dynamics.cpp.o.d"
  "/root/repo/src/wsim/nest.cpp" "src/wsim/CMakeFiles/stormtrack_wsim.dir/nest.cpp.o" "gcc" "src/wsim/CMakeFiles/stormtrack_wsim.dir/nest.cpp.o.d"
  "/root/repo/src/wsim/split_file.cpp" "src/wsim/CMakeFiles/stormtrack_wsim.dir/split_file.cpp.o" "gcc" "src/wsim/CMakeFiles/stormtrack_wsim.dir/split_file.cpp.o.d"
  "/root/repo/src/wsim/weather.cpp" "src/wsim/CMakeFiles/stormtrack_wsim.dir/weather.cpp.o" "gcc" "src/wsim/CMakeFiles/stormtrack_wsim.dir/weather.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/redist/CMakeFiles/stormtrack_redist.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/stormtrack_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stormtrack_util.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/stormtrack_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/stormtrack_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
