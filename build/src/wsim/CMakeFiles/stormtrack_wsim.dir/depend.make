# Empty dependencies file for stormtrack_wsim.
# This may be replaced when dependencies are built.
