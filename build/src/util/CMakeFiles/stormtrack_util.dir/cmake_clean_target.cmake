file(REMOVE_RECURSE
  "libstormtrack_util.a"
)
