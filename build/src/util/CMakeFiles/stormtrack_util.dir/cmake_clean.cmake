file(REMOVE_RECURSE
  "CMakeFiles/stormtrack_util.dir/hilbert.cpp.o"
  "CMakeFiles/stormtrack_util.dir/hilbert.cpp.o.d"
  "CMakeFiles/stormtrack_util.dir/image.cpp.o"
  "CMakeFiles/stormtrack_util.dir/image.cpp.o.d"
  "CMakeFiles/stormtrack_util.dir/rect.cpp.o"
  "CMakeFiles/stormtrack_util.dir/rect.cpp.o.d"
  "CMakeFiles/stormtrack_util.dir/stats.cpp.o"
  "CMakeFiles/stormtrack_util.dir/stats.cpp.o.d"
  "CMakeFiles/stormtrack_util.dir/table.cpp.o"
  "CMakeFiles/stormtrack_util.dir/table.cpp.o.d"
  "libstormtrack_util.a"
  "libstormtrack_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stormtrack_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
