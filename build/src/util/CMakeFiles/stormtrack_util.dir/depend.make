# Empty dependencies file for stormtrack_util.
# This may be replaced when dependencies are built.
