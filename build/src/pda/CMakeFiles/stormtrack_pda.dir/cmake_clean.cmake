file(REMOVE_RECURSE
  "CMakeFiles/stormtrack_pda.dir/nnc.cpp.o"
  "CMakeFiles/stormtrack_pda.dir/nnc.cpp.o.d"
  "CMakeFiles/stormtrack_pda.dir/parallel_nnc.cpp.o"
  "CMakeFiles/stormtrack_pda.dir/parallel_nnc.cpp.o.d"
  "CMakeFiles/stormtrack_pda.dir/pda.cpp.o"
  "CMakeFiles/stormtrack_pda.dir/pda.cpp.o.d"
  "libstormtrack_pda.a"
  "libstormtrack_pda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stormtrack_pda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
