file(REMOVE_RECURSE
  "libstormtrack_pda.a"
)
