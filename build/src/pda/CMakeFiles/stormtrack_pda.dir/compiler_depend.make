# Empty compiler generated dependencies file for stormtrack_pda.
# This may be replaced when dependencies are built.
