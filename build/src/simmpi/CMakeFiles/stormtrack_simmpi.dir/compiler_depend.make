# Empty compiler generated dependencies file for stormtrack_simmpi.
# This may be replaced when dependencies are built.
