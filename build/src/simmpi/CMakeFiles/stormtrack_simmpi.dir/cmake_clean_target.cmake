file(REMOVE_RECURSE
  "libstormtrack_simmpi.a"
)
