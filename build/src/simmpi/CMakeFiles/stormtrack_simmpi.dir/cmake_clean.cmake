file(REMOVE_RECURSE
  "CMakeFiles/stormtrack_simmpi.dir/simcomm.cpp.o"
  "CMakeFiles/stormtrack_simmpi.dir/simcomm.cpp.o.d"
  "libstormtrack_simmpi.a"
  "libstormtrack_simmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stormtrack_simmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
