file(REMOVE_RECURSE
  "CMakeFiles/stormtrack_core.dir/coupled.cpp.o"
  "CMakeFiles/stormtrack_core.dir/coupled.cpp.o.d"
  "CMakeFiles/stormtrack_core.dir/experiment.cpp.o"
  "CMakeFiles/stormtrack_core.dir/experiment.cpp.o.d"
  "CMakeFiles/stormtrack_core.dir/machine.cpp.o"
  "CMakeFiles/stormtrack_core.dir/machine.cpp.o.d"
  "CMakeFiles/stormtrack_core.dir/nest_tracker.cpp.o"
  "CMakeFiles/stormtrack_core.dir/nest_tracker.cpp.o.d"
  "CMakeFiles/stormtrack_core.dir/realloc_manager.cpp.o"
  "CMakeFiles/stormtrack_core.dir/realloc_manager.cpp.o.d"
  "CMakeFiles/stormtrack_core.dir/trace_io.cpp.o"
  "CMakeFiles/stormtrack_core.dir/trace_io.cpp.o.d"
  "CMakeFiles/stormtrack_core.dir/traces.cpp.o"
  "CMakeFiles/stormtrack_core.dir/traces.cpp.o.d"
  "libstormtrack_core.a"
  "libstormtrack_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stormtrack_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
