file(REMOVE_RECURSE
  "libstormtrack_core.a"
)
