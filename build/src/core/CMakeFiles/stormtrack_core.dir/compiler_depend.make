# Empty compiler generated dependencies file for stormtrack_core.
# This may be replaced when dependencies are built.
