file(REMOVE_RECURSE
  "CMakeFiles/torus_mapping_study.dir/torus_mapping_study.cpp.o"
  "CMakeFiles/torus_mapping_study.dir/torus_mapping_study.cpp.o.d"
  "torus_mapping_study"
  "torus_mapping_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/torus_mapping_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
