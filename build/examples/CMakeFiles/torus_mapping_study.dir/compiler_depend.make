# Empty compiler generated dependencies file for torus_mapping_study.
# This may be replaced when dependencies are built.
