file(REMOVE_RECURSE
  "CMakeFiles/dynamic_strategy_demo.dir/dynamic_strategy_demo.cpp.o"
  "CMakeFiles/dynamic_strategy_demo.dir/dynamic_strategy_demo.cpp.o.d"
  "dynamic_strategy_demo"
  "dynamic_strategy_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_strategy_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
