# Empty compiler generated dependencies file for dynamic_strategy_demo.
# This may be replaced when dependencies are built.
