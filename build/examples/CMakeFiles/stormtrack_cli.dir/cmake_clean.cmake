file(REMOVE_RECURSE
  "CMakeFiles/stormtrack_cli.dir/stormtrack_cli.cpp.o"
  "CMakeFiles/stormtrack_cli.dir/stormtrack_cli.cpp.o.d"
  "stormtrack_cli"
  "stormtrack_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stormtrack_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
