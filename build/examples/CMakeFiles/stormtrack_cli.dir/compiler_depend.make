# Empty compiler generated dependencies file for stormtrack_cli.
# This may be replaced when dependencies are built.
