file(REMOVE_RECURSE
  "CMakeFiles/cloud_tracking.dir/cloud_tracking.cpp.o"
  "CMakeFiles/cloud_tracking.dir/cloud_tracking.cpp.o.d"
  "cloud_tracking"
  "cloud_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
