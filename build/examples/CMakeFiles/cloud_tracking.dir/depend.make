# Empty dependencies file for cloud_tracking.
# This may be replaced when dependencies are built.
