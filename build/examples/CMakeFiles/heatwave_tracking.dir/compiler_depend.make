# Empty compiler generated dependencies file for heatwave_tracking.
# This may be replaced when dependencies are built.
