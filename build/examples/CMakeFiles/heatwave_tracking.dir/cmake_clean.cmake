file(REMOVE_RECURSE
  "CMakeFiles/heatwave_tracking.dir/heatwave_tracking.cpp.o"
  "CMakeFiles/heatwave_tracking.dir/heatwave_tracking.cpp.o.d"
  "heatwave_tracking"
  "heatwave_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heatwave_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
