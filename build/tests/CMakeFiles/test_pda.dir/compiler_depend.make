# Empty compiler generated dependencies file for test_pda.
# This may be replaced when dependencies are built.
