file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/coupled_test.cpp.o"
  "CMakeFiles/test_core.dir/core/coupled_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/dynamic_strategy_test.cpp.o"
  "CMakeFiles/test_core.dir/core/dynamic_strategy_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/experiment_test.cpp.o"
  "CMakeFiles/test_core.dir/core/experiment_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/long_trace_test.cpp.o"
  "CMakeFiles/test_core.dir/core/long_trace_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/machine_test.cpp.o"
  "CMakeFiles/test_core.dir/core/machine_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/nest_tracker_test.cpp.o"
  "CMakeFiles/test_core.dir/core/nest_tracker_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/realloc_manager_test.cpp.o"
  "CMakeFiles/test_core.dir/core/realloc_manager_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/trace_io_test.cpp.o"
  "CMakeFiles/test_core.dir/core/trace_io_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/traces_test.cpp.o"
  "CMakeFiles/test_core.dir/core/traces_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
