file(REMOVE_RECURSE
  "CMakeFiles/test_wsim.dir/wsim/dynamics_test.cpp.o"
  "CMakeFiles/test_wsim.dir/wsim/dynamics_test.cpp.o.d"
  "CMakeFiles/test_wsim.dir/wsim/nest_test.cpp.o"
  "CMakeFiles/test_wsim.dir/wsim/nest_test.cpp.o.d"
  "CMakeFiles/test_wsim.dir/wsim/split_file_test.cpp.o"
  "CMakeFiles/test_wsim.dir/wsim/split_file_test.cpp.o.d"
  "CMakeFiles/test_wsim.dir/wsim/weather_sweep_test.cpp.o"
  "CMakeFiles/test_wsim.dir/wsim/weather_sweep_test.cpp.o.d"
  "CMakeFiles/test_wsim.dir/wsim/weather_test.cpp.o"
  "CMakeFiles/test_wsim.dir/wsim/weather_test.cpp.o.d"
  "test_wsim"
  "test_wsim.pdb"
  "test_wsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
