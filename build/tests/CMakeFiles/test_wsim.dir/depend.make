# Empty dependencies file for test_wsim.
# This may be replaced when dependencies are built.
