# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_topo[1]_include.cmake")
include("/root/repo/build/tests/test_simmpi[1]_include.cmake")
include("/root/repo/build/tests/test_tree[1]_include.cmake")
include("/root/repo/build/tests/test_perfmodel[1]_include.cmake")
include("/root/repo/build/tests/test_alloc[1]_include.cmake")
include("/root/repo/build/tests/test_redist[1]_include.cmake")
include("/root/repo/build/tests/test_wsim[1]_include.cmake")
include("/root/repo/build/tests/test_pda[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
