/// \file bench_fig12_dynamic.cpp
/// Reproduces §V-F / Fig. 12: the dynamic strategy on 12 synthetic
/// reconfigurations on 1024 BG/L cores.
///
/// Paper results to match in shape:
///  * Pearson correlation between predicted and actual execution times
///    ≈ 0.9;
///  * the dynamic scheme picks tree-based ~10/12 times and is correct in
///    ~10/12 decisions (tree-based actually best in 9, scratch in 3);
///  * Fig. 12 bar chart: tree-based has the lowest redistribution time,
///    scratch the lowest execution time, dynamic combines both and beats
///    the next-best total by ~3%.

#include <iostream>

#include "core/experiment.hpp"
#include "util/stats.hpp"

using namespace stormtrack;

int main() {
  SyntheticTraceConfig tcfg;
  tcfg.num_events = 12;  // paper: 12 reconfigurations over 4 h simulated
  tcfg.seed = 0xf125;
  const Trace trace = generate_synthetic_trace(tcfg);
  const ModelStack models;
  const Machine bgl = Machine::bluegene(1024);

  const TraceRunResult tree = run_trace(bgl, models.model, models.truth,
                                        Strategy::kDiffusion, trace);
  const TraceRunResult scratch = run_trace(bgl, models.model, models.truth,
                                           Strategy::kScratch, trace);
  const TraceRunResult dynamic = run_trace(bgl, models.model, models.truth,
                                           Strategy::kDynamic, trace);

  // ------------------------------------------------ decision quality
  int correct = 0, tree_best_actual = 0;
  std::vector<double> predicted, actual;
  for (const StepOutcome& o : dynamic.outcomes) {
    const bool tree_best =
        o.diffusion.actual_total() <= o.scratch.actual_total();
    tree_best_actual += tree_best ? 1 : 0;
    if ((o.chosen == "diffusion") == tree_best) ++correct;
    predicted.push_back(o.committed.predicted_exec);
    actual.push_back(o.committed.actual_exec);
  }
  const double r = pearson(predicted, actual);

  Table q({"Quantity", "Paper", "Ours"});
  q.set_title("Section V-F: dynamic strategy on " + bgl.label() + " (" +
              std::to_string(trace.size()) + " reconfigurations)");
  q.add_row({"Pearson r (predicted vs actual exec time)", "0.9",
             Table::num(r, 2)});
  q.add_row({"Tree-based selected (times)", "10/12",
             std::to_string(dynamic.diffusion_picks()) + "/" +
                 std::to_string(trace.size())});
  q.add_row({"Correct decisions", "10/12",
             std::to_string(correct) + "/" + std::to_string(trace.size())});
  q.add_row({"Tree-based actually best (times)", "9/12",
             std::to_string(tree_best_actual) + "/" +
                 std::to_string(trace.size())});
  q.print(std::cout);

  // ------------------------------------------------ Fig. 12 bar chart
  Table bars({"Strategy", "Execution time (s)", "Redistribution time (s)",
              "Total (s)"});
  bars.set_title("Fig. 12: execution and redistribution times");
  const struct {
    const char* name;
    const TraceRunResult* r;
  } rows[] = {{"Tree-based", &tree}, {"Scratch", &scratch},
              {"Dynamic", &dynamic}};
  for (const auto& row : rows)
    bars.add_row({row.name, Table::num(row.r->total_exec(), 2),
                  Table::num(row.r->total_redist(), 2),
                  Table::num(row.r->total(), 2)});
  bars.print(std::cout);

  const double next_best = std::min(tree.total(), scratch.total());
  std::cout << "Dynamic vs next-best total: paper ~3% improvement, ours "
            << Table::num(percent_improvement(next_best, dynamic.total()), 1)
            << "%\n"
            << "Expected shape: tree-based lowest redistribution, scratch "
               "lowest execution,\ndynamic close to the best of each "
               "(§V-F).\n";
  return 0;
}
