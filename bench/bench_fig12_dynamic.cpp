/// \file bench_fig12_dynamic.cpp
/// Reproduces §V-F / Fig. 12: the dynamic strategy on 12 synthetic
/// reconfigurations on 1024 BG/L cores.
///
/// Paper results to match in shape:
///  * Pearson correlation between predicted and actual execution times
///    ≈ 0.9;
///  * the dynamic scheme picks tree-based ~10/12 times and is correct in
///    ~10/12 decisions (tree-based actually best in 9, scratch in 3);
///  * Fig. 12 bar chart: tree-based has the lowest redistribution time,
///    scratch the lowest execution time, dynamic combines both and beats
///    the next-best total by ~3%.

#include <iostream>

#include "bench_common.hpp"

using namespace stormtrack;

int main() {
  // Paper: 12 reconfigurations over 4 h simulated.
  SweepSpec spec;
  spec.traces.push_back({"fig12", bench::synthetic_trace(12, 0xf125)});
  spec.machines.push_back(sweep_bluegene(1024));
  spec.strategies = {"diffusion", "scratch", "dynamic"};

  const ModelStack models;
  const std::vector<SweepCaseResult> results =
      SweepRunner(models).run(spec);
  const TraceRunResult& tree =
      find_case(results, "fig12", "bluegene-1024", "diffusion").result;
  const TraceRunResult& scratch =
      find_case(results, "fig12", "bluegene-1024", "scratch").result;
  const TraceRunResult& dynamic =
      find_case(results, "fig12", "bluegene-1024", "dynamic").result;
  const std::string label =
      find_case(results, "fig12", "bluegene-1024", "dynamic").machine_label;
  const std::size_t events = dynamic.outcomes.size();

  // ------------------------------------------------ decision quality
  const bench::DecisionQuality q = bench::decision_quality(dynamic);

  Table qt({"Quantity", "Paper", "Ours"});
  qt.set_title("Section V-F: dynamic strategy on " + label + " (" +
               std::to_string(events) + " reconfigurations)");
  qt.add_row({"Pearson r (predicted vs actual exec time)", "0.9",
              Table::num(q.pearson_r(), 2)});
  qt.add_row({"Tree-based selected (times)", "10/12",
              std::to_string(dynamic.diffusion_picks()) + "/" +
                  std::to_string(events)});
  qt.add_row({"Correct decisions", "10/12",
              std::to_string(q.correct) + "/" + std::to_string(events)});
  qt.add_row({"Tree-based actually best (times)", "9/12",
              std::to_string(q.diffusion_best) + "/" +
                  std::to_string(events)});
  qt.print(std::cout);

  // ------------------------------------------------ Fig. 12 bar chart
  Table bars({"Strategy", "Execution time (s)", "Redistribution time (s)",
              "Total (s)"});
  bars.set_title("Fig. 12: execution and redistribution times");
  const struct {
    const char* name;
    const TraceRunResult* r;
  } rows[] = {{"Tree-based", &tree}, {"Scratch", &scratch},
              {"Dynamic", &dynamic}};
  for (const auto& row : rows)
    bars.add_row({row.name, Table::num(row.r->total_exec(), 2),
                  Table::num(row.r->total_redist(), 2),
                  Table::num(row.r->total(), 2)});
  bars.print(std::cout);

  const double next_best = std::min(tree.total(), scratch.total());
  std::cout << "Dynamic vs next-best total: paper ~3% improvement, ours "
            << Table::num(percent_improvement(next_best, dynamic.total()), 1)
            << "%\n"
            << "Expected shape: tree-based lowest redistribution, scratch "
               "lowest execution,\ndynamic close to the best of each "
               "(§V-F).\n\n";

  bench::print_stage_metrics(
      results, "Adaptation pipeline stage costs (all 3 strategy runs)");
  return 0;
}
